//! # PATCHECKO — hybrid firmware analysis for known vulnerabilities
//!
//! A full Rust reproduction of *"Hybrid Firmware Analysis for Known Mobile
//! and IoT Security Vulnerabilities"* (DSN 2020): deep-learning static
//! binary similarity + dynamic binary analysis for known-vulnerability
//! discovery and patch-presence detection in stripped firmware, together
//! with every substrate the paper depends on (source language and
//! compiler, binary container, disassembler/CFG, neural networks, a
//! tracing interpreter with a coverage-guided fuzzer, and the evaluation
//! datasets).
//!
//! This facade crate re-exports the workspace members:
//!
//! * [`fwlang`] — synthetic firmware source language, program generator,
//!   patch model;
//! * [`fwbin`] — compiler (4 ISAs × 6 optimization levels), FWB container,
//!   firmware images;
//! * [`disasm`] — CFG recovery, block typing, betweenness centrality;
//! * [`neural`] — dense pair classifier, metrics, structure2vec baseline;
//! * [`vm`] — function-level loader, tracing interpreter, fuzzer;
//! * [`corpus`] — Datasets I/II/III: training corpus, CVE database, device
//!   images;
//! * [`core`] (`patchecko_core`) — the 48 static features, the detector,
//!   the hybrid pipeline, the differential patch engine, and the §V
//!   evaluation harness;
//! * [`scanhub`] (`patchecko_scanhub`) — the persistent scan service:
//!   content-addressed artifact caching, batched inference, and the
//!   multi-image job scheduler;
//! * [`scand`] (`patchecko_scand`) — the long-running multi-tenant scan
//!   daemon: length-prefixed JSON over a Unix socket, admission control,
//!   per-tenant cache namespaces, and live telemetry.
//!
//! ## Quick taste
//!
//! ```
//! use patchecko::corpus::full_catalog;
//! use patchecko::fwlang::pretty;
//!
//! // The paper's Figure 6 pair, as source:
//! let catalog = full_catalog();
//! let flagship = catalog.iter().find(|e| e.cve == "CVE-2018-9412").unwrap();
//! let source = pretty::function(&flagship.vulnerable);
//! assert!(source.contains("memmove"));
//! let patched = pretty::function(&flagship.patched);
//! assert!(!patched.contains("memmove"));
//! ```
//!
//! See `examples/` for runnable end-to-end scenarios and
//! `crates/bench/src/bin/` for the binaries regenerating every table and
//! figure of the paper's evaluation.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use corpus;
pub use disasm;
pub use fwbin;
pub use fwlang;
pub use neural;
pub use patchecko_core as core;
pub use patchecko_scand as scand;
pub use patchecko_scanhub as scanhub;
pub use scope;
pub use vm;
