//! The PATCHECKO command-line tool.
//!
//! ```text
//! patchecko train        --out model.json [--libs 100] [--epochs 30]
//! patchecko build-image  --device android_things|pixel2xl --out DIR [--scale 0.25]
//! patchecko list-cves
//! patchecko inspect      --cve CVE-2018-9412 [--patched] [--asm]
//! patchecko scan         --model model.json --image DIR --cve CVE-2018-9412
//! patchecko patch-check  --model model.json --image DIR --cve CVE-2018-9412
//! patchecko audit        --model model.json --image DIR [--report report.md]
//! patchecko batch-audit  --model model.json --images DIR[,DIR...] [--cache-dir DIR]
//! patchecko corpus       --functions N [--model model.json] [--working-set N]
//! patchecko serve        --model model.json --images DIR[,DIR...] --socket PATH
//! patchecko client       --socket PATH [--tenant NAME] --stats|--drain|--audit IDX|...
//! ```
//!
//! `build-image` writes one `.fwb` container per library (the on-disk wire
//! format of `fwbin::format`); `scan`/`audit` work purely from those files
//! plus the built-in vulnerability database — the deployment flow of the
//! paper: no source, no symbols, no vendor cooperation.
//!
//! `scan`, `audit`, and `batch-audit` accept `--cache-dir DIR` to reuse a
//! persistent content-addressed artifact cache across invocations and
//! `--cache-stats` to print hit/miss/extraction counters; `--threads N`
//! pins the scheduler/pipeline worker count (`PipelineConfig::threads`,
//! overriding the `PATCHECKO_THREADS` environment variable); `--engine
//! interp` swaps the dynamic stage onto the reference interpreter (the
//! fast engine is the default and produces bitwise-identical profiles).
//!
//! Observability (same three commands): `--metrics` prints the run's full
//! telemetry table — per-stage span timings plus cache / scheduler / pool
//! counters, all from one `scope::MetricsRegistry` — and
//! `--trace-out FILE.json` writes a Chrome-trace of every pipeline span
//! (load it in `chrome://tracing` or Perfetto).

use patchecko::core::detector::{self, Detector, DetectorConfig};
use patchecko::core::differential::{self, DifferentialConfig};
use patchecko::core::pipeline::{Basis, Patchecko, PipelineConfig};
use patchecko::corpus::{self, dataset1::Dataset1Config};
use patchecko::fwbin::{Binary, FirmwareImage};
use patchecko::fwlang::pretty;
use patchecko::neural::net::TrainConfig;
use patchecko::scand::{BreakerConfig, ScanClient, ScanServer, ServerConfig, TenantQuota};
use patchecko::scanhub::{self, JobOutcome, JobSpec, ScanHub};
use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first() else {
        usage();
        return ExitCode::from(2);
    };
    let flags = parse_flags(&args[1..]);
    let result = match cmd.as_str() {
        "train" => cmd_train(&flags),
        "build-image" => cmd_build_image(&flags),
        "list-cves" => cmd_list_cves(),
        "inspect" => cmd_inspect(&flags),
        "scan" => cmd_scan(&flags),
        "patch-check" => cmd_patch_check(&flags),
        "audit" => cmd_audit(&flags),
        "batch-audit" => cmd_batch_audit(&flags),
        "corpus" => cmd_corpus(&flags),
        "serve" => cmd_serve(&flags),
        "client" => cmd_client(&flags),
        "--help" | "-h" | "help" => {
            usage();
            Ok(())
        }
        other => Err(format!("unknown command `{other}`")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::from(1)
        }
    }
}

fn usage() {
    eprintln!(
        "PATCHECKO — hybrid firmware analysis for known vulnerabilities (DSN 2020 reproduction)

USAGE:
  patchecko train        --out model.json [--libs N] [--epochs N] [--pairs N]
  patchecko build-image  --device android_things|pixel2xl --out DIR [--scale F]
  patchecko list-cves
  patchecko inspect      --cve ID [--patched] [--asm]
  patchecko scan         --model model.json --image DIR --cve ID
  patchecko patch-check  --model model.json --image DIR --cve ID
  patchecko audit        --model model.json --image DIR [--report FILE.md] [--json FILE.json]
  patchecko batch-audit  --model model.json --images DIR[,DIR...] [--cves ID[,ID...]]
                         [--basis vulnerable|patched|both] [--json FILE.json]
  patchecko corpus       --functions N [--seed N] [--plant-every N] [--working-set N]
                         [--model model.json] [--json FILE.json]
                         (stream-generate a corpus across 4 ISAs x 6 opt levels;
                         with --model, streaming-scan it against the CVE database
                         under the bounded working set and report CVE/CWE matches)
  patchecko serve        --model model.json --images DIR[,DIR...] --socket PATH
                         [--cache-dir DIR] [--workers N] [--queue-limit N]
                         [--retry-after-ms N] [--io-timeout-ms N]
                         [--tenant-quota RATE:BURST[:INFLIGHT]]
                         [--breaker-threshold N] [--breaker-cooldown-ms N]
                         [--checkpoint-every N]
  patchecko client       --socket PATH [--tenant NAME] [--deadline-ms N]
                         <--stats | --drain |
                         --audit IDX | --batch-audit IDX[,IDX...] |
                         --scan IDX --cve ID [--basis vulnerable|patched]>

CACHING / SCHEDULING (scan, audit, batch-audit, serve):
  --cache-dir DIR   load/persist the content-addressed artifact cache in DIR
  --cache-stats     print cache hit/miss/extraction counters after the run;
                    `--cache-stats json` emits them as machine-readable JSON
  --threads N       worker threads for the pipeline and the batch scheduler
                    (default: the PATCHECKO_THREADS env var, then the number
                    of CPUs; --threads 1 forces fully serial execution)
  --retrieval MODE  candidate retrieval in the static scan: `exact` scores
                    every (reference, target) pair (the default); `topk`
                    or `topk:K` pre-filters with the signature/LSH index
                    and scores only the top-K references per target
                    (K defaults to 16; `topk:K` with K >= the reference
                    count is bitwise-identical to exact). Pruning shows
                    up in --metrics as the `index.candidates` and
                    `index.pairs_pruned` counters
  --engine MODE     dynamic-stage execution engine: `fast` (pre-lowered
                    dispatch, dense tracing, dirty-tracked environment
                    resets; the default) or `interp` (the reference
                    interpreter). Both produce bitwise-identical dynamic
                    profiles; `interp` exists for differential testing

OBSERVABILITY (scan, audit, batch-audit):
  --metrics         print the run's telemetry table: per-stage span timings
                    (static scan, dynamic profiling, differential, scheduler
                    jobs) and cache/scheduler/pool counters, all sourced
                    from one metrics registry; `--metrics json` emits the
                    full snapshot as machine-readable JSON
  --trace-out FILE  write a Chrome-trace JSON of every pipeline span; load
                    it in chrome://tracing or Perfetto

SERVICE:
  `serve` runs the long-lived multi-tenant scan daemon: one warm model and
  one artifact cache shared (namespace-isolated) by every tenant, fair
  round-robin scheduling, admission control with typed overload replies,
  and live per-tenant telemetry. `client` speaks its framed protocol:
  `--tenant` selects the cache namespace, `--stats` prints live service
  statistics as JSON, and `--drain` persists the caches and stops the
  daemon gracefully.

  Hardening knobs (serve): `--io-timeout-ms` is the per-connection socket
  read/write budget — stalled or half-open peers are reaped after it
  (default 30000; 0 disables). `--tenant-quota RATE:BURST[:INFLIGHT]`
  meters each tenant with a token bucket (RATE tokens/s, capacity BURST)
  plus an optional in-flight job cap; rejections are typed QuotaExceeded
  with a live retry hint. `--breaker-threshold` consecutive dynamic-stage
  failures trip a per-tenant circuit breaker (0 disables): while open,
  that tenant's jobs run static-only (degraded) without burning VM time,
  and after `--breaker-cooldown-ms` one half-open probe retries real
  dynamics. `--checkpoint-every N` persists the caches every N completed
  jobs so a crash loses at most one checkpoint interval of warm state; a
  restart takes over the dead daemon's stale socket automatically.

  Client requests can carry `--deadline-ms`: past the deadline the daemon
  answers with a typed DeadlineExceeded and discards the job if it has
  not started — an executor never burns time on an expired request."
    );
}

fn parse_flags(args: &[String]) -> HashMap<String, String> {
    let mut out = HashMap::new();
    let mut i = 0;
    while i < args.len() {
        let a = &args[i];
        if let Some(key) = a.strip_prefix("--") {
            let value = args.get(i + 1).filter(|v| !v.starts_with("--"));
            match value {
                Some(v) => {
                    out.insert(key.to_string(), v.clone());
                    i += 2;
                }
                None => {
                    out.insert(key.to_string(), "true".into());
                    i += 1;
                }
            }
        } else {
            i += 1;
        }
    }
    out
}

fn flag<'a>(flags: &'a HashMap<String, String>, key: &str) -> Result<&'a str, String> {
    flags.get(key).map(String::as_str).ok_or_else(|| format!("missing required flag --{key}"))
}

fn flag_or<T: std::str::FromStr>(flags: &HashMap<String, String>, key: &str, default: T) -> T {
    flags.get(key).and_then(|v| v.parse().ok()).unwrap_or(default)
}

// ---------------------------------------------------------------------------

fn cmd_train(flags: &HashMap<String, String>) -> Result<(), String> {
    let out = flag(flags, "out")?;
    let libs: usize = flag_or(flags, "libs", 100);
    let epochs: usize = flag_or(flags, "epochs", 30);
    let pairs: usize = flag_or(flags, "pairs", 12);

    eprintln!("building Dataset I ({libs} libraries)...");
    let ds = corpus::build_dataset1(&Dataset1Config {
        num_libraries: libs,
        min_functions: 12,
        max_functions: 20,
        seed: 1,
        include_catalog: true,
    });
    eprintln!("  {} binaries, {} function samples", ds.variants.len(), ds.total_function_samples());
    eprintln!("training ({epochs} epochs)...");
    let (det, _, metrics) = detector::train(
        &ds,
        &DetectorConfig {
            pairs_per_function: pairs,
            train: TrainConfig { epochs, batch: 256, lr: 1e-3, seed: 7, ..Default::default() },
            ..DetectorConfig::default()
        },
    );
    eprintln!(
        "  held-out accuracy {:.2}%, AUC {:.4} ({} pairs)",
        metrics.accuracy * 100.0,
        metrics.auc,
        metrics.pairs
    );
    let json = serde_json::to_string(&det).map_err(|e| e.to_string())?;
    std::fs::write(out, &json).map_err(|e| format!("write {out}: {e}"))?;
    eprintln!("wrote {out} ({} KiB)", json.len() / 1024);
    Ok(())
}

fn load_model(path: &str) -> Result<Detector, String> {
    let json = std::fs::read_to_string(path).map_err(|e| format!("read {path}: {e}"))?;
    serde_json::from_str(&json).map_err(|e| format!("parse {path}: {e}"))
}

fn cmd_build_image(flags: &HashMap<String, String>) -> Result<(), String> {
    let device = flag(flags, "device")?;
    let out = PathBuf::from(flag(flags, "out")?);
    let scale: f64 = flag_or(flags, "scale", 0.25);
    let spec = match device {
        "android_things" => corpus::android_things_spec(),
        "pixel2xl" => corpus::pixel2xl_spec(),
        other => return Err(format!("unknown device `{other}` (android_things|pixel2xl)")),
    };
    eprintln!("building {} at scale {scale}...", spec.name);
    let build = corpus::build_device(&spec, &corpus::full_catalog(), scale);
    std::fs::create_dir_all(&out).map_err(|e| format!("mkdir {}: {e}", out.display()))?;
    for bin in &build.image.binaries {
        let path = out.join(format!("{}.fwb", bin.lib_name));
        std::fs::write(&path, bin.to_bytes()).map_err(|e| format!("write {}: {e}", path.display()))?;
    }
    let meta = serde_json::json!({
        "device": build.image.device,
        "patch_level": build.image.patch_level,
        "libraries": build.image.binaries.len(),
        "functions": build.image.total_functions(),
    });
    std::fs::write(out.join("image.json"), serde_json::to_string_pretty(&meta).unwrap())
        .map_err(|e| e.to_string())?;
    eprintln!(
        "wrote {} libraries ({} functions) to {}",
        build.image.binaries.len(),
        build.image.total_functions(),
        out.display()
    );
    eprintln!("note: ground truth is intentionally NOT written — scan without it.");
    Ok(())
}

/// Load a firmware image from a directory of `.fwb` files.
fn load_image(dir: &str) -> Result<FirmwareImage, String> {
    let meta_path = Path::new(dir).join("image.json");
    let (device, patch_level) = if let Ok(meta) = std::fs::read_to_string(&meta_path) {
        let v: serde_json::Value = serde_json::from_str(&meta).map_err(|e| e.to_string())?;
        (
            v["device"].as_str().unwrap_or("unknown").to_string(),
            v["patch_level"].as_str().unwrap_or("unknown").to_string(),
        )
    } else {
        ("unknown".into(), "unknown".into())
    };
    let mut image = FirmwareImage::new(device, patch_level);
    let mut entries: Vec<PathBuf> = std::fs::read_dir(dir)
        .map_err(|e| format!("read {dir}: {e}"))?
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| p.extension().map(|x| x == "fwb").unwrap_or(false))
        .collect();
    entries.sort();
    for path in entries {
        let bytes = std::fs::read(&path).map_err(|e| format!("read {}: {e}", path.display()))?;
        let bin = Binary::from_bytes(&bytes)
            .map_err(|e| format!("parse {}: {e}", path.display()))?;
        image.binaries.push(bin);
    }
    if image.binaries.is_empty() {
        return Err(format!("no .fwb files in {dir}"));
    }
    Ok(image)
}

fn cmd_list_cves() -> Result<(), String> {
    println!(
        "{:<16} {:<20} {:<8} {:<5} {:<10} {:<9} description",
        "CVE", "library", "CWE", "CVSS", "severity", "patch"
    );
    for e in corpus::full_catalog() {
        let meta = corpus::annotate(&e);
        println!(
            "{:<16} {:<20} {:<8} {:<5} {:<10} {:<9} {}",
            e.cve,
            e.library,
            meta.cwe(),
            format!("{:.1}", meta.metrics.base_score),
            format!("{:?}", e.severity).to_lowercase(),
            format!("{:?}", e.magnitude).to_lowercase(),
            e.description
        );
    }
    Ok(())
}

fn cmd_inspect(flags: &HashMap<String, String>) -> Result<(), String> {
    let cve = flag(flags, "cve")?;
    let patched = flags.contains_key("patched");
    let catalog = corpus::full_catalog();
    let entry = catalog.iter().find(|e| e.cve == cve).ok_or(format!("unknown CVE {cve}"))?;
    println!("{} — {}", entry.cve, entry.description);
    println!("patch: {}", entry.patch.summary());
    let f = if patched { &entry.patched } else { &entry.vulnerable };
    println!("\n--- {} source ({}) ---\n", if patched { "patched" } else { "vulnerable" }, entry.function);
    println!("{}", pretty::function(f));
    if flags.contains_key("asm") {
        let db = corpus::build_vulndb(0, 1);
        let e = db.get(cve).unwrap();
        let bin = if patched { &e.patched_bin } else { &e.vulnerable_bin };
        let dis = patchecko::disasm::disassemble(bin, 0).map_err(|e| e.to_string())?;
        println!("--- {} {} disassembly ---\n", bin.arch, bin.opt);
        println!("{}", patchecko::disasm::fmt::format_function(&dis, Some(bin), &entry.function));
    }
    Ok(())
}

fn build_analyzer(flags: &HashMap<String, String>) -> Result<Patchecko, String> {
    let det = load_model(flag(flags, "model")?)?;
    let mut cfg = PipelineConfig::default();
    if let Some(t) = flags.get("threads") {
        let n: usize = t.parse().map_err(|_| format!("--threads: not a number: {t}"))?;
        cfg.threads = Some(n.max(1));
    }
    if let Some(r) = flags.get("retrieval") {
        cfg.retrieval = r.parse().map_err(|e| format!("--retrieval: {e}"))?;
    }
    if let Some(e) = flags.get("engine") {
        cfg.vm.engine = e.parse().map_err(|e| format!("--engine: {e}"))?;
    }
    Ok(Patchecko::new(det, cfg))
}

/// Bind an analyzer to an artifact store, persistent when `--cache-dir`
/// is given. The hub records into the process-global `scope` registry, so
/// cache counters, scheduler counters, and stage spans all land in the
/// single snapshot `--metrics` prints. Chrome-trace capture turns on here
/// when `--trace-out` is given, before any stage span runs.
fn build_hub(flags: &HashMap<String, String>, analyzer: Patchecko) -> Result<ScanHub, String> {
    if flags.contains_key("trace-out") {
        scope::trace::enable();
    }
    let registry = scope::global_shared();
    match flags.get("cache-dir") {
        Some(dir) => ScanHub::with_cache_dir_and_registry(analyzer, dir, registry)
            .map_err(|e| format!("load cache {dir}: {e}")),
        None => Ok(ScanHub::with_registry(analyzer, registry)),
    }
}

/// After a cached command: print counters under `--cache-stats` and the
/// telemetry table under `--metrics` (both accept a `json` value for
/// machine-readable output), write the Chrome trace under `--trace-out`,
/// write the store back under `--cache-dir`.
fn finish_hub(flags: &HashMap<String, String>, hub: &ScanHub) -> Result<(), String> {
    match flags.get("cache-stats").map(String::as_str) {
        Some("json") => println!(
            "{}",
            serde_json::to_string_pretty(&hub.stats()).map_err(|e| e.to_string())?
        ),
        Some(_) => eprintln!("cache: {}", hub.stats()),
        None => {}
    }
    match flags.get("metrics").map(String::as_str) {
        Some("json") => println!(
            "{}",
            serde_json::to_string_pretty(&hub.telemetry_snapshot()).map_err(|e| e.to_string())?
        ),
        Some(_) => println!("\n{}", hub.telemetry_snapshot().to_table()),
        None => {}
    }
    if let Some(path) = flags.get("trace-out") {
        let events = scope::trace::write_chrome_trace(Path::new(path))
            .map_err(|e| format!("write trace {path}: {e}"))?;
        eprintln!("wrote {path} ({events} trace events)");
    }
    if hub.persist().map_err(|e| format!("persist cache: {e}"))? {
        eprintln!("cache persisted to {}", flags["cache-dir"]);
    }
    Ok(())
}

fn cmd_scan(flags: &HashMap<String, String>) -> Result<(), String> {
    let cve = flag(flags, "cve")?;
    let image = load_image(flag(flags, "image")?)?;
    let hub = build_hub(flags, build_analyzer(flags)?)?;
    let db = corpus::build_vulndb(0, 1);
    let entry = db.get(cve).ok_or(format!("unknown CVE {cve}"))?;

    eprintln!(
        "scanning {} ({} libraries, {} functions) for {cve}...",
        image.device,
        image.binaries.len(),
        image.total_functions()
    );
    let result = hub.scan_image(&image, entry, Basis::Vulnerable).map_err(|e| e.to_string())?;
    let mut any = false;
    for a in &result.analyses {
        if a.dynamic.ranking.is_empty() {
            continue;
        }
        any = true;
        println!("\n{}: {} candidates, {} validated", a.scan.library, a.scan.candidates.len(), a.dynamic.validated.len());
        for (i, r) in a.dynamic.ranking.iter().take(3).enumerate() {
            println!("  #{} function[{}] distance {:.1}", i + 1, r.function_index, r.distance);
        }
    }
    match (&result.best, any) {
        (Some(m), _) => println!(
            "\nbest match: {}:{} (distance {:.1}) — run `patch-check` to test patch presence",
            m.library, m.function_index, m.distance
        ),
        (None, _) => println!("\nno candidate survived — {cve} does not appear in this image"),
    }
    finish_hub(flags, &hub)
}

fn cmd_patch_check(flags: &HashMap<String, String>) -> Result<(), String> {
    let cve = flag(flags, "cve")?;
    let image = load_image(flag(flags, "image")?)?;
    let analyzer = build_analyzer(flags)?;
    let db = corpus::build_vulndb(0, 1);
    let entry = db.get(cve).ok_or(format!("unknown CVE {cve}"))?;

    let va = analyzer.analyze_image(&image, entry, Basis::Vulnerable).map_err(|e| e.to_string())?;
    let pa = analyzer.analyze_image(&image, entry, Basis::Patched).map_err(|e| e.to_string())?;
    // Gather candidates per library from both bases.
    let mut by_lib: HashMap<usize, Vec<usize>> = HashMap::new();
    for r in va.best.iter().chain(pa.best.iter()) {
        by_lib.entry(r.library_index).or_default().push(r.function_index);
    }
    if by_lib.is_empty() {
        println!("{cve}: target not found in the image");
        return Ok(());
    }
    let diff_cfg = DifferentialConfig::default();
    let mut best: Option<(String, usize, differential::PatchVerdict)> = None;
    for (li, candidates) in by_lib {
        let bin = &image.binaries[li];
        if let Some((idx, v)) =
            differential::detect_patch_best(&analyzer, entry, bin, &candidates, &diff_cfg)
                .map_err(|e| e.to_string())?
        {
            match &best {
                Some((_, _, b)) if b.margin.abs() >= v.margin.abs() => {}
                _ => best = Some((bin.lib_name.clone(), idx, v)),
            }
        }
    }
    let Some((lib, idx, v)) = best else {
        println!("{cve}: differential engine could not evaluate any candidate");
        return Ok(());
    };
    println!("{cve}: target {lib}:{idx}");
    println!(
        "  dynamic distance: {:.1} (vulnerable ref) vs {:.1} (patched ref)",
        v.dyn_dist_vulnerable, v.dyn_dist_patched
    );
    println!(
        "  static distance:  {:.2} vs {:.2}; signature votes {}v/{}p",
        v.static_dist_vulnerable,
        v.static_dist_patched,
        v.signature.votes_vulnerable,
        v.signature.votes_patched
    );
    println!(
        "  verdict: {}{}{}",
        if v.patched { "PATCHED" } else { "STILL VULNERABLE" },
        if v.tie_break { " (tie-break; evidence inconclusive)" } else { "" },
        if v.degraded { " (degraded: static evidence only)" } else { "" }
    );
    Ok(())
}

fn cmd_audit(flags: &HashMap<String, String>) -> Result<(), String> {
    let image = load_image(flag(flags, "image")?)?;
    let hub = build_hub(flags, build_analyzer(flags)?)?;
    let db = corpus::build_vulndb(0, 1);
    let diff_cfg = DifferentialConfig::default();

    eprintln!(
        "auditing {} ({} libraries, {} functions)...",
        image.device,
        image.binaries.len(),
        image.total_functions()
    );
    let report = hub.audit_with_telemetry(&db, &image, &diff_cfg).map_err(|e| e.to_string())?;
    for f in &report.findings {
        let verdict = match f.status {
            patchecko::core::AuditStatus::Vulnerable => "VULNERABLE",
            patchecko::core::AuditStatus::Patched => "patched",
            patchecko::core::AuditStatus::NotFound => "not found",
            patchecko::core::AuditStatus::Error => "ERROR",
        };
        println!(
            "{:<16} {:<8} {:<28} {}{}",
            f.cve,
            f.cwe.as_deref().unwrap_or("—"),
            f.located.as_deref().unwrap_or("—"),
            verdict,
            if f.degraded { " (degraded)" } else { "" }
        );
    }
    println!(
        "\nexposed to {} of {} known CVEs",
        report.count(patchecko::core::AuditStatus::Vulnerable),
        report.findings.len()
    );
    let degraded = report.degraded().count();
    if degraded > 0 {
        eprintln!("warning: {degraded} verdict(s) rest on degraded static-only evidence");
    }
    for f in report.errors() {
        eprintln!(
            "warning: {} scan failed: {}",
            f.cve,
            f.error.as_ref().map(ToString::to_string).unwrap_or_default()
        );
    }
    if let Some(path) = flags.get("report") {
        std::fs::write(path, report.to_markdown()).map_err(|e| format!("write {path}: {e}"))?;
        eprintln!("wrote {path}");
    }
    if let Some(path) = flags.get("json") {
        let json = serde_json::to_string_pretty(&report).map_err(|e| e.to_string())?;
        std::fs::write(path, json).map_err(|e| format!("write {path}: {e}"))?;
        eprintln!("wrote {path}");
    }
    finish_hub(flags, &hub)
}

fn cmd_batch_audit(flags: &HashMap<String, String>) -> Result<(), String> {
    let hub = std::sync::Arc::new(build_hub(flags, build_analyzer(flags)?)?);
    let db = std::sync::Arc::new(corpus::build_vulndb(0, 1));

    let mut images = Vec::new();
    for dir in flag(flags, "images")?.split(',').filter(|d| !d.is_empty()) {
        images.push(load_image(dir)?);
    }
    if images.is_empty() {
        return Err("--images: no image directories given".into());
    }
    let bases: &[Basis] = match flags.get("basis").map(String::as_str) {
        None | Some("vulnerable") => &[Basis::Vulnerable],
        Some("patched") => &[Basis::Patched],
        Some("both") => &[Basis::Vulnerable, Basis::Patched],
        Some(other) => return Err(format!("--basis: `{other}` (vulnerable|patched|both)")),
    };
    let jobs: Vec<JobSpec> = match flags.get("cves") {
        Some(list) => {
            let mut jobs = Vec::new();
            for cve in list.split(',').filter(|c| !c.is_empty()) {
                if db.get(cve).is_none() {
                    return Err(format!("unknown CVE {cve}"));
                }
                for image in 0..images.len() {
                    for &basis in bases {
                        jobs.push(JobSpec { image, cve: cve.to_string(), basis });
                    }
                }
            }
            jobs
        }
        None => scanhub::full_schedule(images.len(), &db, bases),
    };
    let images = std::sync::Arc::new(images);

    eprintln!(
        "dispatching {} jobs over {} images ({} threads)...",
        jobs.len(),
        images.len(),
        hub.analyzer.config.effective_threads()
    );
    let report = hub.batch_audit(&images, &db, &jobs);

    for r in &report.records {
        let image = &images[r.spec.image.min(images.len() - 1)];
        match &r.outcome {
            JobOutcome::Completed { candidates, validated, best } => {
                let located = match best {
                    Some(m) => format!("{}:{} (distance {:.1})", m.library, m.function_index, m.distance),
                    None => "no match".into(),
                };
                let cwe = db.get(&r.spec.cve).map(|e| e.meta.cwe().to_string()).unwrap_or_default();
                println!(
                    "{:<14} {:<16} {:<8} {:<10?} {:>3} candidates {:>3} validated  {}  [{:.2}s]",
                    image.device, r.spec.cve, cwe, r.spec.basis, candidates, validated, located, r.seconds
                );
            }
            JobOutcome::Failed { error, attempts } => {
                println!(
                    "{:<14} {:<16} {:<10?} FAILED after {attempts} attempt(s): {error}",
                    image.device, r.spec.cve, r.spec.basis
                );
            }
        }
    }
    println!(
        "\n{} jobs ({} completed, {} failed) in {:.2}s — {:.1} jobs/s on {} threads, {} functions",
        report.records.len(),
        report.completed(),
        report.failed(),
        report.seconds,
        report.jobs_per_second(),
        report.threads,
        report.functions
    );
    println!("cache: {} ({} this batch)", report.cache, report.cache_delta);
    let retried = report.retried().count();
    if retried > 0 {
        eprintln!("note: {retried} job(s) completed after transient-fault retries");
    }

    if let Some(path) = flags.get("json") {
        let json = serde_json::to_string_pretty(&report).map_err(|e| e.to_string())?;
        std::fs::write(path, json).map_err(|e| format!("write {path}: {e}"))?;
        eprintln!("wrote {path}");
    }
    finish_hub(flags, &hub)?;
    if report.failed() > 0 {
        // Per-job detail was printed above; the summary is the exit signal:
        // any permanently failed job makes the whole batch exit non-zero.
        eprintln!("\nfailed jobs:\n{}", report.failure_summary());
        return Err(format!("{} of {} jobs failed permanently", report.failed(), report.records.len()));
    }
    Ok(())
}

/// Stream-generate a production-scale corpus and (with `--model`) run the
/// bounded-working-set streaming scan against the CVE reference database,
/// reporting matched CVE/CWE identities and planted-CVE recall.
fn cmd_corpus(flags: &HashMap<String, String>) -> Result<(), String> {
    let functions: usize = flag_or(flags, "functions", 1_000);
    let seed: u64 = flag_or(flags, "seed", 0xC0_0C05);
    let working_set: usize = flag_or::<usize>(flags, "working-set", 64).max(1);
    let mut cfg = corpus::StreamConfig::sized(functions, seed);
    cfg.plant_every = flag_or(flags, "plant-every", cfg.plant_every);

    eprintln!(
        "corpus: {} units / {} functions ({} planted CVEs), {} ISAs × {} opt levels, seed {seed}",
        cfg.units(),
        cfg.total_functions(),
        cfg.planted_units(),
        cfg.archs.len(),
        cfg.opts.len()
    );

    let Some(_) = flags.get("model") else {
        // Generate-only: drain the stream, keeping nothing.
        let start = std::time::Instant::now();
        let (mut units, mut fns) = (0usize, 0usize);
        for u in corpus::CorpusStream::new(cfg.clone()) {
            units += 1;
            fns += u.binary.functions.len();
        }
        let seconds = start.elapsed().as_secs_f64();
        println!(
            "generated {units} units / {fns} functions in {seconds:.2}s ({:.0} functions/s)",
            fns as f64 / seconds.max(1e-9)
        );
        return Ok(());
    };

    let hub = build_hub(flags, build_analyzer(flags)?)?;
    let db = corpus::build_vulndb(0, 1);
    // Flatten every featured entry's vulnerable reference variants into one
    // reference set, remembering which database entry each row came from so
    // matches can be named by CVE and CWE.
    let mut references = Vec::new();
    let mut ref_entry = Vec::new();
    for (i, entry) in db.featured().iter().enumerate() {
        let feats = Patchecko::reference_feature_set(entry, Basis::Vulnerable)
            .map_err(|e| format!("reference features for {}: {e}", entry.entry.cve))?;
        for f in feats {
            references.push(f);
            ref_entry.push(i);
        }
    }
    eprintln!(
        "scanning stream against {} reference variants ({} CVEs), working set {working_set}...",
        references.len(),
        db.featured().len()
    );
    let stream = corpus::CorpusStream::new(cfg.clone()).map(|u| u.binary);
    let report = hub
        .scan_stream(stream, &references, working_set)
        .map_err(|e| e.to_string())?;

    const SHOWN: usize = 20;
    for m in report.matches.iter().take(SHOWN) {
        let entry = &db.featured()[ref_entry[m.reference]];
        println!(
            "unit {:<6} {:<14} fn {:<3} {:<16} {:<8} p={:.3}",
            m.unit,
            m.library,
            m.function,
            entry.entry.cve,
            entry.meta.cwe(),
            m.probability
        );
    }
    if report.matches.len() > SHOWN {
        println!("... and {} more matches", report.matches.len() - SHOWN);
    }

    let planted = corpus::manifest(&cfg);
    if !planted.is_empty() {
        let matched: std::collections::HashSet<usize> = report.matched_units().into_iter().collect();
        let recalled = planted.iter().filter(|p| matched.contains(&p.unit)).count();
        println!(
            "planted-CVE recall: {recalled}/{} ({:.1}%)",
            planted.len(),
            100.0 * recalled as f64 / planted.len() as f64
        );
    }
    println!(
        "{} units / {} functions in {:.2}s ({:.0} functions/s), peak working set {} of {} units",
        report.units,
        report.functions,
        report.seconds,
        report.functions_per_second(),
        report.peak_live,
        working_set
    );
    if let Some(path) = flags.get("json") {
        let json = serde_json::json!({
            "units": report.units,
            "functions": report.functions,
            "seconds": report.seconds,
            "functions_per_second": report.functions_per_second(),
            "matches": report.matches.len(),
            "peak_live": report.peak_live,
            "working_set": working_set,
        });
        std::fs::write(path, serde_json::to_string_pretty(&json).map_err(|e| e.to_string())?)
            .map_err(|e| format!("write {path}: {e}"))?;
        eprintln!("wrote {path}");
    }
    finish_hub(flags, &hub)
}

// ---------------------------------------------------------------------------
// The scan service: `serve` runs the long-lived multi-tenant daemon,
// `client` speaks its framed protocol over the Unix socket.

fn cmd_serve(flags: &HashMap<String, String>) -> Result<(), String> {
    let hub = build_hub(flags, build_analyzer(flags)?)?;
    let mut images = Vec::new();
    for dir in flag(flags, "images")?.split(',').filter(|d| !d.is_empty()) {
        images.push(load_image(dir)?);
    }
    if images.is_empty() {
        return Err("--images: no image directories given".into());
    }
    let db = corpus::build_vulndb(0, 1);
    let tenant_quota = match flags.get("tenant-quota") {
        Some(spec) => Some(
            spec.parse::<TenantQuota>()
                .map_err(|e| format!("--tenant-quota: {e}"))?,
        ),
        None => None,
    };
    let defaults = BreakerConfig::default();
    let checkpoint_every: u64 = flag_or(flags, "checkpoint-every", 0);
    let cfg = ServerConfig {
        queue_limit: flag_or(flags, "queue-limit", 64),
        workers: flag_or(flags, "workers", 4),
        retry_after_ms: flag_or(flags, "retry-after-ms", 25),
        io_timeout_ms: flag_or(flags, "io-timeout-ms", 30_000),
        tenant_quota,
        breaker: BreakerConfig {
            threshold: flag_or(flags, "breaker-threshold", defaults.threshold),
            cooldown_ms: flag_or(flags, "breaker-cooldown-ms", defaults.cooldown_ms),
        },
        checkpoint_every: (checkpoint_every > 0).then_some(checkpoint_every),
        fault_vm_tenants: flags
            .get("fault-vm-tenants")
            .map(|list| list.split(',').filter(|t| !t.is_empty()).map(String::from).collect())
            .unwrap_or_default(),
        ..ServerConfig::new(flag(flags, "socket")?)
    };
    eprintln!(
        "serving {} image(s) on {} ({} workers, queue limit {})",
        images.len(),
        cfg.socket.display(),
        cfg.workers,
        cfg.queue_limit
    );
    let server = ScanServer::start(cfg, hub, images, db)
        .map_err(|e| format!("bind socket: {e}"))?;
    eprintln!("ready — stop with `patchecko client --socket <PATH> --drain`");
    server.join();
    eprintln!("daemon drained and exited");
    Ok(())
}

fn parse_index_list(list: &str) -> Result<Vec<usize>, String> {
    list.split(',')
        .filter(|s| !s.is_empty())
        .map(|s| s.parse().map_err(|_| format!("not an image index: {s}")))
        .collect()
}

fn cmd_client(flags: &HashMap<String, String>) -> Result<(), String> {
    let socket = flag(flags, "socket")?;
    let tenant = flags.get("tenant").map(String::as_str).unwrap_or("");
    let mut client = ScanClient::connect(socket, tenant)
        .map_err(|e| format!("connect {socket}: {e}"))?;
    if let Some(ms) = flags.get("deadline-ms") {
        let ms: u64 =
            ms.parse().map_err(|_| format!("--deadline-ms: not a millisecond count: {ms}"))?;
        client.set_deadline_ms(Some(ms));
    }
    if flags.contains_key("stats") {
        let stats = client.stats().map_err(|e| e.to_string())?;
        println!("{}", serde_json::to_string_pretty(&stats).map_err(|e| e.to_string())?);
    } else if flags.contains_key("drain") {
        let drained = client.drain().map_err(|e| e.to_string())?;
        eprintln!("daemon drained (caches persisted: {})", drained.persisted);
    } else if let Some(list) = flags.get("batch-audit") {
        let reports = client
            .batch_audit(&parse_index_list(list)?)
            .map_err(|e| e.to_string())?;
        println!("{}", serde_json::to_string_pretty(&reports).map_err(|e| e.to_string())?);
    } else if let Some(index) = flags.get("audit") {
        let index = index.parse().map_err(|_| format!("--audit: not an image index: {index}"))?;
        let report = client.audit(index).map_err(|e| e.to_string())?;
        println!("{}", serde_json::to_string_pretty(&report).map_err(|e| e.to_string())?);
    } else if let Some(index) = flags.get("scan") {
        let index = index.parse().map_err(|_| format!("--scan: not an image index: {index}"))?;
        let cve = flag(flags, "cve")?;
        let basis = match flags.get("basis").map(String::as_str) {
            None | Some("vulnerable") => Basis::Vulnerable,
            Some("patched") => Basis::Patched,
            Some(other) => return Err(format!("--basis: `{other}` (vulnerable|patched)")),
        };
        let summary = client.scan(index, cve, basis).map_err(|e| e.to_string())?;
        println!("{}", serde_json::to_string_pretty(&summary).map_err(|e| e.to_string())?);
    } else {
        return Err(
            "client: pass one of --stats | --drain | --audit IDX | --batch-audit IDX[,IDX...] | \
             --scan IDX --cve ID [--basis vulnerable|patched]"
                .into(),
        );
    }
    Ok(())
}
