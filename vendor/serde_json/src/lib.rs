//! Offline vendored stand-in for `serde_json`.
//!
//! Serializes the vendored `serde` value tree to JSON text and parses
//! JSON text back. Covers the workspace's surface: [`to_string`],
//! [`to_string_pretty`], [`from_str`], [`Value`] (re-exported from the
//! vendored `serde`), and a flat-object/array [`json!`] macro.

#![forbid(unsafe_code)]

use std::fmt::Write as _;

pub use serde::value::Value;

/// A JSON (de)serialization error.
#[derive(Debug, Clone)]
pub struct Error(pub String);

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

/// Lower any serializable value to a [`Value`] tree (support for
/// [`json!`]).
pub fn to_value<T: serde::Serialize + ?Sized>(value: &T) -> Value {
    value.to_value()
}

/// Serialize `value` to a compact JSON string.
///
/// # Errors
/// Infallible for tree-representable values; the `Result` mirrors the
/// real `serde_json` signature.
pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Serialize `value` to pretty-printed JSON (two-space indent).
///
/// # Errors
/// Infallible for tree-representable values; the `Result` mirrors the
/// real `serde_json` signature.
pub fn to_string_pretty<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0);
    out.push('\n');
    Ok(out)
}

/// Parse a value from JSON text.
///
/// # Errors
/// Errors on malformed JSON or a shape mismatch with `T`.
pub fn from_str<T: serde::de::DeserializeOwned>(s: &str) -> Result<T, Error> {
    let mut p = Parser { bytes: s.as_bytes(), pos: 0 };
    p.skip_ws();
    let v = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error(format!("trailing characters at byte {}", p.pos)));
    }
    T::from_value(v).map_err(|e| Error(e.to_string()))
}

/// Build a [`Value`] from JSON-ish syntax. Supports object literals with
/// string keys, array literals, `null`, and arbitrary serializable
/// expressions.
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    ([ $($elem:expr),* $(,)? ]) => {
        $crate::Value::Seq(::std::vec![ $( $crate::to_value(&$elem) ),* ])
    };
    ({ $($key:tt : $val:expr),* $(,)? }) => {
        $crate::Value::Map(::std::vec![
            $( (($key).to_string(), $crate::to_value(&$val)) ),*
        ])
    };
    ($other:expr) => { $crate::to_value(&$other) };
}

// ---------------------------------------------------------------------------
// Writer.

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(i) => {
            let _ = write!(out, "{i}");
        }
        Value::UInt(u) => {
            let _ = write!(out, "{u}");
        }
        Value::Float(f) => {
            if f.is_finite() {
                if f.fract() == 0.0 && f.abs() < 1e15 {
                    // Keep a decimal point so the value re-parses as float.
                    let _ = write!(out, "{f:.1}");
                } else {
                    let _ = write!(out, "{f}");
                }
            } else {
                // JSON has no NaN/inf; mirror serde_json's lossy `null`.
                out.push_str("null");
            }
        }
        Value::Str(s) => write_escaped(out, s),
        Value::Seq(items) => write_composite(out, indent, depth, '[', ']', items.len(), |out, i| {
            write_value(out, &items[i], indent, depth + 1);
        }),
        Value::Map(entries) => {
            write_composite(out, indent, depth, '{', '}', entries.len(), |out, i| {
                write_escaped(out, &entries[i].0);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, &entries[i].1, indent, depth + 1);
            });
        }
    }
}

fn write_composite(
    out: &mut String,
    indent: Option<usize>,
    depth: usize,
    open: char,
    close: char,
    len: usize,
    mut item: impl FnMut(&mut String, usize),
) {
    out.push(open);
    if len == 0 {
        out.push(close);
        return;
    }
    for i in 0..len {
        if i > 0 {
            out.push(',');
        }
        if let Some(w) = indent {
            out.push('\n');
            out.extend(std::iter::repeat_n(' ', w * (depth + 1)));
        }
        item(out, i);
    }
    if let Some(w) = indent {
        out.push('\n');
        out.extend(std::iter::repeat_n(' ', w * depth));
    }
    out.push(close);
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------------
// Parser.

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error(format!(
                "expected `{}` at byte {}, found {:?}",
                b as char,
                self.pos,
                self.peek().map(|c| c as char)
            )))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') if self.eat_keyword("null") => Ok(Value::Null),
            Some(b't') if self.eat_keyword("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_keyword("false") => Ok(Value::Bool(false)),
            Some(b'"') => Ok(Value::Str(self.parse_string()?)),
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Value::Seq(items));
                }
                loop {
                    items.push(self.parse_value()?);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => {
                            self.pos += 1;
                        }
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Value::Seq(items));
                        }
                        other => {
                            return Err(Error(format!(
                                "expected `,` or `]` at byte {}, found {other:?}",
                                self.pos
                            )))
                        }
                    }
                }
            }
            Some(b'{') => {
                self.pos += 1;
                let mut entries = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Value::Map(entries));
                }
                loop {
                    self.skip_ws();
                    let key = self.parse_string()?;
                    self.skip_ws();
                    self.expect(b':')?;
                    let value = self.parse_value()?;
                    entries.push((key, value));
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => {
                            self.pos += 1;
                        }
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Value::Map(entries));
                        }
                        other => {
                            return Err(Error(format!(
                                "expected `,` or `}}` at byte {}, found {other:?}",
                                self.pos
                            )))
                        }
                    }
                }
            }
            Some(b'-' | b'0'..=b'9') => self.parse_number(),
            other => Err(Error(format!("unexpected {other:?} at byte {}", self.pos))),
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let Some(b) = self.peek() else {
                return Err(Error("unterminated string".to_string()));
            };
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(esc) = self.peek() else {
                        return Err(Error("unterminated escape".to_string()));
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{08}'),
                        b'f' => out.push('\u{0c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hi = self.parse_hex4()?;
                            let code = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair.
                                if !self.eat_keyword("\\u") {
                                    return Err(Error("lone surrogate".to_string()));
                                }
                                let lo = self.parse_hex4()?;
                                0x10000 + ((hi - 0xD800) << 10) + (lo.wrapping_sub(0xDC00))
                            } else {
                                hi
                            };
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error(format!("bad codepoint {code:#x}")))?,
                            );
                        }
                        other => {
                            return Err(Error(format!("bad escape `\\{}`", other as char)));
                        }
                    }
                }
                // Multi-byte UTF-8: copy raw continuation bytes.
                b if b < 0x80 => out.push(b as char),
                b => {
                    let width = match b {
                        0xC0..=0xDF => 2,
                        0xE0..=0xEF => 3,
                        0xF0..=0xF7 => 4,
                        _ => return Err(Error("invalid UTF-8 in string".to_string())),
                    };
                    let start = self.pos - 1;
                    let end = start + width;
                    if end > self.bytes.len() {
                        return Err(Error("truncated UTF-8 in string".to_string()));
                    }
                    let s = std::str::from_utf8(&self.bytes[start..end])
                        .map_err(|_| Error("invalid UTF-8 in string".to_string()))?;
                    out.push_str(s);
                    self.pos = end;
                }
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u32, Error> {
        if self.pos + 4 > self.bytes.len() {
            return Err(Error("truncated \\u escape".to_string()));
        }
        let s = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| Error("bad \\u escape".to_string()))?;
        let v = u32::from_str_radix(s, 16).map_err(|_| Error("bad \\u escape".to_string()))?;
        self.pos += 4;
        Ok(v)
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error("bad number".to_string()))?;
        if !is_float {
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::Int(i));
            }
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::UInt(u));
            }
        }
        text.parse::<f64>()
            .map(Value::Float)
            .map_err(|_| Error(format!("bad number `{text}`")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_compact() {
        let v = json!({
            "name": "lib\"x\"",
            "count": 3u32,
            "ratio": 0.5f64,
            "flag": true,
            "missing": Value::Null,
            "items": [1i64, 2i64, 3i64],
        });
        let text = to_string(&v).unwrap();
        let back: Value = from_str(&text).unwrap();
        assert_eq!(v, back);
    }

    #[test]
    fn pretty_output_is_indented() {
        let v = json!({ "a": 1i64 });
        let text = to_string_pretty(&v).unwrap();
        assert!(text.contains("\n  \"a\": 1"));
    }

    #[test]
    fn float_precision_roundtrips() {
        for f in [1.0f64, -0.001, 1e-300, std::f64::consts::PI, 3.4e38] {
            let text = to_string(&f).unwrap();
            let back: f64 = from_str(&text).unwrap();
            assert_eq!(f, back, "{text}");
        }
    }

    #[test]
    fn parses_escapes_and_unicode() {
        let v: Value = from_str(r#"{"s": "a\nbé😀"}"#).unwrap();
        assert_eq!(v["s"].as_str(), Some("a\nbé😀"));
    }

    #[test]
    fn rejects_garbage() {
        assert!(from_str::<Value>("{").is_err());
        assert!(from_str::<Value>("[1,]").is_err());
        assert!(from_str::<Value>("1 2").is_err());
    }
}
