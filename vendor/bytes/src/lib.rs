//! Offline vendored stand-in for `bytes`.
//!
//! [`BytesMut`]/[`Bytes`] are thin wrappers over `Vec<u8>`/`Arc<[u8]>`
//! and [`Buf`]/[`BufMut`] cover the little-endian accessor subset the
//! FWB container codec uses. No split/advance-window machinery.

#![forbid(unsafe_code)]

use std::sync::Arc;

/// An immutable, cheaply clonable byte buffer.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct Bytes {
    data: Arc<[u8]>,
}

impl Bytes {
    /// An empty buffer.
    pub fn new() -> Bytes {
        Bytes::default()
    }

    /// Copy a slice into a new buffer.
    pub fn copy_from_slice(data: &[u8]) -> Bytes {
        Bytes { data: Arc::from(data) }
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }
}

impl std::ops::Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Bytes {
        Bytes { data: Arc::from(v) }
    }
}

impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Bytes {
        Bytes::copy_from_slice(v)
    }
}

/// A growable byte buffer.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct BytesMut {
    buf: Vec<u8>,
}

impl BytesMut {
    /// An empty buffer.
    pub fn new() -> BytesMut {
        BytesMut::default()
    }

    /// An empty buffer with reserved capacity.
    pub fn with_capacity(capacity: usize) -> BytesMut {
        BytesMut { buf: Vec::with_capacity(capacity) }
    }

    /// Freeze into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.buf)
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }
}

impl std::ops::Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.buf
    }
}

/// Write access to a byte sink.
pub trait BufMut {
    /// Append raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Append one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Append a little-endian `u16`.
    fn put_u16_le(&mut self, v: u16) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Append a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Append a little-endian `u64`.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Append a little-endian `i64`.
    fn put_i64_le(&mut self, v: i64) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Append a little-endian `f64`.
    fn put_f64_le(&mut self, v: f64) {
        self.put_slice(&v.to_le_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.buf.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

/// Read access to a byte source, consuming from the front.
///
/// The `get_*` accessors panic when the buffer is too short, matching the
/// real crate; callers bounds-check with [`Buf::remaining`] first.
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;

    /// Skip `n` bytes.
    fn advance(&mut self, n: usize);

    /// Borrow the readable bytes.
    fn chunk(&self) -> &[u8];

    /// Read one byte.
    fn get_u8(&mut self) -> u8 {
        let v = self.chunk()[0];
        self.advance(1);
        v
    }

    /// Read a little-endian `u16`.
    fn get_u16_le(&mut self) -> u16 {
        let v = u16::from_le_bytes(self.chunk()[..2].try_into().expect("2 bytes"));
        self.advance(2);
        v
    }

    /// Read a little-endian `u32`.
    fn get_u32_le(&mut self) -> u32 {
        let v = u32::from_le_bytes(self.chunk()[..4].try_into().expect("4 bytes"));
        self.advance(4);
        v
    }

    /// Read a little-endian `u64`.
    fn get_u64_le(&mut self) -> u64 {
        let v = u64::from_le_bytes(self.chunk()[..8].try_into().expect("8 bytes"));
        self.advance(8);
        v
    }

    /// Read a little-endian `i64`.
    fn get_i64_le(&mut self) -> i64 {
        let v = i64::from_le_bytes(self.chunk()[..8].try_into().expect("8 bytes"));
        self.advance(8);
        v
    }

    /// Read a little-endian `f64`.
    fn get_f64_le(&mut self) -> f64 {
        let v = f64::from_le_bytes(self.chunk()[..8].try_into().expect("8 bytes"));
        self.advance(8);
        v
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn advance(&mut self, n: usize) {
        *self = &self[n..];
    }

    fn chunk(&self) -> &[u8] {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::{Buf, BufMut, Bytes, BytesMut};

    #[test]
    fn write_then_read_back() {
        let mut b = BytesMut::new();
        b.put_slice(b"hdr");
        b.put_u8(7);
        b.put_u32_le(0xDEAD_BEEF);
        b.put_i64_le(-42);
        b.put_f64_le(1.5);
        let frozen: Bytes = b.freeze();

        let mut r: &[u8] = &frozen;
        assert_eq!(r.remaining(), 3 + 1 + 4 + 8 + 8);
        let mut hdr = [0u8; 3];
        hdr.copy_from_slice(&r.chunk()[..3]);
        r.advance(3);
        assert_eq!(&hdr, b"hdr");
        assert_eq!(r.get_u8(), 7);
        assert_eq!(r.get_u32_le(), 0xDEAD_BEEF);
        assert_eq!(r.get_i64_le(), -42);
        assert_eq!(r.get_f64_le(), 1.5);
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn bytes_clone_is_cheap_and_equal() {
        let a = Bytes::from(vec![1u8, 2, 3]);
        let b = a.clone();
        assert_eq!(a, b);
        assert_eq!(&a[..], &[1, 2, 3]);
        assert_eq!(a.to_vec(), vec![1, 2, 3]);
    }
}
