//! Offline vendored stand-in for `proptest`.
//!
//! Implements the strategy/`proptest!` surface this workspace uses as a
//! deterministic random tester: every `#[test]` inside [`proptest!`] runs
//! `cases` iterations with inputs drawn from its strategies using an RNG
//! seeded from the test name, so failures reproduce exactly. There is no
//! shrinking — a failing case panics with the ordinary assert message.

#![forbid(unsafe_code)]

pub mod test_runner {
    //! Test configuration and the per-test runner.

    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    /// Mirror of `proptest::test_runner::Config` (the fields used here).
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of random cases to run per test.
        pub cases: u32,
        /// Accepted for compatibility; shrinking is not implemented.
        pub max_shrink_iters: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256, max_shrink_iters: 0 }
        }
    }

    /// The RNG handed to strategies.
    pub struct TestRng(pub(crate) SmallRng);

    impl TestRng {
        /// Deterministic generator for `(test name, case index)`.
        pub fn for_case(test_name: &str, case: u32) -> TestRng {
            // FNV-1a over the test name, mixed with the case index.
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in test_name.bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
            TestRng(SmallRng::seed_from_u64(h ^ (u64::from(case) << 32 | u64::from(case))))
        }
    }

    impl rand::RngCore for TestRng {
        fn next_u64(&mut self) -> u64 {
            self.0.next_u64()
        }
    }
}

pub mod strategy {
    //! Strategies: deterministic value generators.

    use crate::test_runner::TestRng;
    use rand::Rng;

    /// A generator of values of type `Value`.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Draw one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Map generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }
    }

    /// A boxed, type-erased strategy (what [`prop_oneof!`] stores).
    pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

    /// Box a strategy ([`prop_oneof!`] support).
    pub fn boxed<S: Strategy + 'static>(s: S) -> BoxedStrategy<S::Value> {
        Box::new(s)
    }

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            (**self).generate(rng)
        }
    }

    /// Always generates a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Strategy returned by [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Uniform choice between boxed alternatives ([`prop_oneof!`]).
    pub struct Union<T> {
        arms: Vec<BoxedStrategy<T>>,
    }

    impl<T> Union<T> {
        /// Build from the macro's boxed arms.
        ///
        /// # Panics
        /// Panics if `arms` is empty.
        pub fn new(arms: Vec<BoxedStrategy<T>>) -> Union<T> {
            assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
            Union { arms }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let i = rng.gen_range(0..self.arms.len());
            self.arms[i].generate(rng)
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }
    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

    macro_rules! impl_range_inclusive_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }
    impl_range_inclusive_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! impl_tuple_strategy {
        ($(($($name:ident : $idx:tt),+))*) => {$(
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )*};
    }
    impl_tuple_strategy! {
        (A: 0)
        (A: 0, B: 1)
        (A: 0, B: 1, C: 2)
        (A: 0, B: 1, C: 2, D: 3)
        (A: 0, B: 1, C: 2, D: 3, E: 4)
        (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5)
    }
}

pub mod arbitrary {
    //! `any::<T>()` and the [`Arbitrary`] trait behind it.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::{Rng, RngCore};
    use std::marker::PhantomData;

    /// Types with a canonical whole-domain strategy.
    pub trait Arbitrary: Sized {
        /// Draw one value from the type's full domain.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> Self {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.next_u64() & 1 == 1
        }
    }

    // Finite floats only (codec roundtrip tests compare with `==`, which
    // NaN would break; real proptest's default float domain likewise
    // excludes NaN).
    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut TestRng) -> Self {
            let magnitude = 10f64.powf(rng.gen_range(-12.0..12.0f64));
            let sign = if rng.next_u64() & 1 == 1 { -1.0 } else { 1.0 };
            sign * magnitude * rng.gen_range(0.0..1.0f64)
        }
    }

    impl Arbitrary for f32 {
        fn arbitrary(rng: &mut TestRng) -> Self {
            f64::arbitrary(rng) as f32
        }
    }

    impl Arbitrary for char {
        fn arbitrary(rng: &mut TestRng) -> Self {
            // ASCII printable keeps generated identifiers/strings tame.
            (rng.gen_range(0x20u32..0x7f) as u8) as char
        }
    }

    /// The strategy returned by [`any`].
    pub struct Any<T>(PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// The canonical strategy for `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }
}

pub mod collection {
    //! Collection strategies.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::Rng;

    /// Length specification for [`vec`]: an exact `usize`, `a..b`, or
    /// `a..=b`.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        /// Exclusive.
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> SizeRange {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> SizeRange {
            SizeRange { lo: r.start, hi: r.end }
        }
    }

    impl From<core::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: core::ops::RangeInclusive<usize>) -> SizeRange {
            SizeRange { lo: *r.start(), hi: *r.end() + 1 }
        }
    }

    /// Strategy for `Vec<S::Value>` with length drawn from `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// A vector whose elements come from `element` and whose length comes
    /// from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = if self.size.lo + 1 >= self.size.hi {
                self.size.lo
            } else {
                rng.gen_range(self.size.lo..self.size.hi)
            };
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod sample {
    //! Sampling helpers.

    use crate::arbitrary::Arbitrary;
    use crate::test_runner::TestRng;
    use rand::RngCore;

    /// A position into a not-yet-known-length collection; resolved with
    /// [`Index::index`].
    #[derive(Debug, Clone, Copy)]
    pub struct Index(u64);

    impl Index {
        /// Map onto `0..size`.
        ///
        /// # Panics
        /// Panics if `size` is zero.
        pub fn index(&self, size: usize) -> usize {
            assert!(size > 0, "cannot index an empty collection");
            (self.0 % size as u64) as usize
        }
    }

    impl Arbitrary for Index {
        fn arbitrary(rng: &mut TestRng) -> Self {
            Index(rng.next_u64())
        }
    }
}

pub mod prelude {
    //! The glob-import surface, mirroring `proptest::prelude`.

    pub use crate as prop;
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Define property tests: each `#[test]` fn runs `cases` times with
/// fresh strategy-drawn inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($cfg:expr) ) => {};
    ( ($cfg:expr)
      $(#[$meta:meta])*
      fn $name:ident ( $($arg:ident in $strat:expr),* $(,)? ) $body:block
      $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $cfg;
            for case in 0..config.cases {
                let mut rng =
                    $crate::test_runner::TestRng::for_case(stringify!($name), case);
                $(
                    let $arg =
                        $crate::strategy::Strategy::generate(&($strat), &mut rng);
                )*
                $body
            }
        }
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
}

/// Uniform choice between strategies with a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![ $( $crate::strategy::boxed($strat) ),+ ])
    };
}

/// Assert within a property (no shrinking: panics like `assert!`).
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { ::std::assert!($($t)*) };
}

/// Equality assert within a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { ::std::assert_eq!($($t)*) };
}

/// Inequality assert within a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($t:tt)*) => { ::std::assert_ne!($($t)*) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn small_even() -> impl Strategy<Value = u32> {
        (0u32..50).prop_map(|x| x * 2)
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 32, ..ProptestConfig::default() })]

        #[test]
        fn ranges_stay_in_bounds(x in 3u64..17, y in -5i32..=5) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((-5..=5).contains(&y));
        }

        #[test]
        fn mapped_strategy_applies(x in small_even()) {
            prop_assert_eq!(x % 2, 0);
        }

        #[test]
        fn oneof_picks_only_arms(v in prop_oneof![Just(1u8), Just(2), Just(3)]) {
            prop_assert!((1..=3).contains(&v));
        }

        #[test]
        fn vec_respects_size(
            exact in crate::collection::vec(any::<u8>(), 7),
            ranged in crate::collection::vec(0i64..10, 2..5),
        ) {
            prop_assert_eq!(exact.len(), 7);
            prop_assert!(ranged.len() >= 2 && ranged.len() < 5);
            prop_assert_ne!(ranged.len(), 5);
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let mut a = crate::test_runner::TestRng::for_case("t", 0);
        let mut b = crate::test_runner::TestRng::for_case("t", 0);
        let s = 0u64..1000;
        for _ in 0..32 {
            assert_eq!(s.generate(&mut a), s.generate(&mut b));
        }
    }
}
