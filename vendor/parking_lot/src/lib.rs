//! Offline vendored stand-in for `parking_lot`.
//!
//! Wraps `std::sync` primitives behind parking_lot's non-poisoning API:
//! `lock()`/`read()`/`write()` return guards directly instead of
//! `Result`s. A poisoned std lock (a thread panicked while holding it)
//! panics here too, which matches how this workspace treats worker
//! panics: fatal.

#![forbid(unsafe_code)]

/// A mutex whose `lock` never returns a poison error.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

/// RAII guard for [`Mutex`].
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Wrap a value.
    pub const fn new(value: T) -> Mutex<T> {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquire the lock only if it is free right now.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// A reader-writer lock whose accessors never return poison errors.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

/// RAII shared-read guard for [`RwLock`].
pub type RwLockReadGuard<'a, T> = std::sync::RwLockReadGuard<'a, T>;
/// RAII exclusive-write guard for [`RwLock`].
pub type RwLockWriteGuard<'a, T> = std::sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Wrap a value.
    pub const fn new(value: T) -> RwLock<T> {
        RwLock(std::sync::RwLock::new(value))
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire shared read access, blocking.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquire exclusive write access, blocking.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::{Mutex, RwLock};

    #[test]
    fn mutex_round_trip() {
        let m = Mutex::new(5);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 6);
        assert_eq!(m.into_inner(), 6);
    }

    #[test]
    fn try_lock_contended() {
        let m = Mutex::new(());
        let g = m.lock();
        assert!(m.try_lock().is_none());
        drop(g);
        assert!(m.try_lock().is_some());
    }

    #[test]
    fn rwlock_readers_coexist() {
        let l = RwLock::new(7);
        let a = l.read();
        let b = l.read();
        assert_eq!(*a + *b, 14);
        drop((a, b));
        *l.write() = 9;
        assert_eq!(*l.read(), 9);
    }
}
