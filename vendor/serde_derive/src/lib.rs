//! Offline vendored stand-in for `serde_derive`.
//!
//! Implements `#[derive(Serialize)]` and `#[derive(Deserialize)]` against
//! the vendored value-tree `serde` without `syn`/`quote`: the item is
//! parsed directly from the `proc_macro` token stream (structs with named,
//! tuple, or no fields; enums with unit, tuple, and struct variants;
//! lifetime-only generics; `#[serde(default)]` and
//! `#[serde(default = "path")]` field attributes), and the impl is emitted
//! as a source string parsed back into a `TokenStream`.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// How a missing field is filled during deserialization.
#[derive(Clone, Debug, PartialEq)]
enum FieldDefault {
    /// Field is required.
    None,
    /// `#[serde(default)]` — `Default::default()`.
    Trait,
    /// `#[serde(default = "path")]` — call `path()`.
    Path(String),
}

#[derive(Debug)]
struct Field {
    name: String,
    default: FieldDefault,
}

#[derive(Debug)]
enum VariantKind {
    Unit,
    Tuple(usize),
    Struct(Vec<Field>),
}

#[derive(Debug)]
struct Variant {
    name: String,
    kind: VariantKind,
}

#[derive(Debug)]
enum Body {
    NamedStruct(Vec<Field>),
    TupleStruct(usize),
    UnitStruct,
    Enum(Vec<Variant>),
}

#[derive(Debug)]
struct Item {
    name: String,
    /// Lifetime parameters, e.g. `["'a"]`. Type parameters are rejected.
    lifetimes: Vec<String>,
    body: Body,
}

/// Derive `serde::Serialize` by implementing `to_value`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let generics = if item.lifetimes.is_empty() {
        (String::new(), String::new())
    } else {
        let params = item.lifetimes.join(", ");
        (format!("<{params}>"), format!("<{params}>"))
    };
    let body = match &item.body {
        Body::NamedStruct(fields) => {
            let entries: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!(
                        "(\"{0}\".to_string(), ::serde::Serialize::to_value(&self.{0}))",
                        f.name
                    )
                })
                .collect();
            format!("::serde::value::Value::Map(::std::vec![{}])", entries.join(", "))
        }
        Body::TupleStruct(1) => "::serde::Serialize::to_value(&self.0)".to_string(),
        Body::TupleStruct(n) => {
            let entries: Vec<String> =
                (0..*n).map(|i| format!("::serde::Serialize::to_value(&self.{i})")).collect();
            format!("::serde::value::Value::Seq(::std::vec![{}])", entries.join(", "))
        }
        Body::UnitStruct => "::serde::value::Value::Null".to_string(),
        Body::Enum(variants) => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| {
                    let vn = &v.name;
                    let ty = &item.name;
                    match &v.kind {
                        VariantKind::Unit => format!(
                            "{ty}::{vn} => ::serde::value::Value::Str(\"{vn}\".to_string())"
                        ),
                        VariantKind::Tuple(1) => format!(
                            "{ty}::{vn}(f0) => ::serde::value::Value::Map(::std::vec![\
                             (\"{vn}\".to_string(), ::serde::Serialize::to_value(f0))])"
                        ),
                        VariantKind::Tuple(n) => {
                            let binds: Vec<String> = (0..*n).map(|i| format!("f{i}")).collect();
                            let vals: Vec<String> = (0..*n)
                                .map(|i| format!("::serde::Serialize::to_value(f{i})"))
                                .collect();
                            format!(
                                "{ty}::{vn}({binds}) => ::serde::value::Value::Map(::std::vec![\
                                 (\"{vn}\".to_string(), ::serde::value::Value::Seq(\
                                 ::std::vec![{vals}])) ])",
                                binds = binds.join(", "),
                                vals = vals.join(", ")
                            )
                        }
                        VariantKind::Struct(fields) => {
                            let binds: Vec<String> =
                                fields.iter().map(|f| f.name.clone()).collect();
                            let vals: Vec<String> = fields
                                .iter()
                                .map(|f| {
                                    format!(
                                        "(\"{0}\".to_string(), \
                                         ::serde::Serialize::to_value({0}))",
                                        f.name
                                    )
                                })
                                .collect();
                            format!(
                                "{ty}::{vn} {{ {binds} }} => ::serde::value::Value::Map(\
                                 ::std::vec![(\"{vn}\".to_string(), \
                                 ::serde::value::Value::Map(::std::vec![{vals}])) ])",
                                binds = binds.join(", "),
                                vals = vals.join(", ")
                            )
                        }
                    }
                })
                .collect();
            format!("match self {{ {} }}", arms.join(", "))
        }
    };
    let code = format!(
        "impl{imp} ::serde::Serialize for {name}{args} {{\n\
         fn to_value(&self) -> ::serde::value::Value {{ {body} }}\n\
         }}",
        imp = generics.0,
        args = generics.1,
        name = item.name,
    );
    code.parse().expect("serde_derive: generated Serialize impl must parse")
}

/// Derive `serde::Deserialize` by implementing `from_value`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    assert!(
        item.lifetimes.is_empty(),
        "serde_derive stub: cannot derive Deserialize for a type with lifetime parameters"
    );
    let name = &item.name;
    let body = match &item.body {
        Body::NamedStruct(fields) => {
            let inits = named_field_inits(fields);
            format!(
                "let mut m = ::serde::de::into_map(v)?;\n\
                 let _ = &mut m;\n\
                 ::std::result::Result::Ok({name} {{ {inits} }})"
            )
        }
        Body::TupleStruct(1) => {
            format!("::std::result::Result::Ok({name}(::serde::de::from_value_owned(v)?))")
        }
        Body::TupleStruct(n) => {
            let elems: Vec<String> =
                (0..*n).map(|i| format!("::serde::de::element(&mut seq, {i})?")).collect();
            format!(
                "let mut seq = ::serde::de::into_seq(v)?;\n\
                 ::std::result::Result::Ok({name}({}))",
                elems.join(", ")
            )
        }
        Body::UnitStruct => format!("::std::result::Result::Ok({name})"),
        Body::Enum(variants) => {
            let unit_arms: Vec<String> = variants
                .iter()
                .filter(|v| matches!(v.kind, VariantKind::Unit))
                .map(|v| format!("\"{0}\" => ::std::result::Result::Ok({name}::{0})", v.name))
                .collect();
            let data_arms: Vec<String> = variants
                .iter()
                .filter_map(|v| {
                    let vn = &v.name;
                    match &v.kind {
                        VariantKind::Unit => None,
                        VariantKind::Tuple(1) => Some(format!(
                            "\"{vn}\" => ::std::result::Result::Ok({name}::{vn}(\
                             ::serde::de::from_value_owned(inner)?))"
                        )),
                        VariantKind::Tuple(n) => {
                            let elems: Vec<String> = (0..*n)
                                .map(|i| format!("::serde::de::element(&mut seq, {i})?"))
                                .collect();
                            Some(format!(
                                "\"{vn}\" => {{ let mut seq = ::serde::de::into_seq(inner)?; \
                                 ::std::result::Result::Ok({name}::{vn}({})) }}",
                                elems.join(", ")
                            ))
                        }
                        VariantKind::Struct(fields) => {
                            let inits = named_field_inits(fields);
                            Some(format!(
                                "\"{vn}\" => {{ let mut m = ::serde::de::into_map(inner)?; \
                                 let _ = &mut m; \
                                 ::std::result::Result::Ok({name}::{vn} {{ {inits} }}) }}"
                            ))
                        }
                    }
                })
                .collect();
            format!(
                "match v {{\n\
                 ::serde::value::Value::Str(s) => match s.as_str() {{\n\
                    {unit_arms}\n\
                    other => ::std::result::Result::Err(::serde::de::DeError(\
                        ::std::format!(\"unknown variant `{{other}}` of {name}\"))),\n\
                 }},\n\
                 ::serde::value::Value::Map(mut entries) if entries.len() == 1 => {{\n\
                    let (tag, inner) = entries.pop().unwrap();\n\
                    let _ = &inner;\n\
                    match tag.as_str() {{\n\
                        {data_arms}\n\
                        other => ::std::result::Result::Err(::serde::de::DeError(\
                            ::std::format!(\"unknown variant `{{other}}` of {name}\"))),\n\
                    }}\n\
                 }},\n\
                 other => ::std::result::Result::Err(::serde::de::DeError(\
                     ::std::format!(\"expected {name} variant, found {{}}\", other.kind()))),\n\
                 }}",
                unit_arms = if unit_arms.is_empty() {
                    String::new()
                } else {
                    format!("{},", unit_arms.join(",\n"))
                },
                data_arms = if data_arms.is_empty() {
                    String::new()
                } else {
                    format!("{},", data_arms.join(",\n"))
                },
            )
        }
    };
    let code = format!(
        "impl<'de> ::serde::Deserialize<'de> for {name} {{\n\
         fn from_value(v: ::serde::value::Value) \
         -> ::std::result::Result<Self, ::serde::de::DeError> {{\n{body}\n}}\n}}"
    );
    code.parse().expect("serde_derive: generated Deserialize impl must parse")
}

fn named_field_inits(fields: &[Field]) -> String {
    let inits: Vec<String> = fields
        .iter()
        .map(|f| match &f.default {
            FieldDefault::None => {
                format!("{0}: ::serde::de::field(&mut m, \"{0}\")?", f.name)
            }
            FieldDefault::Trait => format!(
                "{0}: match ::serde::de::opt_field(&mut m, \"{0}\")? {{ \
                 ::std::option::Option::Some(x) => x, \
                 ::std::option::Option::None => ::std::default::Default::default() }}",
                f.name
            ),
            FieldDefault::Path(path) => format!(
                "{0}: match ::serde::de::opt_field(&mut m, \"{0}\")? {{ \
                 ::std::option::Option::Some(x) => x, \
                 ::std::option::Option::None => {path}() }}",
                f.name
            ),
        })
        .collect();
    inits.join(", ")
}

// ---------------------------------------------------------------------------
// Token-stream parsing.

fn parse_item(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;

    // Skip outer attributes and visibility.
    skip_attrs(&tokens, &mut i);
    skip_visibility(&tokens, &mut i);

    let kind = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("serde_derive stub: expected `struct` or `enum`, found `{other}`"),
    };
    i += 1;
    let name = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("serde_derive stub: expected item name, found `{other}`"),
    };
    i += 1;

    let lifetimes = parse_generics(&tokens, &mut i);

    match kind.as_str() {
        "struct" => {
            // Named `{...}`, tuple `(...);`, or unit `;`.
            match tokens.get(i) {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    // Skip a `where` clause if present (none in this workspace,
                    // but a brace group directly follows either way).
                    Item { name, lifetimes, body: Body::NamedStruct(parse_named_fields(g.stream())) }
                }
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                    let n = count_tuple_fields(g.stream());
                    Item { name, lifetimes, body: Body::TupleStruct(n) }
                }
                Some(TokenTree::Punct(p)) if p.as_char() == ';' => {
                    Item { name, lifetimes, body: Body::UnitStruct }
                }
                other => panic!("serde_derive stub: unsupported struct body: {other:?}"),
            }
        }
        "enum" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Item { name, lifetimes, body: Body::Enum(parse_variants(g.stream())) }
            }
            other => panic!("serde_derive stub: unsupported enum body: {other:?}"),
        },
        other => panic!("serde_derive stub: cannot derive for `{other}` items"),
    }
}

/// Skip `#[...]` attribute groups, returning the `serde(...)` attr streams.
fn collect_attrs(tokens: &[TokenTree], i: &mut usize) -> Vec<TokenStream> {
    let mut serde_attrs = Vec::new();
    while let Some(TokenTree::Punct(p)) = tokens.get(*i) {
        if p.as_char() != '#' {
            break;
        }
        if let Some(TokenTree::Group(g)) = tokens.get(*i + 1) {
            let inner: Vec<TokenTree> = g.stream().into_iter().collect();
            if let (Some(TokenTree::Ident(id)), Some(TokenTree::Group(args))) =
                (inner.first(), inner.get(1))
            {
                if id.to_string() == "serde" {
                    serde_attrs.push(args.stream());
                }
            }
            *i += 2;
        } else {
            break;
        }
    }
    serde_attrs
}

fn skip_attrs(tokens: &[TokenTree], i: &mut usize) {
    let _ = collect_attrs(tokens, i);
}

fn skip_visibility(tokens: &[TokenTree], i: &mut usize) {
    if let Some(TokenTree::Ident(id)) = tokens.get(*i) {
        if id.to_string() == "pub" {
            *i += 1;
            if let Some(TokenTree::Group(g)) = tokens.get(*i) {
                if g.delimiter() == Delimiter::Parenthesis {
                    *i += 1;
                }
            }
        }
    }
}

/// Parse `<...>` generics after the item name; only lifetimes are
/// supported.
fn parse_generics(tokens: &[TokenTree], i: &mut usize) -> Vec<String> {
    let mut lifetimes = Vec::new();
    let Some(TokenTree::Punct(p)) = tokens.get(*i) else { return lifetimes };
    if p.as_char() != '<' {
        return lifetimes;
    }
    *i += 1;
    let mut depth = 1usize;
    while depth > 0 {
        match tokens.get(*i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '<' => depth += 1,
            Some(TokenTree::Punct(p)) if p.as_char() == '>' => depth -= 1,
            Some(TokenTree::Punct(p)) if p.as_char() == '\'' && depth == 1 => {
                if let Some(TokenTree::Ident(id)) = tokens.get(*i + 1) {
                    lifetimes.push(format!("'{id}"));
                    *i += 1;
                }
            }
            Some(TokenTree::Ident(id)) if depth == 1 => {
                panic!(
                    "serde_derive stub: type parameter `{id}` unsupported \
                     (only lifetime generics are handled)"
                );
            }
            Some(_) => {}
            None => panic!("serde_derive stub: unterminated generics"),
        }
        *i += 1;
    }
    lifetimes
}

/// Parse named fields: `attrs vis name : Type ,` repeated.
fn parse_named_fields(stream: TokenStream) -> Vec<Field> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        let serde_attrs = collect_attrs(&tokens, &mut i);
        skip_visibility(&tokens, &mut i);
        let Some(TokenTree::Ident(id)) = tokens.get(i) else {
            panic!("serde_derive stub: expected field name, found {:?}", tokens.get(i));
        };
        let name = id.to_string();
        i += 1;
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
            other => panic!("serde_derive stub: expected `:` after field `{name}`, found {other:?}"),
        }
        skip_type(&tokens, &mut i);
        fields.push(Field { name, default: parse_field_default(&serde_attrs) });
        // Skip the trailing comma, if any.
        if let Some(TokenTree::Punct(p)) = tokens.get(i) {
            if p.as_char() == ',' {
                i += 1;
            }
        }
    }
    fields
}

/// Advance past one type, stopping at a top-level `,` (angle-depth aware).
fn skip_type(tokens: &[TokenTree], i: &mut usize) {
    let mut angle = 0usize;
    while let Some(t) = tokens.get(*i) {
        match t {
            TokenTree::Punct(p) if p.as_char() == '<' => angle += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle = angle.saturating_sub(1),
            TokenTree::Punct(p) if p.as_char() == ',' && angle == 0 => return,
            _ => {}
        }
        *i += 1;
    }
}

/// Count tuple-struct fields: top-level comma-separated segments.
fn count_tuple_fields(stream: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    if tokens.is_empty() {
        return 0;
    }
    let mut count = 1;
    let mut angle = 0usize;
    let mut saw_tokens_since_comma = true;
    for t in &tokens {
        match t {
            TokenTree::Punct(p) if p.as_char() == '<' => angle += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle = angle.saturating_sub(1),
            TokenTree::Punct(p) if p.as_char() == ',' && angle == 0 => {
                count += 1;
                saw_tokens_since_comma = false;
            }
            _ => saw_tokens_since_comma = true,
        }
    }
    if !saw_tokens_since_comma {
        count -= 1; // trailing comma
    }
    count
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        skip_attrs(&tokens, &mut i);
        let Some(TokenTree::Ident(id)) = tokens.get(i) else {
            panic!("serde_derive stub: expected variant name, found {:?}", tokens.get(i));
        };
        let name = id.to_string();
        i += 1;
        let kind = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                i += 1;
                VariantKind::Tuple(count_tuple_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                i += 1;
                VariantKind::Struct(parse_named_fields(g.stream()))
            }
            _ => VariantKind::Unit,
        };
        // Skip an explicit discriminant (`= expr`) and the trailing comma.
        if let Some(TokenTree::Punct(p)) = tokens.get(i) {
            if p.as_char() == '=' {
                i += 1;
                while let Some(t) = tokens.get(i) {
                    if matches!(t, TokenTree::Punct(p) if p.as_char() == ',') {
                        break;
                    }
                    i += 1;
                }
            }
        }
        if let Some(TokenTree::Punct(p)) = tokens.get(i) {
            if p.as_char() == ',' {
                i += 1;
            }
        }
        variants.push(Variant { name, kind });
    }
    variants
}

/// Interpret `#[serde(...)]` field attributes: `default` and
/// `default = "path"`.
fn parse_field_default(attrs: &[TokenStream]) -> FieldDefault {
    for attr in attrs {
        let tokens: Vec<TokenTree> = attr.clone().into_iter().collect();
        let mut i = 0;
        while i < tokens.len() {
            if let TokenTree::Ident(id) = &tokens[i] {
                if id.to_string() == "default" {
                    if let Some(TokenTree::Punct(p)) = tokens.get(i + 1) {
                        if p.as_char() == '=' {
                            if let Some(TokenTree::Literal(lit)) = tokens.get(i + 2) {
                                let raw = lit.to_string();
                                let path = raw.trim_matches('"').to_string();
                                return FieldDefault::Path(path);
                            }
                        }
                    }
                    return FieldDefault::Trait;
                }
            }
            i += 1;
        }
    }
    FieldDefault::None
}
