//! Offline vendored stand-in for `serde`.
//!
//! The build environment cannot reach crates.io, so the workspace vendors
//! the serde API subset it uses. The design is value-tree based: every
//! serializable type lowers to a [`value::Value`] (the JSON data model),
//! and deserialization lifts back out of one. The public trait signatures
//! mirror real serde closely enough that the workspace's handwritten
//! `impl Serialize`/`impl Deserialize` blocks (which go through
//! `S: Serializer` / `D: Deserializer<'de>` generics) compile unchanged,
//! while `#[derive(Serialize, Deserialize)]` is provided by the sibling
//! `serde_derive` stub.
//!
//! The mutual-default trick: [`Serialize`] has two methods, `to_value`
//! (implemented by derives) and `serialize` (implemented by handwritten
//! impls), each defaulting through the other, so either style works.

#![forbid(unsafe_code)]

pub use serde_derive::{Deserialize, Serialize};

pub mod value {
    //! The self-describing value tree (JSON data model).

    /// A dynamically-typed serialized value.
    #[derive(Debug, Clone, PartialEq)]
    pub enum Value {
        /// JSON `null`.
        Null,
        /// Boolean.
        Bool(bool),
        /// Signed integer.
        Int(i64),
        /// Unsigned integer (only used when the value exceeds `i64`).
        UInt(u64),
        /// Floating point.
        Float(f64),
        /// String.
        Str(String),
        /// Sequence.
        Seq(Vec<Value>),
        /// Ordered key/value map (JSON object).
        Map(Vec<(String, Value)>),
    }

    impl Value {
        /// Human-readable name of the value's kind (for error messages).
        pub fn kind(&self) -> &'static str {
            match self {
                Value::Null => "null",
                Value::Bool(_) => "bool",
                Value::Int(_) | Value::UInt(_) => "integer",
                Value::Float(_) => "float",
                Value::Str(_) => "string",
                Value::Seq(_) => "sequence",
                Value::Map(_) => "map",
            }
        }

        /// The value as `&str`, if it is a string.
        pub fn as_str(&self) -> Option<&str> {
            match self {
                Value::Str(s) => Some(s.as_str()),
                _ => None,
            }
        }

        /// The value as `f64`, if numeric.
        pub fn as_f64(&self) -> Option<f64> {
            match self {
                Value::Int(i) => Some(*i as f64),
                Value::UInt(u) => Some(*u as f64),
                Value::Float(f) => Some(*f),
                _ => None,
            }
        }

        /// The value as `u64`, if a non-negative integer.
        pub fn as_u64(&self) -> Option<u64> {
            match self {
                Value::Int(i) if *i >= 0 => Some(*i as u64),
                Value::UInt(u) => Some(*u),
                _ => None,
            }
        }

        /// The value as `bool`, if boolean.
        pub fn as_bool(&self) -> Option<bool> {
            match self {
                Value::Bool(b) => Some(*b),
                _ => None,
            }
        }
    }

    static NULL: Value = Value::Null;

    impl std::ops::Index<&str> for Value {
        type Output = Value;
        fn index(&self, key: &str) -> &Value {
            match self {
                Value::Map(entries) => entries
                    .iter()
                    .find(|(k, _)| k == key)
                    .map(|(_, v)| v)
                    .unwrap_or(&NULL),
                _ => &NULL,
            }
        }
    }
}

pub mod ser {
    //! Serialization traits.

    use crate::value::Value;
    use std::fmt::Display;

    /// Serialization error constructor trait (mirrors `serde::ser::Error`).
    pub trait Error: Sized + Display {
        /// Build an error from a message.
        fn custom<T: Display>(msg: T) -> Self;
    }

    /// A string-backed serialization error.
    #[derive(Debug, Clone)]
    pub struct SerError(pub String);

    impl Display for SerError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str(&self.0)
        }
    }

    impl std::error::Error for SerError {}

    impl Error for SerError {
        fn custom<T: Display>(msg: T) -> Self {
            SerError(msg.to_string())
        }
    }

    /// A sink for one serialized value.
    pub trait Serializer: Sized {
        /// Success type.
        type Ok;
        /// Error type.
        type Error: Error;
        /// Consume a fully-built value tree.
        fn serialize_value(self, v: Value) -> Result<Self::Ok, Self::Error>;
    }

    /// The identity serializer: yields the value tree itself.
    pub struct ValueSerializer;

    impl Serializer for ValueSerializer {
        type Ok = Value;
        type Error = SerError;
        fn serialize_value(self, v: Value) -> Result<Value, SerError> {
            Ok(v)
        }
    }
}

pub mod de {
    //! Deserialization traits and derive-support helpers.

    use crate::value::Value;
    use std::fmt::Display;

    /// Deserialization error constructor trait (mirrors `serde::de::Error`).
    pub trait Error: Sized + Display {
        /// Build an error from a message.
        fn custom<T: Display>(msg: T) -> Self;

        /// A sequence had the wrong number of elements.
        fn invalid_length<E: Display + ?Sized>(len: usize, expected: &E) -> Self {
            Self::custom(format!("invalid length {len}, expected {expected}"))
        }
    }

    /// A string-backed deserialization error.
    #[derive(Debug, Clone)]
    pub struct DeError(pub String);

    impl Display for DeError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str(&self.0)
        }
    }

    impl std::error::Error for DeError {}

    impl Error for DeError {
        fn custom<T: Display>(msg: T) -> Self {
            DeError(msg.to_string())
        }
    }

    /// A source of one serialized value.
    pub trait Deserializer<'de>: Sized {
        /// Error type.
        type Error: Error;
        /// Take the underlying value tree.
        fn take_value(self) -> Result<Value, Self::Error>;
    }

    /// The identity deserializer over an owned value tree.
    pub struct ValueDeserializer(pub Value);

    impl<'de> Deserializer<'de> for ValueDeserializer {
        type Error = DeError;
        fn take_value(self) -> Result<Value, DeError> {
            Ok(self.0)
        }
    }

    /// Types deserializable from an owned value (what the helpers need).
    pub trait DeserializeOwned: for<'de> crate::Deserialize<'de> {}
    impl<T: for<'de> crate::Deserialize<'de>> DeserializeOwned for T {}

    /// Unwrap a map value (derive support).
    ///
    /// # Errors
    /// Errors if `v` is not a map.
    pub fn into_map(v: Value) -> Result<Vec<(String, Value)>, DeError> {
        match v {
            Value::Map(m) => Ok(m),
            other => Err(DeError(format!("expected map, found {}", other.kind()))),
        }
    }

    /// Unwrap a sequence value (derive support).
    ///
    /// # Errors
    /// Errors if `v` is not a sequence.
    pub fn into_seq(v: Value) -> Result<Vec<Value>, DeError> {
        match v {
            Value::Seq(s) => Ok(s),
            other => Err(DeError(format!("expected sequence, found {}", other.kind()))),
        }
    }

    /// Remove and deserialize a required struct field (derive support).
    ///
    /// # Errors
    /// Errors if the field is missing or fails to deserialize.
    pub fn field<T: DeserializeOwned>(
        map: &mut Vec<(String, Value)>,
        name: &str,
    ) -> Result<T, DeError> {
        match opt_field(map, name)? {
            Some(v) => Ok(v),
            None => Err(DeError(format!("missing field `{name}`"))),
        }
    }

    /// Remove and deserialize an optional struct field (derive support for
    /// `#[serde(default)]`).
    ///
    /// # Errors
    /// Errors if the field is present but fails to deserialize.
    pub fn opt_field<T: DeserializeOwned>(
        map: &mut Vec<(String, Value)>,
        name: &str,
    ) -> Result<Option<T>, DeError> {
        match map.iter().position(|(k, _)| k == name) {
            Some(i) => {
                let (_, v) = map.swap_remove(i);
                T::from_value(v)
                    .map(Some)
                    .map_err(|e| DeError(format!("field `{name}`: {e}")))
            }
            None => Ok(None),
        }
    }

    /// Deserialize a whole owned value (derive support for newtype
    /// structs and variants).
    ///
    /// # Errors
    /// Errors if the value does not match `T`.
    pub fn from_value_owned<T: DeserializeOwned>(v: Value) -> Result<T, DeError> {
        T::from_value(v)
    }

    /// Deserialize the `i`th element of a sequence (derive support for
    /// tuple structs/variants).
    ///
    /// # Errors
    /// Errors if the element is missing or fails to deserialize.
    pub fn element<T: DeserializeOwned>(seq: &mut [Value], i: usize) -> Result<T, DeError> {
        if i >= seq.len() {
            return Err(DeError(format!("missing tuple element {i}")));
        }
        let v = std::mem::replace(&mut seq[i], Value::Null);
        T::from_value(v).map_err(|e| DeError(format!("element {i}: {e}")))
    }
}

pub use de::{Deserializer, ValueDeserializer};
pub use ser::{Serializer, ValueSerializer};
use value::Value;

/// A serializable type. Implement **either** `to_value` (what the derive
/// macro does) **or** `serialize` (handwritten serde-style impls); each
/// defaults through the other.
pub trait Serialize {
    /// Lower `self` to a value tree.
    fn to_value(&self) -> Value {
        match self.serialize(ValueSerializer) {
            Ok(v) => v,
            Err(e) => panic!("serialization failed: {e}"),
        }
    }

    /// Serde-compatible entry point.
    ///
    /// # Errors
    /// Propagates errors from the serializer.
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_value(self.to_value())
    }
}

/// A deserializable type. Implement **either** `from_value` (what the
/// derive macro does) **or** `deserialize` (handwritten impls); each
/// defaults through the other.
pub trait Deserialize<'de>: Sized {
    /// Lift `Self` out of a value tree.
    ///
    /// # Errors
    /// Errors if the value does not match the expected shape.
    fn from_value(v: Value) -> Result<Self, de::DeError> {
        Self::deserialize(ValueDeserializer(v))
    }

    /// Serde-compatible entry point.
    ///
    /// # Errors
    /// Propagates errors from the deserializer.
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        let v = deserializer.take_value()?;
        Self::from_value(v).map_err(<D::Error as de::Error>::custom)
    }
}

// ---------------------------------------------------------------------------
// Implementations for std types.

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl<'de> Deserialize<'de> for Value {
    fn from_value(v: Value) -> Result<Self, de::DeError> {
        Ok(v)
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl<'de> Deserialize<'de> for bool {
    fn from_value(v: Value) -> Result<Self, de::DeError> {
        match v {
            Value::Bool(b) => Ok(b),
            other => Err(de::DeError(format!("expected bool, found {}", other.kind()))),
        }
    }
}

macro_rules! impl_serde_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::Int(*self as i64) }
        }
        impl<'de> Deserialize<'de> for $t {
            fn from_value(v: Value) -> Result<Self, de::DeError> {
                let i = match v {
                    Value::Int(i) => i,
                    Value::UInt(u) => i64::try_from(u)
                        .map_err(|_| de::DeError(format!("integer {u} out of range")))?,
                    other => {
                        return Err(de::DeError(format!(
                            "expected integer, found {}", other.kind()
                        )))
                    }
                };
                <$t>::try_from(i).map_err(|_| de::DeError(format!("integer {i} out of range")))
            }
        }
    )*};
}
impl_serde_signed!(i8, i16, i32, i64, isize);

macro_rules! impl_serde_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                match i64::try_from(*self) {
                    Ok(i) => Value::Int(i),
                    Err(_) => Value::UInt(*self as u64),
                }
            }
        }
        impl<'de> Deserialize<'de> for $t {
            fn from_value(v: Value) -> Result<Self, de::DeError> {
                let u = match v {
                    Value::Int(i) => u64::try_from(i)
                        .map_err(|_| de::DeError(format!("integer {i} out of range")))?,
                    Value::UInt(u) => u,
                    other => {
                        return Err(de::DeError(format!(
                            "expected integer, found {}", other.kind()
                        )))
                    }
                };
                <$t>::try_from(u).map_err(|_| de::DeError(format!("integer {u} out of range")))
            }
        }
    )*};
}
impl_serde_unsigned!(u8, u16, u32, u64, usize);

macro_rules! impl_serde_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::Float(*self as f64) }
        }
        impl<'de> Deserialize<'de> for $t {
            fn from_value(v: Value) -> Result<Self, de::DeError> {
                match v {
                    Value::Float(f) => Ok(f as $t),
                    Value::Int(i) => Ok(i as $t),
                    Value::UInt(u) => Ok(u as $t),
                    other => Err(de::DeError(format!(
                        "expected number, found {}", other.kind()
                    ))),
                }
            }
        }
    )*};
}
impl_serde_float!(f32, f64);

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl<'de> Deserialize<'de> for char {
    fn from_value(v: Value) -> Result<Self, de::DeError> {
        match v {
            Value::Str(s) if s.chars().count() == 1 => Ok(s.chars().next().unwrap()),
            other => Err(de::DeError(format!("expected char, found {}", other.kind()))),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl<'de> Deserialize<'de> for String {
    fn from_value(v: Value) -> Result<Self, de::DeError> {
        match v {
            Value::Str(s) => Ok(s),
            other => Err(de::DeError(format!("expected string, found {}", other.kind()))),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Box<T> {
    fn from_value(v: Value) -> Result<Self, de::DeError> {
        T::from_value(v).map(Box::new)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(x) => x.to_value(),
            None => Value::Null,
        }
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Option<T> {
    fn from_value(v: Value) -> Result<Self, de::DeError> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        self.as_slice().to_value()
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Vec<T> {
    fn from_value(v: Value) -> Result<Self, de::DeError> {
        de::into_seq(v)?.into_iter().map(T::from_value).collect()
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        self.as_slice().to_value()
    }
}

impl<'de, T: Deserialize<'de>, const N: usize> Deserialize<'de> for [T; N] {
    fn from_value(v: Value) -> Result<Self, de::DeError> {
        let items = de::into_seq(v)?;
        let n = items.len();
        let parsed: Vec<T> = items.into_iter().map(T::from_value).collect::<Result<_, _>>()?;
        parsed
            .try_into()
            .map_err(|_| de::DeError(format!("expected array of length {N}, found {n}")))
    }
}

macro_rules! impl_serde_tuple {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Seq(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<'de, $($name: Deserialize<'de>),+> Deserialize<'de> for ($($name,)+) {
            fn from_value(v: Value) -> Result<Self, de::DeError> {
                let mut seq = de::into_seq(v)?;
                seq.reverse();
                Ok(($(
                    {
                        let _ = $idx;
                        $name::from_value(
                            seq.pop().ok_or_else(|| de::DeError("tuple too short".into()))?,
                        )?
                    },
                )+))
            }
        }
    )*};
}
impl_serde_tuple! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
}

impl<V: Serialize> Serialize for std::collections::BTreeMap<String, V> {
    fn to_value(&self) -> Value {
        Value::Map(self.iter().map(|(k, v)| (k.clone(), v.to_value())).collect())
    }
}

impl<'de, V: Deserialize<'de>> Deserialize<'de> for std::collections::BTreeMap<String, V> {
    fn from_value(v: Value) -> Result<Self, de::DeError> {
        match v {
            Value::Map(entries) => entries
                .into_iter()
                .map(|(k, v)| Ok((k, V::from_value(v)?)))
                .collect(),
            other => Err(de::DeError(format!("expected map, found {}", other.kind()))),
        }
    }
}

impl<V: Serialize, S> Serialize for std::collections::HashMap<String, V, S> {
    fn to_value(&self) -> Value {
        // Deterministic output: sort keys.
        let mut entries: Vec<(String, Value)> =
            self.iter().map(|(k, v)| (k.clone(), v.to_value())).collect();
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Map(entries)
    }
}

impl<'de, V: Deserialize<'de>, S: std::hash::BuildHasher + Default> Deserialize<'de>
    for std::collections::HashMap<String, V, S>
{
    fn from_value(v: Value) -> Result<Self, de::DeError> {
        match v {
            Value::Map(entries) => entries
                .into_iter()
                .map(|(k, v)| Ok((k, V::from_value(v)?)))
                .collect(),
            other => Err(de::DeError(format!("expected map, found {}", other.kind()))),
        }
    }
}

impl Serialize for std::path::PathBuf {
    fn to_value(&self) -> Value {
        Value::Str(self.display().to_string())
    }
}

impl<'de> Deserialize<'de> for std::path::PathBuf {
    fn from_value(v: Value) -> Result<Self, de::DeError> {
        String::from_value(v).map(std::path::PathBuf::from)
    }
}

impl Serialize for () {
    fn to_value(&self) -> Value {
        Value::Null
    }
}

impl<'de> Deserialize<'de> for () {
    fn from_value(v: Value) -> Result<Self, de::DeError> {
        match v {
            Value::Null => Ok(()),
            other => Err(de::DeError(format!("expected null, found {}", other.kind()))),
        }
    }
}
