//! Offline vendored stand-in for `criterion`.
//!
//! Provides the API surface this workspace's benches use — `Criterion`,
//! `Bencher::{iter, iter_batched}`, benchmark groups, `BenchmarkId`, and
//! the `criterion_group!`/`criterion_main!` macros — backed by a simple
//! wall-clock sampler: each benchmark runs `sample_size` samples of an
//! adaptively-sized iteration batch and reports min/mean/max per
//! iteration. No statistical analysis, plots, or baseline storage.
//!
//! Two extensions beyond the upstream surface:
//!
//! * **Quick mode** — passing `--test` on the command line (as real
//!   criterion does for CI smoke runs) runs every benchmark once with a
//!   single sample, so a bench suite doubles as a fast correctness gate;
//! * **Results registry** — every completed benchmark is recorded, and
//!   [`write_json_summary`] dumps `{name, min, mean, max}` nanosecond
//!   timings (plus the quick-mode flag) as JSON for artifact upload.

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::sync::{Mutex, OnceLock};
use std::time::{Duration, Instant};

/// Target wall-clock time per sample; iteration batches are sized so one
/// sample takes roughly this long (but at least one iteration).
const TARGET_SAMPLE_TIME: Duration = Duration::from_millis(5);

/// The benchmark manager handed to `criterion_group!` targets.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 20 }
    }
}

impl Criterion {
    /// Set the number of timing samples per benchmark.
    #[must_use]
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    /// Run one benchmark.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(name, self.sample_size, &mut f);
        self
    }

    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup { name: name.to_string(), sample_size: self.sample_size, _parent: self }
    }
}

/// A group of related benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Set the number of timing samples for benchmarks in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    /// Run one benchmark in the group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        run_one(&format!("{}/{}", self.name, id.0), self.sample_size, &mut f);
        self
    }

    /// Run one benchmark in the group, passing `input` through.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        run_one(&format!("{}/{}", self.name, id.0), self.sample_size, &mut |b| f(b, input));
        self
    }

    /// Finish the group (no-op; mirrors the real API).
    pub fn finish(self) {}
}

/// Identifier for one benchmark within a group.
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// A two-part id, `name/parameter`.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> BenchmarkId {
        BenchmarkId(format!("{}/{}", name.into(), parameter))
    }

    /// An id that is just the parameter value.
    pub fn from_parameter(parameter: impl Display) -> BenchmarkId {
        BenchmarkId(parameter.to_string())
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> BenchmarkId {
        BenchmarkId(s.to_string())
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> BenchmarkId {
        BenchmarkId(s)
    }
}

/// How `iter_batched` amortizes setup (accepted for compatibility; the
/// stub always runs setup once per timed batch).
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One setup per iteration.
    PerIteration,
}

/// The timing handle passed to benchmark closures.
pub struct Bencher {
    sample_size: usize,
    samples: Vec<Duration>,
}

impl Bencher {
    /// Time `routine`, called repeatedly.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        // Estimate the cost of one call to size the batch.
        let t0 = Instant::now();
        let out = routine();
        let est = t0.elapsed();
        std::mem::drop(out);
        let iters = if quick_mode() { 1 } else { batch_iters(est) };
        self.samples.clear();
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..iters {
                std::hint::black_box(routine());
            }
            self.samples.push(start.elapsed() / iters);
        }
    }

    /// Time `routine` over inputs built (untimed) by `setup`.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        self.samples.clear();
        for _ in 0..self.sample_size {
            let input = setup();
            let start = Instant::now();
            std::hint::black_box(routine(input));
            self.samples.push(start.elapsed());
        }
    }
}

fn batch_iters(est: Duration) -> u32 {
    if est.is_zero() {
        return 1000;
    }
    let n = TARGET_SAMPLE_TIME.as_nanos() / est.as_nanos().max(1);
    n.clamp(1, 1000) as u32
}

/// Whether `--test` was passed on the command line: run each benchmark
/// once with one sample (criterion's CI smoke mode).
pub fn quick_mode() -> bool {
    static QUICK: OnceLock<bool> = OnceLock::new();
    *QUICK.get_or_init(|| std::env::args().any(|a| a == "--test"))
}

/// One completed benchmark's timings, in nanoseconds per iteration.
#[derive(Debug, Clone)]
pub struct BenchRecord {
    /// Full benchmark name (`group/bench/param`).
    pub name: String,
    /// Fastest sample.
    pub min_ns: u128,
    /// Mean over samples.
    pub mean_ns: u128,
    /// Slowest sample.
    pub max_ns: u128,
}

fn registry() -> &'static Mutex<Vec<BenchRecord>> {
    static REGISTRY: OnceLock<Mutex<Vec<BenchRecord>>> = OnceLock::new();
    REGISTRY.get_or_init(|| Mutex::new(Vec::new()))
}

/// Snapshot of every benchmark completed so far in this process.
pub fn results() -> Vec<BenchRecord> {
    registry().lock().expect("results registry").clone()
}

/// Write every completed benchmark's timings to `path` as a JSON document
/// (`{"quick": bool, "results": [{name, min_ns, mean_ns, max_ns}, ...]}`).
///
/// # Errors
/// Propagates filesystem errors.
pub fn write_json_summary(path: impl AsRef<std::path::Path>) -> std::io::Result<()> {
    let records = results();
    let mut out = String::from("{\n");
    out.push_str(&format!("  \"quick\": {},\n", quick_mode()));
    out.push_str("  \"results\": [\n");
    for (i, r) in records.iter().enumerate() {
        let name = r.name.replace('\\', "\\\\").replace('"', "\\\"");
        out.push_str(&format!(
            "    {{\"name\": \"{}\", \"min_ns\": {}, \"mean_ns\": {}, \"max_ns\": {}}}{}\n",
            name,
            r.min_ns,
            r.mean_ns,
            r.max_ns,
            if i + 1 < records.len() { "," } else { "" }
        ));
    }
    out.push_str("  ]\n}\n");
    std::fs::write(path, out)
}

fn run_one(name: &str, sample_size: usize, f: &mut dyn FnMut(&mut Bencher)) {
    let sample_size = if quick_mode() { 1 } else { sample_size };
    let mut b = Bencher { sample_size, samples: Vec::new() };
    f(&mut b);
    if b.samples.is_empty() {
        println!("{name:<50} (no samples)");
        return;
    }
    let min = b.samples.iter().min().copied().unwrap_or_default();
    let max = b.samples.iter().max().copied().unwrap_or_default();
    let mean = b.samples.iter().sum::<Duration>() / b.samples.len() as u32;
    registry().lock().expect("results registry").push(BenchRecord {
        name: name.to_string(),
        min_ns: min.as_nanos(),
        mean_ns: mean.as_nanos(),
        max_ns: max.as_nanos(),
    });
    println!(
        "{name:<50} time: [{} {} {}]",
        format_duration(min),
        format_duration(mean),
        format_duration(max)
    );
}

fn format_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.3} µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.3} ms", ns as f64 / 1e6)
    } else {
        format!("{:.3} s", ns as f64 / 1e9)
    }
}

/// Define a benchmark group function, `criterion`-style.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $cfg;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Define `main` for a `harness = false` bench target.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // Cargo passes `--bench` and filter args; the stub ignores them.
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_collects_samples() {
        let mut c = Criterion::default().sample_size(3);
        let mut runs = 0usize;
        c.bench_function("smoke/iter", |b| {
            b.iter(|| {
                runs += 1;
                runs
            })
        });
        assert!(runs > 3, "routine should run at least once per sample");
    }

    #[test]
    fn groups_and_batched_iters_work() {
        let mut c = Criterion::default().sample_size(2);
        let mut group = c.benchmark_group("g");
        group.bench_with_input(BenchmarkId::from_parameter(7), &7u32, |b, &x| {
            b.iter_batched(|| vec![x; 4], |v| v.iter().sum::<u32>(), BatchSize::SmallInput)
        });
        group.finish();
    }

    #[test]
    fn batch_iters_bounded() {
        assert_eq!(batch_iters(Duration::from_secs(1)), 1);
        assert_eq!(batch_iters(Duration::from_nanos(1)), 1000);
    }

    #[test]
    fn registry_records_and_serializes() {
        let mut c = Criterion::default().sample_size(2);
        c.bench_function("registry/smoke", |b| b.iter(|| 1 + 1));
        let recorded = results();
        let rec = recorded
            .iter()
            .find(|r| r.name == "registry/smoke")
            .expect("benchmark recorded");
        assert!(rec.min_ns <= rec.mean_ns && rec.mean_ns <= rec.max_ns);
        let path = std::env::temp_dir().join(format!("criterion-summary-{}.json", std::process::id()));
        write_json_summary(&path).unwrap();
        let json = std::fs::read_to_string(&path).unwrap();
        assert!(json.contains("\"registry/smoke\""));
        assert!(json.contains("\"results\""));
        let _ = std::fs::remove_file(&path);
    }
}
