//! Offline vendored stand-in for the `rand` crate.
//!
//! The build environment has no network access to crates.io, so this
//! workspace vendors the small slice of the `rand 0.8` API it actually
//! uses: [`SeedableRng::seed_from_u64`], [`Rng::gen_range`] over integer
//! and float ranges, [`Rng::gen_bool`], [`Rng::gen`], and
//! [`rngs::SmallRng`] (implemented as xoshiro256++ seeded via SplitMix64,
//! the same generator family the real `SmallRng` uses on 64-bit targets).
//!
//! Everything is deterministic given the seed; no OS entropy is touched.

#![forbid(unsafe_code)]

/// A source of random `u64`s. Object-safe core trait behind [`Rng`].
pub trait RngCore {
    /// Next raw 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Next raw 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fill `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

/// Seedable generators.
pub trait SeedableRng: Sized {
    /// Construct from a 64-bit seed (expanded with SplitMix64).
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types samplable from the "standard" distribution via [`Rng::gen`].
pub trait Standard: Sized {
    /// Draw one value.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        unit_f64(rng.next_u64())
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        unit_f64(rng.next_u64()) as f32
    }
}

/// Uniform in `[0, 1)` from 53 random bits.
fn unit_f64(bits: u64) -> f64 {
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Ranges samplable by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draw one value from the range.
    ///
    /// # Panics
    /// Panics if the range is empty.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_int {
    ($($t:ty => $wide:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as $wide).wrapping_sub(self.start as $wide);
                let v = rng.next_u64() as $wide % span;
                self.start.wrapping_add(v as $t)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as $wide).wrapping_sub(lo as $wide).wrapping_add(1);
                if span == 0 {
                    // Full-width inclusive range: every value is valid.
                    return rng.next_u64() as $t;
                }
                let v = rng.next_u64() as $wide % span;
                lo.wrapping_add(v as $t)
            }
        }
    )*};
}
impl_sample_range_int!(
    u8 => u64, u16 => u64, u32 => u64, u64 => u64, usize => u64,
    i8 => u64, i16 => u64, i32 => u64, i64 => u64, isize => u64
);

macro_rules! impl_sample_range_float {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let f = unit_f64(rng.next_u64()) as $t;
                self.start + f * (self.end - self.start)
            }
        }
    )*};
}
impl_sample_range_float!(f32, f64);

/// The user-facing generator trait (blanket-implemented over [`RngCore`]).
pub trait Rng: RngCore {
    /// Uniform sample from `range`.
    ///
    /// # Panics
    /// Panics if the range is empty.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Bernoulli draw with probability `p`.
    ///
    /// # Panics
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool probability out of range");
        unit_f64(self.next_u64()) < p
    }

    /// Sample from the standard distribution of `T`.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }
}

impl<R: RngCore> Rng for R {}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A small, fast, deterministic generator (xoshiro256++).
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> SmallRng {
            let mut state = seed;
            let s = [
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
            ];
            SmallRng { s }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0..1000usize), b.gen_range(0..1000usize));
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.gen_range(10..20i64);
            assert!((10..20).contains(&v));
            let w = rng.gen_range(0..=5usize);
            assert!(w <= 5);
            let f = rng.gen_range(-1.0..1.0f32);
            assert!((-1.0..1.0).contains(&f));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = SmallRng::seed_from_u64(1);
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn distribution_is_roughly_uniform() {
        let mut rng = SmallRng::seed_from_u64(3);
        let mut counts = [0usize; 10];
        for _ in 0..10_000 {
            counts[rng.gen_range(0..10usize)] += 1;
        }
        for c in counts {
            assert!((700..1300).contains(&c), "bucket count {c} far from 1000");
        }
    }
}
