//! Offline vendored stand-in for `crossbeam`.
//!
//! [`thread::scope`] wraps `std::thread::scope` behind crossbeam's
//! `Result`-returning, scope-argument-passing API, and [`channel`] is a
//! small condvar-based MPMC queue covering the `unbounded` surface. Both
//! match the call shapes used in this workspace.

#![forbid(unsafe_code)]

pub mod thread {
    //! Scoped threads with crossbeam's API shape.

    use std::any::Any;

    /// Panic payload carried out of a scope.
    pub type Payload = Box<dyn Any + Send + 'static>;

    /// A scope handle; spawned closures receive a fresh one so they can
    /// spawn nested siblings.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    /// Handle to one spawned scoped thread.
    pub struct ScopedJoinHandle<'scope, T> {
        inner: std::thread::ScopedJoinHandle<'scope, T>,
    }

    impl<T> ScopedJoinHandle<'_, T> {
        /// Wait for the thread to finish.
        ///
        /// # Errors
        /// Returns the panic payload if the thread panicked.
        pub fn join(self) -> Result<T, Payload> {
            self.inner.join()
        }
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawn a thread inside the scope. The closure receives the
        /// scope (crossbeam-style) for nested spawns.
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner = self.inner;
            ScopedJoinHandle {
                inner: inner.spawn(move || {
                    let scope = Scope { inner };
                    f(&scope)
                }),
            }
        }
    }

    /// Run `f` with a scope; all spawned threads are joined before this
    /// returns.
    ///
    /// # Errors
    /// Returns the first panic payload if any scoped thread (or `f`
    /// itself) panicked.
    pub fn scope<'env, F, R>(f: F) -> Result<R, Payload>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            std::thread::scope(|s| f(&Scope { inner: s }))
        }))
    }
}

pub mod channel {
    //! A minimal unbounded MPMC channel.

    use std::collections::VecDeque;
    use std::sync::{Arc, Condvar, Mutex};

    struct Shared<T> {
        queue: Mutex<ChannelState<T>>,
        ready: Condvar,
    }

    struct ChannelState<T> {
        items: VecDeque<T>,
        senders: usize,
    }

    /// The sending half; clonable.
    pub struct Sender<T> {
        shared: Arc<Shared<T>>,
    }

    /// The receiving half; clonable (items go to exactly one receiver).
    pub struct Receiver<T> {
        shared: Arc<Shared<T>>,
    }

    /// Error returned by [`Sender::send`] when all receivers are gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    /// Error returned by [`Receiver::recv`] when the channel is empty and
    /// all senders are gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    impl std::fmt::Display for RecvError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str("receiving on an empty and disconnected channel")
        }
    }

    impl std::error::Error for RecvError {}

    impl<T: std::fmt::Debug> std::fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str("sending on a disconnected channel")
        }
    }

    /// Create an unbounded channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            queue: Mutex::new(ChannelState { items: VecDeque::new(), senders: 1 }),
            ready: Condvar::new(),
        });
        (Sender { shared: shared.clone() }, Receiver { shared })
    }

    impl<T> Sender<T> {
        /// Enqueue one item.
        ///
        /// # Errors
        /// Never errors in this stub (receiver liveness is not tracked);
        /// the signature mirrors crossbeam.
        ///
        /// # Panics
        /// Panics if the channel mutex is poisoned.
        pub fn send(&self, item: T) -> Result<(), SendError<T>> {
            let mut state = self.shared.queue.lock().expect("channel poisoned");
            state.items.push_back(item);
            drop(state);
            self.shared.ready.notify_one();
            Ok(())
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.shared.queue.lock().expect("channel poisoned").senders += 1;
            Sender { shared: self.shared.clone() }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut state = self.shared.queue.lock().expect("channel poisoned");
            state.senders -= 1;
            let disconnected = state.senders == 0;
            drop(state);
            if disconnected {
                self.shared.ready.notify_all();
            }
        }
    }

    impl<T> Receiver<T> {
        /// Block until an item arrives or every sender is dropped.
        ///
        /// # Errors
        /// Errors when the channel is empty and disconnected.
        ///
        /// # Panics
        /// Panics if the channel mutex is poisoned.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut state = self.shared.queue.lock().expect("channel poisoned");
            loop {
                if let Some(item) = state.items.pop_front() {
                    return Ok(item);
                }
                if state.senders == 0 {
                    return Err(RecvError);
                }
                state = self.shared.ready.wait(state).expect("channel poisoned");
            }
        }

        /// Take an item if one is immediately available.
        pub fn try_recv(&self) -> Option<T> {
            self.shared.queue.lock().expect("channel poisoned").items.pop_front()
        }

        /// Iterate until the channel disconnects.
        pub fn iter(&self) -> Iter<'_, T> {
            Iter { receiver: self }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            Receiver { shared: self.shared.clone() }
        }
    }

    /// Blocking iterator over received items.
    pub struct Iter<'a, T> {
        receiver: &'a Receiver<T>,
    }

    impl<T> Iterator for Iter<'_, T> {
        type Item = T;
        fn next(&mut self) -> Option<T> {
            self.receiver.recv().ok()
        }
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn scope_joins_and_returns() {
        let data = [1u64, 2, 3, 4];
        let mut partials = vec![0u64; 2];
        let r = super::thread::scope(|s| {
            for (slot, chunk) in partials.iter_mut().zip(data.chunks(2)) {
                s.spawn(move |_| {
                    *slot = chunk.iter().sum();
                });
            }
            42
        })
        .expect("no panics");
        assert_eq!(r, 42);
        assert_eq!(partials, vec![3, 7]);
    }

    #[test]
    fn scope_captures_worker_panic() {
        let r = super::thread::scope(|s| {
            s.spawn(|_| panic!("boom"));
        });
        assert!(r.is_err());
    }

    #[test]
    fn nested_spawn_works() {
        let r = super::thread::scope(|s| {
            s.spawn(|s2| {
                s2.spawn(|_| 7u32).join().expect("inner join")
            })
            .join()
            .expect("outer join")
        })
        .expect("no panics");
        assert_eq!(r, 7);
    }

    #[test]
    fn channel_fans_out_all_items() {
        let (tx, rx) = super::channel::unbounded::<usize>();
        let total: usize = super::thread::scope(|s| {
            let mut handles = Vec::new();
            for _ in 0..4 {
                let rx = rx.clone();
                handles.push(s.spawn(move |_| rx.iter().sum::<usize>()));
            }
            for i in 0..100 {
                tx.send(i).expect("send");
            }
            drop(tx);
            handles.into_iter().map(|h| h.join().expect("join")).sum()
        })
        .expect("no panics");
        assert_eq!(total, (0..100).sum());
    }
}
