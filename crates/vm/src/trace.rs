//! Dynamic feature tracing — the paper's Table II, all 21 features.
//!
//! The tracer is owned by the VM and updated on every executed
//! instruction, memory access, call, and syscall; at the end of a run it
//! condenses into a fixed-length [`DynFeatures`] vector, the object the
//! Minkowski similarity of §III-C is computed over.

use crate::value::Region;
use serde::{Deserialize, Serialize};
use std::collections::{HashMap, HashSet};

/// Size of the AFL-style edge bucket space (2^16). Both engines hash edges
/// into this same space, so their edge sets match — collisions and all.
pub(crate) const EDGE_MAP_SIZE: usize = 1 << 16;

/// Deterministic bucket index of the control-flow edge `(func, from, to)`
/// — two consecutively executed pcs of one frame. Shared verbatim by the
/// interpreter tracer and the fast engine so coverage signals agree. A
/// single multiplicative mix (Fibonacci hashing on the packed fields)
/// keeps this cheap enough for once-per-instruction use; the high bits of
/// the product are well distributed for the 2^16-bucket space.
pub(crate) fn edge_index(func: u32, from: u32, to: u32) -> u32 {
    let x = ((func as u64) << 42) ^ ((from as u64) << 21) ^ to as u64;
    let h = x.wrapping_mul(0x9e37_79b9_7f4a_7c15);
    (h >> 48) as u32 & (EDGE_MAP_SIZE as u32 - 1)
}

/// Number of dynamic features (Table II).
pub const NUM_DYN_FEATURES: usize = 21;

/// Names of the 21 dynamic features, indexable by feature number - 1.
pub const DYN_FEATURE_NAMES: [&str; NUM_DYN_FEATURES] = [
    "binary_defined_fun_call_num",
    "min_stack_depth",
    "max_stack_depth",
    "avg_stack_depth",
    "std_stack_depth",
    "instruction_num",
    "unique_instruction_num",
    "call_instruction_num",
    "arithmetic_instruction_num",
    "branch_instruction_num",
    "load_instruction_num",
    "store_instruction_num",
    "max_branch_frequency",
    "max_arith_frequency",
    "mem_heap_access",
    "mem_stack_access",
    "mem_lib_access",
    "mem_anon_access",
    "mem_others_access",
    "library_call_num",
    "syscall_num",
];

/// The condensed dynamic feature vector of one function execution.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DynFeatures(pub [f64; NUM_DYN_FEATURES]);

impl DynFeatures {
    /// Feature by 1-based Table II index.
    pub fn feature(&self, table2_index: usize) -> f64 {
        self.0[table2_index - 1]
    }

    /// The underlying slice.
    pub fn as_slice(&self) -> &[f64] {
        &self.0
    }
}

/// Live trace state collected during execution.
#[derive(Debug, Clone, Default)]
pub struct Trace {
    /// F1: calls to functions defined in the same binary.
    pub binary_calls: u64,
    /// F6: executed instruction count.
    pub instructions: u64,
    /// F7: distinct (function, pc) pairs executed.
    unique_pcs: HashMap<(u32, u32), u32>,
    /// F8.
    pub call_instructions: u64,
    /// F9.
    pub arith_instructions: u64,
    /// F10.
    pub branch_instructions: u64,
    /// F11.
    pub load_instructions: u64,
    /// F12.
    pub store_instructions: u64,
    /// Per-site execution counts of branch instructions (F13 = max).
    branch_freq: HashMap<(u32, u32), u64>,
    /// Per-site execution counts of arithmetic instructions (F14 = max).
    arith_freq: HashMap<(u32, u32), u64>,
    /// F15–F19 region access counts.
    region_access: [u64; 5],
    /// Distinct control-flow edges executed (fuzzer coverage signal; not
    /// one of the 21 features).
    edges: HashSet<u32>,
    /// F20.
    pub library_calls: u64,
    /// F21.
    pub syscalls: u64,
    // Stack-depth accumulators (frames; sampled per executed instruction).
    depth_min: u64,
    depth_max: u64,
    depth_sum: f64,
    depth_sumsq: f64,
    depth_samples: u64,
}

impl Trace {
    /// Fresh empty trace.
    pub fn new() -> Trace {
        Trace { depth_min: u64::MAX, ..Trace::default() }
    }

    /// Record one executed instruction at `(func, pc)` with the current
    /// call-stack depth and its classification flags.
    #[allow(clippy::too_many_arguments)]
    pub fn record_inst(
        &mut self,
        func: u32,
        pc: u32,
        depth: u64,
        is_arith: bool,
        is_branch: bool,
        is_call: bool,
        is_load: bool,
        is_store: bool,
    ) {
        self.instructions += 1;
        *self.unique_pcs.entry((func, pc)).or_insert(0) += 1;
        if is_arith {
            self.arith_instructions += 1;
            *self.arith_freq.entry((func, pc)).or_insert(0) += 1;
        }
        if is_branch {
            self.branch_instructions += 1;
            *self.branch_freq.entry((func, pc)).or_insert(0) += 1;
        }
        if is_call {
            self.call_instructions += 1;
        }
        if is_load {
            self.load_instructions += 1;
        }
        if is_store {
            self.store_instructions += 1;
        }
        self.depth_min = self.depth_min.min(depth);
        self.depth_max = self.depth_max.max(depth);
        self.depth_sum += depth as f64;
        self.depth_sumsq += (depth * depth) as f64;
        self.depth_samples += 1;
    }

    /// Record the control-flow edge `(from, to)` within `func` — two
    /// consecutively executed pcs of one frame.
    pub fn record_edge(&mut self, func: u32, from: u32, to: u32) {
        self.edges.insert(edge_index(func, from, to));
    }

    /// Sorted distinct edge ids executed (coverage-guided fuzzing signal).
    pub fn edge_ids(&self) -> Vec<u32> {
        let mut v = self.edge_ids_unordered();
        v.sort_unstable();
        v
    }

    /// Distinct edge ids in unspecified order — the fuzzer's per-round
    /// novelty checks are set-based, so they skip the sort.
    pub(crate) fn edge_ids_unordered(&self) -> Vec<u32> {
        self.edges.iter().copied().collect()
    }

    /// Record a memory access in `region`.
    pub fn record_access(&mut self, region: Region) {
        let i = Region::ALL.iter().position(|r| *r == region).unwrap();
        self.region_access[i] += 1;
    }

    /// Record `n` memory accesses in `region` (library routine bulk ops).
    pub fn record_accesses(&mut self, region: Region, n: u64) {
        let i = Region::ALL.iter().position(|r| *r == region).unwrap();
        self.region_access[i] += n;
    }

    /// Number of distinct program points executed (fuzzer coverage proxy
    /// and F7).
    pub fn unique_count(&self) -> u64 {
        self.unique_pcs.len() as u64
    }

    /// Condense into the Table II feature vector.
    pub fn features(&self) -> DynFeatures {
        let n = self.depth_samples.max(1) as f64;
        let mean = self.depth_sum / n;
        let var = (self.depth_sumsq / n - mean * mean).max(0.0);
        let dmin = if self.depth_samples == 0 { 0 } else { self.depth_min };
        let max_branch = self.branch_freq.values().copied().max().unwrap_or(0);
        let max_arith = self.arith_freq.values().copied().max().unwrap_or(0);
        DynFeatures([
            self.binary_calls as f64,
            dmin as f64,
            self.depth_max as f64,
            mean,
            var.sqrt(),
            self.instructions as f64,
            self.unique_count() as f64,
            self.call_instructions as f64,
            self.arith_instructions as f64,
            self.branch_instructions as f64,
            self.load_instructions as f64,
            self.store_instructions as f64,
            max_branch as f64,
            max_arith as f64,
            self.region_access[0] as f64,
            self.region_access[1] as f64,
            self.region_access[2] as f64,
            self.region_access[3] as f64,
            self.region_access[4] as f64,
            self.library_calls as f64,
            self.syscalls as f64,
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn feature_vector_has_21_entries() {
        assert_eq!(DYN_FEATURE_NAMES.len(), NUM_DYN_FEATURES);
        let t = Trace::new();
        assert_eq!(t.features().as_slice().len(), 21);
    }

    #[test]
    fn instruction_classification_accumulates() {
        let mut t = Trace::new();
        t.record_inst(0, 0, 2, true, false, false, false, false);
        t.record_inst(0, 1, 2, false, true, false, false, false);
        t.record_inst(0, 0, 2, true, false, false, false, false);
        t.record_inst(0, 2, 3, false, false, true, true, false);
        let f = t.features();
        assert_eq!(f.feature(6), 4.0); // instruction_num
        assert_eq!(f.feature(7), 3.0); // unique pcs
        assert_eq!(f.feature(9), 2.0); // arith
        assert_eq!(f.feature(14), 2.0); // max arith frequency (pc 0 twice)
        assert_eq!(f.feature(10), 1.0); // branch
        assert_eq!(f.feature(8), 1.0); // call
        assert_eq!(f.feature(11), 1.0); // load
        assert_eq!(f.feature(2), 2.0); // min depth
        assert_eq!(f.feature(3), 3.0); // max depth
    }

    #[test]
    fn region_accounting() {
        let mut t = Trace::new();
        t.record_access(Region::Anon);
        t.record_access(Region::Anon);
        t.record_accesses(Region::Heap, 5);
        t.record_access(Region::Stack);
        let f = t.features();
        assert_eq!(f.feature(15), 5.0); // heap
        assert_eq!(f.feature(16), 1.0); // stack
        assert_eq!(f.feature(18), 2.0); // anon
        assert_eq!(f.feature(17), 0.0); // lib
    }

    #[test]
    fn stack_depth_stats() {
        let mut t = Trace::new();
        for d in [2u64, 2, 2, 2] {
            t.record_inst(0, 0, d, false, false, false, false, false);
        }
        let f = t.features();
        assert_eq!(f.feature(2), 2.0);
        assert_eq!(f.feature(3), 2.0);
        assert_eq!(f.feature(4), 2.0);
        assert_eq!(f.feature(5), 0.0);
    }

    #[test]
    fn empty_trace_is_zeroed() {
        let f = Trace::new().features();
        for v in f.as_slice() {
            assert_eq!(*v, 0.0);
        }
    }
}
