//! The fast execution engine — the sfuzz-style rebuild of the hot loop.
//!
//! [`FastVm`] executes the pre-lowered form from [`crate::lowered`]
//! (operands unpacked, library routines resolved, classification bytes
//! precomputed), traces into dense per-function PC-count arrays instead of
//! hash maps, and resets between runs by restoring only what the previous
//! run dirtied (input watermark, touched globals, touched trace rows) —
//! never re-cloning the environment. Every observable output — outcome,
//! all 21 Table II features, coverage, edge ids, even the `vm.executions`
//! scope counter — is bitwise-identical to the interpreter in
//! [`crate::exec`]; the differential proptests in
//! `tests/engine_identity.rs` and the benches hold both engines to that.

use crate::env::ExecEnv;
use crate::exec::{eval_cond, executions_counter, int_binop, Engine, Fault, Outcome, Vm, VmConfig};
use crate::loader::{LoadedBinary, RunResult};
use crate::lowered::{
    LibFn, LowOp, LoweredBinary, CLASS_ARITH, CLASS_BRANCH, CLASS_CALL, CLASS_LOAD, CLASS_STORE,
};
use crate::trace::{edge_index, DynFeatures, EDGE_MAP_SIZE};
use crate::value::{Addr, Region, Value};

/// Index of `region` in [`Region::ALL`] / the F15–F19 feature block.
fn region_idx(region: Region) -> usize {
    match region {
        Region::Heap => 0,
        Region::Stack => 1,
        Region::Lib => 2,
        Region::Anon => 3,
        Region::Other => 4,
    }
}

/// Dense, reset-friendly trace state: per-function PC-indexed execution
/// counts instead of hash maps, an edge bitmap with a touched list, and
/// the same scalar/f64 accumulators as [`crate::trace::Trace`] (kept
/// op-for-op identical so the condensed features match bit for bit).
struct DenseTrace {
    binary_calls: u64,
    /// Executed-instruction count per classification byte (5 class bits ⇒
    /// 32 combinations): one unconditional bump per instruction replaces
    /// the interpreter's five per-instruction `matches!` tests. The total
    /// and per-class counts are exact integer sums over these buckets.
    class_counts: [u64; 32],
    region_access: [u64; 5],
    library_calls: u64,
    syscalls: u64,
    depth_min: u64,
    depth_max: u64,
    /// When `exact_depth`, the depth sums accumulate in integers and are
    /// converted once at condense time; otherwise they accumulate in f64
    /// per instruction like the interpreter. The integer path is bit-exact
    /// because every partial sum the interpreter computes is an
    /// integer-valued f64 below 2^53 (f64 addition of such values never
    /// rounds), which `new` verifies against the configured budget.
    exact_depth: bool,
    depth_sum_i: u64,
    depth_sumsq_i: u64,
    depth_sum_f: f64,
    depth_sumsq_f: f64,
    depth_samples: u64,
    /// Execution count per (function, pc); reset touches only dirty cells.
    pc_counts: Vec<Box<[u64]>>,
    /// Distinct executed `(func << 32) | pc` ids, pushed on each 0→1 count
    /// transition — lets `condense` and `reset` visit only executed program
    /// points instead of sweeping whole code rows.
    touched_pcs: Vec<u64>,
    edge_map: Box<[bool]>,
    touched_edges: Vec<u32>,
}

impl DenseTrace {
    fn new(code_lens: &[usize], cfg: &VmConfig) -> DenseTrace {
        // Depth samples are bounded by the instruction budget and each is
        // at most max_depth + 1, so the largest partial sum is
        // max_instructions * (max_depth + 1)^2; below 2^53 the integer
        // accumulators match the interpreter's sequential f64 adds exactly.
        let d = cfg.max_depth as u64 + 1;
        let exact_depth =
            cfg.max_instructions.checked_mul(d * d).is_some_and(|v| v < (1u64 << 53));
        DenseTrace {
            binary_calls: 0,
            class_counts: [0; 32],
            region_access: [0; 5],
            library_calls: 0,
            syscalls: 0,
            depth_min: u64::MAX,
            depth_max: 0,
            exact_depth,
            depth_sum_i: 0,
            depth_sumsq_i: 0,
            depth_sum_f: 0.0,
            depth_sumsq_f: 0.0,
            depth_samples: 0,
            pc_counts: code_lens.iter().map(|&n| vec![0u64; n].into_boxed_slice()).collect(),
            touched_pcs: Vec::new(),
            edge_map: vec![false; EDGE_MAP_SIZE].into_boxed_slice(),
            touched_edges: Vec::new(),
        }
    }

    /// Clear to a fresh-trace state, touching only rows the last run used.
    fn reset(&mut self) {
        self.binary_calls = 0;
        self.class_counts = [0; 32];
        self.region_access = [0; 5];
        self.library_calls = 0;
        self.syscalls = 0;
        self.depth_min = u64::MAX;
        self.depth_max = 0;
        self.depth_sum_i = 0;
        self.depth_sumsq_i = 0;
        self.depth_sum_f = 0.0;
        self.depth_sumsq_f = 0.0;
        self.depth_samples = 0;
        // The nonzero count cells are exactly the recorded distinct pcs, so
        // zeroing those — not whole code rows — is a full wipe.
        for i in 0..self.touched_pcs.len() {
            let p = self.touched_pcs[i];
            self.pc_counts[(p >> 32) as usize][(p & 0xffff_ffff) as usize] = 0;
        }
        self.touched_pcs.clear();
        for i in 0..self.touched_edges.len() {
            self.edge_map[self.touched_edges[i] as usize] = false;
        }
        self.touched_edges.clear();
    }

    fn record_edge(&mut self, func: u32, from: u32, to: u32) {
        let i = edge_index(func, from, to) as usize;
        if !self.edge_map[i] {
            self.edge_map[i] = true;
            self.touched_edges.push(i as u32);
        }
    }

    /// Sorted distinct edge ids (same values as `Trace::edge_ids`).
    fn edge_ids(&self) -> Vec<u32> {
        let mut v = self.touched_edges.clone();
        v.sort_unstable();
        v
    }

    /// Condense into (features, coverage), mirroring `Trace::features` /
    /// `Trace::unique_count` exactly: same formulas, same f64 op order.
    fn condense(&self, lowered: &LoweredBinary) -> (DynFeatures, u64) {
        // Integer sums over the 32 class buckets — exact, so identical to
        // the interpreter's per-instruction increments.
        let mut instructions = 0u64;
        let mut call_instructions = 0u64;
        let mut arith_instructions = 0u64;
        let mut branch_instructions = 0u64;
        let mut load_instructions = 0u64;
        let mut store_instructions = 0u64;
        for (c, &k) in self.class_counts.iter().enumerate() {
            instructions += k;
            let c = c as u8;
            if c & CLASS_CALL != 0 {
                call_instructions += k;
            }
            if c & CLASS_ARITH != 0 {
                arith_instructions += k;
            }
            if c & CLASS_BRANCH != 0 {
                branch_instructions += k;
            }
            if c & CLASS_LOAD != 0 {
                load_instructions += k;
            }
            if c & CLASS_STORE != 0 {
                store_instructions += k;
            }
        }
        let (dsum, dsumsq) = if self.exact_depth {
            (self.depth_sum_i as f64, self.depth_sumsq_i as f64)
        } else {
            (self.depth_sum_f, self.depth_sumsq_f)
        };
        let n = self.depth_samples.max(1) as f64;
        let mean = dsum / n;
        let var = (dsumsq / n - mean * mean).max(0.0);
        let dmin = if self.depth_samples == 0 { 0 } else { self.depth_min };
        // `touched_pcs` holds each executed (func, pc) exactly once, so its
        // length is the unique-pc coverage and the max scans visit only
        // executed points. Maxima over u64 are order-independent, so the
        // values match the interpreter's per-row sweep exactly.
        let unique = self.touched_pcs.len() as u64;
        let mut max_branch = 0u64;
        let mut max_arith = 0u64;
        for &p in &self.touched_pcs {
            let f = (p >> 32) as usize;
            let pc = (p & 0xffff_ffff) as usize;
            let c = self.pc_counts[f][pc];
            let cl = lowered.funcs[f].class[pc];
            if cl & CLASS_BRANCH != 0 && c > max_branch {
                max_branch = c;
            }
            if cl & CLASS_ARITH != 0 && c > max_arith {
                max_arith = c;
            }
        }
        let features = DynFeatures([
            self.binary_calls as f64,
            dmin as f64,
            self.depth_max as f64,
            mean,
            var.sqrt(),
            instructions as f64,
            unique as f64,
            call_instructions as f64,
            arith_instructions as f64,
            branch_instructions as f64,
            load_instructions as f64,
            store_instructions as f64,
            max_branch as f64,
            max_arith as f64,
            self.region_access[0] as f64,
            self.region_access[1] as f64,
            self.region_access[2] as f64,
            self.region_access[3] as f64,
            self.region_access[4] as f64,
            self.library_calls as f64,
            self.syscalls as f64,
        ]);
        (features, unique)
    }
}

/// The fast engine's memory: the mutable input buffer with a dirty
/// watermark, the heap with its allocation table, and the read-only
/// string blob. Bounds/permission semantics mirror the interpreter's
/// `read_region`/`store_byte`/`check_range` exactly.
struct FastMem<'a> {
    input: Vec<u8>,
    /// Dirty watermark over `input` (`lo..hi`; `lo >= hi` ⇒ clean).
    input_lo: usize,
    input_hi: usize,
    heap_data: Vec<u8>,
    /// (start, len, live) per allocation.
    heap_allocs: Vec<(usize, usize, bool)>,
    heap_limit: usize,
    blob: &'a [u8],
}

impl FastMem<'_> {
    fn heap_check(&self, off: i64, len: usize) -> Result<usize, Fault> {
        if off < 0 {
            return Err(Fault::OutOfBounds(Region::Heap));
        }
        let off = off as usize;
        for &(start, alen, live) in &self.heap_allocs {
            if off >= start && off + len <= start + alen {
                return if live { Ok(off) } else { Err(Fault::UseAfterFree) };
            }
        }
        Err(Fault::OutOfBounds(Region::Heap))
    }

    fn read(&self, addr: Addr) -> Result<u8, Fault> {
        match addr.region {
            Region::Anon => {
                if addr.offset < 0 || addr.offset as usize >= self.input.len() {
                    Err(Fault::OutOfBounds(Region::Anon))
                } else {
                    Ok(self.input[addr.offset as usize])
                }
            }
            Region::Heap => {
                let off = self.heap_check(addr.offset, 1)?;
                Ok(self.heap_data[off])
            }
            Region::Lib => {
                if addr.offset < 0 || addr.offset as usize >= self.blob.len() {
                    Err(Fault::OutOfBounds(Region::Lib))
                } else {
                    Ok(self.blob[addr.offset as usize])
                }
            }
            Region::Stack | Region::Other => Err(Fault::BadPointer),
        }
    }

    fn write(&mut self, addr: Addr, byte: u8) -> Result<(), Fault> {
        match addr.region {
            Region::Anon => {
                if addr.offset < 0 || addr.offset as usize >= self.input.len() {
                    Err(Fault::OutOfBounds(Region::Anon))
                } else {
                    let o = addr.offset as usize;
                    self.input[o] = byte;
                    self.input_lo = self.input_lo.min(o);
                    self.input_hi = self.input_hi.max(o + 1);
                    Ok(())
                }
            }
            Region::Heap => {
                let off = self.heap_check(addr.offset, 1)?;
                self.heap_data[off] = byte;
                Ok(())
            }
            Region::Lib => Err(Fault::WriteToReadOnly),
            Region::Stack | Region::Other => Err(Fault::BadPointer),
        }
    }

    fn check_range(&self, base: Value, len: usize) -> Result<Addr, Fault> {
        let p = base.as_ptr().ok_or(Fault::BadPointer)?;
        if len == 0 {
            return Ok(p);
        }
        match p.region {
            Region::Anon => {
                if p.offset < 0 || p.offset as usize + len > self.input.len() {
                    Err(Fault::OutOfBounds(Region::Anon))
                } else {
                    Ok(p)
                }
            }
            Region::Heap => {
                self.heap_check(p.offset, len)?;
                Ok(p)
            }
            Region::Lib => {
                if p.offset < 0 || p.offset as usize + len > self.blob.len() {
                    Err(Fault::OutOfBounds(Region::Lib))
                } else {
                    Ok(p)
                }
            }
            Region::Stack | Region::Other => Err(Fault::BadPointer),
        }
    }

    fn read_bulk(&self, addr: Addr, len: usize, out: &mut Vec<u8>) -> Result<(), Fault> {
        out.clear();
        out.reserve(len);
        for i in 0..len {
            out.push(self.read(addr.offset_by(i as i64))?);
        }
        Ok(())
    }

    fn write_bulk(&mut self, addr: Addr, bytes: &[u8]) -> Result<(), Fault> {
        // Zero-length writes touch nothing (mirrors the interpreter).
        if bytes.is_empty() {
            return Ok(());
        }
        match addr.region {
            Region::Anon => {
                let s = addr.offset as usize;
                self.input[s..s + bytes.len()].copy_from_slice(bytes);
                self.input_lo = self.input_lo.min(s);
                self.input_hi = self.input_hi.max(s + bytes.len());
                Ok(())
            }
            Region::Heap => {
                let off = self.heap_check(addr.offset, bytes.len())?;
                self.heap_data[off..off + bytes.len()].copy_from_slice(bytes);
                Ok(())
            }
            Region::Lib => Err(Fault::WriteToReadOnly),
            Region::Stack | Region::Other => Err(Fault::BadPointer),
        }
    }

    fn alloc(&mut self, n: usize) -> Option<i64> {
        if self.heap_data.len() + n > self.heap_limit {
            return None;
        }
        let start = self.heap_data.len();
        self.heap_data.resize(start + n, 0);
        self.heap_allocs.push((start, n, true));
        Some(start as i64)
    }

    fn free(&mut self, off: i64) -> Result<(), Fault> {
        for a in &mut self.heap_allocs {
            if a.0 as i64 == off {
                if !a.2 {
                    return Err(Fault::UseAfterFree);
                }
                a.2 = false;
                return Ok(());
            }
        }
        Err(Fault::BadPointer)
    }
}

/// One reusable call frame; buffers keep their capacity across runs.
struct FastFrame {
    func: u32,
    pc: u32,
    /// Previous executed pc within this frame (`u32::MAX` = none yet).
    prev_pc: u32,
    regs: [Value; 64],
    slots: Vec<Value>,
    stack: Vec<Value>,
    args: Vec<Value>,
    pending_args: Vec<Value>,
    ret_val: Value,
    flags: Option<(Value, Value)>,
}

impl FastFrame {
    fn blank() -> FastFrame {
        FastFrame {
            func: 0,
            pc: 0,
            prev_pc: u32::MAX,
            regs: [Value::Int(0); 64],
            slots: Vec::new(),
            stack: Vec::new(),
            args: Vec::new(),
            pending_args: Vec::new(),
            ret_val: Value::Int(0),
            flags: None,
        }
    }

    /// Reinitialize for a fresh activation of `func`. `args` are installed
    /// separately by the caller (entry copy or pending-args swap).
    fn activate(&mut self, func: u32, slots: u32) {
        self.func = func;
        self.pc = 0;
        self.prev_pc = u32::MAX;
        self.regs = [Value::Int(0); 64];
        self.slots.clear();
        self.slots.resize(slots as usize, Value::Int(0));
        self.stack.clear();
        self.pending_args.clear();
        self.ret_val = Value::Int(0);
        self.flags = None;
    }
}

/// The fast VM: executes the lowered form of one binary, reusing all of
/// its buffers (frames, trace rows, heap, scratch) across runs.
///
/// Usage: [`FastVm::set_env`] installs an environment snapshot, then any
/// number of [`FastVm::run`] calls execute functions against it; each run
/// starts by restoring only the state the previous run dirtied.
pub struct FastVm<'a> {
    binary: &'a LoadedBinary,
    cfg: VmConfig,
    mem: FastMem<'a>,
    globals: Vec<Value>,
    trace: DenseTrace,
    frames: Vec<FastFrame>,
    /// Live frame count (frames[..depth] are active).
    depth: usize,
    executed: u64,
    last_ret: Value,
    // Installed environment snapshot.
    snap_input: Vec<u8>,
    snap_args: Vec<Value>,
    snap_globals: Vec<Value>,
    // Dirty-global tracking.
    dirty_gids: Vec<u32>,
    gid_marked: Box<[bool]>,
    // Scratch for bulk library routines and outgoing call arguments.
    scratch_a: Vec<u8>,
    scratch_b: Vec<u8>,
    call_args: Vec<Value>,
    /// Which pool environment is installed (`u64::MAX` = none); lets
    /// `EnvPool` skip re-installing an unchanged environment.
    pub(crate) env_token: u64,
}

impl<'a> FastVm<'a> {
    /// Build a reusable fast VM over `binary`. Allocates the dense trace
    /// rows once; everything else grows lazily and is then reused.
    pub fn new(binary: &'a LoadedBinary, cfg: &VmConfig) -> FastVm<'a> {
        let code_lens: Vec<usize> =
            (0..binary.function_count()).map(|i| binary.code(i).len()).collect();
        let n_globals = binary.binary().globals.len();
        FastVm {
            binary,
            cfg: cfg.clone(),
            mem: FastMem {
                input: Vec::new(),
                input_lo: usize::MAX,
                input_hi: 0,
                heap_data: Vec::new(),
                heap_allocs: Vec::new(),
                heap_limit: cfg.heap_limit,
                blob: binary.strings_blob(),
            },
            globals: Vec::new(),
            trace: DenseTrace::new(&code_lens, cfg),
            frames: Vec::new(),
            depth: 0,
            executed: 0,
            last_ret: Value::Int(0),
            snap_input: Vec::new(),
            snap_args: Vec::new(),
            snap_globals: Vec::new(),
            dirty_gids: Vec::new(),
            gid_marked: vec![false; n_globals].into_boxed_slice(),
            scratch_a: Vec::new(),
            scratch_b: Vec::new(),
            call_args: Vec::new(),
            env_token: u64::MAX,
        }
    }

    /// Install an environment: input bytes, materialized argument values,
    /// and per-env global overrides (resolved against the initializers).
    pub fn set_env(&mut self, input: &[u8], args: &[Value], overrides: &[(u32, i64)]) {
        self.snap_globals.clear();
        self.snap_globals.extend(self.binary.binary().globals.iter().map(|&g| Value::Int(g)));
        for &(gid, v) in overrides {
            if let Some(slot) = self.snap_globals.get_mut(gid as usize) {
                *slot = Value::Int(v);
            }
        }
        self.install(input, args);
    }

    /// Install an environment whose global table is already resolved
    /// ([`crate::envpool::EnvPool`] snapshots).
    pub(crate) fn set_env_prepared(&mut self, input: &[u8], args: &[Value], globals: &[Value]) {
        self.snap_globals.clear();
        self.snap_globals.extend_from_slice(globals);
        self.install(input, args);
    }

    fn install(&mut self, input: &[u8], args: &[Value]) {
        self.snap_input.clear();
        self.snap_input.extend_from_slice(input);
        self.snap_args.clear();
        self.snap_args.extend_from_slice(args);
        self.mem.input.clear();
        self.mem.input.extend_from_slice(input);
        self.mem.input_lo = usize::MAX;
        self.mem.input_hi = 0;
        self.globals.clear();
        self.globals.extend_from_slice(&self.snap_globals);
        for i in 0..self.dirty_gids.len() {
            self.gid_marked[self.dirty_gids[i] as usize] = false;
        }
        self.dirty_gids.clear();
        self.env_token = u64::MAX;
    }

    /// Restore the installed snapshot, touching only state the previous
    /// run dirtied: the input watermark span, the dirty global list, the
    /// heap tables (capacity kept), and the touched trace rows.
    fn reset(&mut self) {
        if self.mem.input_lo < self.mem.input_hi {
            let hi = self.mem.input_hi.min(self.snap_input.len());
            let lo = self.mem.input_lo.min(hi);
            self.mem.input[lo..hi].copy_from_slice(&self.snap_input[lo..hi]);
        }
        self.mem.input_lo = usize::MAX;
        self.mem.input_hi = 0;
        for i in 0..self.dirty_gids.len() {
            let g = self.dirty_gids[i] as usize;
            self.globals[g] = self.snap_globals[g];
            self.gid_marked[g] = false;
        }
        self.dirty_gids.clear();
        self.mem.heap_data.clear();
        self.mem.heap_allocs.clear();
        self.trace.reset();
        self.executed = 0;
        self.last_ret = Value::Int(0);
        self.depth = 0;
    }

    /// Reset to the installed environment and run `func_idx`, producing
    /// the same [`RunResult`] as the interpreter path, bit for bit.
    pub fn run(&mut self, func_idx: usize) -> RunResult {
        self.reset();
        let outcome = self.exec(func_idx);
        let (features, coverage) = self.trace.condense(self.binary.lowered());
        RunResult { outcome, features, coverage }
    }

    /// Sorted distinct edge ids of the last run (coverage-guided fuzzing
    /// signal; same values as `Trace::edge_ids`).
    pub fn edge_ids(&self) -> Vec<u32> {
        self.trace.edge_ids()
    }

    /// Distinct edge ids of the last run in unspecified order (same set as
    /// [`FastVm::edge_ids`], minus the sort).
    fn edge_ids_unordered(&self) -> Vec<u32> {
        self.trace.touched_edges.clone()
    }

    fn ensure_frame(&mut self) {
        if self.depth == self.frames.len() {
            self.frames.push(FastFrame::blank());
        }
    }

    fn exec(&mut self, func_idx: usize) -> Outcome {
        executions_counter().inc();
        let lowered = self.binary.lowered();
        if func_idx >= lowered.funcs.len() {
            return Outcome::Fault(Fault::BadCall);
        }
        self.ensure_frame();
        self.frames[0].activate(func_idx as u32, lowered.funcs[func_idx].frame_slots);
        self.frames[0].args.clear();
        self.frames[0].args.extend_from_slice(&self.snap_args);
        self.depth = 1;
        loop {
            let di = self.depth - 1;
            let depth_u = self.depth as u64 + 1; // +1 models the loader frame
            // One frame borrow for the fetch: read func/pc/prev and advance
            // prev_pc in place (the write is unobservable before the pc
            // bounds/budget checks — a run that ends here never reads it).
            let (func, pc, prev) = {
                let f = &mut self.frames[di];
                let prev = f.prev_pc;
                f.prev_pc = f.pc;
                (f.func, f.pc, prev)
            };
            let lf = &lowered.funcs[func as usize];
            let pcu = pc as usize;
            if pcu >= lf.ops.len() {
                return Outcome::Fault(Fault::BadJump);
            }
            if self.executed >= self.cfg.max_instructions {
                return Outcome::Timeout;
            }
            self.executed += 1;
            // Dense record_inst: two array bumps — the pc count (with a
            // 0→1 touched-pc note) and the precomputed class bucket.
            let t = &mut self.trace;
            t.class_counts[lf.class[pcu] as usize] += 1;
            let cell = &mut t.pc_counts[func as usize][pcu];
            if *cell == 0 {
                t.touched_pcs.push(((func as u64) << 32) | pcu as u64);
            }
            *cell += 1;
            t.depth_min = t.depth_min.min(depth_u);
            t.depth_max = t.depth_max.max(depth_u);
            if t.exact_depth {
                t.depth_sum_i += depth_u;
                t.depth_sumsq_i += depth_u * depth_u;
            } else {
                t.depth_sum_f += depth_u as f64;
                t.depth_sumsq_f += (depth_u * depth_u) as f64;
            }
            t.depth_samples += 1;
            if prev != u32::MAX {
                t.record_edge(func, prev, pc);
            }
            let mut next_pc = pc + 1;
            macro_rules! fault {
                ($e:expr) => {
                    match $e {
                        Ok(v) => v,
                        Err(f) => return Outcome::Fault(f),
                    }
                };
            }
            match lf.ops[pcu] {
                LowOp::Trap { fault } => return Outcome::Fault(fault),
                LowOp::MovImm { rd, imm } => self.frames[di].regs[rd as usize] = Value::Int(imm),
                LowOp::FMovImm { rd, imm } => {
                    self.frames[di].regs[rd as usize] = Value::Float(imm)
                }
                LowOp::Mov { rd, rs } => {
                    let f = &mut self.frames[di];
                    f.regs[rd as usize] = f.regs[rs as usize];
                }
                LowOp::LoadStr { rd, off } => {
                    self.frames[di].regs[rd as usize] =
                        Value::Ptr(Addr { region: Region::Lib, offset: off })
                }
                LowOp::LoadGlobal { rd, gid } => {
                    self.trace.region_access[4] += 1;
                    let v = *fault!(self
                        .globals
                        .get(gid as usize)
                        .ok_or(Fault::OutOfBounds(Region::Other)));
                    self.frames[di].regs[rd as usize] = v;
                }
                LowOp::StoreGlobal { gid, rs } => {
                    self.trace.region_access[4] += 1;
                    let v = self.frames[di].regs[rs as usize];
                    let g = gid as usize;
                    if g >= self.globals.len() {
                        return Outcome::Fault(Fault::OutOfBounds(Region::Other));
                    }
                    if !self.gid_marked[g] {
                        self.gid_marked[g] = true;
                        self.dirty_gids.push(gid);
                    }
                    self.globals[g] = v;
                }
                LowOp::Bin { op, rd, rs1, rs2 } => {
                    let f = &mut self.frames[di];
                    let v = fault!(int_binop(op, f.regs[rs1 as usize], f.regs[rs2 as usize]));
                    f.regs[rd as usize] = v;
                }
                LowOp::BinImm { op, rd, rs, imm } => {
                    let f = &mut self.frames[di];
                    let v = fault!(int_binop(op, f.regs[rs as usize], Value::Int(imm)));
                    f.regs[rd as usize] = v;
                }
                LowOp::FBin { op, rd, rs1, rs2 } => {
                    let f = &mut self.frames[di];
                    let a = f.regs[rs1 as usize].as_float();
                    let b = f.regs[rs2 as usize].as_float();
                    let v = fault!(fwbin::astopt::eval_float_binop(op, a, b)
                        .ok_or(Fault::BadFloatOp));
                    f.regs[rd as usize] = Value::Float(v);
                }
                LowOp::FMulAdd { rd, rs1, rs2, rs3 } => {
                    let f = &mut self.frames[di];
                    let v = f.regs[rs1 as usize].as_float() * f.regs[rs2 as usize].as_float()
                        + f.regs[rs3 as usize].as_float();
                    f.regs[rd as usize] = Value::Float(v);
                }
                LowOp::Neg { rd, rs } => {
                    let f = &mut self.frames[di];
                    f.regs[rd as usize] = Value::Int(f.regs[rs as usize].as_int().wrapping_neg());
                }
                LowOp::Not { rd, rs } => {
                    let f = &mut self.frames[di];
                    f.regs[rd as usize] = Value::Int(!f.regs[rs as usize].is_truthy() as i64);
                }
                LowOp::Cmp { rs1, rs2 } => {
                    let f = &mut self.frames[di];
                    f.flags = Some((f.regs[rs1 as usize], f.regs[rs2 as usize]));
                }
                LowOp::SetCc { cond, rd } => {
                    let f = &mut self.frames[di];
                    let (a, b) = f.flags.unwrap_or((Value::Int(0), Value::Int(0)));
                    f.regs[rd as usize] = Value::Int(eval_cond(cond, a, b) as i64);
                }
                LowOp::CmpSet { cond, rd, rs1, rs2 } => {
                    let f = &mut self.frames[di];
                    let r = eval_cond(cond, f.regs[rs1 as usize], f.regs[rs2 as usize]);
                    f.regs[rd as usize] = Value::Int(r as i64);
                }
                LowOp::LoadB { rd, base, idx } => {
                    let (b, i) = {
                        let f = &self.frames[di];
                        (f.regs[base as usize], f.regs[idx as usize].as_int())
                    };
                    let p = fault!(b.as_ptr().ok_or(Fault::BadPointer));
                    let addr = p.offset_by(i);
                    self.trace.region_access[region_idx(addr.region)] += 1;
                    let byte = fault!(self.mem.read(addr));
                    self.frames[di].regs[rd as usize] = Value::Int(byte as i64);
                }
                LowOp::StoreB { rs, base, idx } => {
                    let (v, b, i) = {
                        let f = &self.frames[di];
                        (
                            f.regs[rs as usize].as_int() as u8,
                            f.regs[base as usize],
                            f.regs[idx as usize].as_int(),
                        )
                    };
                    let p = fault!(b.as_ptr().ok_or(Fault::BadPointer));
                    let addr = p.offset_by(i);
                    self.trace.region_access[region_idx(addr.region)] += 1;
                    fault!(self.mem.write(addr, v));
                }
                LowOp::LoadSlot { rd, slot } => {
                    self.trace.region_access[1] += 1;
                    let f = &mut self.frames[di];
                    let v = *fault!(f.slots.get(slot as usize).ok_or(Fault::BadSlot));
                    f.regs[rd as usize] = v;
                }
                LowOp::StoreSlot { rs, slot } => {
                    self.trace.region_access[1] += 1;
                    let f = &mut self.frames[di];
                    let v = f.regs[rs as usize];
                    let s = fault!(f.slots.get_mut(slot as usize).ok_or(Fault::BadSlot));
                    *s = v;
                }
                LowOp::Jmp { target } => next_pc = target,
                LowOp::JCc { cond, target } => {
                    let (a, b) =
                        self.frames[di].flags.unwrap_or((Value::Int(0), Value::Int(0)));
                    if eval_cond(cond, a, b) {
                        next_pc = target;
                    }
                }
                LowOp::CBr { cond, rs1, rs2, target } => {
                    let f = &self.frames[di];
                    if eval_cond(cond, f.regs[rs1 as usize], f.regs[rs2 as usize]) {
                        next_pc = target;
                    }
                }
                LowOp::JmpInd { rs } => {
                    let tgt = self.frames[di].regs[rs as usize].as_int();
                    if tgt < 0 || tgt as usize >= lf.ops.len() {
                        return Outcome::Fault(Fault::BadJump);
                    }
                    next_pc = tgt as u32;
                }
                LowOp::SetArg { idx, rs } => {
                    let f = &mut self.frames[di];
                    let v = f.regs[rs as usize];
                    let i = idx as usize;
                    if f.pending_args.len() <= i {
                        f.pending_args.resize(i + 1, Value::Int(0));
                    }
                    f.pending_args[i] = v;
                }
                LowOp::LoadArg { rd, idx } => {
                    let f = &mut self.frames[di];
                    f.regs[rd as usize] =
                        f.args.get(idx as usize).copied().unwrap_or(Value::Int(0));
                }
                LowOp::CallImport { lib } => {
                    // Move pending args through the reusable buffer (both
                    // vectors keep their capacity).
                    let mut args = std::mem::take(&mut self.call_args);
                    args.clear();
                    args.extend_from_slice(&self.frames[di].pending_args);
                    self.frames[di].pending_args.clear();
                    let r = self.library_call(lib, &args);
                    self.call_args = args;
                    self.last_ret = fault!(r);
                }
                LowOp::CallLocal { callee, slots } => {
                    if self.depth >= self.cfg.max_depth {
                        return Outcome::Fault(Fault::StackOverflow);
                    }
                    self.trace.binary_calls += 1;
                    self.frames[di].pc = next_pc; // return address
                    self.ensure_frame();
                    let (head, tail) = self.frames.split_at_mut(self.depth);
                    let caller = &mut head[di];
                    let callee_f = &mut tail[0];
                    callee_f.activate(callee, slots);
                    // Caller's pending args become the callee's args; the
                    // callee's stale buffer comes back cleared for reuse.
                    std::mem::swap(&mut caller.pending_args, &mut callee_f.args);
                    caller.pending_args.clear();
                    self.depth += 1;
                    continue;
                }
                LowOp::GetRet { rd } => self.frames[di].regs[rd as usize] = self.last_ret,
                LowOp::SetRet { rs } => {
                    let f = &mut self.frames[di];
                    f.ret_val = f.regs[rs as usize];
                }
                LowOp::Ret => {
                    self.last_ret = self.frames[di].ret_val;
                    self.depth -= 1;
                    if self.depth == 0 {
                        return Outcome::Returned(self.last_ret);
                    }
                    continue; // caller's pc was advanced at call time
                }
                LowOp::Push { rs } => {
                    self.trace.region_access[1] += 1;
                    let f = &mut self.frames[di];
                    let v = f.regs[rs as usize];
                    f.stack.push(v);
                }
                LowOp::Pop { rd } => {
                    self.trace.region_access[1] += 1;
                    let f = &mut self.frames[di];
                    let v = fault!(f.stack.pop().ok_or(Fault::PopEmpty));
                    f.regs[rd as usize] = v;
                }
                LowOp::Syscall => {
                    self.trace.syscalls += 1;
                    self.frames[di].pending_args.clear();
                }
                LowOp::Halt => return Outcome::Fault(Fault::Aborted),
                LowOp::Nop => {}
            }
            self.frames[di].pc = next_pc;
        }
    }

    fn library_call(&mut self, lib: LibFn, args: &[Value]) -> Result<Value, Fault> {
        self.trace.library_calls += 1;
        let arg = |i: usize| args.get(i).copied().unwrap_or(Value::Int(0));
        match lib {
            LibFn::Memmove => {
                let n = arg(2).as_int().clamp(0, 1 << 20) as usize;
                let src = self.mem.check_range(arg(1), n)?;
                let dst = self.mem.check_range(arg(0), n)?;
                self.trace.region_access[region_idx(src.region)] += n as u64;
                self.mem.read_bulk(src, n, &mut self.scratch_a)?;
                self.trace.region_access[region_idx(dst.region)] += n as u64;
                self.mem.write_bulk(dst, &self.scratch_a)?;
                Ok(arg(0))
            }
            LibFn::Memset => {
                let n = arg(2).as_int().clamp(0, 1 << 20) as usize;
                let dst = self.mem.check_range(arg(0), n)?;
                let byte = arg(1).as_int() as u8;
                self.scratch_a.clear();
                self.scratch_a.resize(n, byte);
                self.trace.region_access[region_idx(dst.region)] += n as u64;
                self.mem.write_bulk(dst, &self.scratch_a)?;
                Ok(arg(0))
            }
            LibFn::Memcmp => {
                let n = arg(2).as_int().clamp(0, 1 << 20) as usize;
                let a = self.mem.check_range(arg(0), n)?;
                let b = self.mem.check_range(arg(1), n)?;
                self.trace.region_access[region_idx(a.region)] += n as u64;
                self.mem.read_bulk(a, n, &mut self.scratch_a)?;
                self.trace.region_access[region_idx(b.region)] += n as u64;
                self.mem.read_bulk(b, n, &mut self.scratch_b)?;
                Ok(Value::Int(match self.scratch_a.cmp(&self.scratch_b) {
                    std::cmp::Ordering::Less => -1,
                    std::cmp::Ordering::Equal => 0,
                    std::cmp::Ordering::Greater => 1,
                }))
            }
            LibFn::Strlen => {
                let p = arg(0).as_ptr().ok_or(Fault::BadPointer)?;
                let ri = region_idx(p.region);
                let mut n = 0i64;
                loop {
                    self.trace.region_access[ri] += 1;
                    let b = self.mem.read(p.offset_by(n))?;
                    if b == 0 {
                        return Ok(Value::Int(n));
                    }
                    n += 1;
                }
            }
            LibFn::Malloc => {
                let n = arg(0).as_int().clamp(0, 1 << 20) as usize;
                match self.mem.alloc(n) {
                    Some(off) => Ok(Value::Ptr(Addr { region: Region::Heap, offset: off })),
                    None => Ok(Value::Int(0)), // NULL on exhaustion
                }
            }
            LibFn::Free => match arg(0) {
                Value::Ptr(p) if p.region == Region::Heap => {
                    self.mem.free(p.offset)?;
                    Ok(Value::Int(0))
                }
                Value::Int(0) => Ok(Value::Int(0)), // free(NULL) is a no-op
                _ => Err(Fault::BadPointer),
            },
            LibFn::Abs => Ok(Value::Int(arg(0).as_int().wrapping_abs())),
            LibFn::Min => Ok(Value::Int(arg(0).as_int().min(arg(1).as_int()))),
            LibFn::Max => Ok(Value::Int(arg(0).as_int().max(arg(1).as_int()))),
            LibFn::Checksum => {
                let n = arg(1).as_int().clamp(0, 1 << 20) as usize;
                let p = self.mem.check_range(arg(0), n)?;
                self.trace.region_access[region_idx(p.region)] += n as u64;
                self.mem.read_bulk(p, n, &mut self.scratch_a)?;
                let mut h = 0xcbf29ce484222325u64;
                for &b in &self.scratch_a {
                    h ^= b as u64;
                    h = h.wrapping_mul(0x100000001b3);
                }
                Ok(Value::Int(h as i64))
            }
            LibFn::LogEvent => {
                // Reads the message string (library-region traffic).
                if let Some(p) = arg(0).as_ptr() {
                    let ri = region_idx(p.region);
                    let mut n = 0i64;
                    while let Ok(b) = self.mem.read(p.offset_by(n)) {
                        self.trace.region_access[ri] += 1;
                        if b == 0 {
                            break;
                        }
                        n += 1;
                    }
                }
                Ok(Value::Int(0))
            }
            LibFn::Abort => Err(Fault::Aborted),
            LibFn::Unknown => Err(Fault::BadCall),
        }
    }
}

/// One engine-dispatched execution session over a binary: a reusable
/// [`FastVm`] under the fast engine, or per-run interpreter construction
/// under [`Engine::Interp`]. Returns the run's edge ids alongside the
/// result for coverage-guided fuzzing.
pub(crate) enum Session<'a> {
    /// Fast engine with its reusable VM.
    Fast(Box<FastVm<'a>>),
    /// Reference interpreter (fresh `Vm` per run).
    Interp {
        /// The binary to execute.
        binary: &'a LoadedBinary,
        /// VM limits.
        cfg: VmConfig,
    },
}

impl<'a> Session<'a> {
    pub(crate) fn new(binary: &'a LoadedBinary, cfg: &VmConfig) -> Session<'a> {
        match cfg.engine {
            Engine::Fast => Session::Fast(Box::new(FastVm::new(binary, cfg))),
            Engine::Interp => Session::Interp { binary, cfg: cfg.clone() },
        }
    }

    /// Run `func` under `env`, returning the result and the run's distinct
    /// edge ids in unspecified order — the fuzzer consumes edges purely as
    /// sets, so the per-round sort is skipped. The result and the edge
    /// *set* are identical between engines, bit for bit.
    pub(crate) fn run_env(&mut self, func: usize, env: &ExecEnv) -> (RunResult, Vec<u32>) {
        match self {
            Session::Fast(vm) => {
                vm.set_env(&env.input, &env.arg_values(), &env.global_overrides);
                let result = vm.run(func);
                let edges = vm.edge_ids_unordered();
                (result, edges)
            }
            Session::Interp { binary, cfg } => {
                let image = binary.image();
                let mut vm = Vm::new(&image, cfg, env.input.clone(), &env.global_overrides);
                let outcome = vm.run(func, env.arg_values());
                let result = RunResult {
                    outcome,
                    features: vm.trace().features(),
                    coverage: vm.trace().unique_count(),
                };
                let edges = vm.trace().edge_ids_unordered();
                (result, edges)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fwbin::isa::{Arch, OptLevel};
    use fwlang::gen::Generator;

    fn assert_bitwise(fast: &RunResult, interp: &RunResult, ctx: &str) {
        match (&fast.outcome, &interp.outcome) {
            (Outcome::Returned(Value::Float(a)), Outcome::Returned(Value::Float(b))) => {
                assert_eq!(a.to_bits(), b.to_bits(), "{ctx}: float return differs");
            }
            (a, b) => assert_eq!(a, b, "{ctx}: outcome differs"),
        }
        assert_eq!(
            fast.features.as_slice().iter().map(|f| f.to_bits()).collect::<Vec<_>>(),
            interp.features.as_slice().iter().map(|f| f.to_bits()).collect::<Vec<_>>(),
            "{ctx}: features differ"
        );
        assert_eq!(fast.coverage, interp.coverage, "{ctx}: coverage differs");
    }

    /// One reusable `FastVm` across many (func, env, budget) combinations
    /// must match a fresh interpreter per run — outcomes, features,
    /// coverage, AND edge sets — including Timeout/Fault at tiny budgets.
    #[test]
    fn reused_fast_vm_matches_fresh_interpreter_including_edges() {
        for (seed, arch) in [(3u64, Arch::X86), (7, Arch::Arm64), (11, Arch::Arm32)] {
            let lib = Generator::new(seed).library_sized("libident", 4);
            let bin = fwbin::compile_library(&lib, arch, OptLevel::O1).unwrap();
            let loaded = LoadedBinary::load(bin).unwrap();
            let envs = [
                ExecEnv::for_buffer(vec![0xAB; 12], &[3, 1]),
                ExecEnv::for_buffer(vec![], &[0, 0]),
                ExecEnv::for_buffer((0..20).collect(), &[5, 2]),
            ];
            for budget in [1u64, 5, 17, 100, 200_000] {
                let cfg = VmConfig { max_instructions: budget, ..VmConfig::default() };
                let mut vm = FastVm::new(&loaded, &cfg);
                for func in 0..loaded.function_count() {
                    for env in &envs {
                        vm.set_env(&env.input, &env.arg_values(), &env.global_overrides);
                        let fast = vm.run(func);
                        let fast_edges = vm.edge_ids();
                        let image = loaded.image();
                        let mut ivm =
                            Vm::new(&image, &cfg, env.input.clone(), &env.global_overrides);
                        let outcome = ivm.run(func, env.arg_values());
                        let interp = RunResult {
                            outcome,
                            features: ivm.trace().features(),
                            coverage: ivm.trace().unique_count(),
                        };
                        let ctx = format!("seed {seed} {arch} func {func} budget {budget}");
                        assert_bitwise(&fast, &interp, &ctx);
                        assert_eq!(fast_edges, ivm.trace().edge_ids(), "{ctx}: edges differ");
                    }
                }
            }
        }
    }

    /// Out-of-range function indices return `Fault(BadCall)` identically
    /// (the session layer has no assert; panicking contracts live in
    /// `run_any`/`EnvPool::run`/`fuzz_function`).
    #[test]
    fn oob_function_index_is_badcall_on_both_engines() {
        let lib = Generator::new(5).library_sized("liboob", 2);
        let bin = fwbin::compile_library(&lib, Arch::Amd64, OptLevel::O2).unwrap();
        let loaded = LoadedBinary::load(bin).unwrap();
        let env = ExecEnv::for_buffer(vec![1, 2, 3], &[0]);
        let cfg = VmConfig::default();
        for engine in [Engine::Fast, Engine::Interp] {
            let mut s = Session::new(&loaded, &VmConfig { engine, ..cfg.clone() });
            let (r, edges) = s.run_env(99, &env);
            assert_eq!(r.outcome, Outcome::Fault(Fault::BadCall), "{engine:?}");
            assert_eq!(r.coverage, 0, "{engine:?}");
            assert!(edges.is_empty(), "{engine:?}");
        }
    }
}
