//! The interpreter: executes one function of a loaded binary in a fixed
//! execution environment, collecting the Table II dynamic features.
//!
//! Execution outcomes mirror §III-B of the paper: "the candidate f may
//! terminate, the candidate f may trigger a system exception, or the
//! candidate f may go into an infinite loop. If the candidate f triggers a
//! system exception, we will remove the candidate function from a candidate
//! set." — [`Outcome::Returned`], [`Outcome::Fault`] and
//! [`Outcome::Timeout`] respectively (timeouts are enforced with an
//! instruction budget).

use crate::trace::Trace;
use crate::value::{Addr, Region, Value};
use fwbin::isa::{BinOp, Cond, Inst};
use serde::{Deserialize, Serialize};

/// Which engine executes runs.
///
/// Both engines produce bitwise-identical [`crate::loader::RunResult`]s
/// (outcome, all 21 features, coverage) and edge sets; the fast engine is
/// the default, the interpreter stays available for differential testing
/// (see DESIGN.md §15).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum Engine {
    /// Pre-lowered fast engine: indexed dispatch over unpacked operands,
    /// dense PC-count tracing, dirty-tracked snapshot resets
    /// ([`crate::engine::FastVm`]).
    #[default]
    Fast,
    /// The reference decode-per-step interpreter ([`Vm`]).
    Interp,
}

impl std::str::FromStr for Engine {
    type Err = String;

    fn from_str(s: &str) -> Result<Engine, String> {
        match s {
            "fast" => Ok(Engine::Fast),
            "interp" | "interpreter" => Ok(Engine::Interp),
            other => Err(format!("unknown engine `{other}` (expected `fast` or `interp`)")),
        }
    }
}

/// Interpreter limits.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct VmConfig {
    /// Instruction budget before declaring a timeout (infinite-loop guard).
    pub max_instructions: u64,
    /// Maximum call-stack depth.
    pub max_depth: usize,
    /// Heap byte budget for `malloc`.
    pub heap_limit: usize,
    /// Which execution engine runs functions. Not part of cache keys or
    /// environment fingerprints: both engines produce identical profiles.
    #[serde(default)]
    pub engine: Engine,
}

impl Default for VmConfig {
    fn default() -> VmConfig {
        VmConfig {
            max_instructions: 200_000,
            max_depth: 64,
            heap_limit: 1 << 20,
            engine: Engine::default(),
        }
    }
}

/// A runtime fault ("system exception" in the paper's terms).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Fault {
    /// Memory access outside the valid bytes of a region.
    OutOfBounds(Region),
    /// Dereference of a non-pointer value.
    BadPointer,
    /// Integer division or remainder by zero.
    DivByZero,
    /// Store into read-only memory (the string pool).
    WriteToReadOnly,
    /// `Pop` on an empty machine stack.
    PopEmpty,
    /// Call depth exceeded.
    StackOverflow,
    /// Call through an invalid symbol.
    BadCall,
    /// `abort()` or a `Halt` trap.
    Aborted,
    /// Heap access to a freed allocation, or double free.
    UseAfterFree,
    /// Frame-slot index out of range.
    BadSlot,
    /// Jump outside the function body.
    BadJump,
    /// `LoadStr` with a string id outside the binary's string table.
    BadString,
    /// `FBin` with an operator that has no float semantics (an
    /// integer-only operator reaching the float unit).
    BadFloatOp,
}

/// Result of running a function.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Outcome {
    /// Normal termination with the returned value.
    Returned(Value),
    /// A system exception.
    Fault(Fault),
    /// Instruction budget exhausted.
    Timeout,
}

impl Outcome {
    /// Whether the run terminated normally.
    pub fn is_ok(&self) -> bool {
        matches!(self, Outcome::Returned(_))
    }
}

/// Pre-decoded executable binary (see `crate::loader`).
pub struct ExecImage<'a> {
    /// Decoded code per function.
    pub code: &'a [Vec<Inst>],
    /// Frame slot counts per function.
    pub frame_slots: &'a [u32],
    /// Import names, indexed by `Sym::import`.
    pub imports: &'a [String],
    /// String pool blob (the `Lib` region) with per-string offsets.
    pub strings_blob: &'a [u8],
    /// Offset of each string id within the blob.
    pub string_offsets: &'a [i64],
    /// Initial global values.
    pub globals_init: &'a [i64],
}

struct Heap {
    data: Vec<u8>,
    /// (start, len, live) per allocation.
    allocs: Vec<(usize, usize, bool)>,
    limit: usize,
}

impl Heap {
    fn alloc(&mut self, n: usize) -> Option<i64> {
        if self.data.len() + n > self.limit {
            return None;
        }
        let start = self.data.len();
        self.data.resize(start + n, 0);
        self.allocs.push((start, n, true));
        Some(start as i64)
    }

    fn free(&mut self, off: i64) -> Result<(), Fault> {
        for a in &mut self.allocs {
            if a.0 as i64 == off {
                if !a.2 {
                    return Err(Fault::UseAfterFree);
                }
                a.2 = false;
                return Ok(());
            }
        }
        Err(Fault::BadPointer)
    }

    fn check(&self, off: i64, len: usize) -> Result<usize, Fault> {
        if off < 0 {
            return Err(Fault::OutOfBounds(Region::Heap));
        }
        let off = off as usize;
        for &(start, alen, live) in &self.allocs {
            if off >= start && off + len <= start + alen {
                return if live { Ok(off) } else { Err(Fault::UseAfterFree) };
            }
        }
        Err(Fault::OutOfBounds(Region::Heap))
    }
}

struct Frame {
    func: u32,
    pc: u32,
    /// Previous executed pc within this frame (`u32::MAX` = none yet);
    /// source end of the next recorded control-flow edge.
    prev_pc: u32,
    regs: [Value; 64],
    slots: Vec<Value>,
    stack: Vec<Value>,
    args: Vec<Value>,
    pending_args: Vec<Value>,
    ret_val: Value,
    flags: Option<(Value, Value)>,
}

impl Frame {
    fn new(func: u32, args: Vec<Value>, slots: u32) -> Frame {
        Frame {
            func,
            pc: 0,
            prev_pc: u32::MAX,
            regs: [Value::Int(0); 64],
            slots: vec![Value::Int(0); slots as usize],
            stack: Vec::new(),
            args,
            pending_args: Vec::new(),
            ret_val: Value::Int(0),
            flags: None,
        }
    }
}

/// The virtual machine for one function execution.
pub struct Vm<'a> {
    image: &'a ExecImage<'a>,
    cfg: &'a VmConfig,
    /// Mutable copy of the anonymous input buffer.
    pub input: Vec<u8>,
    globals: Vec<Value>,
    heap: Heap,
    trace: Trace,
    executed: u64,
    last_ret: Value,
}

pub(crate) fn eval_cond(cond: Cond, a: Value, b: Value) -> bool {
    let ord = if matches!(a, Value::Float(_)) || matches!(b, Value::Float(_)) {
        a.as_float().partial_cmp(&b.as_float())
    } else {
        Some(a.as_int().cmp(&b.as_int()))
    };
    match ord {
        None => matches!(cond, Cond::Ne), // NaN: only != holds
        Some(o) => match cond {
            Cond::Eq => o.is_eq(),
            Cond::Ne => o.is_ne(),
            Cond::Lt => o.is_lt(),
            Cond::Le => o.is_le(),
            Cond::Gt => o.is_gt(),
            Cond::Ge => o.is_ge(),
        },
    }
}

pub(crate) fn int_binop(op: BinOp, a: Value, b: Value) -> Result<Value, Fault> {
    // Pointer arithmetic: ptr ± int stays a pointer; ptr - ptr is an int.
    if let (Value::Ptr(pa), Value::Ptr(pb)) = (a, b) {
        if op == BinOp::Sub {
            return Ok(Value::Int(pa.offset.wrapping_sub(pb.offset)));
        }
    }
    if let Value::Ptr(p) = a {
        match op {
            BinOp::Add => return Ok(Value::Ptr(p.offset_by(b.as_int()))),
            BinOp::Sub => return Ok(Value::Ptr(p.offset_by(-b.as_int()))),
            _ => {}
        }
    }
    if let Value::Ptr(p) = b {
        if op == BinOp::Add {
            return Ok(Value::Ptr(p.offset_by(a.as_int())));
        }
    }
    let (x, y) = (a.as_int(), b.as_int());
    match fwbin::astopt::eval_int_binop(op, x, y) {
        Some(v) => Ok(Value::Int(v)),
        None => Err(Fault::DivByZero),
    }
}

/// Process-global `vm.executions` counter handle, resolved once.
///
/// [`Vm::run`] is the single chokepoint for every execution path — loader
/// `run_any`/`run_export`, the fuzzer, and [`crate::envpool::EnvPool`] —
/// so a warm cache-served audit can prove "zero VM executions" by reading
/// `vm.executions` from the global scope registry.
pub(crate) fn executions_counter() -> &'static scope::Counter {
    static COUNTER: std::sync::OnceLock<scope::Counter> = std::sync::OnceLock::new();
    COUNTER.get_or_init(|| scope::global().counter("vm.executions"))
}

/// Materialize a global table from an image's initializers plus per-env
/// overrides. Shared by [`Vm::new`] and the environment pool's snapshots.
pub(crate) fn resolve_globals(image: &ExecImage<'_>, overrides: &[(u32, i64)]) -> Vec<Value> {
    let mut globals: Vec<Value> = image.globals_init.iter().map(|&g| Value::Int(g)).collect();
    for &(gid, v) in overrides {
        if let Some(slot) = globals.get_mut(gid as usize) {
            *slot = Value::Int(v);
        }
    }
    globals
}

impl<'a> Vm<'a> {
    /// Create a VM over an execution image with the given input buffer and
    /// per-run global overrides.
    pub fn new(
        image: &'a ExecImage<'a>,
        cfg: &'a VmConfig,
        input: Vec<u8>,
        global_overrides: &[(u32, i64)],
    ) -> Vm<'a> {
        Vm::with_globals(image, cfg, input, resolve_globals(image, global_overrides))
    }

    /// Like [`Vm::new`], but with an already-materialized global table.
    ///
    /// [`crate::envpool::EnvPool`] resolves `globals_init` + overrides once
    /// per environment and clones the snapshot here for every run, instead
    /// of re-walking the override list per execution.
    pub fn with_globals(
        image: &'a ExecImage<'a>,
        cfg: &'a VmConfig,
        input: Vec<u8>,
        globals: Vec<Value>,
    ) -> Vm<'a> {
        Vm {
            image,
            cfg,
            input,
            globals,
            heap: Heap { data: Vec::new(), allocs: Vec::new(), limit: cfg.heap_limit },
            trace: Trace::new(),
            executed: 0,
            last_ret: Value::Int(0),
        }
    }

    /// The collected trace (valid after [`Vm::run`]).
    pub fn trace(&self) -> &Trace {
        &self.trace
    }

    fn load_byte(&mut self, base: Value, idx: i64) -> Result<u8, Fault> {
        let p = base.as_ptr().ok_or(Fault::BadPointer)?;
        let addr = p.offset_by(idx);
        self.trace.record_access(addr.region);
        self.read_region(addr)
    }

    fn read_region(&self, addr: Addr) -> Result<u8, Fault> {
        match addr.region {
            Region::Anon => {
                if addr.offset < 0 || addr.offset as usize >= self.input.len() {
                    Err(Fault::OutOfBounds(Region::Anon))
                } else {
                    Ok(self.input[addr.offset as usize])
                }
            }
            Region::Heap => {
                let off = self.heap.check(addr.offset, 1)?;
                Ok(self.heap.data[off])
            }
            Region::Lib => {
                if addr.offset < 0 || addr.offset as usize >= self.image.strings_blob.len() {
                    Err(Fault::OutOfBounds(Region::Lib))
                } else {
                    Ok(self.image.strings_blob[addr.offset as usize])
                }
            }
            Region::Stack | Region::Other => Err(Fault::BadPointer),
        }
    }

    fn store_byte(&mut self, base: Value, idx: i64, byte: u8) -> Result<(), Fault> {
        let p = base.as_ptr().ok_or(Fault::BadPointer)?;
        let addr = p.offset_by(idx);
        self.trace.record_access(addr.region);
        match addr.region {
            Region::Anon => {
                if addr.offset < 0 || addr.offset as usize >= self.input.len() {
                    Err(Fault::OutOfBounds(Region::Anon))
                } else {
                    self.input[addr.offset as usize] = byte;
                    Ok(())
                }
            }
            Region::Heap => {
                let off = self.heap.check(addr.offset, 1)?;
                self.heap.data[off] = byte;
                Ok(())
            }
            Region::Lib => Err(Fault::WriteToReadOnly),
            Region::Stack | Region::Other => Err(Fault::BadPointer),
        }
    }

    /// Bounds-check `len` bytes from `addr` and return (region, start) for
    /// bulk library-routine operations.
    fn check_range(&self, base: Value, len: usize) -> Result<Addr, Fault> {
        let p = base.as_ptr().ok_or(Fault::BadPointer)?;
        if len == 0 {
            return Ok(p);
        }
        match p.region {
            Region::Anon => {
                if p.offset < 0 || p.offset as usize + len > self.input.len() {
                    Err(Fault::OutOfBounds(Region::Anon))
                } else {
                    Ok(p)
                }
            }
            Region::Heap => {
                self.heap.check(p.offset, len)?;
                Ok(p)
            }
            Region::Lib => {
                if p.offset < 0 || p.offset as usize + len > self.image.strings_blob.len() {
                    Err(Fault::OutOfBounds(Region::Lib))
                } else {
                    Ok(p)
                }
            }
            Region::Stack | Region::Other => Err(Fault::BadPointer),
        }
    }

    fn read_bulk(&mut self, addr: Addr, len: usize) -> Result<Vec<u8>, Fault> {
        self.trace.record_accesses(addr.region, len as u64);
        let mut out = Vec::with_capacity(len);
        for i in 0..len {
            out.push(self.read_region(addr.offset_by(i as i64))?);
        }
        Ok(out)
    }

    fn write_bulk(&mut self, addr: Addr, bytes: &[u8]) -> Result<(), Fault> {
        // A zero-length write touches nothing: `check_range` skips bounds
        // checks for len 0, so reaching the per-region arms with an
        // arbitrary address could fault (or panic on a wild Anon offset)
        // for a write that C semantics say is a no-op.
        if bytes.is_empty() {
            return Ok(());
        }
        self.trace.record_accesses(addr.region, bytes.len() as u64);
        match addr.region {
            Region::Anon => {
                let s = addr.offset as usize;
                self.input[s..s + bytes.len()].copy_from_slice(bytes);
                Ok(())
            }
            Region::Heap => {
                let off = self.heap.check(addr.offset, bytes.len())?;
                self.heap.data[off..off + bytes.len()].copy_from_slice(bytes);
                Ok(())
            }
            Region::Lib => Err(Fault::WriteToReadOnly),
            Region::Stack | Region::Other => Err(Fault::BadPointer),
        }
    }

    fn library_call(&mut self, name: &str, args: &[Value]) -> Result<Value, Fault> {
        self.trace.library_calls += 1;
        let arg = |i: usize| args.get(i).copied().unwrap_or(Value::Int(0));
        match name {
            "memmove" | "memcpy" => {
                let n = arg(2).as_int().clamp(0, 1 << 20) as usize;
                let src = self.check_range(arg(1), n)?;
                let dst = self.check_range(arg(0), n)?;
                let data = self.read_bulk(src, n)?;
                self.write_bulk(dst, &data)?;
                Ok(arg(0))
            }
            "memset" => {
                let n = arg(2).as_int().clamp(0, 1 << 20) as usize;
                let dst = self.check_range(arg(0), n)?;
                let byte = arg(1).as_int() as u8;
                self.write_bulk(dst, &vec![byte; n])?;
                Ok(arg(0))
            }
            "memcmp" => {
                let n = arg(2).as_int().clamp(0, 1 << 20) as usize;
                let a = self.check_range(arg(0), n)?;
                let b = self.check_range(arg(1), n)?;
                let da = self.read_bulk(a, n)?;
                let db = self.read_bulk(b, n)?;
                Ok(Value::Int(match da.cmp(&db) {
                    std::cmp::Ordering::Less => -1,
                    std::cmp::Ordering::Equal => 0,
                    std::cmp::Ordering::Greater => 1,
                }))
            }
            "strlen" => {
                let p = arg(0).as_ptr().ok_or(Fault::BadPointer)?;
                let mut n = 0i64;
                loop {
                    self.trace.record_access(p.region);
                    let b = self.read_region(p.offset_by(n))?;
                    if b == 0 {
                        return Ok(Value::Int(n));
                    }
                    n += 1;
                }
            }
            "malloc" => {
                let n = arg(0).as_int().clamp(0, 1 << 20) as usize;
                match self.heap.alloc(n) {
                    Some(off) => Ok(Value::Ptr(Addr { region: Region::Heap, offset: off })),
                    None => Ok(Value::Int(0)), // NULL on exhaustion
                }
            }
            "free" => {
                match arg(0) {
                    Value::Ptr(p) if p.region == Region::Heap => {
                        self.heap.free(p.offset)?;
                        Ok(Value::Int(0))
                    }
                    Value::Int(0) => Ok(Value::Int(0)), // free(NULL) is a no-op
                    _ => Err(Fault::BadPointer),
                }
            }
            "abs" => Ok(Value::Int(arg(0).as_int().wrapping_abs())),
            "min" => Ok(Value::Int(arg(0).as_int().min(arg(1).as_int()))),
            "max" => Ok(Value::Int(arg(0).as_int().max(arg(1).as_int()))),
            "checksum" => {
                let n = arg(1).as_int().clamp(0, 1 << 20) as usize;
                let p = self.check_range(arg(0), n)?;
                let data = self.read_bulk(p, n)?;
                let mut h = 0xcbf29ce484222325u64;
                for b in data {
                    h ^= b as u64;
                    h = h.wrapping_mul(0x100000001b3);
                }
                Ok(Value::Int(h as i64))
            }
            "log_event" => {
                // Reads the message string (library-region traffic).
                if let Some(p) = arg(0).as_ptr() {
                    let mut n = 0i64;
                    while let Ok(b) = self.read_region(p.offset_by(n)) {
                        self.trace.record_access(p.region);
                        if b == 0 {
                            break;
                        }
                        n += 1;
                    }
                }
                Ok(Value::Int(0))
            }
            "abort" => Err(Fault::Aborted),
            _ => Err(Fault::BadCall),
        }
    }

    /// Run function `func_idx` with the given argument list to completion.
    pub fn run(&mut self, func_idx: usize, args: Vec<Value>) -> Outcome {
        executions_counter().inc();
        if func_idx >= self.image.code.len() {
            return Outcome::Fault(Fault::BadCall);
        }
        let mut frames = vec![Frame::new(
            func_idx as u32,
            args,
            self.image.frame_slots[func_idx],
        )];
        loop {
            let depth = frames.len() as u64 + 1; // +1 models the loader frame
            let frame = frames.last_mut().expect("frame stack never empty here");
            let code = &self.image.code[frame.func as usize];
            if frame.pc as usize >= code.len() {
                return Outcome::Fault(Fault::BadJump);
            }
            if self.executed >= self.cfg.max_instructions {
                return Outcome::Timeout;
            }
            self.executed += 1;
            let inst = code[frame.pc as usize];
            let is_load = matches!(
                inst,
                Inst::LoadB { .. } | Inst::LoadSlot { .. } | Inst::LoadGlobal { .. } | Inst::Pop { .. }
            );
            let is_store = matches!(
                inst,
                Inst::StoreB { .. }
                    | Inst::StoreSlot { .. }
                    | Inst::StoreGlobal { .. }
                    | Inst::Push { .. }
            );
            self.trace.record_inst(
                frame.func,
                frame.pc,
                depth,
                inst.is_arith(),
                matches!(inst, Inst::Jmp { .. } | Inst::JCc { .. } | Inst::CBr { .. } | Inst::JmpInd { .. }),
                matches!(inst, Inst::Call { .. }),
                is_load,
                is_store,
            );
            if frame.prev_pc != u32::MAX {
                self.trace.record_edge(frame.func, frame.prev_pc, frame.pc);
            }
            frame.prev_pc = frame.pc;
            let mut next_pc = frame.pc + 1;
            macro_rules! fault {
                ($e:expr) => {
                    match $e {
                        Ok(v) => v,
                        Err(f) => return Outcome::Fault(f),
                    }
                };
            }
            match inst {
                Inst::Label(_) => return Outcome::Fault(Fault::BadJump),
                Inst::MovImm { rd, imm } => frame.regs[rd.0 as usize] = Value::Int(imm),
                Inst::FMovImm { rd, imm } => frame.regs[rd.0 as usize] = Value::Float(imm),
                Inst::Mov { rd, rs } => frame.regs[rd.0 as usize] = frame.regs[rs.0 as usize],
                Inst::LoadStr { rd, sid } => {
                    // An out-of-range string id is container corruption: it
                    // must fault, not silently alias string 0.
                    let off = *fault!(self
                        .image
                        .string_offsets
                        .get(sid as usize)
                        .ok_or(Fault::BadString));
                    frame.regs[rd.0 as usize] = Value::Ptr(Addr { region: Region::Lib, offset: off });
                }
                Inst::LoadGlobal { rd, gid } => {
                    self.trace.record_access(Region::Other);
                    let v = *fault!(self
                        .globals
                        .get(gid as usize)
                        .ok_or(Fault::OutOfBounds(Region::Other)));
                    frame.regs[rd.0 as usize] = v;
                }
                Inst::StoreGlobal { gid, rs } => {
                    self.trace.record_access(Region::Other);
                    let v = frame.regs[rs.0 as usize];
                    let slot = fault!(self
                        .globals
                        .get_mut(gid as usize)
                        .ok_or(Fault::OutOfBounds(Region::Other)));
                    *slot = v;
                }
                Inst::Bin { op, rd, rs1, rs2 } => {
                    let v = fault!(int_binop(op, frame.regs[rs1.0 as usize], frame.regs[rs2.0 as usize]));
                    frame.regs[rd.0 as usize] = v;
                }
                Inst::BinImm { op, rd, rs, imm } => {
                    let v = fault!(int_binop(op, frame.regs[rs.0 as usize], Value::Int(imm)));
                    frame.regs[rd.0 as usize] = v;
                }
                Inst::FBin { op, rd, rs1, rs2 } => {
                    let a = frame.regs[rs1.0 as usize].as_float();
                    let b = frame.regs[rs2.0 as usize].as_float();
                    // `eval_float_binop` is `None` only for integer-only
                    // operators; that is a malformed instruction stream and
                    // must fault instead of silently producing 0.0.
                    // (Float div-by-zero keeps IEEE semantics: ±inf/NaN.)
                    let v = fault!(fwbin::astopt::eval_float_binop(op, a, b)
                        .ok_or(Fault::BadFloatOp));
                    frame.regs[rd.0 as usize] = Value::Float(v);
                }
                Inst::FMulAdd { rd, rs1, rs2, rs3 } => {
                    let v = frame.regs[rs1.0 as usize].as_float()
                        * frame.regs[rs2.0 as usize].as_float()
                        + frame.regs[rs3.0 as usize].as_float();
                    frame.regs[rd.0 as usize] = Value::Float(v);
                }
                Inst::Neg { rd, rs } => {
                    frame.regs[rd.0 as usize] =
                        Value::Int(frame.regs[rs.0 as usize].as_int().wrapping_neg())
                }
                Inst::Not { rd, rs } => {
                    frame.regs[rd.0 as usize] =
                        Value::Int(!frame.regs[rs.0 as usize].is_truthy() as i64)
                }
                Inst::Cmp { rs1, rs2 } => {
                    frame.flags = Some((frame.regs[rs1.0 as usize], frame.regs[rs2.0 as usize]))
                }
                Inst::SetCc { cond, rd } => {
                    let (a, b) = frame.flags.unwrap_or((Value::Int(0), Value::Int(0)));
                    frame.regs[rd.0 as usize] = Value::Int(eval_cond(cond, a, b) as i64);
                }
                Inst::CmpSet { cond, rd, rs1, rs2 } => {
                    let r = eval_cond(cond, frame.regs[rs1.0 as usize], frame.regs[rs2.0 as usize]);
                    frame.regs[rd.0 as usize] = Value::Int(r as i64);
                }
                Inst::LoadB { rd, base, idx } => {
                    let b = frame.regs[base.0 as usize];
                    let i = frame.regs[idx.0 as usize].as_int();
                    let byte = fault!(self.load_byte(b, i));
                    let frame = frames.last_mut().unwrap();
                    frame.regs[rd.0 as usize] = Value::Int(byte as i64);
                    frame.pc = next_pc;
                    continue;
                }
                Inst::StoreB { rs, base, idx } => {
                    let v = frame.regs[rs.0 as usize].as_int() as u8;
                    let b = frame.regs[base.0 as usize];
                    let i = frame.regs[idx.0 as usize].as_int();
                    fault!(self.store_byte(b, i, v));
                    let frame = frames.last_mut().unwrap();
                    frame.pc = next_pc;
                    continue;
                }
                Inst::LoadSlot { rd, slot } => {
                    self.trace.record_access(Region::Stack);
                    let v = *fault!(frame.slots.get(slot as usize).ok_or(Fault::BadSlot));
                    frame.regs[rd.0 as usize] = v;
                }
                Inst::StoreSlot { rs, slot } => {
                    self.trace.record_access(Region::Stack);
                    let v = frame.regs[rs.0 as usize];
                    let s = fault!(frame.slots.get_mut(slot as usize).ok_or(Fault::BadSlot));
                    *s = v;
                }
                Inst::Jmp { target } => next_pc = target,
                Inst::JCc { cond, target } => {
                    let (a, b) = frame.flags.unwrap_or((Value::Int(0), Value::Int(0)));
                    if eval_cond(cond, a, b) {
                        next_pc = target;
                    }
                }
                Inst::CBr { cond, rs1, rs2, target } => {
                    if eval_cond(cond, frame.regs[rs1.0 as usize], frame.regs[rs2.0 as usize]) {
                        next_pc = target;
                    }
                }
                Inst::JmpInd { rs } => {
                    let t = frame.regs[rs.0 as usize].as_int();
                    if t < 0 || t as usize >= code.len() {
                        return Outcome::Fault(Fault::BadJump);
                    }
                    next_pc = t as u32;
                }
                Inst::SetArg { idx, rs } => {
                    let v = frame.regs[rs.0 as usize];
                    let i = idx as usize;
                    if frame.pending_args.len() <= i {
                        frame.pending_args.resize(i + 1, Value::Int(0));
                    }
                    frame.pending_args[i] = v;
                }
                Inst::LoadArg { rd, idx } => {
                    frame.regs[rd.0 as usize] =
                        frame.args.get(idx as usize).copied().unwrap_or(Value::Int(0));
                }
                Inst::Call { sym } => {
                    let args = std::mem::take(&mut frame.pending_args);
                    if sym.is_import() {
                        let name = fault!(self
                            .image
                            .imports
                            .get(sym.index() as usize)
                            .cloned()
                            .ok_or(Fault::BadCall));
                        let ret = fault!(self.library_call(&name, &args));
                        self.last_ret = ret;
                        let frame = frames.last_mut().unwrap();
                        frame.pc = next_pc;
                        continue;
                    }
                    let callee = sym.index() as usize;
                    if callee >= self.image.code.len() {
                        return Outcome::Fault(Fault::BadCall);
                    }
                    if frames.len() >= self.cfg.max_depth {
                        return Outcome::Fault(Fault::StackOverflow);
                    }
                    self.trace.binary_calls += 1;
                    let frame = frames.last_mut().unwrap();
                    frame.pc = next_pc; // return address
                    frames.push(Frame::new(
                        callee as u32,
                        args,
                        self.image.frame_slots[callee],
                    ));
                    continue;
                }
                Inst::GetRet { rd } => frame.regs[rd.0 as usize] = self.last_ret,
                Inst::SetRet { rs } => frame.ret_val = frame.regs[rs.0 as usize],
                Inst::Ret => {
                    let done = frames.pop().expect("frame stack never empty here");
                    self.last_ret = done.ret_val;
                    if frames.is_empty() {
                        return Outcome::Returned(self.last_ret);
                    }
                    continue; // caller's pc was advanced at call time
                }
                Inst::Push { rs } => {
                    self.trace.record_access(Region::Stack);
                    let v = frame.regs[rs.0 as usize];
                    frame.stack.push(v);
                }
                Inst::Pop { rd } => {
                    self.trace.record_access(Region::Stack);
                    let v = fault!(frame.stack.pop().ok_or(Fault::PopEmpty));
                    frame.regs[rd.0 as usize] = v;
                }
                Inst::Syscall { num: _ } => {
                    self.trace.syscalls += 1;
                    frame.pending_args.clear();
                }
                Inst::Halt => return Outcome::Fault(Fault::Aborted),
                Inst::Nop => {}
            }
            let frame = frames.last_mut().unwrap();
            frame.pc = next_pc;
        }
    }
}
