//! Coverage-guided input fuzzing — the LibFuzzer analog of §IV-B ("we use
//! LibFuzzer to fuzz candidate functions and generate different input
//! sets").
//!
//! The fuzzer mutates the input byte buffer of a `(buf, len, ...)`
//! environment, keeps mutants that increase block coverage of the *target*
//! (CVE) function or execute control-flow edges no earlier input reached,
//! and finally emits up to K execution environments selected greedily by
//! edge coverage — an environment earns its slot only by adding edges the
//! already-kept set misses, so redundant environments are dropped instead
//! of padding the set. The emitted environments are then replayed against
//! every candidate function.

use crate::engine::Session;
use crate::env::ExecEnv;
use crate::exec::VmConfig;
use crate::loader::LoadedBinary;
use crate::trace::EDGE_MAP_SIZE;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Fuzzing configuration.
#[derive(Debug, Clone)]
pub struct FuzzConfig {
    /// Mutation/execution rounds.
    pub rounds: usize,
    /// Maximum input length.
    pub max_len: usize,
    /// Number of environments to emit.
    pub num_envs: usize,
    /// RNG seed.
    pub seed: u64,
    /// Extra scalar arguments appended after `(buf, len)`.
    pub extra_args: Vec<i64>,
}

impl Default for FuzzConfig {
    fn default() -> FuzzConfig {
        FuzzConfig { rounds: 200, max_len: 64, num_envs: 5, seed: 99, extra_args: vec![3, 1] }
    }
}

/// Seed inputs covering common edge shapes.
fn seed_inputs(max_len: usize) -> Vec<Vec<u8>> {
    vec![
        vec![0u8; 8.min(max_len)],
        (0..16.min(max_len)).map(|i| i as u8).collect(),
        vec![0xff; 12.min(max_len)],
        b"\xff\x00\xff\x00headerdata".to_vec(),
        vec![0x7f; 4.min(max_len)],
    ]
}

fn mutate(rng: &mut SmallRng, base: &[u8], max_len: usize) -> Vec<u8> {
    let mut out = base.to_vec();
    match rng.gen_range(0..5) {
        0 => {
            // Flip a byte.
            if !out.is_empty() {
                let i = rng.gen_range(0..out.len());
                out[i] = rng.gen();
            }
        }
        1 => {
            // Insert a byte.
            if out.len() < max_len {
                let i = rng.gen_range(0..=out.len());
                out.insert(i, rng.gen());
            }
        }
        2 => {
            // Delete a byte.
            if out.len() > 1 {
                let i = rng.gen_range(0..out.len());
                out.remove(i);
            }
        }
        3 => {
            // Duplicate-extend.
            if !out.is_empty() && out.len() * 2 <= max_len {
                let copy = out.clone();
                out.extend(copy);
            }
        }
        _ => {
            // Sprinkle interesting values.
            if !out.is_empty() {
                let i = rng.gen_range(0..out.len());
                out[i] = *[0x00u8, 0xff, 0x7f, 0x80, 0x01].get(rng.gen_range(0..5usize)).unwrap();
            }
        }
    }
    if out.is_empty() {
        out.push(0);
    }
    out
}

/// Fuzz `func` of `target`, returning up to `num_envs` coverage-diverse
/// execution environments (fewer when additional environments would add no
/// unexecuted control-flow edges). The returned environments are
/// deterministic in the seed and identical across engines — both engines
/// report the same coverage and edge sets.
///
/// # Panics
/// Panics if `func` is out of range — same contract (and same message) as
/// [`LoadedBinary::run_any`].
pub fn fuzz_function(
    target: &LoadedBinary,
    func: usize,
    cfg: &FuzzConfig,
    vm_cfg: &VmConfig,
) -> Vec<ExecEnv> {
    assert!(
        func < target.function_count(),
        "function index {func} out of range (table holds {})",
        target.function_count()
    );
    let mut rng = SmallRng::seed_from_u64(cfg.seed);
    let mut session = Session::new(target, vm_cfg);
    // Corpus entries: (input, coverage achieved, edges executed).
    let mut corpus: Vec<(Vec<u8>, u64, Vec<u32>)> = Vec::new();
    // Edge buckets any run has executed — direct-indexed, so the per-round
    // novelty scan costs one load per edge instead of a hash lookup.
    let mut seen_edges = vec![false; EDGE_MAP_SIZE].into_boxed_slice();
    for s in seed_inputs(cfg.max_len) {
        let env = ExecEnv::for_buffer(s.clone(), &cfg.extra_args);
        let (r, edges) = session.run_env(func, &env);
        for &e in &edges {
            seen_edges[e as usize] = true;
        }
        corpus.push((s, r.coverage, edges));
    }
    let mut best = corpus.iter().map(|(_, c, _)| *c).max().unwrap_or(0);
    for _ in 0..cfg.rounds {
        let bi = rng.gen_range(0..corpus.len());
        let mutant = mutate(&mut rng, &corpus[bi].0, cfg.max_len);
        let env = ExecEnv::for_buffer(mutant.clone(), &cfg.extra_args);
        let (r, edges) = session.run_env(func, &env);
        let novel = edges.iter().any(|&e| !seen_edges[e as usize]);
        if novel {
            for &e in &edges {
                seen_edges[e as usize] = true;
            }
        }
        // Keep coverage-increasing inputs, inputs reaching new edges, plus
        // occasionally any normal terminator to maintain diversity.
        if r.coverage > best {
            best = r.coverage;
            corpus.push((mutant, r.coverage, edges));
        } else if (novel && corpus.len() < 64)
            || (r.outcome.is_ok() && corpus.len() < 32 && r.coverage + 2 >= best)
        {
            corpus.push((mutant, r.coverage, edges));
        }
    }
    // Rank the most-covering distinct inputs, then keep only environments
    // that execute edges the already-kept set misses: redundant runs add
    // dynamic-stage cost without adding discrimination.
    corpus.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.len().cmp(&b.0.len())));
    corpus.dedup_by(|a, b| a.0 == b.0);
    let mut kept: Vec<ExecEnv> = Vec::new();
    let mut covered = vec![false; EDGE_MAP_SIZE].into_boxed_slice();
    for (input, _, edges) in corpus {
        if kept.len() == cfg.num_envs {
            break;
        }
        if kept.is_empty() || edges.iter().any(|&e| !covered[e as usize]) {
            for &e in &edges {
                covered[e as usize] = true;
            }
            kept.push(ExecEnv::for_buffer(input, &cfg.extra_args));
        }
    }
    kept
}

#[cfg(test)]
mod tests {
    use super::*;
    use fwbin::isa::{Arch, OptLevel};
    use fwlang::ast::*;

    /// Function with a guarded branch only rare inputs reach.
    fn branchy_library() -> Library {
        let mut lib = Library::new("libbranchy");
        let mut f = Function {
            name: "branchy".into(),
            params: vec![
                Param { name: "data".into(), ty: Ty::Buf },
                Param { name: "len".into(), ty: Ty::Int },
            ],
            locals: vec![],
            ret: Some(Ty::Int),
            body: vec![],
            exported: true,
        };
        let i = f.add_local("i", Ty::Int);
        let acc = f.add_local("acc", Ty::Int);
        f.body = vec![
            Stmt::Let { local: acc, value: Expr::ConstInt(0) },
            Stmt::For {
                var: i,
                start: Expr::ConstInt(0),
                end: Expr::Param(1),
                step: Expr::ConstInt(1),
                body: vec![Stmt::If {
                    cond: Expr::cmp(
                        CmpOp::Eq,
                        Expr::load(Expr::Param(0), Expr::Local(i)),
                        Expr::ConstInt(0xAB),
                    ),
                    then_body: vec![Stmt::Let {
                        local: acc,
                        value: Expr::bin(BinOp::Add, Expr::Local(acc), Expr::ConstInt(100)),
                    }],
                    else_body: vec![Stmt::Let {
                        local: acc,
                        value: Expr::bin(BinOp::Add, Expr::Local(acc), Expr::ConstInt(1)),
                    }],
                }],
            },
            Stmt::Return(Some(Expr::Local(acc))),
        ];
        lib.functions.push(f);
        lib
    }

    #[test]
    fn fuzzer_produces_requested_env_count() {
        let bin = fwbin::compile_library(&branchy_library(), Arch::Arm64, OptLevel::O2).unwrap();
        let lb = crate::loader::LoadedBinary::load(bin).unwrap();
        let envs = fuzz_function(&lb, 0, &FuzzConfig::default(), &VmConfig::default());
        // Edge-guided selection may emit fewer than `num_envs` when extra
        // environments would add no new edges — never more, never zero.
        assert!(
            !envs.is_empty() && envs.len() <= 5,
            "expected 1..=5 environments, got {}",
            envs.len()
        );
        // All distinct inputs.
        for i in 0..envs.len() {
            for j in i + 1..envs.len() {
                assert_ne!(envs[i].input, envs[j].input);
            }
        }
    }

    #[test]
    fn fuzzing_is_deterministic() {
        let bin = fwbin::compile_library(&branchy_library(), Arch::X86, OptLevel::O1).unwrap();
        let lb = crate::loader::LoadedBinary::load(bin).unwrap();
        let a = fuzz_function(&lb, 0, &FuzzConfig::default(), &VmConfig::default());
        let b = fuzz_function(&lb, 0, &FuzzConfig::default(), &VmConfig::default());
        assert_eq!(a, b);
    }

    #[test]
    fn coverage_grows_beyond_seeds() {
        // The loop + branch structure means longer/duplicated inputs reach
        // more program points than the initial tiny seeds.
        let bin = fwbin::compile_library(&branchy_library(), Arch::Arm64, OptLevel::O0).unwrap();
        let lb = crate::loader::LoadedBinary::load(bin).unwrap();
        let envs = fuzz_function(&lb, 0, &FuzzConfig::default(), &VmConfig::default());
        let best_cov = envs
            .iter()
            .map(|e| lb.run_any(0, e, &VmConfig::default()).coverage)
            .max()
            .unwrap();
        let seed_cov = lb
            .run_any(0, &ExecEnv::for_buffer(vec![0u8; 8], &[3, 1]), &VmConfig::default())
            .coverage;
        assert!(best_cov >= seed_cov, "fuzzed coverage {best_cov} >= seed coverage {seed_cov}");
    }
}
