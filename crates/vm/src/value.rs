//! Runtime values and region-tagged addresses.
//!
//! The paper's dynamic features 15–19 count memory accesses per region
//! class (heap, stack, library, anonymous mapping, others). Our VM makes
//! those counts exact by tagging every pointer with its region.

use serde::{Deserialize, Serialize};

/// A memory region class, mirroring the paper's Table II rows 15–19.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Region {
    /// Heap allocations (`malloc`).
    Heap,
    /// Machine stack: frame slots and push/pop traffic.
    Stack,
    /// Library memory: the binary's read-only string pool.
    Lib,
    /// Anonymous mappings: the fuzzer-provided input buffer.
    Anon,
    /// Everything else: the binary's global data section.
    Other,
}

impl Region {
    /// All regions in Table II order (features 15..19).
    pub const ALL: [Region; 5] = [Region::Heap, Region::Stack, Region::Lib, Region::Anon, Region::Other];
}

/// A tagged pointer: region plus byte offset within that region.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Addr {
    /// Which region the pointer refers to.
    pub region: Region,
    /// Byte offset within the region's address space.
    pub offset: i64,
}

impl Addr {
    /// Pointer displaced by `delta` bytes.
    pub fn offset_by(self, delta: i64) -> Addr {
        Addr { region: self.region, offset: self.offset.wrapping_add(delta) }
    }
}

/// A runtime value.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Value {
    /// 64-bit signed integer.
    Int(i64),
    /// 64-bit float.
    Float(f64),
    /// Region-tagged pointer.
    Ptr(Addr),
}

impl Default for Value {
    fn default() -> Value {
        Value::Int(0)
    }
}

impl Value {
    /// Integer view: floats truncate, pointers expose their offset.
    pub fn as_int(self) -> i64 {
        match self {
            Value::Int(v) => v,
            Value::Float(f) => f as i64,
            Value::Ptr(a) => a.offset,
        }
    }

    /// Float view: ints convert, pointers expose their offset.
    pub fn as_float(self) -> f64 {
        match self {
            Value::Int(v) => v as f64,
            Value::Float(f) => f,
            Value::Ptr(a) => a.offset as f64,
        }
    }

    /// Pointer view, if this is a pointer.
    pub fn as_ptr(self) -> Option<Addr> {
        match self {
            Value::Ptr(a) => Some(a),
            _ => None,
        }
    }

    /// Whether the value is truthy (non-zero).
    pub fn is_truthy(self) -> bool {
        match self {
            Value::Int(v) => v != 0,
            Value::Float(f) => f != 0.0,
            Value::Ptr(_) => true,
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Value {
        Value::Int(v)
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Value {
        Value::Float(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn int_float_coercions() {
        assert_eq!(Value::Int(3).as_float(), 3.0);
        assert_eq!(Value::Float(2.9).as_int(), 2);
        assert!(!Value::Int(0).is_truthy());
        assert!(Value::Float(0.5).is_truthy());
    }

    #[test]
    fn pointer_offsetting() {
        let p = Addr { region: Region::Anon, offset: 10 };
        let q = p.offset_by(-4);
        assert_eq!(q.offset, 6);
        assert_eq!(q.region, Region::Anon);
        assert!(Value::Ptr(p).is_truthy());
        assert_eq!(Value::Ptr(p).as_ptr(), Some(p));
        assert_eq!(Value::Int(1).as_ptr(), None);
    }
}
