//! Pre-lowered executable form consumed by the fast engine.
//!
//! [`crate::loader::LoadedBinary::load`] lowers every decoded function
//! once: operands are unpacked out of [`Inst`] into flat [`LowOp`]
//! records, string-id lookups and callee frame sizes are resolved at load
//! time, import symbols become [`LibFn`] tags (no per-call string
//! matching), structurally invalid instructions (stray labels,
//! out-of-range string ids, calls to symbols outside the tables) become
//! explicit [`LowOp::Trap`]s, and the per-instruction trace
//! classification — the five `matches!` of the interpreter loop — is
//! precomputed into a parallel byte array. The hot loop then does zero
//! decoding and zero classification work per executed instruction.

use crate::exec::Fault;
use fwbin::isa::{BinOp, Cond, Inst};

/// Trace-classification bit: arithmetic instruction (F9/F14).
pub(crate) const CLASS_ARITH: u8 = 1 << 0;
/// Trace-classification bit: branch instruction (F10/F13).
pub(crate) const CLASS_BRANCH: u8 = 1 << 1;
/// Trace-classification bit: call instruction (F8).
pub(crate) const CLASS_CALL: u8 = 1 << 2;
/// Trace-classification bit: load instruction (F11).
pub(crate) const CLASS_LOAD: u8 = 1 << 3;
/// Trace-classification bit: store instruction (F12).
pub(crate) const CLASS_STORE: u8 = 1 << 4;

/// Classification byte of one instruction — must agree exactly with the
/// `matches!` chains in the interpreter's run loop.
pub(crate) fn classify(inst: &Inst) -> u8 {
    let mut c = 0;
    if inst.is_arith() {
        c |= CLASS_ARITH;
    }
    if matches!(
        inst,
        Inst::Jmp { .. } | Inst::JCc { .. } | Inst::CBr { .. } | Inst::JmpInd { .. }
    ) {
        c |= CLASS_BRANCH;
    }
    if matches!(inst, Inst::Call { .. }) {
        c |= CLASS_CALL;
    }
    if matches!(
        inst,
        Inst::LoadB { .. } | Inst::LoadSlot { .. } | Inst::LoadGlobal { .. } | Inst::Pop { .. }
    ) {
        c |= CLASS_LOAD;
    }
    if matches!(
        inst,
        Inst::StoreB { .. } | Inst::StoreSlot { .. } | Inst::StoreGlobal { .. } | Inst::Push { .. }
    ) {
        c |= CLASS_STORE;
    }
    c
}

/// Library routines, resolved from import names at load time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum LibFn {
    /// `memmove`/`memcpy` (one shared implementation).
    Memmove,
    /// `memset`.
    Memset,
    /// `memcmp`.
    Memcmp,
    /// `strlen`.
    Strlen,
    /// `malloc`.
    Malloc,
    /// `free`.
    Free,
    /// `abs`.
    Abs,
    /// `min`.
    Min,
    /// `max`.
    Max,
    /// `checksum` (FNV-1a).
    Checksum,
    /// `log_event`.
    LogEvent,
    /// `abort`.
    Abort,
    /// Import name the VM does not provide — faults `BadCall` at call
    /// time, *after* counting the library call, like the interpreter.
    Unknown,
}

/// Resolve an import name to its routine tag.
pub(crate) fn libfn_of(name: &str) -> LibFn {
    match name {
        "memmove" | "memcpy" => LibFn::Memmove,
        "memset" => LibFn::Memset,
        "memcmp" => LibFn::Memcmp,
        "strlen" => LibFn::Strlen,
        "malloc" => LibFn::Malloc,
        "free" => LibFn::Free,
        "abs" => LibFn::Abs,
        "min" => LibFn::Min,
        "max" => LibFn::Max,
        "checksum" => LibFn::Checksum,
        "log_event" => LibFn::LogEvent,
        "abort" => LibFn::Abort,
        _ => LibFn::Unknown,
    }
}

/// One pre-lowered instruction: operands unpacked, string offsets and
/// callee frame sizes resolved, structural faults made explicit.
#[derive(Debug, Clone, Copy)]
pub(crate) enum LowOp {
    /// `rd = imm`.
    MovImm { rd: u16, imm: i64 },
    /// `rd = imm` (float).
    FMovImm { rd: u16, imm: f64 },
    /// `rd = rs`.
    Mov { rd: u16, rs: u16 },
    /// `LoadStr` with the blob offset already resolved.
    LoadStr { rd: u16, off: i64 },
    /// `rd = globals[gid]`.
    LoadGlobal { rd: u16, gid: u32 },
    /// `globals[gid] = rs`.
    StoreGlobal { gid: u32, rs: u16 },
    /// Integer binary op.
    Bin { op: BinOp, rd: u16, rs1: u16, rs2: u16 },
    /// Integer binary op with immediate.
    BinImm { op: BinOp, rd: u16, rs: u16, imm: i64 },
    /// Float binary op.
    FBin { op: BinOp, rd: u16, rs1: u16, rs2: u16 },
    /// `rd = rs1 * rs2 + rs3` (float).
    FMulAdd { rd: u16, rs1: u16, rs2: u16, rs3: u16 },
    /// Integer negate.
    Neg { rd: u16, rs: u16 },
    /// Logical not.
    Not { rd: u16, rs: u16 },
    /// Set flags from a register pair.
    Cmp { rs1: u16, rs2: u16 },
    /// `rd = cond(flags)`.
    SetCc { cond: Cond, rd: u16 },
    /// Fused compare + set.
    CmpSet { cond: Cond, rd: u16, rs1: u16, rs2: u16 },
    /// `rd = mem[base + idx]`.
    LoadB { rd: u16, base: u16, idx: u16 },
    /// `mem[base + idx] = rs`.
    StoreB { rs: u16, base: u16, idx: u16 },
    /// `rd = slots[slot]`.
    LoadSlot { rd: u16, slot: u32 },
    /// `slots[slot] = rs`.
    StoreSlot { rs: u16, slot: u32 },
    /// Unconditional jump.
    Jmp { target: u32 },
    /// Jump on flags.
    JCc { cond: Cond, target: u32 },
    /// Fused compare + branch.
    CBr { cond: Cond, rs1: u16, rs2: u16, target: u32 },
    /// Indirect jump through a register.
    JmpInd { rs: u16 },
    /// Stage outgoing argument `idx`.
    SetArg { idx: u8, rs: u16 },
    /// `rd = args[idx]` (zero when absent).
    LoadArg { rd: u16, idx: u8 },
    /// Call to a function in this binary, frame size pre-resolved.
    CallLocal { callee: u32, slots: u32 },
    /// Call to an import, routine pre-resolved.
    CallImport { lib: LibFn },
    /// `rd = last call's return value`.
    GetRet { rd: u16 },
    /// Stage this frame's return value.
    SetRet { rs: u16 },
    /// Return to the caller.
    Ret,
    /// Push onto the machine stack.
    Push { rs: u16 },
    /// Pop from the machine stack.
    Pop { rd: u16 },
    /// Syscall (counted, arguments consumed).
    Syscall,
    /// Abort trap.
    Halt,
    /// No-op.
    Nop,
    /// Structurally invalid instruction: faults when reached (stray
    /// `Label`, out-of-range string id, call outside the symbol tables).
    Trap { fault: Fault },
}

/// One function in lowered form; pcs are identical to the decoded form.
pub(crate) struct LoweredFunc {
    /// Lowered instructions.
    pub(crate) ops: Box<[LowOp]>,
    /// Per-pc classification bytes (`CLASS_*`).
    pub(crate) class: Box<[u8]>,
    /// Frame slot count.
    pub(crate) frame_slots: u32,
}

/// All functions of a binary in lowered form.
pub(crate) struct LoweredBinary {
    /// Per-function lowered code, same indices as the function table.
    pub(crate) funcs: Vec<LoweredFunc>,
}

fn lower_inst(
    inst: &Inst,
    func_count: usize,
    frame_slots: &[u32],
    imports: &[String],
    string_offsets: &[i64],
) -> LowOp {
    match *inst {
        // A label surviving to execution is a compiler bug; the
        // interpreter treats it as a jump out of the body.
        Inst::Label(_) => LowOp::Trap { fault: Fault::BadJump },
        Inst::MovImm { rd, imm } => LowOp::MovImm { rd: rd.0, imm },
        Inst::FMovImm { rd, imm } => LowOp::FMovImm { rd: rd.0, imm },
        Inst::Mov { rd, rs } => LowOp::Mov { rd: rd.0, rs: rs.0 },
        Inst::LoadStr { rd, sid } => match string_offsets.get(sid as usize) {
            Some(&off) => LowOp::LoadStr { rd: rd.0, off },
            None => LowOp::Trap { fault: Fault::BadString },
        },
        Inst::LoadGlobal { rd, gid } => LowOp::LoadGlobal { rd: rd.0, gid },
        Inst::StoreGlobal { gid, rs } => LowOp::StoreGlobal { gid, rs: rs.0 },
        Inst::Bin { op, rd, rs1, rs2 } => LowOp::Bin { op, rd: rd.0, rs1: rs1.0, rs2: rs2.0 },
        Inst::BinImm { op, rd, rs, imm } => LowOp::BinImm { op, rd: rd.0, rs: rs.0, imm },
        Inst::FBin { op, rd, rs1, rs2 } => LowOp::FBin { op, rd: rd.0, rs1: rs1.0, rs2: rs2.0 },
        Inst::FMulAdd { rd, rs1, rs2, rs3 } => {
            LowOp::FMulAdd { rd: rd.0, rs1: rs1.0, rs2: rs2.0, rs3: rs3.0 }
        }
        Inst::Neg { rd, rs } => LowOp::Neg { rd: rd.0, rs: rs.0 },
        Inst::Not { rd, rs } => LowOp::Not { rd: rd.0, rs: rs.0 },
        Inst::Cmp { rs1, rs2 } => LowOp::Cmp { rs1: rs1.0, rs2: rs2.0 },
        Inst::SetCc { cond, rd } => LowOp::SetCc { cond, rd: rd.0 },
        Inst::CmpSet { cond, rd, rs1, rs2 } => {
            LowOp::CmpSet { cond, rd: rd.0, rs1: rs1.0, rs2: rs2.0 }
        }
        Inst::LoadB { rd, base, idx } => LowOp::LoadB { rd: rd.0, base: base.0, idx: idx.0 },
        Inst::StoreB { rs, base, idx } => LowOp::StoreB { rs: rs.0, base: base.0, idx: idx.0 },
        Inst::LoadSlot { rd, slot } => LowOp::LoadSlot { rd: rd.0, slot },
        Inst::StoreSlot { rs, slot } => LowOp::StoreSlot { rs: rs.0, slot },
        Inst::Jmp { target } => LowOp::Jmp { target },
        Inst::JCc { cond, target } => LowOp::JCc { cond, target },
        Inst::CBr { cond, rs1, rs2, target } => {
            LowOp::CBr { cond, rs1: rs1.0, rs2: rs2.0, target }
        }
        Inst::JmpInd { rs } => LowOp::JmpInd { rs: rs.0 },
        Inst::SetArg { idx, rs } => LowOp::SetArg { idx, rs: rs.0 },
        Inst::LoadArg { rd, idx } => LowOp::LoadArg { rd: rd.0, idx },
        Inst::Call { sym } => {
            if sym.is_import() {
                match imports.get(sym.index() as usize) {
                    Some(name) => LowOp::CallImport { lib: libfn_of(name) },
                    None => LowOp::Trap { fault: Fault::BadCall },
                }
            } else {
                let callee = sym.index() as usize;
                match frame_slots.get(callee) {
                    Some(&slots) if callee < func_count => {
                        LowOp::CallLocal { callee: callee as u32, slots }
                    }
                    _ => LowOp::Trap { fault: Fault::BadCall },
                }
            }
        }
        Inst::GetRet { rd } => LowOp::GetRet { rd: rd.0 },
        Inst::SetRet { rs } => LowOp::SetRet { rs: rs.0 },
        Inst::Ret => LowOp::Ret,
        Inst::Push { rs } => LowOp::Push { rs: rs.0 },
        Inst::Pop { rd } => LowOp::Pop { rd: rd.0 },
        Inst::Syscall { num: _ } => LowOp::Syscall,
        Inst::Halt => LowOp::Halt,
        Inst::Nop => LowOp::Nop,
    }
}

/// Lower every decoded function. Runs once at `LoadedBinary::load`.
pub(crate) fn lower(
    code: &[Vec<Inst>],
    frame_slots: &[u32],
    imports: &[String],
    string_offsets: &[i64],
) -> LoweredBinary {
    let funcs = code
        .iter()
        .enumerate()
        .map(|(fi, insts)| LoweredFunc {
            ops: insts
                .iter()
                .map(|i| lower_inst(i, code.len(), frame_slots, imports, string_offsets))
                .collect(),
            class: insts.iter().map(classify).collect(),
            frame_slots: frame_slots[fi],
        })
        .collect();
    LoweredBinary { funcs }
}
