//! Function-level loading and execution — the paper's `dlopen`/`dlsym` +
//! LIEF workflow: "we utilize DLL injection to execute compact execution
//! binaries that correspond to a single target function [...] any candidate
//! function can be exported and executed without running the whole binary."
//!
//! [`LoadedBinary::load`] is the `dlopen` analog (decodes every function
//! once); [`LoadedBinary::find_export`] is `dlsym`;
//! [`LoadedBinary::run_any`] is the LIEF-style export-anything escape hatch
//! that runs a function by table index regardless of export status.

use crate::env::ExecEnv;
use crate::exec::{ExecImage, Outcome, Vm, VmConfig};
use crate::trace::DynFeatures;
use fwbin::encode::DecodeError;
use fwbin::format::Binary;
use fwbin::isa::Inst;

/// A binary with all functions pre-decoded, ready for repeated execution.
pub struct LoadedBinary {
    binary: Binary,
    code: Vec<Vec<Inst>>,
    frame_slots: Vec<u32>,
    strings_blob: Vec<u8>,
    string_offsets: Vec<i64>,
}

/// Result of a single function execution.
#[derive(Debug, Clone)]
pub struct RunResult {
    /// Termination status.
    pub outcome: Outcome,
    /// The 21 Table II dynamic features of the run.
    pub features: DynFeatures,
    /// Distinct program points executed (fuzzer coverage signal).
    pub coverage: u64,
}

impl LoadedBinary {
    /// Load (decode) a binary — the `dlopen` analog.
    ///
    /// # Errors
    /// Returns the first [`DecodeError`] if any function's code bytes are
    /// malformed.
    pub fn load(binary: Binary) -> Result<LoadedBinary, DecodeError> {
        let mut code = Vec::with_capacity(binary.function_count());
        let mut frame_slots = Vec::with_capacity(binary.function_count());
        for (i, f) in binary.functions.iter().enumerate() {
            code.push(binary.decode_function(i)?);
            frame_slots.push(f.frame_slots);
        }
        // Lay out the string pool as one NUL-terminated blob (the Lib
        // region).
        let mut strings_blob = Vec::new();
        let mut string_offsets = Vec::with_capacity(binary.strings.len());
        for s in &binary.strings {
            string_offsets.push(strings_blob.len() as i64);
            strings_blob.extend_from_slice(s.as_bytes());
            strings_blob.push(0);
        }
        Ok(LoadedBinary { binary, code, frame_slots, strings_blob, string_offsets })
    }

    /// The underlying binary.
    pub fn binary(&self) -> &Binary {
        &self.binary
    }

    /// Number of functions.
    pub fn function_count(&self) -> usize {
        self.code.len()
    }

    /// Decoded code of function `idx`.
    pub fn code(&self, idx: usize) -> &[Inst] {
        &self.code[idx]
    }

    /// `dlsym`: resolve an exported function by name.
    pub fn find_export(&self, name: &str) -> Option<usize> {
        self.binary
            .functions
            .iter()
            .position(|f| f.exported && f.name.as_deref() == Some(name))
    }

    fn image(&self) -> ExecImage<'_> {
        ExecImage {
            code: &self.code,
            frame_slots: &self.frame_slots,
            imports: &self.binary.imports,
            strings_blob: &self.strings_blob,
            string_offsets: &self.string_offsets,
            globals_init: &self.binary.globals,
        }
    }

    /// Run any function by table index under `env` — the LIEF-style "export
    /// and execute without running the whole binary" primitive.
    pub fn run_any(&self, func: usize, env: &ExecEnv, cfg: &VmConfig) -> RunResult {
        let image = self.image();
        let mut vm = Vm::new(&image, cfg, env.input.clone(), &env.global_overrides);
        let outcome = vm.run(func, env.arg_values());
        let features = vm.trace().features();
        let coverage = vm.trace().unique_count();
        RunResult { outcome, features, coverage }
    }

    /// Run an exported function by name (`dlsym` + call).
    ///
    /// Returns `None` if the name is not an exported symbol.
    pub fn run_export(&self, name: &str, env: &ExecEnv, cfg: &VmConfig) -> Option<RunResult> {
        self.find_export(name).map(|idx| self.run_any(idx, env, cfg))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::Fault;
    use crate::value::Value;
    use fwbin::isa::{Arch, OptLevel};
    use fwlang::ast::*;

    /// data/len checksum function used across loader tests.
    fn sum_library() -> Library {
        let mut lib = Library::new("libsum");
        let mut f = Function {
            name: "sum_bytes".into(),
            params: vec![
                Param { name: "data".into(), ty: Ty::Buf },
                Param { name: "len".into(), ty: Ty::Int },
            ],
            locals: vec![],
            ret: Some(Ty::Int),
            body: vec![],
            exported: true,
        };
        let i = f.add_local("i", Ty::Int);
        let acc = f.add_local("acc", Ty::Int);
        f.body = vec![
            Stmt::Let { local: acc, value: Expr::ConstInt(0) },
            Stmt::For {
                var: i,
                start: Expr::ConstInt(0),
                end: Expr::Param(1),
                step: Expr::ConstInt(1),
                body: vec![Stmt::Let {
                    local: acc,
                    value: Expr::bin(
                        BinOp::Add,
                        Expr::Local(acc),
                        Expr::load(Expr::Param(0), Expr::Local(i)),
                    ),
                }],
            },
            Stmt::Return(Some(Expr::Local(acc))),
        ];
        lib.functions.push(f);
        lib
    }

    #[test]
    fn sum_bytes_computes_correctly_on_all_platforms() {
        let lib = sum_library();
        for arch in Arch::ALL {
            for opt in OptLevel::ALL {
                let bin = fwbin::compile_library(&lib, arch, opt).unwrap();
                let lb = LoadedBinary::load(bin).unwrap();
                let env = ExecEnv::for_buffer(vec![1, 2, 3, 4, 5], &[]);
                let r = lb.run_export("sum_bytes", &env, &VmConfig::default()).unwrap();
                assert_eq!(
                    r.outcome,
                    Outcome::Returned(Value::Int(15)),
                    "wrong result on {arch}/{opt}"
                );
                assert!(r.features.feature(6) > 0.0, "instructions counted");
                assert_eq!(r.features.feature(18), 5.0, "5 anon-region reads on {arch}/{opt}");
            }
        }
    }

    #[test]
    fn oob_access_faults() {
        let lib = sum_library();
        let bin = fwbin::compile_library(&lib, Arch::Arm64, OptLevel::O1).unwrap();
        let lb = LoadedBinary::load(bin).unwrap();
        // Lie about the length: claims 10 bytes, provides 3.
        let env = ExecEnv {
            input: vec![1, 2, 3],
            args: vec![crate::env::ArgSpec::InputPtr, crate::env::ArgSpec::Int(10)],
            global_overrides: vec![],
        };
        let r = lb.run_any(0, &env, &VmConfig::default());
        assert!(
            matches!(r.outcome, Outcome::Fault(Fault::OutOfBounds(_))),
            "got {:?}",
            r.outcome
        );
    }

    #[test]
    fn timeout_on_tiny_budget() {
        let lib = sum_library();
        let bin = fwbin::compile_library(&lib, Arch::Arm64, OptLevel::O0).unwrap();
        let lb = LoadedBinary::load(bin).unwrap();
        let env = ExecEnv::for_buffer(vec![0; 64], &[]);
        let cfg = VmConfig { max_instructions: 10, ..VmConfig::default() };
        let r = lb.run_any(0, &env, &cfg);
        assert_eq!(r.outcome, Outcome::Timeout);
    }

    #[test]
    fn dlsym_respects_export_table() {
        let mut lib = sum_library();
        lib.functions[0].exported = false;
        let mut bin = fwbin::compile_library(&lib, Arch::X86, OptLevel::O1).unwrap();
        bin.strip();
        let lb = LoadedBinary::load(bin).unwrap();
        assert_eq!(lb.find_export("sum_bytes"), None, "stripped internal symbol");
        // ...but run_any still reaches it (the LIEF analog).
        let env = ExecEnv::for_buffer(vec![9, 1], &[]);
        let r = lb.run_any(0, &env, &VmConfig::default());
        assert_eq!(r.outcome, Outcome::Returned(Value::Int(10)));
    }

    #[test]
    fn same_source_similar_dynamic_features_across_platforms() {
        // The core premise of the paper's dynamic stage: the same source
        // compiled differently produces *similar* dynamic features, with
        // identical memory-access profiles on the same input.
        let lib = sum_library();
        let env = ExecEnv::for_buffer(vec![7; 16], &[]);
        let a = {
            let bin = fwbin::compile_library(&lib, Arch::X86, OptLevel::O0).unwrap();
            LoadedBinary::load(bin).unwrap().run_any(0, &env, &VmConfig::default())
        };
        let b = {
            let bin = fwbin::compile_library(&lib, Arch::Arm64, OptLevel::O3).unwrap();
            LoadedBinary::load(bin).unwrap().run_any(0, &env, &VmConfig::default())
        };
        // Same anon traffic, same library/syscall counts.
        assert_eq!(a.features.feature(18), b.features.feature(18));
        assert_eq!(a.features.feature(20), b.features.feature(20));
        assert_eq!(a.features.feature(21), b.features.feature(21));
        // Instruction counts differ (O0/x86 is bulkier) but not wildly.
        let (ia, ib) = (a.features.feature(6), b.features.feature(6));
        assert!(ia > ib, "O0 x86 executes more instructions");
        assert!(ia / ib < 10.0, "same order of magnitude: {ia} vs {ib}");
    }
}
