//! Function-level loading and execution — the paper's `dlopen`/`dlsym` +
//! LIEF workflow: "we utilize DLL injection to execute compact execution
//! binaries that correspond to a single target function [...] any candidate
//! function can be exported and executed without running the whole binary."
//!
//! [`LoadedBinary::load`] is the `dlopen` analog (decodes every function
//! once); [`LoadedBinary::from_bytes`] additionally parses the FWB wire
//! container first, so malformed on-disk images surface as typed
//! [`LoadError`]s instead of panics; [`LoadedBinary::find_export`] is
//! `dlsym`; [`LoadedBinary::run_any`] is the LIEF-style export-anything
//! escape hatch that runs a function by table index regardless of export
//! status.

use crate::engine::FastVm;
use crate::env::ExecEnv;
use crate::exec::{Engine, ExecImage, Outcome, Vm, VmConfig};
use crate::lowered::{lower, LoweredBinary};
use crate::trace::DynFeatures;
use fwbin::encode::DecodeError;
use fwbin::format::{Binary, FormatError};
use fwbin::isa::Inst;

/// Typed loader failure: every way a binary can refuse to load or a
/// function can be unavailable, with enough context (section, function,
/// byte offset) to locate the corruption in the container.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LoadError {
    /// The FWB wire container itself is malformed (bad magic, truncated
    /// section, bad enum field, non-UTF-8 string).
    Container {
        /// The container-level parse failure.
        source: FormatError,
    },
    /// Function `function`'s code bytes failed to decode.
    Decode {
        /// Function-table index of the corrupt function.
        function: usize,
        /// Symbol name, when one survived stripping.
        name: Option<String>,
        /// The instruction-level decode failure (carries the byte offset
        /// within the function's code section).
        source: DecodeError,
    },
    /// A function index outside the binary's function table.
    NoSuchFunction {
        /// Requested index.
        index: usize,
        /// Function-table length.
        count: usize,
    },
}

impl std::fmt::Display for LoadError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LoadError::Container { source } => write!(f, "malformed FWB container: {source}"),
            LoadError::Decode { function, name, source } => match name {
                Some(n) => write!(f, "function {function} (`{n}`): code section: {source}"),
                None => write!(f, "function {function}: code section: {source}"),
            },
            LoadError::NoSuchFunction { index, count } => {
                write!(f, "function index {index} out of range (table holds {count})")
            }
        }
    }
}

impl std::error::Error for LoadError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            LoadError::Container { source } => Some(source),
            LoadError::Decode { source, .. } => Some(source),
            LoadError::NoSuchFunction { .. } => None,
        }
    }
}

impl From<FormatError> for LoadError {
    fn from(source: FormatError) -> LoadError {
        LoadError::Container { source }
    }
}

/// A binary with all functions pre-decoded, ready for repeated execution.
pub struct LoadedBinary {
    binary: Binary,
    code: Vec<Vec<Inst>>,
    frame_slots: Vec<u32>,
    strings_blob: Vec<u8>,
    string_offsets: Vec<i64>,
    /// Pre-lowered indexed-dispatch form for the fast engine, computed
    /// once here so every run skips decoding and classification.
    lowered: LoweredBinary,
}

/// Result of a single function execution.
#[derive(Debug, Clone)]
pub struct RunResult {
    /// Termination status.
    pub outcome: Outcome,
    /// The 21 Table II dynamic features of the run.
    pub features: DynFeatures,
    /// Distinct program points executed (fuzzer coverage signal).
    pub coverage: u64,
}

impl LoadedBinary {
    /// Load (decode) a binary — the `dlopen` analog.
    ///
    /// # Errors
    /// Returns [`LoadError::Decode`] naming the first function whose code
    /// bytes are malformed (with its symbol name and the in-section byte
    /// offset from the decoder).
    pub fn load(binary: Binary) -> Result<LoadedBinary, LoadError> {
        let mut code = Vec::with_capacity(binary.function_count());
        let mut frame_slots = Vec::with_capacity(binary.function_count());
        for (i, f) in binary.functions.iter().enumerate() {
            let insts = binary.decode_function(i).map_err(|source| LoadError::Decode {
                function: i,
                name: f.name.clone(),
                source,
            })?;
            code.push(insts);
            frame_slots.push(f.frame_slots);
        }
        // Lay out the string pool as one NUL-terminated blob (the Lib
        // region).
        let mut strings_blob = Vec::new();
        let mut string_offsets = Vec::with_capacity(binary.strings.len());
        for s in &binary.strings {
            string_offsets.push(strings_blob.len() as i64);
            strings_blob.extend_from_slice(s.as_bytes());
            strings_blob.push(0);
        }
        let lowered = lower(&code, &frame_slots, &binary.imports, &string_offsets);
        Ok(LoadedBinary { binary, code, frame_slots, strings_blob, string_offsets, lowered })
    }

    /// Parse an FWB wire container and load it — the full `dlopen`-from-
    /// disk path. Malformed containers (truncated files, garbage, bad
    /// section fields) and undecodable functions both surface as typed
    /// [`LoadError`]s; no input can panic this path.
    ///
    /// # Errors
    /// [`LoadError::Container`] for wire-format failures,
    /// [`LoadError::Decode`] for per-function code corruption.
    pub fn from_bytes(data: &[u8]) -> Result<LoadedBinary, LoadError> {
        LoadedBinary::load(Binary::from_bytes(data)?)
    }

    /// The underlying binary.
    pub fn binary(&self) -> &Binary {
        &self.binary
    }

    /// Number of functions.
    pub fn function_count(&self) -> usize {
        self.code.len()
    }

    /// Decoded code of function `idx`.
    ///
    /// # Panics
    /// Panics if `idx` is out of range, like slice indexing; use
    /// [`LoadedBinary::try_run_any`] for untrusted indices.
    pub fn code(&self, idx: usize) -> &[Inst] {
        &self.code[idx]
    }

    /// `dlsym`: resolve an exported function by name.
    pub fn find_export(&self, name: &str) -> Option<usize> {
        self.binary
            .functions
            .iter()
            .position(|f| f.exported && f.name.as_deref() == Some(name))
    }

    pub(crate) fn lowered(&self) -> &LoweredBinary {
        &self.lowered
    }

    pub(crate) fn strings_blob(&self) -> &[u8] {
        &self.strings_blob
    }

    pub(crate) fn image(&self) -> ExecImage<'_> {
        ExecImage {
            code: &self.code,
            frame_slots: &self.frame_slots,
            imports: &self.binary.imports,
            strings_blob: &self.strings_blob,
            string_offsets: &self.string_offsets,
            globals_init: &self.binary.globals,
        }
    }

    /// Run any function by table index under `env` — the LIEF-style "export
    /// and execute without running the whole binary" primitive.
    ///
    /// # Panics
    /// Panics if `func` is out of range (the pipeline only passes indices
    /// produced by scanning this same binary); untrusted callers should use
    /// [`LoadedBinary::try_run_any`].
    pub fn run_any(&self, func: usize, env: &ExecEnv, cfg: &VmConfig) -> RunResult {
        assert!(
            func < self.code.len(),
            "function index {func} out of range (table holds {})",
            self.code.len()
        );
        match cfg.engine {
            Engine::Fast => {
                let mut vm = FastVm::new(self, cfg);
                vm.set_env(&env.input, &env.arg_values(), &env.global_overrides);
                vm.run(func)
            }
            Engine::Interp => {
                let image = self.image();
                let mut vm = Vm::new(&image, cfg, env.input.clone(), &env.global_overrides);
                let outcome = vm.run(func, env.arg_values());
                let features = vm.trace().features();
                let coverage = vm.trace().unique_count();
                RunResult { outcome, features, coverage }
            }
        }
    }

    /// [`LoadedBinary::run_any`] for untrusted indices: a bad index comes
    /// back as [`LoadError::NoSuchFunction`] instead of a panic.
    ///
    /// # Errors
    /// [`LoadError::NoSuchFunction`] when `func` is out of range.
    pub fn try_run_any(
        &self,
        func: usize,
        env: &ExecEnv,
        cfg: &VmConfig,
    ) -> Result<RunResult, LoadError> {
        if func >= self.code.len() {
            return Err(LoadError::NoSuchFunction { index: func, count: self.code.len() });
        }
        Ok(self.run_any(func, env, cfg))
    }

    /// Run an exported function by name (`dlsym` + call).
    ///
    /// Returns `None` if the name is not an exported symbol.
    pub fn run_export(&self, name: &str, env: &ExecEnv, cfg: &VmConfig) -> Option<RunResult> {
        self.find_export(name).map(|idx| self.run_any(idx, env, cfg))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::Fault;
    use crate::value::Value;
    use fwbin::isa::{Arch, OptLevel};
    use fwlang::ast::*;

    type TestResult = Result<(), Box<dyn std::error::Error>>;

    /// data/len checksum function used across loader tests.
    fn sum_library() -> Library {
        let mut lib = Library::new("libsum");
        let mut f = Function {
            name: "sum_bytes".into(),
            params: vec![
                Param { name: "data".into(), ty: Ty::Buf },
                Param { name: "len".into(), ty: Ty::Int },
            ],
            locals: vec![],
            ret: Some(Ty::Int),
            body: vec![],
            exported: true,
        };
        let i = f.add_local("i", Ty::Int);
        let acc = f.add_local("acc", Ty::Int);
        f.body = vec![
            Stmt::Let { local: acc, value: Expr::ConstInt(0) },
            Stmt::For {
                var: i,
                start: Expr::ConstInt(0),
                end: Expr::Param(1),
                step: Expr::ConstInt(1),
                body: vec![Stmt::Let {
                    local: acc,
                    value: Expr::bin(
                        BinOp::Add,
                        Expr::Local(acc),
                        Expr::load(Expr::Param(0), Expr::Local(i)),
                    ),
                }],
            },
            Stmt::Return(Some(Expr::Local(acc))),
        ];
        lib.functions.push(f);
        lib
    }

    fn compile(lib: &Library, arch: Arch, opt: OptLevel) -> Result<Binary, String> {
        fwbin::compile_library(lib, arch, opt).map_err(|e| format!("compile: {e:?}"))
    }

    #[test]
    fn sum_bytes_computes_correctly_on_all_platforms() -> TestResult {
        let lib = sum_library();
        for arch in Arch::ALL {
            for opt in OptLevel::ALL {
                let bin = compile(&lib, arch, opt)?;
                let lb = LoadedBinary::load(bin)?;
                let env = ExecEnv::for_buffer(vec![1, 2, 3, 4, 5], &[]);
                let r = lb
                    .run_export("sum_bytes", &env, &VmConfig::default())
                    .ok_or("sum_bytes not exported")?;
                assert_eq!(
                    r.outcome,
                    Outcome::Returned(Value::Int(15)),
                    "wrong result on {arch}/{opt}"
                );
                assert!(r.features.feature(6) > 0.0, "instructions counted");
                assert_eq!(r.features.feature(18), 5.0, "5 anon-region reads on {arch}/{opt}");
            }
        }
        Ok(())
    }

    #[test]
    fn oob_access_faults() -> TestResult {
        let lib = sum_library();
        let bin = compile(&lib, Arch::Arm64, OptLevel::O1)?;
        let lb = LoadedBinary::load(bin)?;
        // Lie about the length: claims 10 bytes, provides 3.
        let env = ExecEnv {
            input: vec![1, 2, 3],
            args: vec![crate::env::ArgSpec::InputPtr, crate::env::ArgSpec::Int(10)],
            global_overrides: vec![],
        };
        let r = lb.run_any(0, &env, &VmConfig::default());
        assert!(
            matches!(r.outcome, Outcome::Fault(Fault::OutOfBounds(_))),
            "got {:?}",
            r.outcome
        );
        Ok(())
    }

    #[test]
    fn timeout_on_tiny_budget() -> TestResult {
        let lib = sum_library();
        let bin = compile(&lib, Arch::Arm64, OptLevel::O0)?;
        let lb = LoadedBinary::load(bin)?;
        let env = ExecEnv::for_buffer(vec![0; 64], &[]);
        let cfg = VmConfig { max_instructions: 10, ..VmConfig::default() };
        let r = lb.run_any(0, &env, &cfg);
        assert_eq!(r.outcome, Outcome::Timeout);
        Ok(())
    }

    #[test]
    fn dlsym_respects_export_table() -> TestResult {
        let mut lib = sum_library();
        lib.functions[0].exported = false;
        let mut bin = compile(&lib, Arch::X86, OptLevel::O1)?;
        bin.strip();
        let lb = LoadedBinary::load(bin)?;
        assert_eq!(lb.find_export("sum_bytes"), None, "stripped internal symbol");
        // ...but run_any still reaches it (the LIEF analog).
        let env = ExecEnv::for_buffer(vec![9, 1], &[]);
        let r = lb.run_any(0, &env, &VmConfig::default());
        assert_eq!(r.outcome, Outcome::Returned(Value::Int(10)));
        Ok(())
    }

    #[test]
    fn same_source_similar_dynamic_features_across_platforms() -> TestResult {
        // The core premise of the paper's dynamic stage: the same source
        // compiled differently produces *similar* dynamic features, with
        // identical memory-access profiles on the same input.
        let lib = sum_library();
        let env = ExecEnv::for_buffer(vec![7; 16], &[]);
        let a = {
            let bin = compile(&lib, Arch::X86, OptLevel::O0)?;
            LoadedBinary::load(bin)?.run_any(0, &env, &VmConfig::default())
        };
        let b = {
            let bin = compile(&lib, Arch::Arm64, OptLevel::O3)?;
            LoadedBinary::load(bin)?.run_any(0, &env, &VmConfig::default())
        };
        // Same anon traffic, same library/syscall counts.
        assert_eq!(a.features.feature(18), b.features.feature(18));
        assert_eq!(a.features.feature(20), b.features.feature(20));
        assert_eq!(a.features.feature(21), b.features.feature(21));
        // Instruction counts differ (O0/x86 is bulkier) but not wildly.
        let (ia, ib) = (a.features.feature(6), b.features.feature(6));
        assert!(ia > ib, "O0 x86 executes more instructions");
        assert!(ia / ib < 10.0, "same order of magnitude: {ia} vs {ib}");
        Ok(())
    }

    #[test]
    fn corrupt_code_section_reports_function_context() -> TestResult {
        let lib = sum_library();
        let mut bin = compile(&lib, Arch::Arm32, OptLevel::O1)?;
        // Garbage the code bytes of the (only) function.
        bin.functions[0].code = vec![0xEE, 0xEE, 0xEE];
        match LoadedBinary::load(bin).map(|_| ()) {
            Err(LoadError::Decode { function: 0, name, source }) => {
                assert_eq!(name.as_deref(), Some("sum_bytes"));
                // The decoder pins the corrupt byte offset.
                let msg = source.to_string();
                assert!(msg.contains("offset"), "decode error carries an offset: {msg}");
            }
            other => return Err(format!("expected Decode error, got {other:?}").into()),
        }
        Ok(())
    }

    #[test]
    fn malformed_container_reports_section_context() {
        // Garbage, truncation, empty input: typed container errors, never
        // a panic.
        for bytes in [&b"not an fwb container"[..], &b"FW"[..], &[][..]] {
            match LoadedBinary::from_bytes(bytes).map(|_| ()) {
                Err(LoadError::Container { .. }) => {}
                other => panic!("expected Container error, got {other:?}"),
            }
        }
    }

    #[test]
    fn truncated_container_roundtrip_is_typed() -> TestResult {
        let lib = sum_library();
        let bin = compile(&lib, Arch::Amd64, OptLevel::O2)?;
        let bytes = bin.to_bytes();
        // Every strict prefix must either load (impossible — lengths are
        // embedded) or fail with a typed error.
        for cut in [4usize, 8, bytes.len() / 2, bytes.len() - 1] {
            let e = LoadedBinary::from_bytes(&bytes[..cut])
                .err()
                .ok_or_else(|| format!("prefix of {cut} bytes unexpectedly loaded"))?;
            assert!(matches!(e, LoadError::Container { .. }), "cut {cut}: {e}");
        }
        // The intact bytes still load.
        assert_eq!(LoadedBinary::from_bytes(&bytes)?.function_count(), 1);
        Ok(())
    }

    #[test]
    fn try_run_any_rejects_bad_index() -> TestResult {
        let lib = sum_library();
        let bin = compile(&lib, Arch::X86, OptLevel::O0)?;
        let lb = LoadedBinary::load(bin)?;
        let env = ExecEnv::for_buffer(vec![1, 2], &[]);
        match lb.try_run_any(7, &env, &VmConfig::default()) {
            Err(LoadError::NoSuchFunction { index: 7, count: 1 }) => {}
            other => return Err(format!("expected NoSuchFunction, got {other:?}").into()),
        }
        let ok = lb.try_run_any(0, &env, &VmConfig::default())?;
        assert_eq!(ok.outcome, Outcome::Returned(Value::Int(3)));
        Ok(())
    }
}
