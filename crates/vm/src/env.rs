//! Execution environments: the fixed `(input, arguments, globals)` states
//! a function is run under. "PATCHECKO will use multiple fixed execution
//! environments associated with different inputs for target functions"
//! (§III-B); environments are produced by the fuzzer and replayed against
//! every candidate function.

use crate::value::{Addr, Region, Value};
use serde::{Deserialize, Serialize};

/// One positional argument of an environment.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum ArgSpec {
    /// Pointer to offset 0 of the environment's input buffer.
    InputPtr,
    /// A concrete integer.
    Int(i64),
    /// A concrete float.
    Float(f64),
}

/// A fixed execution environment.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExecEnv {
    /// The anonymous-region input buffer (mutable during the run).
    pub input: Vec<u8>,
    /// Positional argument values. Candidates with more parameters receive
    /// zeros for the surplus; extra values are ignored — the paper applies
    /// the same inputs to every candidate regardless of signature.
    pub args: Vec<ArgSpec>,
    /// Per-run global-variable overrides ("we manually choose concrete
    /// initial values for different global variables").
    pub global_overrides: Vec<(u32, i64)>,
}

impl ExecEnv {
    /// Environment for the `(buf, len, extras...)` calling convention most
    /// library functions use: first argument points at `input`, second is
    /// its length, and `extras` follow as integers.
    pub fn for_buffer(input: Vec<u8>, extras: &[i64]) -> ExecEnv {
        let mut args = vec![ArgSpec::InputPtr, ArgSpec::Int(input.len() as i64)];
        args.extend(extras.iter().map(|&v| ArgSpec::Int(v)));
        ExecEnv { input, args, global_overrides: Vec::new() }
    }

    /// Materialize the argument list as runtime values.
    pub fn arg_values(&self) -> Vec<Value> {
        self.args
            .iter()
            .map(|a| match a {
                ArgSpec::InputPtr => Value::Ptr(Addr { region: Region::Anon, offset: 0 }),
                ArgSpec::Int(v) => Value::Int(*v),
                ArgSpec::Float(v) => Value::Float(*v),
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buffer_env_shape() {
        let env = ExecEnv::for_buffer(vec![1, 2, 3], &[7]);
        assert_eq!(env.args.len(), 3);
        let vals = env.arg_values();
        assert!(matches!(vals[0], Value::Ptr(Addr { region: Region::Anon, offset: 0 })));
        assert_eq!(vals[1], Value::Int(3));
        assert_eq!(vals[2], Value::Int(7));
    }
}
