//! Snapshot/reset execution-environment pool.
//!
//! The dynamic stage runs every surviving candidate function under the
//! same fixed set of execution environments (§III-B of the paper: the
//! reference's environments are replayed against each candidate). The
//! naive path — [`crate::loader::LoadedBinary::run_any`] per (candidate,
//! env) pair — re-materializes the argument values and re-resolves the
//! global-override table on every call. [`EnvPool`] prepares each
//! environment once ([`ExecEnv::arg_values`] + globals resolution), then
//! under the fast engine keeps ONE reusable [`FastVm`] whose dirty-tracked
//! reset restores only what the previous run touched — consecutive runs of
//! the same environment skip even the snapshot install. Under
//! [`Engine::Interp`] every run clones the prepared snapshot into a fresh
//! interpreter. Either way executions stay bitwise-independent and
//! bitwise-identical across engines.

use crate::engine::FastVm;
use crate::env::ExecEnv;
use crate::exec::{resolve_globals, Engine, Vm, VmConfig};
use crate::loader::{LoadedBinary, RunResult};
use crate::value::Value;
use parking_lot::Mutex;

/// One prepared environment: raw input bytes, materialized argument
/// values, and the fully-resolved global table (initializers + overrides).
#[derive(Debug, Clone)]
struct EnvSnapshot {
    input: Vec<u8>,
    args: Vec<Value>,
    globals: Vec<Value>,
}

/// A pool of prepared execution environments over one loaded binary.
///
/// Build once per (binary, env set) and call [`EnvPool::run`] /
/// [`EnvPool::run_all`] for any number of candidate functions; results are
/// bitwise-identical to calling [`LoadedBinary::run_any`] per pair.
pub struct EnvPool<'a> {
    binary: &'a LoadedBinary,
    cfg: VmConfig,
    snapshots: Vec<EnvSnapshot>,
    /// The pool's reusable fast VM (`None` under [`Engine::Interp`]).
    /// A `Mutex` keeps `run(&self)` callable while the VM mutates; the
    /// dynamic stage runs candidates sequentially, so it is uncontended.
    fast: Option<Mutex<FastVm<'a>>>,
}

impl<'a> EnvPool<'a> {
    /// Prepare `envs` for repeated execution against `binary`.
    pub fn new(binary: &'a LoadedBinary, envs: &[ExecEnv], cfg: &VmConfig) -> EnvPool<'a> {
        let image = binary.image();
        let snapshots = envs
            .iter()
            .map(|e| EnvSnapshot {
                input: e.input.clone(),
                args: e.arg_values(),
                globals: resolve_globals(&image, &e.global_overrides),
            })
            .collect();
        let fast = match cfg.engine {
            Engine::Fast => Some(Mutex::new(FastVm::new(binary, cfg))),
            Engine::Interp => None,
        };
        EnvPool { binary, cfg: cfg.clone(), snapshots, fast }
    }

    /// Number of prepared environments.
    pub fn len(&self) -> usize {
        self.snapshots.len()
    }

    /// True when the pool holds no environments.
    pub fn is_empty(&self) -> bool {
        self.snapshots.is_empty()
    }

    /// Run function `func` in environment `env_idx`.
    ///
    /// # Panics
    /// Panics if `func` or `env_idx` is out of range — same contract (and
    /// same message) as [`LoadedBinary::run_any`], so callers that convert
    /// panics into degraded results see identical diagnostics.
    pub fn run(&self, func: usize, env_idx: usize) -> RunResult {
        assert!(
            func < self.binary.function_count(),
            "function index {func} out of range (table holds {})",
            self.binary.function_count()
        );
        assert!(
            env_idx < self.snapshots.len(),
            "environment index {env_idx} out of range (pool holds {})",
            self.snapshots.len()
        );
        let snap = &self.snapshots[env_idx];
        if let Some(fast) = &self.fast {
            let mut vm = fast.lock();
            // Re-install only when switching environments; same-env runs
            // rely purely on the dirty-tracked reset.
            if vm.env_token != env_idx as u64 {
                vm.set_env_prepared(&snap.input, &snap.args, &snap.globals);
                vm.env_token = env_idx as u64;
            }
            return vm.run(func);
        }
        let image = self.binary.image();
        let mut vm = Vm::with_globals(&image, &self.cfg, snap.input.clone(), snap.globals.clone());
        let outcome = vm.run(func, snap.args.clone());
        let features = vm.trace().features();
        let coverage = vm.trace().unique_count();
        RunResult { outcome, features, coverage }
    }

    /// Run `func` under every prepared environment, in pool order.
    pub fn run_all(&self, func: usize) -> Vec<RunResult> {
        (0..self.snapshots.len()).map(|i| self.run(func, i)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fwbin::isa::{Arch, OptLevel};
    use fwlang::gen::Generator;

    fn loaded() -> LoadedBinary {
        let lib = Generator::new(11).library_sized("libpool", 5);
        let bin = fwbin::compile_library(&lib, Arch::Arm64, OptLevel::O2).unwrap();
        LoadedBinary::load(bin).unwrap()
    }

    #[test]
    fn pool_runs_match_run_any_bitwise() {
        let loaded = loaded();
        let cfg = VmConfig::default();
        let envs: Vec<ExecEnv> = (0..4)
            .map(|i| ExecEnv::for_buffer(vec![i as u8 + 1; 8 + i], &[0]))
            .collect();
        let pool = EnvPool::new(&loaded, &envs, &cfg);
        assert_eq!(pool.len(), envs.len());
        for func in 0..loaded.function_count() {
            for (i, env) in envs.iter().enumerate() {
                let direct = loaded.run_any(func, env, &cfg);
                let pooled = pool.run(func, i);
                assert_eq!(direct.outcome, pooled.outcome);
                assert_eq!(
                    direct.features.as_slice().iter().map(|f| f.to_bits()).collect::<Vec<_>>(),
                    pooled.features.as_slice().iter().map(|f| f.to_bits()).collect::<Vec<_>>()
                );
                assert_eq!(direct.coverage, pooled.coverage);
            }
        }
    }

    #[test]
    fn pool_runs_are_independent_of_order() {
        let loaded = loaded();
        let cfg = VmConfig::default();
        let envs = vec![
            ExecEnv::for_buffer(vec![7; 12], &[0]),
            ExecEnv::for_buffer(vec![1, 2, 3], &[0]),
        ];
        let pool = EnvPool::new(&loaded, &envs, &cfg);
        let forward: Vec<_> = pool.run_all(0).into_iter().map(|r| r.features).collect();
        // Re-run in reverse: snapshots must fully reset state between runs.
        let backward: Vec<_> =
            (0..pool.len()).rev().map(|i| pool.run(0, i).features).collect();
        for (f, b) in forward.iter().zip(backward.iter().rev()) {
            assert_eq!(
                f.as_slice().iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
                b.as_slice().iter().map(|x| x.to_bits()).collect::<Vec<_>>()
            );
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_function_panics_like_run_any() {
        let loaded = loaded();
        let pool = EnvPool::new(&loaded, &[ExecEnv::for_buffer(vec![1], &[0])], &VmConfig::default());
        pool.run(loaded.function_count() + 3, 0);
    }

    /// Pins the exact panic messages of both `run` contracts: the `func`
    /// message matches `LoadedBinary::run_any` verbatim, and `env_idx` gets
    /// a typed message instead of a bare slice-index panic.
    #[test]
    fn out_of_range_panic_messages_are_pinned() {
        let loaded = loaded();
        let n = loaded.function_count();
        let pool =
            EnvPool::new(&loaded, &[ExecEnv::for_buffer(vec![1], &[0])], &VmConfig::default());
        let func_msg = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            pool.run(n + 3, 0);
        }))
        .expect_err("bad func must panic");
        let func_msg = func_msg.downcast_ref::<String>().expect("string panic payload");
        assert_eq!(*func_msg, format!("function index {} out of range (table holds {n})", n + 3));
        let env_msg = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            pool.run(0, 7);
        }))
        .expect_err("bad env_idx must panic");
        let env_msg = env_msg.downcast_ref::<String>().expect("string panic payload");
        assert_eq!(*env_msg, "environment index 7 out of range (pool holds 1)");
    }

    /// The fast path's env-token caching must not leak state between
    /// environments or between candidates sharing an environment.
    #[test]
    fn interleaved_envs_and_funcs_stay_bitwise_stable() {
        let loaded = loaded();
        let cfg = VmConfig::default();
        let envs = vec![
            ExecEnv::for_buffer(vec![5; 10], &[0]),
            ExecEnv::for_buffer(vec![250, 0, 3, 9], &[0]),
        ];
        let pool = EnvPool::new(&loaded, &envs, &cfg);
        let baseline: Vec<Vec<RunResult>> =
            (0..loaded.function_count()).map(|f| pool.run_all(f)).collect();
        // Interleave (func, env) pairs in a scrambled order; every result
        // must still match the baseline bit for bit.
        for round in 0..3 {
            for f in (0..loaded.function_count()).rev() {
                for e in 0..envs.len() {
                    let r = pool.run(f, (e + round) % envs.len());
                    let b = &baseline[f][(e + round) % envs.len()];
                    assert_eq!(r.outcome, b.outcome);
                    assert_eq!(
                        r.features.as_slice().iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
                        b.features.as_slice().iter().map(|x| x.to_bits()).collect::<Vec<_>>()
                    );
                    assert_eq!(r.coverage, b.coverage);
                }
            }
        }
    }
}
