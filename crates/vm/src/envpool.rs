//! Snapshot/reset execution-environment pool.
//!
//! The dynamic stage runs every surviving candidate function under the
//! same fixed set of execution environments (§III-B of the paper: the
//! reference's environments are replayed against each candidate). The
//! naive path — [`crate::loader::LoadedBinary::run_any`] per (candidate,
//! env) pair — re-materializes the argument values and re-resolves the
//! global-override table on every call. [`EnvPool`] prepares each
//! environment once ([`ExecEnv::arg_values`] + globals resolution), then
//! every run clones the prepared snapshot into a fresh interpreter: the
//! VM state (heap, trace, globals) is reset to the snapshot between runs,
//! so executions stay bitwise-independent while the per-run setup cost is
//! a pair of memcpys.

use crate::env::ExecEnv;
use crate::exec::{resolve_globals, Vm, VmConfig};
use crate::loader::{LoadedBinary, RunResult};
use crate::value::Value;

/// One prepared environment: raw input bytes, materialized argument
/// values, and the fully-resolved global table (initializers + overrides).
#[derive(Debug, Clone)]
struct EnvSnapshot {
    input: Vec<u8>,
    args: Vec<Value>,
    globals: Vec<Value>,
}

/// A pool of prepared execution environments over one loaded binary.
///
/// Build once per (binary, env set) and call [`EnvPool::run`] /
/// [`EnvPool::run_all`] for any number of candidate functions; results are
/// bitwise-identical to calling [`LoadedBinary::run_any`] per pair.
pub struct EnvPool<'a> {
    binary: &'a LoadedBinary,
    cfg: VmConfig,
    snapshots: Vec<EnvSnapshot>,
}

impl<'a> EnvPool<'a> {
    /// Prepare `envs` for repeated execution against `binary`.
    pub fn new(binary: &'a LoadedBinary, envs: &[ExecEnv], cfg: &VmConfig) -> EnvPool<'a> {
        let image = binary.image();
        let snapshots = envs
            .iter()
            .map(|e| EnvSnapshot {
                input: e.input.clone(),
                args: e.arg_values(),
                globals: resolve_globals(&image, &e.global_overrides),
            })
            .collect();
        EnvPool { binary, cfg: cfg.clone(), snapshots }
    }

    /// Number of prepared environments.
    pub fn len(&self) -> usize {
        self.snapshots.len()
    }

    /// True when the pool holds no environments.
    pub fn is_empty(&self) -> bool {
        self.snapshots.is_empty()
    }

    /// Run function `func` in environment `env_idx`.
    ///
    /// # Panics
    /// Panics if `func` or `env_idx` is out of range — same contract (and
    /// same message) as [`LoadedBinary::run_any`], so callers that convert
    /// panics into degraded results see identical diagnostics.
    pub fn run(&self, func: usize, env_idx: usize) -> RunResult {
        assert!(
            func < self.binary.function_count(),
            "function index {func} out of range (table holds {})",
            self.binary.function_count()
        );
        let image = self.binary.image();
        let snap = &self.snapshots[env_idx];
        let mut vm = Vm::with_globals(&image, &self.cfg, snap.input.clone(), snap.globals.clone());
        let outcome = vm.run(func, snap.args.clone());
        let features = vm.trace().features();
        let coverage = vm.trace().unique_count();
        RunResult { outcome, features, coverage }
    }

    /// Run `func` under every prepared environment, in pool order.
    pub fn run_all(&self, func: usize) -> Vec<RunResult> {
        (0..self.snapshots.len()).map(|i| self.run(func, i)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fwbin::isa::{Arch, OptLevel};
    use fwlang::gen::Generator;

    fn loaded() -> LoadedBinary {
        let lib = Generator::new(11).library_sized("libpool", 5);
        let bin = fwbin::compile_library(&lib, Arch::Arm64, OptLevel::O2).unwrap();
        LoadedBinary::load(bin).unwrap()
    }

    #[test]
    fn pool_runs_match_run_any_bitwise() {
        let loaded = loaded();
        let cfg = VmConfig::default();
        let envs: Vec<ExecEnv> = (0..4)
            .map(|i| ExecEnv::for_buffer(vec![i as u8 + 1; 8 + i], &[0]))
            .collect();
        let pool = EnvPool::new(&loaded, &envs, &cfg);
        assert_eq!(pool.len(), envs.len());
        for func in 0..loaded.function_count() {
            for (i, env) in envs.iter().enumerate() {
                let direct = loaded.run_any(func, env, &cfg);
                let pooled = pool.run(func, i);
                assert_eq!(direct.outcome, pooled.outcome);
                assert_eq!(
                    direct.features.as_slice().iter().map(|f| f.to_bits()).collect::<Vec<_>>(),
                    pooled.features.as_slice().iter().map(|f| f.to_bits()).collect::<Vec<_>>()
                );
                assert_eq!(direct.coverage, pooled.coverage);
            }
        }
    }

    #[test]
    fn pool_runs_are_independent_of_order() {
        let loaded = loaded();
        let cfg = VmConfig::default();
        let envs = vec![
            ExecEnv::for_buffer(vec![7; 12], &[0]),
            ExecEnv::for_buffer(vec![1, 2, 3], &[0]),
        ];
        let pool = EnvPool::new(&loaded, &envs, &cfg);
        let forward: Vec<_> = pool.run_all(0).into_iter().map(|r| r.features).collect();
        // Re-run in reverse: snapshots must fully reset state between runs.
        let backward: Vec<_> =
            (0..pool.len()).rev().map(|i| pool.run(0, i).features).collect();
        for (f, b) in forward.iter().zip(backward.iter().rev()) {
            assert_eq!(
                f.as_slice().iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
                b.as_slice().iter().map(|x| x.to_bits()).collect::<Vec<_>>()
            );
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_function_panics_like_run_any() {
        let loaded = loaded();
        let pool = EnvPool::new(&loaded, &[ExecEnv::for_buffer(vec![1], &[0])], &VmConfig::default());
        pool.run(loaded.function_count() + 3, 0);
    }
}
