//! # vm — dynamic analysis substrate
//!
//! The execution side of PATCHECKO's hybrid analysis: a region-tagged
//! interpreter for FWB binaries standing in for the paper's on-device
//! GDB/debugserver instrumentation. Provides:
//!
//! * [`loader`] — `dlopen`/`dlsym`/LIEF analogs: load a binary once, run
//!   any single function without "spawning the entire binary";
//! * [`exec`] — the reference interpreter with faults (crash pruning),
//!   instruction budgets (infinite-loop guard), and full tracing;
//! * [`engine`] — the fast engine: pre-lowered indexed dispatch, dense
//!   tracing, dirty-tracked snapshot resets; bitwise-identical profiles
//!   to the interpreter (DESIGN.md §15);
//! * [`trace`] — the 21 Table II dynamic features;
//! * [`env`] — fixed execution environments (input + args + globals);
//! * [`fuzz`] — coverage-guided input generation (LibFuzzer analog);
//! * [`value`] — region-tagged runtime values.
//!
//! ## Example
//!
//! ```
//! use fwbin::{compile_library, Arch, OptLevel};
//! use fwlang::gen::Generator;
//! use vm::env::ExecEnv;
//! use vm::exec::VmConfig;
//! use vm::loader::LoadedBinary;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let lib = Generator::new(8).library("libdemo");
//! let bin = compile_library(&lib, Arch::Arm64, OptLevel::O2)?;
//! let loaded = LoadedBinary::load(bin)?;
//! let env = ExecEnv::for_buffer(vec![1, 2, 3, 4], &[0]);
//! let result = loaded.run_any(0, &env, &VmConfig::default());
//! // Every run yields the 21 dynamic features of Table II.
//! assert_eq!(result.features.as_slice().len(), 21);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod engine;
pub mod env;
pub mod envpool;
pub mod exec;
pub mod fuzz;
pub mod loader;
pub(crate) mod lowered;
pub mod trace;
pub mod value;

pub use engine::FastVm;
pub use env::{ArgSpec, ExecEnv};
pub use envpool::EnvPool;
pub use exec::{Engine, Fault, Outcome, VmConfig};
pub use fuzz::{fuzz_function, FuzzConfig};
pub use loader::{LoadError, LoadedBinary, RunResult};
pub use trace::{DynFeatures, Trace, DYN_FEATURE_NAMES, NUM_DYN_FEATURES};
pub use value::{Addr, Region, Value};
