//! Differential identity suite: the fast engine must be bitwise-identical
//! to the reference interpreter — outcome (floats compared by bit
//! pattern), all 21 `DynFeatures`, and coverage — across all 4 ISAs ×
//! generated libraries × environments, including Timeout and Fault
//! outcomes at tight instruction budgets. The pipeline wrappers
//! (`EnvPool`, `fuzz_function`) must likewise be engine-invariant.

use fwbin::isa::{Arch, OptLevel};
use fwlang::gen::Generator;
use proptest::prelude::*;
use vm::env::ExecEnv;
use vm::exec::{Engine, VmConfig};
use vm::fuzz::{fuzz_function, FuzzConfig};
use vm::loader::{LoadedBinary, RunResult};
use vm::value::Value;
use vm::{EnvPool, Outcome};

fn assert_bitwise(fast: &RunResult, interp: &RunResult, ctx: &str) {
    match (&fast.outcome, &interp.outcome) {
        // `Outcome` equality uses f64 `==`, which would call NaN != NaN a
        // mismatch; identity here means identical bit patterns.
        (Outcome::Returned(Value::Float(a)), Outcome::Returned(Value::Float(b))) => {
            assert_eq!(a.to_bits(), b.to_bits(), "{ctx}: float return differs");
        }
        (a, b) => assert_eq!(a, b, "{ctx}: outcome differs"),
    }
    assert_eq!(
        fast.features.as_slice().iter().map(|f| f.to_bits()).collect::<Vec<_>>(),
        interp.features.as_slice().iter().map(|f| f.to_bits()).collect::<Vec<_>>(),
        "{ctx}: features differ"
    );
    assert_eq!(fast.coverage, interp.coverage, "{ctx}: coverage differs");
}

fn cfg_for(engine: Engine, max_instructions: u64) -> VmConfig {
    VmConfig { engine, max_instructions, ..VmConfig::default() }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 10, ..ProptestConfig::default() })]

    /// Random libraries, all 4 ISAs, random inputs, budgets from 1 (instant
    /// timeout) through default: every (function, env) profile matches.
    #[test]
    fn engines_produce_bitwise_identical_profiles(
        seed in 0u64..10_000,
        size in 1usize..6,
        opt_i in 0usize..OptLevel::ALL.len(),
        input in proptest::collection::vec(any::<u8>(), 0..24),
        budget_i in 0usize..5,
    ) {
        let budget = [1u64, 5, 17, 100, 200_000][budget_i];
        let lib = Generator::new(seed).library_sized("libident", size);
        for arch in Arch::ALL {
            let bin = fwbin::compile_library(&lib, arch, OptLevel::ALL[opt_i]).expect("compile");
            let loaded = LoadedBinary::load(bin).expect("load");
            let env = ExecEnv::for_buffer(input.clone(), &[3, 1]);
            for func in 0..loaded.function_count() {
                let fast = loaded.run_any(func, &env, &cfg_for(Engine::Fast, budget));
                let interp = loaded.run_any(func, &env, &cfg_for(Engine::Interp, budget));
                assert_bitwise(
                    &fast,
                    &interp,
                    &format!("seed {seed} {arch} func {func} budget {budget}"),
                );
            }
        }
    }

    /// `EnvPool` — the dynamic stage's replay path, where the fast engine
    /// reuses one VM across every (candidate, env) pair — is engine-
    /// invariant even under interleaved environment switching.
    #[test]
    fn env_pool_is_engine_invariant(
        seed in 0u64..10_000,
        arch_i in 0usize..Arch::ALL.len(),
        inputs in proptest::collection::vec(
            proptest::collection::vec(any::<u8>(), 0..16), 1..4),
    ) {
        let lib = Generator::new(seed).library_sized("libpool", 4);
        let bin = fwbin::compile_library(&lib, Arch::ALL[arch_i], OptLevel::O2).expect("compile");
        let loaded = LoadedBinary::load(bin).expect("load");
        let envs: Vec<ExecEnv> =
            inputs.into_iter().map(|i| ExecEnv::for_buffer(i, &[2, 0])).collect();
        let fast_pool = EnvPool::new(&loaded, &envs, &cfg_for(Engine::Fast, 50_000));
        let interp_pool = EnvPool::new(&loaded, &envs, &cfg_for(Engine::Interp, 50_000));
        // Interleave envs and candidates to stress the dirty-tracked reset
        // and env-token switching.
        for round in 0..2 {
            for func in 0..loaded.function_count() {
                for e in 0..envs.len() {
                    let idx = (e + round) % envs.len();
                    assert_bitwise(
                        &fast_pool.run(func, idx),
                        &interp_pool.run(func, idx),
                        &format!("seed {seed} func {func} env {idx} round {round}"),
                    );
                }
            }
        }
    }

    /// Coverage-guided env generation consumes engine outputs (coverage,
    /// outcomes, edge sets); identical engines ⇒ identical env sets.
    #[test]
    fn fuzzed_env_sets_are_engine_invariant(
        seed in 0u64..10_000,
        arch_i in 0usize..Arch::ALL.len(),
        fuzz_seed in 0u64..1000,
    ) {
        let lib = Generator::new(seed).library_sized("libfuzz", 3);
        let bin = fwbin::compile_library(&lib, Arch::ALL[arch_i], OptLevel::O1).expect("compile");
        let loaded = LoadedBinary::load(bin).expect("load");
        let fcfg = FuzzConfig { rounds: 40, seed: fuzz_seed, ..FuzzConfig::default() };
        let fast = fuzz_function(&loaded, 0, &fcfg, &cfg_for(Engine::Fast, 50_000));
        let interp = fuzz_function(&loaded, 0, &fcfg, &cfg_for(Engine::Interp, 50_000));
        prop_assert_eq!(fast, interp, "env sets differ between engines");
    }
}
