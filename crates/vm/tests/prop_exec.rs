//! Property tests for the interpreter: arithmetic semantics agree with the
//! compiler's constant folder (the invariant that makes optimization
//! behaviour-preserving), and the region model enforces isolation.

use fwbin::astopt;
use fwlang::ast::{BinOp, CmpOp, Expr, Function, Library, Param, Stmt, Ty};
use proptest::prelude::*;
use vm::env::{ArgSpec, ExecEnv};
use vm::exec::VmConfig;
use vm::loader::LoadedBinary;
use vm::{Outcome, Value};

fn binop_strategy() -> impl Strategy<Value = BinOp> {
    prop_oneof![
        Just(BinOp::Add),
        Just(BinOp::Sub),
        Just(BinOp::Mul),
        Just(BinOp::Div),
        Just(BinOp::Mod),
        Just(BinOp::And),
        Just(BinOp::Or),
        Just(BinOp::Xor),
        Just(BinOp::Shl),
        Just(BinOp::Shr),
    ]
}

fn cmpop_strategy() -> impl Strategy<Value = CmpOp> {
    prop_oneof![
        Just(CmpOp::Eq),
        Just(CmpOp::Ne),
        Just(CmpOp::Lt),
        Just(CmpOp::Le),
        Just(CmpOp::Gt),
        Just(CmpOp::Ge),
    ]
}

/// Compile `return a op b` and run it.
fn run_binop(op: BinOp, a: i64, b: i64) -> Outcome {
    let mut lib = Library::new("libt");
    lib.functions.push(Function {
        name: "f".into(),
        params: vec![
            Param { name: "a".into(), ty: Ty::Int },
            Param { name: "b".into(), ty: Ty::Int },
        ],
        locals: vec![],
        ret: Some(Ty::Int),
        body: vec![Stmt::Return(Some(Expr::bin(op, Expr::Param(0), Expr::Param(1))))],
        exported: true,
    });
    let bin = fwbin::compile_library(&lib, fwbin::Arch::Arm64, fwbin::OptLevel::O1).unwrap();
    let loaded = LoadedBinary::load(bin).unwrap();
    let env = ExecEnv {
        input: vec![],
        args: vec![ArgSpec::Int(a), ArgSpec::Int(b)],
        global_overrides: vec![],
    };
    loaded.run_any(0, &env, &VmConfig::default()).outcome
}

fn run_cmp(op: CmpOp, a: i64, b: i64) -> Outcome {
    let mut lib = Library::new("libt");
    lib.functions.push(Function {
        name: "f".into(),
        params: vec![
            Param { name: "a".into(), ty: Ty::Int },
            Param { name: "b".into(), ty: Ty::Int },
        ],
        locals: vec![],
        ret: Some(Ty::Int),
        body: vec![Stmt::Return(Some(Expr::cmp(op, Expr::Param(0), Expr::Param(1))))],
        exported: true,
    });
    let bin = fwbin::compile_library(&lib, fwbin::Arch::X86, fwbin::OptLevel::O2).unwrap();
    let loaded = LoadedBinary::load(bin).unwrap();
    let env = ExecEnv {
        input: vec![],
        args: vec![ArgSpec::Int(a), ArgSpec::Int(b)],
        global_overrides: vec![],
    };
    loaded.run_any(0, &env, &VmConfig::default()).outcome
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 96, ..ProptestConfig::default() })]

    /// VM integer arithmetic equals the compiler's folding semantics —
    /// compiled `a op b` returns exactly `eval_int_binop(op, a, b)`, and
    /// faults exactly when folding declines (division by zero).
    #[test]
    fn vm_matches_fold_semantics(op in binop_strategy(), a in any::<i64>(), b in any::<i64>()) {
        let outcome = run_binop(op, a, b);
        match astopt::eval_int_binop(op, a, b) {
            Some(v) => prop_assert_eq!(outcome, Outcome::Returned(Value::Int(v))),
            None => prop_assert!(matches!(outcome, Outcome::Fault(vm::Fault::DivByZero))),
        }
    }

    /// Comparisons agree with the folder across the flag-based x86 path
    /// (Cmp + SetCc).
    #[test]
    fn vm_comparisons_match_fold(op in cmpop_strategy(), a in any::<i64>(), b in any::<i64>()) {
        let expected = astopt::eval_cmp(op, a, b);
        prop_assert_eq!(run_cmp(op, a, b), Outcome::Returned(Value::Int(expected)));
    }

    /// Out-of-bounds buffer access always faults, in-bounds never does —
    /// the crash-pruning primitive of §III-B.
    #[test]
    fn bounds_model_is_exact(len in 1usize..64, idx in 0i64..128) {
        let mut lib = Library::new("libt");
        lib.functions.push(Function {
            name: "peek".into(),
            params: vec![
                Param { name: "data".into(), ty: Ty::Buf },
                Param { name: "len".into(), ty: Ty::Int },
                Param { name: "idx".into(), ty: Ty::Int },
            ],
            locals: vec![],
            ret: Some(Ty::Int),
            body: vec![Stmt::Return(Some(Expr::load(Expr::Param(0), Expr::Param(2))))],
            exported: true,
        });
        let bin = fwbin::compile_library(&lib, fwbin::Arch::Arm32, fwbin::OptLevel::O1).unwrap();
        let loaded = LoadedBinary::load(bin).unwrap();
        let input: Vec<u8> = (0..len as u8).map(|x| x.wrapping_mul(7)).collect();
        let env = ExecEnv {
            input: input.clone(),
            args: vec![ArgSpec::InputPtr, ArgSpec::Int(len as i64), ArgSpec::Int(idx)],
            global_overrides: vec![],
        };
        let outcome = loaded.run_any(0, &env, &VmConfig::default()).outcome;
        if (idx as usize) < len {
            prop_assert_eq!(outcome, Outcome::Returned(Value::Int(input[idx as usize] as i64)));
        } else {
            prop_assert!(matches!(outcome, Outcome::Fault(vm::Fault::OutOfBounds(_))));
        }
    }

    /// The instruction budget always terminates execution: any generated
    /// function under any input either completes or reports Timeout/Fault —
    /// the interpreter itself never hangs.
    #[test]
    fn execution_always_terminates(
        seed in 0u64..3000,
        input in proptest::collection::vec(any::<u8>(), 0..32),
        budget in 10u64..5000,
    ) {
        let lib = fwlang::gen::Generator::new(seed).library_sized("libt", 2);
        let bin = fwbin::compile_library(&lib, fwbin::Arch::Amd64, fwbin::OptLevel::O2).unwrap();
        let loaded = LoadedBinary::load(bin).unwrap();
        let cfg = VmConfig { max_instructions: budget, ..VmConfig::default() };
        let env = ExecEnv::for_buffer(input, &[1]);
        let r = loaded.run_any(0, &env, &cfg);
        // Whatever happened, the trace never exceeds the budget.
        prop_assert!(r.features.feature(6) <= budget as f64);
    }
}
