//! Semantic tests for every native library routine the VM models — the
//! bionic/libc analogs the paper's CVE functions call.

use fwlang::ast::{BinOp, Expr, Function, Library, Param, Stmt, Ty};
use vm::env::{ArgSpec, ExecEnv};
use vm::exec::VmConfig;
use vm::loader::LoadedBinary;
use vm::{Fault, Outcome, Value};

/// Compile and run a one-function library whose body is given by `build`.
fn run_body(
    params: Vec<Param>,
    locals: Vec<(&str, Ty)>,
    body: Vec<Stmt>,
    env: ExecEnv,
) -> (Outcome, vm::DynFeatures, Vec<u8>) {
    let mut lib = Library::new("libtest");
    let mut f = Function {
        name: "f".into(),
        params,
        locals: vec![],
        ret: Some(Ty::Int),
        body,
        exported: true,
    };
    for (n, t) in locals {
        f.add_local(n, t);
    }
    lib.functions.push(f);
    let bin = fwbin::compile_library(&lib, fwbin::Arch::Arm64, fwbin::OptLevel::O1).unwrap();
    let loaded = LoadedBinary::load(bin).unwrap();
    let r = loaded.run_any(0, &env, &VmConfig::default());
    (r.outcome, r.features, env.input)
}

fn buf_params() -> Vec<Param> {
    vec![
        Param { name: "data".into(), ty: Ty::Buf },
        Param { name: "len".into(), ty: Ty::Int },
    ]
}

fn call(callee: &str, args: Vec<Expr>) -> Expr {
    Expr::Call { callee: callee.into(), args }
}

#[test]
fn memset_overwrites_range() {
    // memset(data, 7, 4); return data[2];
    let body = vec![
        Stmt::Expr(call("memset", vec![Expr::Param(0), Expr::ConstInt(7), Expr::ConstInt(4)])),
        Stmt::Return(Some(Expr::load(Expr::Param(0), Expr::ConstInt(2)))),
    ];
    let (o, f, _) = run_body(buf_params(), vec![], body, ExecEnv::for_buffer(vec![0; 8], &[]));
    assert_eq!(o, Outcome::Returned(Value::Int(7)));
    assert!(f.feature(18) >= 5.0, "4 writes + 1 read in the anon region");
    assert_eq!(f.feature(20), 1.0, "one library call");
}

#[test]
fn memset_out_of_bounds_faults() {
    let body = vec![
        Stmt::Expr(call("memset", vec![Expr::Param(0), Expr::ConstInt(0), Expr::ConstInt(64)])),
        Stmt::Return(Some(Expr::ConstInt(0))),
    ];
    let (o, _, _) = run_body(buf_params(), vec![], body, ExecEnv::for_buffer(vec![0; 8], &[]));
    assert!(matches!(o, Outcome::Fault(Fault::OutOfBounds(_))), "{o:?}");
}

#[test]
fn memmove_handles_overlap() {
    // memmove(data+1, data, 4) on [1,2,3,4,5] -> [1,1,2,3,4]; return data[4].
    let body = vec![
        Stmt::Expr(call(
            "memmove",
            vec![
                Expr::bin(BinOp::Add, Expr::Param(0), Expr::ConstInt(1)),
                Expr::Param(0),
                Expr::ConstInt(4),
            ],
        )),
        Stmt::Return(Some(Expr::load(Expr::Param(0), Expr::ConstInt(4)))),
    ];
    let (o, _, _) =
        run_body(buf_params(), vec![], body, ExecEnv::for_buffer(vec![1, 2, 3, 4, 5], &[]));
    assert_eq!(o, Outcome::Returned(Value::Int(4)));
}

#[test]
fn memcmp_orders_lexicographically() {
    // memcmp(data, data+3, 3) over [1,2,3, 1,2,4]: first < second -> -1.
    let body = vec![Stmt::Return(Some(call(
        "memcmp",
        vec![
            Expr::Param(0),
            Expr::bin(BinOp::Add, Expr::Param(0), Expr::ConstInt(3)),
            Expr::ConstInt(3),
        ],
    )))];
    let (o, _, _) =
        run_body(buf_params(), vec![], body, ExecEnv::for_buffer(vec![1, 2, 3, 1, 2, 4], &[]));
    assert_eq!(o, Outcome::Returned(Value::Int(-1)));
}

#[test]
fn strlen_counts_to_nul() {
    let body = vec![Stmt::Return(Some(call("strlen", vec![Expr::Param(0)])))];
    let (o, _, _) =
        run_body(buf_params(), vec![], body, ExecEnv::for_buffer(vec![b'h', b'i', 0, b'x'], &[]));
    assert_eq!(o, Outcome::Returned(Value::Int(2)));
}

#[test]
fn strlen_without_nul_faults() {
    let body = vec![Stmt::Return(Some(call("strlen", vec![Expr::Param(0)])))];
    let (o, _, _) = run_body(buf_params(), vec![], body, ExecEnv::for_buffer(vec![1, 2, 3], &[]));
    assert!(matches!(o, Outcome::Fault(Fault::OutOfBounds(_))), "{o:?}");
}

#[test]
fn malloc_returns_writable_heap() {
    // p = malloc(8); p[3] = 42; return p[3];
    let body = vec![
        Stmt::Let { local: 0, value: call("malloc", vec![Expr::ConstInt(8)]) },
        Stmt::StoreByte { base: Expr::Local(0), index: Expr::ConstInt(3), value: Expr::ConstInt(42) },
        Stmt::Return(Some(Expr::load(Expr::Local(0), Expr::ConstInt(3)))),
    ];
    let (o, f, _) =
        run_body(buf_params(), vec![("p", Ty::Buf)], body, ExecEnv::for_buffer(vec![0; 4], &[]));
    assert_eq!(o, Outcome::Returned(Value::Int(42)));
    assert_eq!(f.feature(15), 2.0, "heap write + heap read");
}

#[test]
fn use_after_free_faults() {
    let body = vec![
        Stmt::Let { local: 0, value: call("malloc", vec![Expr::ConstInt(8)]) },
        Stmt::Expr(call("free", vec![Expr::Local(0)])),
        Stmt::Return(Some(Expr::load(Expr::Local(0), Expr::ConstInt(0)))),
    ];
    let (o, _, _) =
        run_body(buf_params(), vec![("p", Ty::Buf)], body, ExecEnv::for_buffer(vec![0; 4], &[]));
    assert_eq!(o, Outcome::Fault(Fault::UseAfterFree));
}

#[test]
fn double_free_faults() {
    let body = vec![
        Stmt::Let { local: 0, value: call("malloc", vec![Expr::ConstInt(8)]) },
        Stmt::Expr(call("free", vec![Expr::Local(0)])),
        Stmt::Expr(call("free", vec![Expr::Local(0)])),
        Stmt::Return(Some(Expr::ConstInt(0))),
    ];
    let (o, _, _) =
        run_body(buf_params(), vec![("p", Ty::Buf)], body, ExecEnv::for_buffer(vec![0; 4], &[]));
    assert_eq!(o, Outcome::Fault(Fault::UseAfterFree));
}

#[test]
fn heap_out_of_bounds_faults() {
    let body = vec![
        Stmt::Let { local: 0, value: call("malloc", vec![Expr::ConstInt(4)]) },
        Stmt::Return(Some(Expr::load(Expr::Local(0), Expr::ConstInt(9)))),
    ];
    let (o, _, _) =
        run_body(buf_params(), vec![("p", Ty::Buf)], body, ExecEnv::for_buffer(vec![0; 4], &[]));
    assert!(matches!(o, Outcome::Fault(Fault::OutOfBounds(vm::Region::Heap))), "{o:?}");
}

#[test]
fn scalar_helpers_compute() {
    for (callee, args, expect) in [
        ("abs", vec![Expr::ConstInt(-5)], 5),
        ("min", vec![Expr::ConstInt(3), Expr::ConstInt(9)], 3),
        ("max", vec![Expr::ConstInt(3), Expr::ConstInt(9)], 9),
    ] {
        let body = vec![Stmt::Return(Some(call(callee, args)))];
        let (o, _, _) = run_body(buf_params(), vec![], body, ExecEnv::for_buffer(vec![0], &[]));
        assert_eq!(o, Outcome::Returned(Value::Int(expect)), "{callee}");
    }
}

#[test]
fn checksum_is_input_sensitive() {
    let body = vec![Stmt::Return(Some(call(
        "checksum",
        vec![Expr::Param(0), Expr::Param(1)],
    )))];
    let (a, _, _) =
        run_body(buf_params(), vec![], body.clone(), ExecEnv::for_buffer(vec![1, 2, 3], &[]));
    let (b, _, _) = run_body(buf_params(), vec![], body, ExecEnv::for_buffer(vec![1, 2, 4], &[]));
    match (a, b) {
        (Outcome::Returned(x), Outcome::Returned(y)) => assert_ne!(x.as_int(), y.as_int()),
        other => panic!("{other:?}"),
    }
}

#[test]
fn abort_faults_as_aborted() {
    let body = vec![
        Stmt::Expr(call("abort", vec![])),
        Stmt::Return(Some(Expr::ConstInt(0))),
    ];
    let (o, _, _) = run_body(buf_params(), vec![], body, ExecEnv::for_buffer(vec![0], &[]));
    assert_eq!(o, Outcome::Fault(Fault::Aborted));
}

#[test]
fn free_null_is_noop() {
    let body = vec![
        Stmt::Expr(call("free", vec![Expr::ConstInt(0)])),
        Stmt::Return(Some(Expr::ConstInt(1))),
    ];
    let (o, _, _) = run_body(buf_params(), vec![], body, ExecEnv::for_buffer(vec![0], &[]));
    assert_eq!(o, Outcome::Returned(Value::Int(1)));
}

#[test]
fn log_event_reads_string_in_lib_region() {
    let mut lib = Library::new("libtest");
    let sid = lib.intern_string("hello log");
    let mut f = Function {
        name: "f".into(),
        params: buf_params(),
        locals: vec![],
        ret: Some(Ty::Int),
        body: vec![
            Stmt::Expr(call("log_event", vec![Expr::Str(sid), Expr::ConstInt(1)])),
            Stmt::Return(Some(Expr::ConstInt(0))),
        ],
        exported: true,
    };
    f.exported = true;
    lib.functions.push(f);
    let bin = fwbin::compile_library(&lib, fwbin::Arch::X86, fwbin::OptLevel::O2).unwrap();
    let loaded = LoadedBinary::load(bin).unwrap();
    let r = loaded.run_any(0, &ExecEnv::for_buffer(vec![0], &[]), &VmConfig::default());
    assert!(r.outcome.is_ok());
    assert!(r.features.feature(17) >= 9.0, "library-region reads: {}", r.features.feature(17));
}

#[test]
fn recursion_depth_is_bounded() {
    // f calls itself forever: must hit StackOverflow, not hang.
    let mut lib = Library::new("libtest");
    lib.functions.push(Function {
        name: "rec".into(),
        params: vec![Param { name: "n".into(), ty: Ty::Int }],
        locals: vec![],
        ret: Some(Ty::Int),
        body: vec![Stmt::Return(Some(Expr::Call {
            callee: "rec".into(),
            args: vec![Expr::Param(0)],
        }))],
        exported: true,
    });
    let bin = fwbin::compile_library(&lib, fwbin::Arch::Arm64, fwbin::OptLevel::O1).unwrap();
    let loaded = LoadedBinary::load(bin).unwrap();
    let env = ExecEnv { input: vec![], args: vec![ArgSpec::Int(1)], global_overrides: vec![] };
    let r = loaded.run_any(0, &env, &VmConfig::default());
    assert_eq!(r.outcome, Outcome::Fault(Fault::StackOverflow));
    // Max stack depth reflects the limit.
    assert!(r.features.feature(3) >= 60.0);
}

#[test]
fn global_overrides_change_behaviour() {
    let mut lib = Library::new("libtest");
    let g = lib.add_global("mode", 1);
    lib.functions.push(Function {
        name: "f".into(),
        params: buf_params(),
        locals: vec![],
        ret: Some(Ty::Int),
        body: vec![Stmt::Return(Some(Expr::Global(g)))],
        exported: true,
    });
    let bin = fwbin::compile_library(&lib, fwbin::Arch::Arm32, fwbin::OptLevel::O1).unwrap();
    let loaded = LoadedBinary::load(bin).unwrap();
    let mut env = ExecEnv::for_buffer(vec![0], &[]);
    let r = loaded.run_any(0, &env, &VmConfig::default());
    assert_eq!(r.outcome, Outcome::Returned(Value::Int(1)), "initializer value");
    env.global_overrides = vec![(g, 42)];
    let r = loaded.run_any(0, &env, &VmConfig::default());
    assert_eq!(r.outcome, Outcome::Returned(Value::Int(42)), "override applies");
    assert!(r.features.feature(19) >= 1.0, "global read counts as Other-region access");
}
