//! Regression tests for interpreter correctness bugs found during the
//! fast-engine rework, asserted on BOTH engines:
//!
//! * `LoadStr` with an out-of-range string id used to silently alias
//!   offset 0 (`unwrap_or(0)`), making corrupt binaries trace like valid
//!   ones — it now faults `BadString`.
//! * `FBin` used to collapse float-op errors to `0.0` (`unwrap_or(0.0)`),
//!   masking malformed instruction streams — an integer-only operator
//!   reaching the float unit now faults `BadFloatOp`, while genuinely
//!   float-defined operations (including div-by-zero → IEEE ±inf) are
//!   unchanged.

use fwbin::encode::encode;
use fwbin::format::{Binary, FuncRecord};
use fwbin::isa::{Arch, BinOp, Inst, OptLevel, Reg};
use vm::env::ExecEnv;
use vm::exec::{Engine, Fault, Outcome, VmConfig};
use vm::loader::LoadedBinary;
use vm::value::{Region, Value};

/// Hand-assemble a one-function binary around `code`.
fn binary_with(code: &[Inst], strings: &[&str]) -> Binary {
    Binary {
        lib_name: "libfault".into(),
        arch: Arch::Arm64,
        opt: OptLevel::O0,
        functions: vec![FuncRecord {
            name: Some("f".into()),
            exported: true,
            code: encode(code, Arch::Arm64),
            n_params: 0,
            frame_slots: 0,
        }],
        strings: strings.iter().map(|s| s.to_string()).collect(),
        globals: vec![],
        imports: vec![],
    }
}

/// Run function 0 under both engines and assert they agree on the outcome.
fn run_both(bin: Binary) -> Outcome {
    let loaded = LoadedBinary::load(bin).expect("hand-assembled binary loads");
    let env = ExecEnv::for_buffer(vec![0; 4], &[]);
    let fast = loaded.run_any(
        0,
        &env,
        &VmConfig { engine: Engine::Fast, ..VmConfig::default() },
    );
    let interp = loaded.run_any(
        0,
        &env,
        &VmConfig { engine: Engine::Interp, ..VmConfig::default() },
    );
    assert_eq!(fast.outcome, interp.outcome, "engines disagree");
    fast.outcome
}

#[test]
fn loadstr_out_of_range_sid_faults_bad_string() {
    let bin = binary_with(
        &[Inst::LoadStr { rd: Reg(0), sid: 999 }, Inst::Ret],
        &["only-string"],
    );
    assert_eq!(run_both(bin), Outcome::Fault(Fault::BadString));
}

#[test]
fn loadstr_valid_sid_resolves_its_own_offset() {
    // Before the fix a corrupt sid aliased string 0; pin that a *valid*
    // non-zero sid resolves past string 0's bytes ("alpha\0" = 6 bytes).
    let bin = binary_with(
        &[
            Inst::LoadStr { rd: Reg(0), sid: 1 },
            Inst::SetRet { rs: Reg(0) },
            Inst::Ret,
        ],
        &["alpha", "beta"],
    );
    match run_both(bin) {
        Outcome::Returned(Value::Ptr(p)) => {
            assert_eq!(p.region, Region::Lib);
            assert_eq!(p.offset, 6, "sid 1 starts after \"alpha\\0\"");
        }
        other => panic!("expected a Lib pointer, got {other:?}"),
    }
}

#[test]
fn fbin_integer_only_operator_faults_bad_float_op() {
    // `Mod` has no float semantics; reaching the float unit with it is a
    // malformed stream and must fault, not return 0.0.
    let bin = binary_with(
        &[
            Inst::FMovImm { rd: Reg(0), imm: 1.5 },
            Inst::FMovImm { rd: Reg(1), imm: 2.5 },
            Inst::FBin { op: BinOp::Mod, rd: Reg(2), rs1: Reg(0), rs2: Reg(1) },
            Inst::SetRet { rs: Reg(2) },
            Inst::Ret,
        ],
        &[],
    );
    assert_eq!(run_both(bin), Outcome::Fault(Fault::BadFloatOp));
}

#[test]
fn fbin_float_division_by_zero_keeps_ieee_semantics() {
    // The fault path is only for operators with no float meaning; float
    // div-by-zero stays IEEE (+inf), not a fault and not 0.0.
    let bin = binary_with(
        &[
            Inst::FMovImm { rd: Reg(0), imm: 1.0 },
            Inst::FMovImm { rd: Reg(1), imm: 0.0 },
            Inst::FBin { op: BinOp::Div, rd: Reg(2), rs1: Reg(0), rs2: Reg(1) },
            Inst::SetRet { rs: Reg(2) },
            Inst::Ret,
        ],
        &[],
    );
    match run_both(bin) {
        Outcome::Returned(Value::Float(v)) => {
            assert!(v.is_infinite() && v > 0.0, "1.0/0.0 is +inf, got {v}");
        }
        other => panic!("expected +inf, got {other:?}"),
    }
}
