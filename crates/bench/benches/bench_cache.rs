//! Scanhub speedups: cold vs warm cache-backed scans, and per-pair vs
//! batched classifier inference.
//!
//! The warm path is the service's steady state — every static feature is
//! served from the content-addressed store, so only the NN forward pass
//! and the dynamic stage remain. The inference pair shows what one GEMM
//! per layer buys over row-at-a-time forward passes.

use criterion::{criterion_group, BatchSize, Criterion};
use std::hint::black_box;
use corpus::dataset1::Dataset1Config;
use neural::net::TrainConfig;
use patchecko_core::detector::{self, Detector, DetectorConfig};
use patchecko_core::features::StaticFeatures;
use patchecko_core::pipeline::{Basis, Patchecko, PipelineConfig};
use patchecko_scanhub::{ArtifactStore, ScanHub};

fn small_detector() -> Detector {
    let ds = corpus::build_dataset1(&Dataset1Config {
        num_libraries: 10,
        min_functions: 8,
        max_functions: 12,
        seed: 1,
        include_catalog: true,
    });
    let cfg = DetectorConfig {
        pairs_per_function: 6,
        train: TrainConfig { epochs: 10, batch: 256, lr: 1e-3, seed: 7, ..Default::default() },
        ..DetectorConfig::default()
    };
    detector::train(&ds, &cfg).0
}

fn bench_cache(c: &mut Criterion) {
    let analyzer = Patchecko::new(small_detector(), PipelineConfig::default());
    let db = corpus::build_vulndb(0, 1);
    let entry = db.get("CVE-2018-9412").unwrap();
    let device = corpus::build_device(&corpus::android_things_spec(), &corpus::full_catalog(), 0.1);
    let truth = device.truth_for("CVE-2018-9412").unwrap();
    let bin = device.image.binary(&truth.library).unwrap().clone();

    // Cold: every iteration starts from an empty store, paying full
    // disassembly + feature extraction for targets and references.
    c.bench_function("cache/scan_library_cold", |b| {
        b.iter_batched(
            || ScanHub::new(Patchecko::new(analyzer.detector.clone(), PipelineConfig::default())),
            |hub| black_box(hub.scan_library(&bin, entry, Basis::Vulnerable).unwrap()),
            BatchSize::SmallInput,
        )
    });

    // Warm: the steady state — the shared store already holds every
    // artifact, so the scan is cache lookups + the batched forward pass.
    // Wired to the global scope registry so the final telemetry table
    // shows the hit/miss ledger for the whole warm sweep.
    let warm_hub = ScanHub::with_registry(
        Patchecko::new(analyzer.detector.clone(), PipelineConfig::default()),
        scope::global_shared(),
    );
    warm_hub.scan_library(&bin, entry, Basis::Vulnerable).unwrap();
    c.bench_function("cache/scan_library_warm", |b| {
        b.iter(|| black_box(warm_hub.scan_library(&bin, entry, Basis::Vulnerable).unwrap()))
    });

    // Store-only view of the same contrast: features_all through an empty
    // vs a populated store.
    c.bench_function("cache/features_all_cold", |b| {
        b.iter_batched(
            ArtifactStore::new,
            |store| {
                use patchecko_core::pipeline::FeatureSource;
                black_box(store.features_all(&bin).unwrap())
            },
            BatchSize::SmallInput,
        )
    });
    let warm_store = ArtifactStore::new();
    {
        use patchecko_core::pipeline::FeatureSource;
        warm_store.features_all(&bin).unwrap();
    }
    c.bench_function("cache/features_all_warm", |b| {
        use patchecko_core::pipeline::FeatureSource;
        b.iter(|| black_box(warm_store.features_all(&bin).unwrap()))
    });

    // Inference: classify every (reference × target) pair one row at a
    // time vs one matrix through the network.
    let det = &analyzer.detector;
    let references = Patchecko::reference_feature_set(entry, Basis::Vulnerable).unwrap();
    let targets = {
        use patchecko_core::pipeline::FeatureSource;
        patchecko_core::pipeline::DirectExtraction.features_all(&bin).unwrap()
    };
    let pairs: Vec<(&StaticFeatures, &StaticFeatures)> =
        references.iter().flat_map(|r| targets.iter().map(move |t| (r, t))).collect();
    c.bench_function("inference/per_pair_531", |b| {
        b.iter(|| {
            let probs: Vec<f32> = pairs.iter().map(|(r, t)| det.similarity(r, t)).collect();
            black_box(probs)
        })
    });
    c.bench_function("inference/batched_531", |b| {
        b.iter(|| black_box(det.classify_batch(&pairs)))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_cache
}

fn main() {
    benches();
    // The warm hub's cache counters and every scan's pipeline spans all
    // landed in the global scope registry; print the combined ledger.
    patchecko_bench::print_telemetry("bench_cache");
}
