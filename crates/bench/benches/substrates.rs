//! Substrate health benchmarks: the compiler across architectures and
//! optimization levels, the disassembler/CFG builder, the neural forward
//! pass, and the baseline similarity engines.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use fwbin::isa::{Arch, OptLevel};
use fwlang::gen::Generator;
use neural::matrix::Matrix;
use neural::net::Mlp;
use patchecko_core::baseline;

fn bench_compiler(c: &mut Criterion) {
    let lib = Generator::new(42).library_sized("libbench", 15);
    let mut group = c.benchmark_group("compiler/compile_library_15fn");
    for arch in Arch::ALL {
        group.bench_with_input(BenchmarkId::from_parameter(arch), &arch, |b, &arch| {
            b.iter(|| black_box(fwbin::compile_library(&lib, arch, OptLevel::O2).unwrap()))
        });
    }
    group.finish();

    let mut group = c.benchmark_group("compiler/opt_levels_arm64");
    for opt in OptLevel::ALL {
        group.bench_with_input(BenchmarkId::from_parameter(opt), &opt, |b, &opt| {
            b.iter(|| black_box(fwbin::compile_library(&lib, Arch::Arm64, opt).unwrap()))
        });
    }
    group.finish();
}

fn bench_disasm(c: &mut Criterion) {
    let lib = Generator::new(42).library_sized("libbench", 15);
    let bin = fwbin::compile_library(&lib, Arch::Arm32, OptLevel::O2).unwrap();
    c.bench_function("disasm/disassemble_all_15fn", |b| {
        b.iter(|| black_box(disasm::disassemble_all(&bin).unwrap()))
    });
    let dis = disasm::disassemble(&bin, 0).unwrap();
    c.bench_function("disasm/betweenness_centrality", |b| {
        b.iter(|| black_box(disasm::graph::betweenness_centrality(&dis.cfg)))
    });
}

fn bench_neural(c: &mut Criterion) {
    let net = Mlp::new(&patchecko_core::detector::MODEL_DIMS, 1);
    let x = Matrix::from_fn(256, 96, |r, col| ((r * 31 + col * 7) % 17) as f32 / 17.0 - 0.5);
    c.bench_function("neural/forward_batch256", |b| b.iter(|| black_box(net.predict(&x))));
    let mut train_net = Mlp::new(&patchecko_core::detector::MODEL_DIMS, 1);
    let y: Vec<f32> = (0..256).map(|i| (i % 2) as f32).collect();
    c.bench_function("neural/train_batch256", |b| {
        b.iter(|| black_box(train_net.train_batch(&x, &y, 1e-3)))
    });
}

fn bench_baselines(c: &mut Criterion) {
    let lib = Generator::new(42).library_sized("libbench", 10);
    let a = fwbin::compile_library(&lib, Arch::X86, OptLevel::O1).unwrap();
    let bdis = disasm::disassemble_all(&fwbin::compile_library(&lib, Arch::Arm64, OptLevel::O3).unwrap()).unwrap();
    let adis = disasm::disassemble_all(&a).unwrap();
    c.bench_function("baseline/bipartite_pair", |b| {
        b.iter(|| black_box(baseline::bipartite_similarity(&adis[0], &bdis[0])))
    });
    let emb = neural::GraphEmbedder::new(baseline::BLOCK_FEATURES, 32, 3, 5);
    let ga = baseline::graph_sample(&adis[0]);
    let gb = baseline::graph_sample(&bdis[0]);
    c.bench_function("baseline/structure2vec_pair", |b| {
        b.iter(|| {
            let ea = emb.embed(&ga);
            let eb = emb.embed(&gb);
            black_box(neural::cosine(&ea, &eb))
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_compiler, bench_disasm, bench_neural, bench_baselines
}
criterion_main!(benches);
