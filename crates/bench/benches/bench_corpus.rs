//! Corpus-scale streaming throughput: functions/sec of the streaming
//! scan path as the generated corpus grows 10³ → 10⁴ → 10⁵ functions
//! (quick mode stops at 10⁴), with the recall and bounded-memory gates
//! asserted **before any timing**:
//!
//! * **recall** — on a generated 10⁴-function corpus with planted CVE
//!   functions and a 100-row reference pool (25 featured CVEs × 4
//!   platform variants — wide enough that the default top-16 index
//!   really prunes), the indexed streaming scan retains ≥ 99% of the
//!   exact scan's true (planted) detections;
//! * **bounded memory** — a streaming scan over a corpus 10× larger than
//!   the configured working set holds at most `working_set` units live
//!   at once, proven by the live-entry counter in the streaming path.
//!
//! The throughput curve, the gate evidence, and the peak-working-set
//! counter per size land in `BENCH_corpus.json`.

use corpus::dataset1::Dataset1Config;
use corpus::{CorpusStream, StreamConfig};
use neural::net::TrainConfig;
use patchecko_core::detector::{self, Detector, DetectorConfig};
use patchecko_core::features::StaticFeatures;
use patchecko_core::pipeline::{Basis, Patchecko, PipelineConfig};
use patchecko_core::retrieval::{Retrieval, DEFAULT_TOP_K};
use patchecko_core::stream::StreamScanReport;
use patchecko_scanhub::ScanHub;
use std::collections::HashSet;

fn small_detector() -> Detector {
    let ds = corpus::build_dataset1(&Dataset1Config {
        num_libraries: 10,
        min_functions: 8,
        max_functions: 12,
        seed: 1,
        include_catalog: true,
    });
    let cfg = DetectorConfig {
        pairs_per_function: 6,
        train: TrainConfig { epochs: 10, batch: 256, lr: 1e-3, seed: 7, ..Default::default() },
        ..DetectorConfig::default()
    };
    detector::train(&ds, &cfg).0
}

fn analyzer(detector: &Detector, retrieval: Retrieval) -> Patchecko {
    Patchecko::new(detector.clone(), PipelineConfig { retrieval, ..PipelineConfig::default() })
}

/// The featured entries' vulnerable reference variants flattened into one
/// pool: 25 CVEs × 4 platform variants = 100 reference rows.
fn reference_pool() -> Vec<StaticFeatures> {
    let db = corpus::build_vulndb(0, 1);
    let mut pool = Vec::new();
    for entry in db.featured() {
        pool.extend(Patchecko::reference_feature_set(entry, Basis::Vulnerable).unwrap());
    }
    assert!(pool.len() > DEFAULT_TOP_K, "pool must be wide enough to prune");
    pool
}

fn stream_cfg(target_functions: usize) -> StreamConfig {
    let mut cfg = StreamConfig::sized(target_functions, 0xBE9C);
    cfg.plant_every = 4;
    cfg
}

fn scan(analyzer: &Patchecko, cfg: &StreamConfig, refs: &[StaticFeatures], ws: usize) -> StreamScanReport {
    analyzer
        .scan_stream(CorpusStream::new(cfg.clone()).map(|u| u.binary), refs, ws)
        .unwrap()
}

/// Gate 1 — recall ≥ 99% of the exact scan's true detections at the
/// 10⁴-function corpus. Returns the gate evidence for the JSON record.
fn assert_recall_gate(detector: &Detector, refs: &[StaticFeatures]) -> serde_json::Value {
    let cfg = stream_cfg(10_000);
    let exact = analyzer(detector, Retrieval::Exact);
    let topk = analyzer(detector, Retrieval::TopK { k: DEFAULT_TOP_K });

    let flagged = |a: &Patchecko| -> HashSet<(usize, usize)> {
        scan(a, &cfg, refs, 64).matches.iter().map(|m| (m.unit, m.function)).collect()
    };
    let exact_set = flagged(&exact);
    let topk_set = flagged(&topk);

    let planted = corpus::manifest(&cfg);
    let exact_true: Vec<(usize, usize)> = planted
        .iter()
        .map(|p| (p.unit, p.function_index))
        .filter(|d| exact_set.contains(d))
        .collect();
    assert!(
        exact_true.len() * 10 >= planted.len() * 9,
        "exact scan must find ≥90% of planted CVEs ({}/{})",
        exact_true.len(),
        planted.len()
    );
    let retained = exact_true.iter().filter(|d| topk_set.contains(*d)).count();
    let recall = retained as f64 / exact_true.len() as f64;
    assert!(
        recall >= 0.99,
        "recall gate FAILED: {recall:.4} < 0.99 ({retained}/{} true exact detections \
         retained at K={DEFAULT_TOP_K})",
        exact_true.len()
    );
    println!(
        "recall gate: {recall:.4} ({retained}/{} true detections retained, {} planted, K={DEFAULT_TOP_K})",
        exact_true.len(),
        planted.len()
    );
    scope::add("bench.recall_planted", planted.len() as u64);
    serde_json::json!({
        "corpus_functions": cfg.total_functions(),
        "planted": planted.len(),
        "exact_true_detections": exact_true.len(),
        "retained": retained,
        "recall": recall,
        "threshold": 0.99,
        "pass": true,
    })
}

/// Gate 2 — bounded memory: corpus 10× the working set, peak live units
/// never exceed the working set. Returns the gate evidence.
fn assert_memory_gate(detector: &Detector, refs: &[StaticFeatures]) -> serde_json::Value {
    const WORKING_SET: usize = 8;
    let mut cfg = stream_cfg(0);
    cfg.functions_per_library = 8;
    cfg.target_functions = WORKING_SET * 10 * cfg.functions_per_library;
    assert_eq!(cfg.units(), WORKING_SET * 10);
    let topk = analyzer(detector, Retrieval::TopK { k: DEFAULT_TOP_K });
    let report = scan(&topk, &cfg, refs, WORKING_SET);
    assert!(
        report.peak_live <= WORKING_SET,
        "bounded-memory gate FAILED: peak live units {} > working set {WORKING_SET} \
         over a {}-unit corpus",
        report.peak_live,
        report.units
    );
    println!(
        "bounded-memory gate: peak {} of {WORKING_SET} live units over a {}-unit corpus",
        report.peak_live, report.units
    );
    serde_json::json!({
        "working_set": WORKING_SET,
        "units": report.units,
        "peak_live": report.peak_live,
        "pass": true,
    })
}

fn main() {
    let quick = criterion::quick_mode();
    let detector = small_detector();
    let refs = reference_pool();

    // Both gates run (and must pass) before any timing, in every mode.
    let recall_gate = assert_recall_gate(&detector, &refs);
    let memory_gate = assert_memory_gate(&detector, &refs);

    // The throughput curve: the production streaming path (hub-cached
    // top-K scan) at each corpus size, one full pass per size.
    let sizes: &[usize] = if quick { &[1_000, 10_000] } else { &[1_000, 10_000, 100_000] };
    let working_set = 64usize;
    let hub = ScanHub::new(analyzer(&detector, Retrieval::TopK { k: DEFAULT_TOP_K }));
    let mut curve = Vec::new();
    for &size in sizes {
        let cfg = stream_cfg(size);
        let report = hub
            .scan_stream(CorpusStream::new(cfg.clone()).map(|u| u.binary), &refs, working_set)
            .unwrap();
        println!(
            "corpus/{size}: {} units / {} functions in {:.2}s — {:.0} functions/s, \
             {} matches, peak working set {} of {working_set}",
            report.units,
            report.functions,
            report.seconds,
            report.functions_per_second(),
            report.matches.len(),
            report.peak_live
        );
        curve.push(serde_json::json!({
            "target_functions": size,
            "units": report.units,
            "functions": report.functions,
            "seconds": report.seconds,
            "functions_per_second": report.functions_per_second(),
            "matches": report.matches.len(),
            "peak_live": report.peak_live,
            "working_set": working_set,
        }));
    }

    let gates = serde_json::json!({
        "recall": recall_gate,
        "bounded_memory": memory_gate,
    });
    let summary = serde_json::json!({
        "bench": "bench_corpus",
        "quick": quick,
        "gates": gates,
        "throughput": curve,
    });
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_corpus.json");
    std::fs::write(path, serde_json::to_string_pretty(&summary).unwrap() + "\n")
        .expect("write BENCH_corpus.json");
    println!("wrote {path}");
    patchecko_bench::print_telemetry("bench_corpus");
}
