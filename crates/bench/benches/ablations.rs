//! Ablation benchmarks for the design choices DESIGN.md calls out:
//!
//! * Minkowski order p ∈ {1, 2, 3} (the paper picks p = 3);
//! * number of execution environments K (accuracy/cost trade-off of
//!   §III-C's averaging);
//! * fuzzing effort (rounds) for environment generation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use patchecko_core::similarity;
use vm::env::ExecEnv;
use vm::exec::VmConfig;
use vm::fuzz::{self, FuzzConfig};
use vm::loader::LoadedBinary;
use vm::DynFeatures;

fn flagship_reference() -> LoadedBinary {
    let db = corpus::build_vulndb(0, 1);
    let entry = db.get("CVE-2018-9412").unwrap();
    LoadedBinary::load(entry.vulnerable_bin.clone()).unwrap()
}

fn bench_minkowski_order(c: &mut Criterion) {
    // Synthetic profiles with realistic magnitudes.
    let mk = |bias: f64| -> Vec<DynFeatures> {
        (0..5)
            .map(|k| {
                let mut f = [0.0; vm::NUM_DYN_FEATURES];
                for (i, v) in f.iter_mut().enumerate() {
                    *v = (i as f64 * 3.7 + k as f64 * 11.0 + bias) % 97.0;
                }
                DynFeatures(f)
            })
            .collect()
    };
    let reference = mk(0.0);
    let candidates: Vec<(usize, Vec<DynFeatures>)> =
        (0..64).map(|i| (i, mk(i as f64))).collect();
    let mut group = c.benchmark_group("ablation/minkowski_order");
    for p in [1.0f64, 2.0, 3.0] {
        group.bench_with_input(BenchmarkId::from_parameter(p), &p, |b, &p| {
            b.iter(|| black_box(similarity::rank(&reference, &candidates, p)))
        });
    }
    group.finish();
}

fn bench_env_count(c: &mut Criterion) {
    let reference = flagship_reference();
    let vm_cfg = VmConfig::default();
    let envs: Vec<ExecEnv> = fuzz::fuzz_function(
        &reference,
        0,
        &FuzzConfig { num_envs: 9, ..FuzzConfig::default() },
        &vm_cfg,
    );
    let mut group = c.benchmark_group("ablation/env_count");
    for k in [1usize, 3, 5, 9] {
        let subset: Vec<ExecEnv> = envs.iter().take(k).cloned().collect();
        group.bench_with_input(BenchmarkId::from_parameter(k), &subset, |b, subset| {
            b.iter(|| {
                for env in subset {
                    black_box(reference.run_any(0, env, &vm_cfg));
                }
            })
        });
    }
    group.finish();
}

fn bench_fuzz_effort(c: &mut Criterion) {
    let reference = flagship_reference();
    let vm_cfg = VmConfig::default();
    let mut group = c.benchmark_group("ablation/fuzz_rounds");
    for rounds in [50usize, 200, 500] {
        group.bench_with_input(BenchmarkId::from_parameter(rounds), &rounds, |b, &rounds| {
            b.iter(|| {
                black_box(fuzz::fuzz_function(
                    &reference,
                    0,
                    &FuzzConfig { rounds, ..FuzzConfig::default() },
                    &vm_cfg,
                ))
            })
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_minkowski_order, bench_env_count, bench_fuzz_effort
}
criterion_main!(benches);
