//! Pipeline stage timings — the "DP" (deep learning) and "DA" (dynamic
//! analysis) columns of Tables VI/VII as micro-benchmarks: static feature
//! extraction + classification per library, execution validation and
//! dynamic profiling per candidate, and Minkowski ranking.

use criterion::{criterion_group, BatchSize, Criterion};
use std::hint::black_box;
use corpus::dataset1::Dataset1Config;
use neural::net::TrainConfig;
use patchecko_core::detector::{self, Detector, DetectorConfig};
use patchecko_core::pipeline::{live_profiling, Basis, Patchecko, PipelineConfig};
use patchecko_core::{features, similarity};
use std::sync::Arc;
use vm::loader::LoadedBinary;

fn small_detector() -> Detector {
    let ds = corpus::build_dataset1(&Dataset1Config {
        num_libraries: 10,
        min_functions: 8,
        max_functions: 12,
        seed: 1,
        include_catalog: true,
    });
    let cfg = DetectorConfig {
        pairs_per_function: 6,
        train: TrainConfig { epochs: 10, batch: 256, lr: 1e-3, seed: 7, ..Default::default() },
        ..DetectorConfig::default()
    };
    detector::train(&ds, &cfg).0
}

fn bench_stages(c: &mut Criterion) {
    let patchecko = Patchecko::new(small_detector(), PipelineConfig::default());
    let db = corpus::build_vulndb(0, 1);
    let entry = db.get("CVE-2018-9412").unwrap();
    let catalog = corpus::full_catalog();
    let device = corpus::build_device(&corpus::android_things_spec(), &catalog, 0.1);
    let truth = device.truth_for("CVE-2018-9412").unwrap();
    let bin = device.image.binary(&truth.library).unwrap().clone();
    let references = Patchecko::reference_feature_set(entry, Basis::Vulnerable).unwrap();

    // DP column: whole-library static scan (features + batched NN forward).
    c.bench_function("static_stage/scan_library_56fn", |b| {
        b.iter(|| black_box(patchecko.scan_library(&bin, &references).unwrap()))
    });

    // Feature extraction alone (the IDA-plugin analog).
    c.bench_function("static_stage/extract_features_library", |b| {
        b.iter(|| black_box(features::extract_all(&bin).unwrap()))
    });

    // DA column: dynamic stage over the scan's candidate set.
    let scan = patchecko.scan_library(&bin, &references).unwrap();
    let ref_loaded = Arc::new(LoadedBinary::load(entry.vulnerable_bin.clone()).unwrap());
    let target_loaded = Arc::new(LoadedBinary::load(bin.clone()).unwrap());
    let dynsrc = live_profiling();
    c.bench_function("dynamic_stage/validate_and_profile", |b| {
        b.iter(|| {
            black_box(patchecko.dynamic_stage(&target_loaded, &scan, &ref_loaded, &dynsrc))
        })
    });

    // Single-function execution with tracing (one candidate, one env).
    let envs = patchecko.make_environments(&ref_loaded);
    let env = envs[0].clone();
    c.bench_function("dynamic_stage/single_run_traced", |b| {
        b.iter(|| {
            black_box(target_loaded.run_any(truth.function_index, &env, &patchecko.config.vm))
        })
    });

    // Ranking: Minkowski over profiled candidates (paper Eq. 1-2). The
    // stage has no internal span, so record it through a registry timer —
    // the bucket lands next to the pipeline's own `span.*` histograms.
    let dynamic = patchecko.dynamic_stage(&target_loaded, &scan, &ref_loaded, &dynsrc);
    let rank_timer = scope::global().timer("span.similarity_rank");
    c.bench_function("similarity/rank_candidates", |b| {
        b.iter_batched(
            || dynamic.profiles.clone(),
            |profiles| {
                black_box(rank_timer.time(|| similarity::rank(&dynamic.reference_profile, &profiles, 3.0)))
            },
            BatchSize::SmallInput,
        )
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_stages
}

fn main() {
    benches();
    // Every `scan_library` / `dynamic_stage` iteration above recorded its
    // wall time into the global scope registry via the pipeline's own
    // spans; surface the accumulated histograms alongside Criterion's
    // numbers so both views come from the same instrumented run.
    patchecko_bench::print_telemetry("stage_times");
}
