//! Sub-linear candidate retrieval: all-pairs vs signature-indexed scan
//! throughput as the reference DB grows 1× → 10× → 100×.
//!
//! The exact scan classifies every (target, reference) pair, so its cost
//! grows linearly with the reference DB. The indexed scan ranks
//! references by quantized-signature cosine distance (~48 integer
//! multiply-adds per reference — three orders of magnitude cheaper than
//! one NN pair classification), keeps the top K, unions in every LSH
//! band collision as a rescue tier, and classifies only the survivors —
//! so its cost stays near-flat as the DB grows.
//!
//! Two correctness gates run before any timing (and in `--test` mode,
//! which is what CI's bench smoke executes):
//!
//! * **identity** — top-K retrieval with K ≥ |references| is
//!   bitwise-identical to the exact scan at every DB size;
//! * **recall** — at the default K against the 10× and 100× DBs, the
//!   indexed scan retains ≥ 99% of the exact scan's detections and
//!   agrees with ≥ 99% of its threshold decisions, across the seed
//!   fixture's vulnerable and patched builds on all 4 ISAs × all 6
//!   optimization levels.

use criterion::{criterion_group, Criterion};
use std::hint::black_box;
use corpus::catalog;
use corpus::dataset1::Dataset1Config;
use corpus::vulndb::VulnDb;
use fwbin::isa::{Arch, OptLevel};
use fwlang::gen::Generator;
use neural::net::TrainConfig;
use patchecko_core::detector::{self, Detector, DetectorConfig};
use patchecko_core::features::StaticFeatures;
use patchecko_core::pipeline::{Basis, Patchecko, PipelineConfig};
use patchecko_core::retrieval::{Retrieval, DEFAULT_TOP_K};

fn small_detector() -> Detector {
    let ds = corpus::build_dataset1(&Dataset1Config {
        num_libraries: 10,
        min_functions: 8,
        max_functions: 12,
        seed: 1,
        include_catalog: true,
    });
    let cfg = DetectorConfig {
        pairs_per_function: 6,
        train: TrainConfig { epochs: 10, batch: 256, lr: 1e-3, seed: 7, ..Default::default() },
        ..DetectorConfig::default()
    };
    detector::train(&ds, &cfg).0
}

fn small_db() -> VulnDb {
    let mut db = corpus::build_vulndb(0, 1);
    db.entries.truncate(10);
    db
}

fn analyzer(detector: &Detector, retrieval: Retrieval) -> Patchecko {
    Patchecko::new(detector.clone(), PipelineConfig { retrieval, ..PipelineConfig::default() })
}

/// Distractor reference features: `n` generated functions, compiled and
/// feature-extracted once — stand-ins for the unrelated entries of a
/// grown vulnerability DB.
fn distractor_features(n: usize) -> Vec<StaticFeatures> {
    let lib = Generator::new(99).library_sized("libdistract", n);
    let bin = fwbin::compile_library(&lib, Arch::Arm64, OptLevel::O2).unwrap();
    patchecko_core::features::extract_all(&bin).unwrap()
}

/// The recall gate from the integration suite, at bench scale: detection
/// recall (exact-scan detections the indexed scan retains) and
/// threshold-decision agreement must both be ≥ 99% over the seed
/// fixture's vulnerable + patched builds on every (ISA, opt) pair.
fn assert_recall_gate(db: &VulnDb, exact: &Patchecko, topk: &Patchecko, pool_extra: &[StaticFeatures]) {
    let (mut flagged, mut retained, mut total, mut agree) = (0u64, 0u64, 0u64, 0u64);
    for entry in &db.entries {
        let mut pool = Patchecko::reference_feature_set(entry, Basis::Vulnerable).unwrap();
        pool.extend(pool_extra.iter().cloned());
        for patched in [false, true] {
            let lib = catalog::reference_library(&entry.entry, patched);
            for arch in Arch::ALL {
                for opt in OptLevel::ALL {
                    let bin = fwbin::compile_library(&lib, arch, opt).unwrap();
                    let e = exact.scan_library(&bin, &pool).unwrap();
                    let t = topk.scan_library(&bin, &pool).unwrap();
                    for f in 0..e.total {
                        total += 1;
                        let (ef, tf) = (e.candidates.contains(&f), t.candidates.contains(&f));
                        flagged += u64::from(ef);
                        retained += u64::from(ef && tf);
                        agree += u64::from(ef == tf);
                    }
                }
            }
        }
    }
    assert!(flagged > 0, "the seed fixture must produce detections");
    let recall = retained as f64 / flagged as f64;
    let agreement = agree as f64 / total as f64;
    assert!(
        recall >= 0.99,
        "detection recall {recall:.4} below the 99% gate at {} distractors \
         ({retained}/{flagged} retained at K={DEFAULT_TOP_K})",
        pool_extra.len()
    );
    assert!(
        agreement >= 0.99,
        "threshold agreement {agreement:.4} below the 99% gate at {} distractors ({agree}/{total})",
        pool_extra.len()
    );
    scope::add("bench.recall_targets", total);
}

fn bench_retrieval(c: &mut Criterion) {
    let detector = small_detector();
    let db = small_db();
    let exact = analyzer(&detector, Retrieval::Exact);
    let topk = analyzer(&detector, Retrieval::TopK { k: DEFAULT_TOP_K });

    // The scan target: the largest library of a built firmware image —
    // the paper's unit of scanning, with planted catalog functions among
    // ordinary ones.
    let device =
        corpus::build_device(&corpus::android_things_spec(), &corpus::full_catalog(), 0.05);
    let target = device
        .image
        .binaries
        .iter()
        .max_by_key(|b| b.function_count())
        .expect("device image has libraries")
        .clone();
    let entry = &db.entries[0];

    // Reference DBs at 1×, 10×, 100×: the entry's 4 true platform
    // variants, padded with generated distractor references.
    let base = Patchecko::reference_feature_set(entry, Basis::Vulnerable).unwrap();
    let distractors = distractor_features(4 * 100 - base.len());
    let pools: Vec<(usize, Vec<StaticFeatures>)> = [1usize, 10, 100]
        .iter()
        .map(|&scale| {
            let mut pool = base.clone();
            pool.extend(distractors.iter().take(4 * scale - base.len()).cloned());
            (scale, pool)
        })
        .collect();

    // Gate 1 — identity: K ≥ |references| must be bitwise-exact at every
    // DB size.
    for (scale, pool) in &pools {
        let full = analyzer(&detector, Retrieval::TopK { k: pool.len() });
        let e = exact.scan_library(&target, pool).unwrap();
        let f = full.scan_library(&target, pool).unwrap();
        let bits = |p: &[f32]| p.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
        assert_eq!(bits(&e.probs), bits(&f.probs), "identity gate failed at {scale}× DB");
        assert_eq!(e.candidates, f.candidates, "identity gate failed at {scale}× DB");
        assert_eq!(e.best_ref, f.best_ref, "identity gate failed at {scale}× DB");
    }

    // Gate 2 — recall: ≥ 99% detection recall at the default K, at the
    // 10× and 100× DB sizes, across the full ISA × opt sweep.
    for (_, pool) in pools.iter().filter(|(scale, _)| *scale > 1) {
        assert_recall_gate(&db, &exact, &topk, &pool[base.len()..]);
    }

    // Timing: all-pairs vs indexed throughput at each DB size. The exact
    // series grows linearly with the pool; the indexed series stays
    // near-flat (ranking is ~48 madds per reference, classification runs
    // only on the ~K survivors).
    for (scale, pool) in &pools {
        c.bench_function(&format!("retrieval/exact/db{}", 4 * scale), |b| {
            b.iter(|| black_box(exact.scan_library(&target, pool).unwrap()))
        });
        c.bench_function(&format!("retrieval/indexed/db{}", 4 * scale), |b| {
            b.iter(|| black_box(topk.scan_library(&target, pool).unwrap()))
        });
    }
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_retrieval
}

fn main() {
    benches();
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_retrieval.json");
    criterion::write_json_summary(path).expect("write BENCH_retrieval.json");
    println!("wrote {path}");
    // The indexed scans recorded `index.candidates` / `index.pairs_pruned`
    // into the global scope registry; show the combined view.
    patchecko_bench::print_telemetry("bench_retrieval");
}
