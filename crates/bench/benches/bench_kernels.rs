//! Kernel-level before/after: the seed's naive GEMM / unfused forward /
//! per-call thread spawning, reproduced here verbatim as the `legacy`
//! module, raced against the blocked kernels, fused dense layers, and
//! persistent worker pool that replaced them.
//!
//! Every legacy-vs-new pair is also asserted equal (bitwise or ≤ 1e-6)
//! before timing, so the speedup numbers in `BENCH_kernels.json` are for
//! provably identical outputs. Groups:
//!
//! * `gemm`     — model GEMM shapes (96→128, 128→64) at batch 1/64/1024;
//! * `forward`  — unfused matmul + bias sweep + ReLU sweep vs the fused pass;
//! * `pool`     — per-call `crossbeam::thread::scope` spawn vs warm-pool dispatch;
//! * `extract`  — serial vs pool-parallel `features_all` over a real library;
//! * `train`    — one epoch: seed training loop (pre-activation clones,
//!   per-batch gather allocation, unfused kernels) vs the new one;
//! * `classify` — the static stage at ≥256 pairs: per-pair normalization +
//!   legacy kernels vs `classify_product` on the new kernels.

use criterion::{criterion_group, BatchSize, Criterion};
use std::hint::black_box;

use corpus::dataset1::Dataset1Config;
use neural::matrix::Matrix;
use neural::net::{Mlp, TrainConfig};
use neural::pool::WorkerPool;
use patchecko_core::detector::{self, Detector, DetectorConfig, MODEL_DIMS};
use patchecko_core::features::{self, StaticFeatures};
use patchecko_core::pipeline::{Basis, Patchecko};

/// The seed's kernels and training loop, reproduced for the comparison.
mod legacy {
    use super::*;

    /// Seed `Matrix::matmul` (serial path): i-k-j axpy with a zero-skip.
    pub fn matmul(a: &Matrix, b: &Matrix) -> Matrix {
        assert_eq!(a.cols(), b.rows());
        let mut out = Matrix::zeros(a.rows(), b.cols());
        for i in 0..a.rows() {
            for k in 0..a.cols() {
                let av = a.get(i, k);
                if av == 0.0 {
                    continue;
                }
                let brow = b.row(k);
                let orow = out.row_mut(i);
                for (o, &bv) in orow.iter_mut().zip(brow) {
                    *o += av * bv;
                }
            }
        }
        out
    }

    /// Seed `Matrix::t_matmul`: r-outer, i-inner, zero-skip.
    pub fn t_matmul(a: &Matrix, b: &Matrix) -> Matrix {
        assert_eq!(a.rows(), b.rows());
        let mut out = Matrix::zeros(a.cols(), b.cols());
        for r in 0..a.rows() {
            for i in 0..a.cols() {
                let av = a.get(r, i);
                if av == 0.0 {
                    continue;
                }
                let brow = b.row(r);
                let orow = out.row_mut(i);
                for (o, &bv) in orow.iter_mut().zip(brow) {
                    *o += av * bv;
                }
            }
        }
        out
    }

    /// Seed `Matrix::matmul_t`: one scalar dot chain per output element.
    pub fn matmul_t(a: &Matrix, b: &Matrix) -> Matrix {
        assert_eq!(a.cols(), b.cols());
        let mut out = Matrix::zeros(a.rows(), b.rows());
        for i in 0..a.rows() {
            for j in 0..b.rows() {
                let mut acc = 0.0f32;
                for (&av, &bv) in a.row(i).iter().zip(b.row(j)) {
                    acc += av * bv;
                }
                out.set(i, j, acc);
            }
        }
        out
    }

    fn sigmoid(x: f32) -> f32 {
        1.0 / (1.0 + (-x).exp())
    }

    /// The seed's `Mlp`, rebuilt on the legacy kernels: unfused forward
    /// (matmul, then a bias sweep, then a ReLU sweep), pre-activation
    /// clones in `train_batch`, and in-place Adam during the backward
    /// walk. Weights are copied from a real `Mlp` so both sides start
    /// from identical parameters.
    pub struct Net {
        pub w: Vec<Matrix>,
        pub b: Vec<Vec<f32>>,
        mw: Vec<Matrix>,
        vw: Vec<Matrix>,
        mb: Vec<Vec<f32>>,
        vb: Vec<Vec<f32>>,
        t: u64,
    }

    impl Net {
        pub fn from_mlp(net: &Mlp) -> Net {
            let mut out = Net {
                w: Vec::new(),
                b: Vec::new(),
                mw: Vec::new(),
                vw: Vec::new(),
                mb: Vec::new(),
                vb: Vec::new(),
                t: 0,
            };
            for li in 0..net.num_layers() {
                let (w, b) = net.layer_params(li);
                out.mw.push(Matrix::zeros(w.rows(), w.cols()));
                out.vw.push(Matrix::zeros(w.rows(), w.cols()));
                out.mb.push(vec![0.0; b.len()]);
                out.vb.push(vec![0.0; b.len()]);
                out.w.push(w.clone());
                out.b.push(b.to_vec());
            }
            out
        }

        fn forward_layer(&self, li: usize, x: &Matrix) -> Matrix {
            let mut z = matmul(x, &self.w[li]);
            for r in 0..z.rows() {
                for (v, b) in z.row_mut(r).iter_mut().zip(&self.b[li]) {
                    *v += b;
                }
            }
            z
        }

        pub fn predict(&self, x: &Matrix) -> Vec<f32> {
            let mut a = x.clone();
            for li in 0..self.w.len() {
                let mut z = self.forward_layer(li, &a);
                if li + 1 < self.w.len() {
                    for v in z.as_mut_slice() {
                        *v = v.max(0.0);
                    }
                }
                a = z;
            }
            a.as_slice().iter().map(|&z| sigmoid(z)).collect()
        }

        pub fn train_batch(&mut self, x: &Matrix, y: &[f32], lr: f32) -> f32 {
            let batch = x.rows();
            let mut acts: Vec<Matrix> = vec![x.clone()];
            let mut zs: Vec<Matrix> = Vec::with_capacity(self.w.len());
            for li in 0..self.w.len() {
                let z = self.forward_layer(li, acts.last().unwrap());
                zs.push(z.clone());
                let mut a = z;
                if li + 1 < self.w.len() {
                    for v in a.as_mut_slice() {
                        *v = v.max(0.0);
                    }
                }
                acts.push(a);
            }
            let logits = zs.last().unwrap();
            let mut loss = 0.0f32;
            let mut dz = Matrix::zeros(batch, 1);
            for (r, &t) in y.iter().enumerate().take(batch) {
                let p = sigmoid(logits.get(r, 0));
                let pc = p.clamp(1e-7, 1.0 - 1e-7);
                loss += -(t * pc.ln() + (1.0 - t) * (1.0 - pc).ln());
                dz.set(r, 0, (p - t) / batch as f32);
            }
            loss /= batch as f32;

            self.t += 1;
            let (b1, b2, eps) = (0.9f32, 0.999f32, 1e-8f32);
            let bias1 = 1.0 - b1.powi(self.t as i32);
            let bias2 = 1.0 - b2.powi(self.t as i32);
            let mut delta = dz;
            for li in (0..self.w.len()).rev() {
                let dw = t_matmul(&acts[li], &delta);
                let mut db = vec![0.0f32; delta.cols()];
                for r in 0..delta.rows() {
                    for (c, d) in db.iter_mut().enumerate() {
                        *d += delta.get(r, c);
                    }
                }
                let next_delta = if li > 0 {
                    let mut d = matmul_t(&delta, &self.w[li]);
                    for (v, z) in d.as_mut_slice().iter_mut().zip(zs[li - 1].as_slice()) {
                        if *z <= 0.0 {
                            *v = 0.0;
                        }
                    }
                    Some(d)
                } else {
                    None
                };
                for i in 0..dw.as_slice().len() {
                    let g = dw.as_slice()[i];
                    let m = &mut self.mw[li].as_mut_slice()[i];
                    *m = b1 * *m + (1.0 - b1) * g;
                    let v = &mut self.vw[li].as_mut_slice()[i];
                    *v = b2 * *v + (1.0 - b2) * g * g;
                    self.w[li].as_mut_slice()[i] -= lr * (*m / bias1) / ((*v / bias2).sqrt() + eps);
                }
                for (i, &g) in db.iter().enumerate() {
                    self.mb[li][i] = b1 * self.mb[li][i] + (1.0 - b1) * g;
                    self.vb[li][i] = b2 * self.vb[li][i] + (1.0 - b2) * g * g;
                    self.b[li][i] -= lr * (self.mb[li][i] / bias1) / ((self.vb[li][i] / bias2).sqrt() + eps);
                }
                if let Some(d) = next_delta {
                    delta = d;
                }
            }
            loss
        }
    }
}

fn assert_close(a: &[f32], b: &[f32], tol: f32, what: &str) {
    assert_eq!(a.len(), b.len(), "{what}: length mismatch");
    for (x, y) in a.iter().zip(b) {
        assert!((x - y).abs() <= tol, "{what}: {x} vs {y}");
    }
}

fn pseudo_matrix(rows: usize, cols: usize, salt: u64) -> Matrix {
    Matrix::from_fn(rows, cols, |r, c| {
        let h = (r as u64)
            .wrapping_mul(6364136223846793005)
            .wrapping_add(c as u64)
            .wrapping_mul(1442695040888963407)
            .wrapping_add(salt);
        ((h >> 33) % 2000) as f32 / 1000.0 - 1.0
    })
}

fn bench_gemm(c: &mut Criterion) {
    let mut group = c.benchmark_group("gemm");
    for &(batch, k, n) in &[(1usize, 96usize, 128usize), (64, 96, 128), (1024, 96, 128), (1024, 128, 64)] {
        let a = pseudo_matrix(batch, k, 7);
        let b = pseudo_matrix(k, n, 11);
        // The blocked kernel must reproduce the seed kernel bit for bit.
        assert_eq!(legacy::matmul(&a, &b).as_slice(), a.matmul(&b).as_slice(), "gemm {batch}x{k}x{n}");
        group.bench_function(format!("naive/{batch}x{k}x{n}"), |bch| {
            bch.iter(|| black_box(legacy::matmul(&a, &b)))
        });
        group.bench_function(format!("blocked/{batch}x{k}x{n}"), |bch| {
            bch.iter(|| black_box(a.matmul(&b)))
        });
    }
    // Backward-pass shapes: dw = aᵀ·delta and delta·wᵀ at batch 1024.
    let a = pseudo_matrix(1024, 96, 3);
    let delta = pseudo_matrix(1024, 128, 5);
    assert_eq!(legacy::t_matmul(&a, &delta).as_slice(), a.t_matmul(&delta).as_slice());
    group.bench_function("naive_t/1024x96x128", |bch| {
        bch.iter(|| black_box(legacy::t_matmul(&a, &delta)))
    });
    group.bench_function("blocked_t/1024x96x128", |bch| {
        bch.iter(|| black_box(a.t_matmul(&delta)))
    });
    let w = pseudo_matrix(96, 128, 9);
    assert_eq!(legacy::matmul_t(&delta, &w).as_slice(), delta.matmul_t(&w).as_slice());
    group.bench_function("naive_nt/1024x128x96", |bch| {
        bch.iter(|| black_box(legacy::matmul_t(&delta, &w)))
    });
    group.bench_function("blocked_nt/1024x128x96", |bch| {
        bch.iter(|| black_box(delta.matmul_t(&w)))
    });
    group.finish();
}

fn bench_forward(c: &mut Criterion) {
    let mut group = c.benchmark_group("forward");
    let net = Mlp::new(&MODEL_DIMS, 1);
    let old = legacy::Net::from_mlp(&net);
    for &batch in &[64usize, 1024] {
        let x = pseudo_matrix(batch, MODEL_DIMS[0], batch as u64);
        assert_close(&old.predict(&x), &net.predict(&x), 1e-6, "forward");
        group.bench_function(format!("unfused/{batch}"), |b| {
            b.iter(|| black_box(old.predict(&x)))
        });
        group.bench_function(format!("fused/{batch}"), |b| {
            b.iter(|| black_box(net.predict(&x)))
        });
    }
    group.finish();
}

fn bench_pool(c: &mut Criterion) {
    let mut group = c.benchmark_group("pool");
    const WIDTH: usize = 2;
    let work = |seed: usize| -> f64 {
        let mut acc = 0.0f64;
        for i in 0..20_000 {
            acc += ((seed * 20_000 + i) as f64).sqrt();
        }
        acc
    };
    // Cold: what the seed's matmul paid on every large call — spawn
    // threads, do the work, join them.
    group.bench_function("cold_spawn", |b| {
        b.iter(|| {
            let mut outs = vec![0.0f64; WIDTH];
            crossbeam::thread::scope(|s| {
                for (i, o) in outs.iter_mut().enumerate() {
                    s.spawn(move |_| *o = work(i));
                }
            })
            .unwrap();
            black_box(outs)
        })
    });
    // Warm: the same tasks dispatched to an already-spawned pool.
    let pool = WorkerPool::new(WIDTH);
    pool.run((0..WIDTH).map(|i| move || work(i)).collect::<Vec<_>>());
    group.bench_function("warm_dispatch", |b| {
        b.iter(|| black_box(pool.run((0..WIDTH).map(|i| move || work(i)).collect::<Vec<_>>())))
    });
    group.finish();
}

fn bench_extract_and_classify(c: &mut Criterion) {
    // A real library from the evaluation device, and a detector trained
    // the way `bench_cache` trains one.
    let ds = corpus::build_dataset1(&Dataset1Config {
        num_libraries: 10,
        min_functions: 8,
        max_functions: 12,
        seed: 1,
        include_catalog: true,
    });
    let cfg = DetectorConfig {
        pairs_per_function: 6,
        train: TrainConfig { epochs: 10, batch: 256, lr: 1e-3, seed: 7, ..Default::default() },
        ..DetectorConfig::default()
    };
    let det: Detector = detector::train(&ds, &cfg).0;
    let db = corpus::build_vulndb(0, 1);
    let entry = db.get("CVE-2018-9412").unwrap();
    let device = corpus::build_device(&corpus::android_things_spec(), &corpus::full_catalog(), 0.1);
    let truth = device.truth_for("CVE-2018-9412").unwrap();
    let bin = device.image.binary(&truth.library).unwrap().clone();

    let mut group = c.benchmark_group("extract");
    assert_eq!(
        features::extract_all(&bin).unwrap(),
        features::extract_all_parallel(&bin).unwrap(),
        "parallel extraction preserves order and values"
    );
    group.bench_function("serial", |b| b.iter(|| black_box(features::extract_all(&bin).unwrap())));
    group.bench_function("parallel", |b| {
        b.iter(|| black_box(features::extract_all_parallel(&bin).unwrap()))
    });
    group.finish();

    // Static-stage classification at >= 256 pairs: the seed normalized
    // every pair independently and ran the legacy kernels; the new path
    // normalizes each side once and runs the blocked fused forward.
    let references = Patchecko::reference_feature_set(entry, Basis::Vulnerable).unwrap();
    let mut targets = features::extract_all(&bin).unwrap();
    // One library at this device scale is a few hundred pairs short of the
    // 256-pair floor; widen the target set with the image's other
    // binaries (the realistic shape of a whole-image static stage).
    for other in device.image.binaries.iter().filter(|b2| b2.lib_name != bin.lib_name) {
        if references.len() * targets.len() >= 512 {
            break;
        }
        targets.extend(features::extract_all(other).unwrap());
    }
    let pairs: Vec<(&StaticFeatures, &StaticFeatures)> =
        references.iter().flat_map(|r| targets.iter().map(move |t| (r, t))).collect();
    assert!(pairs.len() >= 256, "classify batch must be >= 256, got {}", pairs.len());
    let old_net = legacy::Net::from_mlp(&det.net);
    let legacy_classify = |pairs: &[(&StaticFeatures, &StaticFeatures)]| -> Vec<f32> {
        let mut x = Matrix::zeros(pairs.len(), 96);
        for (r, (a, b)) in pairs.iter().enumerate() {
            x.row_mut(r).copy_from_slice(&det.norm.pair_input(a, b));
        }
        old_net.predict(&x)
    };
    assert_close(
        &legacy_classify(&pairs),
        &det.classify_product(&references, &targets),
        1e-6,
        "classify",
    );
    let mut group = c.benchmark_group("classify");
    group.bench_function(format!("legacy/{}", pairs.len()), |b| {
        b.iter(|| black_box(legacy_classify(&pairs)))
    });
    group.bench_function(format!("product/{}", pairs.len()), |b| {
        b.iter(|| black_box(det.classify_product(&references, &targets)))
    });
    group.finish();
}

fn bench_train(c: &mut Criterion) {
    let mut group = c.benchmark_group("train");
    group.sample_size(10);
    let x = pseudo_matrix(2048, MODEL_DIMS[0], 17);
    let y: Vec<f32> = (0..2048).map(|i| (i % 2) as f32).collect();
    const BATCH: usize = 256;

    // Both epochs walk identical minibatches from identical weights; the
    // resulting models must agree to float equality.
    {
        let mut old = legacy::Net::from_mlp(&Mlp::new(&MODEL_DIMS, 1));
        let mut new = Mlp::new(&MODEL_DIMS, 1);
        let mut bx = Matrix::zeros(0, x.cols());
        for start in (0..x.rows()).step_by(BATCH) {
            let idx: Vec<usize> = (start..(start + BATCH).min(x.rows())).collect();
            let lx = x.gather_rows(&idx);
            let ly = &y[start..start + idx.len()];
            let l_old = old.train_batch(&lx, ly, 1e-3);
            x.gather_rows_into(&idx, &mut bx);
            let l_new = new.train_batch(&bx, ly, 1e-3);
            assert!((l_old - l_new).abs() <= 1e-6, "epoch losses diverge: {l_old} vs {l_new}");
        }
        assert_close(&old.predict(&x), &new.predict(&x), 1e-6, "post-epoch predictions");
    }

    group.bench_function("epoch_legacy", |b| {
        b.iter_batched(
            || legacy::Net::from_mlp(&Mlp::new(&MODEL_DIMS, 1)),
            |mut old| {
                for start in (0..x.rows()).step_by(BATCH) {
                    let idx: Vec<usize> = (start..(start + BATCH).min(x.rows())).collect();
                    let bx = x.gather_rows(&idx);
                    black_box(old.train_batch(&bx, &y[start..start + idx.len()], 1e-3));
                }
                old
            },
            BatchSize::LargeInput,
        )
    });
    group.bench_function("epoch", |b| {
        b.iter_batched(
            || Mlp::new(&MODEL_DIMS, 1),
            |mut net| {
                let mut bx = Matrix::zeros(0, x.cols());
                for start in (0..x.rows()).step_by(BATCH) {
                    let idx: Vec<usize> = (start..(start + BATCH).min(x.rows())).collect();
                    x.gather_rows_into(&idx, &mut bx);
                    black_box(net.train_batch(&bx, &y[start..start + idx.len()], 1e-3));
                }
                net
            },
            BatchSize::LargeInput,
        )
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_gemm, bench_forward, bench_pool, bench_train, bench_extract_and_classify
}

fn main() {
    benches();
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_kernels.json");
    criterion::write_json_summary(path).expect("write BENCH_kernels.json");
    println!("wrote {path}");
    // The pool benches dispatch through the instrumented worker pool, so
    // `pool.dispatches` / `pool.inline_runs` accumulated globally; show them.
    patchecko_bench::print_telemetry("bench_kernels");
}
