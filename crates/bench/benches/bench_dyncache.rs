//! Dynamic-lane speedups: cold vs warm whole-image audits through the
//! scanhub cache.
//!
//! The cold path pays everything — disassembly, feature extraction, the
//! NN forward pass, environment fuzzing, and every VM execution of the
//! pipeline's validation stage and the differential engine's three-way
//! comparisons. The warm path is the service's steady state: static
//! features *and* dynamic profiles are served from the content-addressed
//! store, so a re-audit performs zero VM executions (asserted below
//! before any timing runs, via the global `vm.executions` counter).

use criterion::{criterion_group, BatchSize, Criterion};
use std::hint::black_box;
use std::sync::Arc;
use corpus::dataset1::Dataset1Config;
use corpus::vulndb::VulnDb;
use neural::net::TrainConfig;
use patchecko_core::detector::{self, Detector, DetectorConfig};
use patchecko_core::differential::DifferentialConfig;
use patchecko_core::pipeline::{live_profiling, Patchecko, PipelineConfig, StaticScan};
use patchecko_scanhub::ScanHub;
use vm::loader::LoadedBinary;
use vm::trace::DynFeatures;

fn small_detector() -> Detector {
    let ds = corpus::build_dataset1(&Dataset1Config {
        num_libraries: 10,
        min_functions: 8,
        max_functions: 12,
        seed: 1,
        include_catalog: true,
    });
    let cfg = DetectorConfig {
        pairs_per_function: 6,
        train: TrainConfig { epochs: 10, batch: 256, lr: 1e-3, seed: 7, ..Default::default() },
        ..DetectorConfig::default()
    };
    detector::train(&ds, &cfg).0
}

fn small_db() -> VulnDb {
    let mut db = corpus::build_vulndb(0, 1);
    db.entries.truncate(3);
    db
}

fn vm_executions() -> u64 {
    scope::snapshot().counter("vm.executions")
}

fn bench_dyncache(c: &mut Criterion) {
    let detector = small_detector();
    // A production-sized fuzz budget: the cold path pays environment
    // generation and per-candidate execution in full, the warm path
    // serves all of it from the dynamic lane.
    let analyzer = || {
        let cfg = PipelineConfig {
            fuzz: vm::FuzzConfig { rounds: 1500, num_envs: 10, ..vm::FuzzConfig::default() },
            ..PipelineConfig::default()
        };
        Patchecko::new(detector.clone(), cfg)
    };
    let db = small_db();
    let device =
        corpus::build_device(&corpus::android_things_spec(), &corpus::full_catalog(), 0.05);
    let image = &device.image;
    let diff = DifferentialConfig::default();

    // Correctness gate before any timing: a warm re-audit must be
    // VM-free and bit-identical to the cold audit it was warmed by.
    let warm_hub = ScanHub::with_registry(analyzer(), scope::global_shared());
    let cold_report = warm_hub.audit(&db, image, &diff).unwrap();
    let executed = vm_executions();
    let warm_report = warm_hub.audit(&db, image, &diff).unwrap();
    assert_eq!(vm_executions(), executed, "warm re-audit must perform zero VM executions");
    assert_eq!(
        serde_json::to_string(&cold_report).unwrap(),
        serde_json::to_string(&warm_report).unwrap(),
        "the dynamic cache must not change audit results"
    );

    // Cold: every iteration starts from an empty store — full extraction,
    // fuzzing, and per-candidate VM execution.
    c.bench_function("dyncache/audit_cold", |b| {
        b.iter_batched(
            || ScanHub::new(analyzer()),
            |hub| black_box(hub.audit(&db, image, &diff).unwrap()),
            BatchSize::SmallInput,
        )
    });

    // Warm: the steady state — cache lookups plus the NN forward pass.
    c.bench_function("dyncache/audit_warm", |b| {
        b.iter(|| black_box(warm_hub.audit(&db, image, &diff).unwrap()))
    });

    bench_dyn_stage(c, &detector, &device);
}

/// Dynamic-stage isolation: the engine-rework headline. Both engines run
/// the identical cold dynamic stage — environment fuzzing, reference
/// profiling, candidate validation + profiling — against the same target/
/// reference pair and the production fuzz budget. Bitwise profile identity
/// is asserted here, before any timing, so the recorded speedup is between
/// two provably equivalent implementations.
fn bench_dyn_stage(c: &mut Criterion, detector: &Detector, device: &corpus::device::DeviceBuild) {
    let full_db = corpus::build_vulndb(0, 1);
    let entry = full_db.get("CVE-2018-9412").unwrap();
    let truth = device.truth_for("CVE-2018-9412").unwrap();
    let bin = device.image.binary(&truth.library).unwrap();
    let target = Arc::new(LoadedBinary::load(bin.clone()).unwrap());
    let reference = Arc::new(LoadedBinary::load(entry.vulnerable_bin.clone()).unwrap());
    let n = target.function_count();
    let scan = StaticScan {
        library: truth.library.clone(),
        total: n,
        probs: vec![0.5; n],
        candidates: (0..n).collect(),
        best_ref: vec![0; n],
        seconds: 0.0,
    };
    let pipeline_for = |engine: vm::Engine| {
        let cfg = PipelineConfig {
            fuzz: vm::FuzzConfig { rounds: 1500, num_envs: 10, ..vm::FuzzConfig::default() },
            vm: vm::VmConfig { engine, ..vm::VmConfig::default() },
            ..PipelineConfig::default()
        };
        Patchecko::new(detector.clone(), cfg)
    };
    let fast = pipeline_for(vm::Engine::Fast);
    let interp = pipeline_for(vm::Engine::Interp);
    let dynsrc = live_profiling();

    // Correctness gate before any timing: both engines must produce
    // bitwise-identical dynamic analyses (floats compared by bit pattern).
    let a = fast.dynamic_stage(&target, &scan, &reference, &dynsrc);
    let b = interp.dynamic_stage(&target, &scan, &reference, &dynsrc);
    let bits = |fs: &[DynFeatures]| -> Vec<Vec<u64>> {
        fs.iter().map(|f| f.0.iter().map(|x| x.to_bits()).collect()).collect()
    };
    assert_eq!(a.envs, b.envs, "engines must fuzz identical environment sets");
    assert_eq!(a.validated, b.validated, "engines must validate identical candidate sets");
    assert_eq!(
        bits(&a.reference_profile),
        bits(&b.reference_profile),
        "engines must produce bitwise-identical reference profiles"
    );
    for ((ca, fa), (cb, fb)) in a.profiles.iter().zip(&b.profiles) {
        assert_eq!((ca, bits(fa)), (cb, bits(fb)), "engines must produce bitwise-identical profiles");
    }
    assert_eq!(
        a.ranking.iter().map(|r| (r.function_index, r.distance.to_bits())).collect::<Vec<_>>(),
        b.ranking.iter().map(|r| (r.function_index, r.distance.to_bits())).collect::<Vec<_>>(),
        "engines must produce bitwise-identical rankings"
    );

    c.bench_function("dyncache/dyn_stage_cold_interp", |b| {
        b.iter(|| black_box(interp.dynamic_stage(&target, &scan, &reference, &dynsrc)))
    });
    c.bench_function("dyncache/dyn_stage_cold_fast", |b| {
        b.iter(|| black_box(fast.dynamic_stage(&target, &scan, &reference, &dynsrc)))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_dyncache
}

fn main() {
    benches();
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_dyncache.json");
    criterion::write_json_summary(path).expect("write BENCH_dyncache.json");
    println!("wrote {path}");
    // The warm hub recorded its hit/miss ledger and the vm.executions
    // chokepoint into the global scope registry; show the combined view.
    patchecko_bench::print_telemetry("bench_dyncache");
}
