//! Figure 8: deep-learning training curves.
//!
//! Regenerates the accuracy (Fig. 8a) and loss (Fig. 8b) series recorded
//! while training the pair classifier on Dataset I, plus the held-out test
//! metrics. The paper reports the accuracy reaching ≈96 %.
//!
//! ```text
//! cargo run --release -p patchecko-bench --bin fig8_training_curves
//! ```

use patchecko_bench::{build, write_json, HarnessOpts, Table};

fn main() {
    let opts = HarnessOpts::parse();
    let ev = build(&opts);

    println!("\nFigure 8: training curves ({} epochs)\n", ev.history.epochs.len());
    let table = Table::new(&[
        ("epoch", 5),
        ("train_acc", 10),
        ("val_acc", 10),
        ("train_loss", 11),
        ("val_loss", 11),
    ]);
    for e in &ev.history.epochs {
        table.row(&[
            format!("{}", e.epoch),
            format!("{:.4}", e.train_acc),
            format!("{:.4}", e.val_acc),
            format!("{:.4}", e.train_loss),
            format!("{:.4}", e.val_loss),
        ]);
    }
    println!();
    println!(
        "held-out test: accuracy {:.2}%  AUC {:.4}  ({} pairs)",
        ev.metrics.accuracy * 100.0,
        ev.metrics.auc,
        ev.metrics.pairs
    );
    println!("paper reference: accuracy reaches ~96% (Fig. 8a), loss decays smoothly (Fig. 8b)");

    #[derive(serde::Serialize)]
    struct Artifact<'a> {
        epochs: &'a [neural::net::EpochStats],
        test_accuracy: f32,
        test_auc: f64,
        test_pairs: usize,
    }
    write_json(
        &opts.out,
        "fig8_training_curves.json",
        &Artifact {
            epochs: &ev.history.epochs,
            test_accuracy: ev.metrics.accuracy,
            test_auc: ev.metrics.auc,
            test_pairs: ev.metrics.pairs,
        },
    );
}
