//! Ablation: the static feature set.
//!
//! The paper: "Table I shows the completed extracted interesting 48
//! features [...] However, this feature list is not comprehensive and can
//! easily be extended." This experiment measures cross-platform retrieval
//! power of three feature sets — structural-only (CFG topology slice),
//! the paper's full Table I, and Table I + four loop-aware extensions
//! (natural-loop count/depth, back edges, reachable blocks) — via
//! nearest-neighbour retrieval: given a function compiled on platform A,
//! find the same source function among all functions compiled on
//! platform B.
//!
//! ```text
//! cargo run --release -p patchecko-bench --bin ablation_feature_set
//! ```

use corpus::dataset1::Dataset1Config;
use fwbin::isa::{Arch, OptLevel};
use patchecko_bench::{write_json, HarnessOpts, Table};
use patchecko_core::features::{self, VecNormalizer};

fn main() {
    let opts = HarnessOpts::parse();

    eprintln!("[ablation] building evaluation corpus...");
    let ds = corpus::build_dataset1(&Dataset1Config {
        num_libraries: 12,
        min_functions: 10,
        max_functions: 14,
        seed: 555,
        include_catalog: false,
    });

    // Query platform vs gallery platform (hard pair: x86/O0 vs arm64/O3).
    let pick = |arch: Arch, opt: OptLevel| -> Vec<(usize, usize, Vec<f64>, String)> {
        let mut out = Vec::new();
        for v in &ds.variants {
            if v.arch != arch || v.opt != opt {
                continue;
            }
            for fi in 0..v.binary.function_count() {
                let dis = disasm::disassemble(&v.binary, fi).unwrap();
                let ext = features::extract_extended(&dis, &v.binary.functions[fi]);
                out.push((v.library, fi, ext, v.binary.functions[fi].name.clone().unwrap()));
            }
        }
        out
    };
    let queries = pick(Arch::X86, OptLevel::O0);
    let gallery = pick(Arch::Arm64, OptLevel::O3);
    eprintln!("[ablation] {} queries vs {} gallery functions", queries.len(), gallery.len());

    // Feature-set slices over the 52-wide extended vector.
    type FeatureSlice = Box<dyn Fn(&[f64]) -> Vec<f64>>;
    let slices: [(&str, FeatureSlice); 3] = [
        (
            "CFG topology only (num_bb/num_edge/cyclomatic/fcb_*)",
            Box::new(|v: &[f64]| v[17..28].to_vec()),
        ),
        ("Table I (48 features, the paper)", Box::new(|v: &[f64]| v[..48].to_vec())),
        ("Table I + loop extensions (52)", Box::new(|v: &[f64]| v.to_vec())),
    ];

    println!("\nFeature-set ablation: cross-platform nearest-neighbour retrieval");
    println!("(query x86/O0 -> gallery arm64/O3; higher is better)\n");
    let table = Table::new(&[("feature set", 48), ("top-1", 7), ("top-3", 7)]);
    let mut artifact = Vec::new();
    for (name, slice) in &slices {
        let gvecs: Vec<Vec<f64>> = gallery.iter().map(|(_, _, v, _)| slice(v)).collect();
        let qvecs: Vec<Vec<f64>> = queries.iter().map(|(_, _, v, _)| slice(v)).collect();
        let norm = VecNormalizer::fit(&gvecs);
        let mut top1 = 0usize;
        let mut top3 = 0usize;
        for (qi, q) in qvecs.iter().enumerate() {
            let mut dists: Vec<(f64, usize)> = gvecs
                .iter()
                .enumerate()
                .map(|(gi, g)| (norm.distance(q, g), gi))
                .collect();
            dists.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
            let qid = (&queries[qi].0, &queries[qi].3);
            let hit = |gi: usize| (&gallery[gi].0, &gallery[gi].3) == qid;
            if dists.first().map(|&(_, gi)| hit(gi)).unwrap_or(false) {
                top1 += 1;
            }
            if dists.iter().take(3).any(|&(_, gi)| hit(gi)) {
                top3 += 1;
            }
        }
        let n = qvecs.len().max(1);
        table.row(&[
            name.to_string(),
            format!("{:.1}%", 100.0 * top1 as f64 / n as f64),
            format!("{:.1}%", 100.0 * top3 as f64 / n as f64),
        ]);
        artifact.push(serde_json::json!({
            "feature_set": name,
            "top1": top1 as f64 / n as f64,
            "top3": top3 as f64 / n as f64,
        }));
    }
    println!(
        "\nreading: even the full Table I set retrieves poorly under raw\n\
         nearest-neighbour on this hardest platform pair (x86/O0 vs arm64/O3) —\n\
         which is precisely why the paper trains a classifier on feature PAIRS\n\
         instead of thresholding distances (93%+ with learning vs ~18% without).\n\
         Loop-aware extensions shift little: the learned combination, not the\n\
         raw list, carries the cross-platform signal."
    );
    write_json(&opts.out, "ablation_feature_set.json", &artifact);
}
