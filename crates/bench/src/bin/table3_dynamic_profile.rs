//! Table III: dynamic feature vectors of the surviving candidate functions
//! for CVE-2018-9412 (`removeUnsynchronization`) on Android Things, with
//! the vulnerability-database reference function in the last row.
//!
//! The paper's signal: only the true candidate shares the reference's
//! branch/arithmetic frequency profile (features F13/F14) and anonymous-
//! region traffic (F18).
//!
//! ```text
//! cargo run --release -p patchecko-bench --bin table3_dynamic_profile
//! ```

use patchecko_bench::{build, write_json, HarnessOpts};
use patchecko_core::pipeline::Basis;
use vm::loader::LoadedBinary;

#[derive(serde::Serialize)]
struct ProfileRow {
    candidate: String,
    ground_truth: String,
    features: Vec<f64>,
}

fn main() {
    let opts = HarnessOpts::parse();
    let ev = build(&opts);
    let device = &ev.devices[0]; // Android Things
    let entry = ev.db.get("CVE-2018-9412").expect("flagship CVE in database");
    let truth = device.truth_for("CVE-2018-9412").expect("ground truth");
    let bin = device.image.binary(&truth.library).expect("libstagefright");

    let analysis = ev.patchecko.analyze_library(bin, entry, Basis::Vulnerable).unwrap();
    eprintln!(
        "[table3] candidates {} -> validated {}",
        analysis.scan.candidates.len(),
        analysis.dynamic.validated.len()
    );

    // Reference profile (averaged over environments for display, like the
    // paper's single row per candidate).
    let avg = |envs: &[vm::DynFeatures]| -> Vec<f64> {
        if envs.is_empty() {
            return vec![0.0; vm::NUM_DYN_FEATURES];
        }
        let mut out = vec![0.0; vm::NUM_DYN_FEATURES];
        for e in envs {
            for (o, v) in out.iter_mut().zip(e.as_slice()) {
                *o += v;
            }
        }
        out.iter_mut().for_each(|v| *v /= envs.len() as f64);
        out
    };

    let mut rows: Vec<ProfileRow> = Vec::new();
    for (cand, profile) in &analysis.dynamic.profiles {
        let marker = if *cand == truth.function_index { " <== true target" } else { "" };
        rows.push(ProfileRow {
            candidate: format!("candidate_{cand}{marker}"),
            ground_truth: device
                .ground_truth_name(&truth.library, *cand)
                .unwrap_or("?")
                .to_string(),
            features: avg(profile),
        });
    }
    // Reference row (the paper's "Vulnerable function" last row) — the
    // device-architecture reference build, as the dynamic stage uses.
    let reference =
        LoadedBinary::load(entry.reference_for(bin.arch, false)).expect("reference loads");
    let envs = ev.patchecko.make_environments(&reference);
    let ref_profile: Vec<vm::DynFeatures> = envs
        .iter()
        .map(|e| reference.run_any(0, e, &ev.patchecko.config.vm).features)
        .collect();
    rows.push(ProfileRow {
        candidate: "Vulnerable function".into(),
        ground_truth: entry.entry.function.clone(),
        features: avg(&ref_profile),
    });

    println!("\nTable III: dynamic feature profile for CVE-2018-9412 candidates\n");
    print!("{:<28}", "Candidate");
    for i in 1..=vm::NUM_DYN_FEATURES {
        print!("{:>7}", format!("F{i}"));
    }
    println!();
    println!("{}", "-".repeat(28 + 7 * vm::NUM_DYN_FEATURES));
    for r in &rows {
        print!("{:<28}", r.candidate);
        for v in &r.features {
            print!("{:>7.1}", v);
        }
        println!();
    }
    println!("\nfeature key:");
    for (i, name) in vm::DYN_FEATURE_NAMES.iter().enumerate() {
        println!("  F{:<3} {name}", i + 1);
    }
    println!(
        "paper reference: only the true candidate matches the reference's \
         F13/F14 branch/arith frequencies and F18 anon traffic (Table III)"
    );

    write_json(&opts.out, "table3_dynamic_profile.json", &rows);
}
