//! Related-work comparison (§VI / §I): PATCHECKO's deep-learning detector
//! against the static baselines the paper positions itself against —
//! the Gemini-style graph embedding of Xu et al. \[41\] ("detection accuracy
//! of over 80%") and BinDiff-style bipartite CFG matching \[44\] — plus a
//! no-learning raw-feature nearest-neighbour strawman.
//!
//! All four are scored on the same held-out cross-platform pair set:
//! given (reference variant, candidate), predict "compiled from the same
//! source function".
//!
//! ```text
//! cargo run --release -p patchecko-bench --bin baseline_comparison
//! ```

use patchecko_bench::{build, write_json, HarnessOpts, Table};
use patchecko_core::baseline::{self, GeminiConfig, GeminiDetector};
use patchecko_core::features::{self, Normalizer};
use corpus::dataset1::Dataset1Config;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// A labeled evaluation pair: indices into the flattened function list.
struct EvalPair {
    a: usize,
    b: usize,
    label: bool,
}

fn main() {
    let opts = HarnessOpts::parse();
    // The detector comes from the shared harness build (trained on the
    // train split of Dataset I with seed 1).
    let ev = build(&opts);

    // A *fresh* generation seed produces held-out libraries none of the
    // approaches saw during training.
    eprintln!("[baseline] building held-out evaluation corpus...");
    let held_out = corpus::build_dataset1(&Dataset1Config {
        num_libraries: 8,
        min_functions: 8,
        max_functions: 12,
        seed: 777,
        include_catalog: false,
    });

    // Flatten all functions with identities and pre-computed views.
    let mut disasms = Vec::new();
    let mut feats = Vec::new();
    let mut ids = Vec::new();
    for v in &held_out.variants {
        for fi in 0..v.binary.function_count() {
            let d = disasm::disassemble(&v.binary, fi).unwrap();
            feats.push(features::extract(&d, &v.binary.functions[fi]));
            disasms.push(d);
            ids.push((v.library, v.binary.functions[fi].name.clone().unwrap()));
        }
    }
    // Balanced pair sample.
    let mut rng = SmallRng::seed_from_u64(4242);
    let mut pairs = Vec::new();
    let n = ids.len();
    while pairs.len() < 1200 {
        let a = rng.gen_range(0..n);
        let b = rng.gen_range(0..n);
        if a == b {
            continue;
        }
        let label = ids[a] == ids[b];
        // Balance: keep all positives, subsample negatives.
        if label || pairs.len() % 2 == 0 {
            pairs.push(EvalPair { a, b, label });
        }
    }
    let n_pos = pairs.iter().filter(|p| p.label).count();
    eprintln!("[baseline] {} pairs ({} positive)", pairs.len(), n_pos);

    // Train the Gemini baseline on the same training corpus scale.
    eprintln!("[baseline] training structure2vec baseline...");
    let train_ds = corpus::build_dataset1(&Dataset1Config {
        num_libraries: opts.libs.min(30),
        min_functions: 8,
        max_functions: 12,
        seed: 1,
        include_catalog: true,
    });
    let gemini = GeminiDetector::train(&train_ds, &GeminiConfig::default());
    let gem_norm = Normalizer::fit(&feats);

    // Score all approaches: (name, higher-is-more-similar scores).
    let nn_scores: Vec<f64> =
        pairs.iter().map(|p| ev.patchecko.detector.similarity(&feats[p.a], &feats[p.b]) as f64).collect();
    let gemini_scores: Vec<f64> =
        pairs.iter().map(|p| gemini.similarity(&disasms[p.a], &disasms[p.b]) as f64).collect();
    let bipartite_scores: Vec<f64> = pairs
        .iter()
        .map(|p| -baseline::bipartite_similarity(&disasms[p.a], &disasms[p.b]))
        .collect();
    let raw_scores: Vec<f64> = pairs
        .iter()
        .map(|p| -baseline::raw_feature_distance(&gem_norm, &feats[p.a], &feats[p.b]))
        .collect();

    let labels: Vec<f32> = pairs.iter().map(|p| p.label as u8 as f32).collect();
    let evaluate = |scores: &[f64]| -> (f64, f64) {
        let s32: Vec<f32> = scores.iter().map(|v| *v as f32).collect();
        let auc = neural::auc(&s32, &labels);
        // Best-threshold accuracy (threshold-free comparison).
        let mut order: Vec<usize> = (0..scores.len()).collect();
        order.sort_by(|&i, &j| scores[i].partial_cmp(&scores[j]).unwrap());
        let total_pos = labels.iter().filter(|l| **l > 0.5).count();
        let mut best_acc = 0.0f64;
        let mut pos_below = 0usize;
        for (k, &i) in order.iter().enumerate() {
            if labels[i] > 0.5 {
                pos_below += 1;
            }
            // Threshold after position k: below = negative prediction.
            let neg_below = (k + 1) - pos_below;
            let correct = neg_below + (total_pos - pos_below);
            best_acc = best_acc.max(correct as f64 / labels.len() as f64);
        }
        (best_acc, auc)
    };

    println!("\nRelated-work comparison (held-out cross-platform pairs)\n");
    let table = Table::new(&[("approach", 34), ("accuracy", 9), ("AUC", 7)]);
    let mut artifact = Vec::new();
    for (name, scores, paper_note) in [
        ("PATCHECKO deep-learning (this work)", &nn_scores, "paper: >93%"),
        ("structure2vec / Gemini [41]", &gemini_scores, "paper: ~80%, AUC 0.971"),
        ("BinDiff-style bipartite matching [44]", &bipartite_scores, "paper: heuristic baseline"),
        ("raw 48-feature nearest neighbour", &raw_scores, "no-learning strawman"),
    ] {
        let (acc, auc) = evaluate(scores);
        table.row(&[name.to_string(), format!("{:.1}%", acc * 100.0), format!("{auc:.3}")]);
        println!("    ({paper_note})");
        artifact.push(serde_json::json!({
            "approach": name, "accuracy": acc, "auc": auc,
        }));
    }
    println!(
        "\npaper reference: the deep-learning stage outperforms the graph-embedding \
         baseline (93%+ vs ~80%) and both dominate classical matching."
    );
    write_json(&opts.out, "baseline_comparison.json", &artifact);
}
