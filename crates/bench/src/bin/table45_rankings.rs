//! Tables IV and V: top-10 similarity rankings for CVE-2018-9412 on
//! Android Things — Table IV searches with the vulnerable reference, Table
//! V with the patched reference.
//!
//! The paper's reading: the true function (`removeUnsynchronization`) tops
//! the vulnerable-basis ranking with a clear gap (34.7 vs 68.1) and comes a
//! close second on the patched basis (65.6) because the device carries the
//! unpatched version.
//!
//! ```text
//! cargo run --release -p patchecko-bench --bin table45_rankings
//! ```

use patchecko_bench::{build, write_json, HarnessOpts, Table};
use patchecko_core::pipeline::Basis;

#[derive(serde::Serialize)]
struct RankRow {
    rank: usize,
    candidate: String,
    distance: f64,
    ground_truth: String,
    is_target: bool,
}

fn main() {
    let opts = HarnessOpts::parse();
    let ev = build(&opts);
    let device = &ev.devices[0];
    let entry = ev.db.get("CVE-2018-9412").expect("flagship CVE");
    let truth = device.truth_for("CVE-2018-9412").expect("ground truth");
    let bin = device.image.binary(&truth.library).expect("libstagefright");

    let mut artifacts = std::collections::BTreeMap::new();
    for (label, basis) in
        [("Table IV (vulnerable basis)", Basis::Vulnerable), ("Table V (patched basis)", Basis::Patched)]
    {
        let analysis = ev.patchecko.analyze_library(bin, entry, basis).unwrap();
        println!("\n{label}: top-10 ranking for CVE-2018-9412\n");
        let table = Table::new(&[("rank", 4), ("candidate", 14), ("sim", 9), ("ground truth", 42)]);
        let mut rows = Vec::new();
        for (i, r) in analysis.dynamic.ranking.iter().take(10).enumerate() {
            let name = device
                .ground_truth_name(&truth.library, r.function_index)
                .unwrap_or("?")
                .to_string();
            let is_target = r.function_index == truth.function_index;
            table.row(&[
                format!("{}", i + 1),
                format!("candidate_{}", r.function_index),
                format!("{:.1}", r.distance),
                format!("{}{}", name, if is_target { "  <== true target" } else { "" }),
            ]);
            rows.push(RankRow {
                rank: i + 1,
                candidate: format!("candidate_{}", r.function_index),
                distance: r.distance,
                ground_truth: name,
                is_target,
            });
        }
        if let Some(pos) =
            patchecko_core::rank_of(&analysis.dynamic.ranking, truth.function_index)
        {
            println!("\ntrue target ranked #{pos} of {}", analysis.dynamic.ranking.len());
        } else {
            println!("\ntrue target missing from ranking (N/A)");
        }
        artifacts.insert(label.to_string(), rows);
    }
    println!(
        "\npaper reference: Table IV ranks the true function #1 (sim 34.7, next 68.1); \
         Table V ranks it #2 (65.6) behind an incorrect #1 (32.8) because the \
         device carries the unpatched version"
    );

    write_json(&opts.out, "table45_rankings.json", &artifacts);
}
