//! Tables VI and VII: per-CVE hybrid accuracy on Android Things —
//! deep-learning confusion counts, FP rate, execution-validation survivor
//! count, final ranking position, and per-stage timings (DP = deep
//! learning, DA = dynamic analysis), for the vulnerable (Table VI) and
//! patched (Table VII) search bases.
//!
//! ```text
//! cargo run --release -p patchecko-bench --bin table67_hybrid_accuracy
//! ```

use patchecko_bench::{build, print_telemetry, write_json, HarnessOpts, Table};
use patchecko_core::eval::CveRow;
use patchecko_core::pipeline::Basis;

fn print_rows(label: &str, rows: &[CveRow]) {
    println!("\n{label}\n");
    let table = Table::new(&[
        ("CVE", 15),
        ("TP", 3),
        ("TN", 6),
        ("FP", 4),
        ("FN", 3),
        ("Total", 6),
        ("FP(%)", 7),
        ("Exec", 5),
        ("Rank", 5),
        ("DP(s)", 8),
        ("DA(s)", 8),
    ]);
    for r in rows {
        table.row(&[
            r.cve.clone(),
            format!("{}", r.tp),
            format!("{}", r.tn),
            format!("{}", r.fp),
            format!("{}", r.fn_),
            format!("{}", r.total),
            format!("{:.2}", r.fp_percent),
            format!("{}", r.execution),
            r.ranking.map(|x| x.to_string()).unwrap_or_else(|| "N/A".into()),
            format!("{:.3}", r.dp_seconds),
            format!("{:.3}", r.da_seconds),
        ]);
    }
    let avg_fp = rows.iter().map(|r| r.fp_percent).sum::<f64>() / rows.len() as f64;
    let ranked: Vec<usize> = rows.iter().filter_map(|r| r.ranking).collect();
    let top3 = ranked.iter().filter(|&&r| r <= 3).count();
    let avg_dp = rows.iter().map(|r| r.dp_seconds).sum::<f64>() / rows.len() as f64;
    let avg_da = rows.iter().map(|r| r.da_seconds).sum::<f64>() / rows.len() as f64;
    println!(
        "\naverage FP {avg_fp:.2}%  |  top-3 {} of {} ranked ({} located at all)  |  avg DP {avg_dp:.3}s  avg DA {avg_da:.3}s",
        top3,
        ranked.len(),
        ranked.len()
    );
}

fn main() {
    let opts = HarnessOpts::parse();
    let ev = build(&opts);

    let table6 = ev.table_rows(0, Basis::Vulnerable);
    print_rows("Table VI: Android Things, vulnerable-function basis", &table6);

    let table7 = ev.table_rows(0, Basis::Patched);
    print_rows("Table VII: Android Things, patched-function basis", &table7);

    println!(
        "\npaper reference: average FP 6.16% (VI) / 5.67% (VII); the target ranks \
         top-3 100% of the time whenever the deep model finds it; the single miss \
         is CVE-2017-13209 on the vulnerable basis (patched on this device with a \
         heavy restructure)"
    );
    let miss = table6.iter().find(|r| r.cve == "CVE-2017-13209");
    if let Some(m) = miss {
        println!(
            "CVE-2017-13209 vulnerable-basis row here: TP={} FN={} rank={:?}",
            m.tp, m.fn_, m.ranking
        );
    }

    write_json(&opts.out, "table6_vulnerable_basis.json", &table6);
    write_json(&opts.out, "table7_patched_basis.json", &table7);
    print_telemetry("table67_hybrid_accuracy");
}
