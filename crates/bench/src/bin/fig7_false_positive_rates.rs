//! Figure 7: deep-learning false-positive rate per CVE, on both devices,
//! searching with both the vulnerable and the patched reference.
//!
//! The paper's reading of this figure: FP rates differ visibly between the
//! two bases for CVEs whose patch status makes the reference mismatch the
//! target (its CVE-2017-13209 / CVE-2018-9412 discussion).
//!
//! ```text
//! cargo run --release -p patchecko-bench --bin fig7_false_positive_rates
//! ```

use patchecko_bench::{build, write_json, HarnessOpts, Table};
use patchecko_core::pipeline::{Basis, Patchecko};

#[derive(serde::Serialize)]
struct Fp {
    cve: String,
    device: String,
    basis: String,
    total: usize,
    fp: u32,
    fp_percent: f64,
}

fn main() {
    let opts = HarnessOpts::parse();
    let ev = build(&opts);

    let mut rows: Vec<Fp> = Vec::new();
    for device in &ev.devices {
        for entry in ev.db.featured() {
            let truth = device.truth_for(&entry.entry.cve).expect("ground truth");
            let bin = device.image.binary(&truth.library).expect("library");
            for basis in [Basis::Vulnerable, Basis::Patched] {
                let references = Patchecko::reference_feature_set(entry, basis).unwrap();
                let scan = ev.patchecko.scan_library(bin, &references).unwrap();
                // FP = flagged functions that are not the true target.
                let fp = scan
                    .candidates
                    .iter()
                    .filter(|&&c| c != truth.function_index)
                    .count() as u32;
                rows.push(Fp {
                    cve: entry.entry.cve.clone(),
                    device: device.image.device.clone(),
                    basis: basis.to_string(),
                    total: scan.total,
                    fp,
                    fp_percent: 100.0 * fp as f64 / scan.total.max(1) as f64,
                });
            }
        }
    }

    println!("\nFigure 7: false positive rate per CVE / device / search basis\n");
    let table = Table::new(&[
        ("CVE", 15),
        ("device", 19),
        ("basis", 10),
        ("total", 6),
        ("FP", 5),
        ("FP(%)", 7),
    ]);
    for r in &rows {
        table.row(&[
            r.cve.clone(),
            r.device.clone(),
            r.basis.clone(),
            format!("{}", r.total),
            format!("{}", r.fp),
            format!("{:.2}", r.fp_percent),
        ]);
    }
    for device in ["android_things_1.0", "pixel2xl_8.0"] {
        for basis in ["vulnerable", "patched"] {
            let sel: Vec<&Fp> =
                rows.iter().filter(|r| r.device == device && r.basis == basis).collect();
            let avg = sel.iter().map(|r| r.fp_percent).sum::<f64>() / sel.len().max(1) as f64;
            println!("average FP% on {device} ({basis} basis): {avg:.2}%");
        }
    }
    println!("paper reference: per-CVE FP rates mostly 0.5-15%, averages ~6%");

    write_json(&opts.out, "fig7_false_positive_rates.json", &rows);
}
