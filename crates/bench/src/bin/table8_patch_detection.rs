//! Table VIII: final patch-presence verdicts on Android Things.
//!
//! For each of the 25 CVEs: locate the target with the hybrid pipeline
//! (both bases), run the differential engine, and compare with ground
//! truth. The paper reports 24/25 correct (96 %), the single miss being
//! CVE-2018-9470 whose patch changes one integer.
//!
//! ```text
//! cargo run --release -p patchecko-bench --bin table8_patch_detection
//! ```

use patchecko_bench::{build, write_json, HarnessOpts, Table};

fn main() {
    let opts = HarnessOpts::parse();
    let ev = build(&opts);

    let rows = ev.patch_rows(0);
    println!("\nTable VIII: patch detection on Android Things\n");
    let table = Table::new(&[
        ("CVE", 15),
        ("PATCHECKO", 10),
        ("Truth", 6),
        ("OK", 3),
        ("tie-break", 9),
    ]);
    let fmt = |b: Option<bool>| match b {
        Some(true) => "patched".to_string(),
        Some(false) => "0".to_string(),
        None => "N/A".to_string(),
    };
    for r in &rows {
        table.row(&[
            r.cve.clone(),
            fmt(r.detected_patched),
            if r.truth_patched { "patched".into() } else { "0".to_string() },
            if r.correct() { "yes".into() } else { "NO".to_string() },
            if r.tie_break { "yes".into() } else { String::new() },
        ]);
    }
    let correct = rows.iter().filter(|r| r.correct()).count();
    println!(
        "\naccuracy: {correct}/{} = {:.0}%",
        rows.len(),
        100.0 * correct as f64 / rows.len() as f64
    );
    let misses: Vec<&str> =
        rows.iter().filter(|r| !r.correct()).map(|r| r.cve.as_str()).collect();
    println!("misses: {misses:?}");
    println!(
        "paper reference: 24/25 = 96%, single miss CVE-2018-9470 \
         (one-integer patch, reported patched against a not-patched truth)"
    );

    write_json(&opts.out, "table8_patch_detection.json", &rows);
}
