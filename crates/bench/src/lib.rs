//! # patchecko-bench — evaluation harness
//!
//! One binary per table/figure of the paper's evaluation (§V), plus the
//! Criterion micro-benchmarks:
//!
//! | target | regenerates |
//! |---|---|
//! | `fig8_training_curves` | Figure 8a/8b: training accuracy and loss |
//! | `fig7_false_positive_rates` | Figure 7: FP rate per CVE/device/basis |
//! | `table3_dynamic_profile` | Table III: candidate dynamic feature vectors |
//! | `table45_rankings` | Tables IV & V: top-10 similarity rankings |
//! | `table67_hybrid_accuracy` | Tables VI & VII: per-CVE hybrid accuracy |
//! | `table8_patch_detection` | Table VIII: final patch verdicts |
//!
//! Every binary accepts `--scale <f>` (device-library scale, default 0.25),
//! `--libs <n>` (Dataset I libraries, default 100), `--epochs <n>`
//! (default 30) and `--out <dir>` (JSON artifact directory, default
//! `results/`). `--quick` shrinks everything for smoke runs.

use corpus::dataset1::Dataset1Config;
use neural::net::TrainConfig;
use patchecko_core::detector::DetectorConfig;
use patchecko_core::eval::{build_evaluation, Evaluation, EvaluationConfig};
use patchecko_core::pipeline::PipelineConfig;
use serde::Serialize;
use std::path::{Path, PathBuf};

/// Common command-line options for the table/figure binaries.
#[derive(Debug, Clone)]
pub struct HarnessOpts {
    /// Device library scale (1.0 = the paper-derived sizes).
    pub scale: f64,
    /// Dataset I library count.
    pub libs: usize,
    /// Training epochs.
    pub epochs: usize,
    /// Pairs sampled per source function.
    pub pairs_per_function: usize,
    /// Output directory for JSON artifacts.
    pub out: PathBuf,
}

impl Default for HarnessOpts {
    fn default() -> HarnessOpts {
        HarnessOpts {
            scale: 0.25,
            libs: 100,
            epochs: 30,
            pairs_per_function: 12,
            out: PathBuf::from("results"),
        }
    }
}

impl HarnessOpts {
    /// Parse from `std::env::args`. Unknown flags abort with usage help.
    pub fn parse() -> HarnessOpts {
        let mut opts = HarnessOpts::default();
        let args: Vec<String> = std::env::args().skip(1).collect();
        let mut i = 0;
        while i < args.len() {
            let take_value = |i: &mut usize| -> String {
                *i += 1;
                args.get(*i).unwrap_or_else(|| usage("missing flag value")).clone()
            };
            match args[i].as_str() {
                "--scale" => opts.scale = take_value(&mut i).parse().unwrap_or_else(|_| usage("bad --scale")),
                "--libs" => opts.libs = take_value(&mut i).parse().unwrap_or_else(|_| usage("bad --libs")),
                "--epochs" => {
                    opts.epochs = take_value(&mut i).parse().unwrap_or_else(|_| usage("bad --epochs"))
                }
                "--pairs" => {
                    opts.pairs_per_function =
                        take_value(&mut i).parse().unwrap_or_else(|_| usage("bad --pairs"))
                }
                "--out" => opts.out = PathBuf::from(take_value(&mut i)),
                "--quick" => {
                    opts.scale = 0.05;
                    opts.libs = 20;
                    opts.epochs = 12;
                    opts.pairs_per_function = 8;
                }
                "--help" | "-h" => usage(""),
                other => usage(&format!("unknown flag {other}")),
            }
            i += 1;
        }
        opts
    }

    /// The evaluation configuration these options describe.
    pub fn evaluation_config(&self) -> EvaluationConfig {
        EvaluationConfig {
            dataset1: Dataset1Config {
                num_libraries: self.libs,
                min_functions: 12,
                max_functions: 20,
                seed: 1,
                include_catalog: true,
            },
            detector: DetectorConfig {
                pairs_per_function: self.pairs_per_function,
                train: TrainConfig { epochs: self.epochs, batch: 256, lr: 1e-3, seed: 7, ..Default::default() },
                ..DetectorConfig::default()
            },
            pipeline: PipelineConfig::default(),
            device_scale: self.scale,
            bulk_db: 0,
        }
    }
}

fn usage(err: &str) -> ! {
    if !err.is_empty() {
        eprintln!("error: {err}");
    }
    eprintln!(
        "usage: <bin> [--scale F] [--libs N] [--epochs N] [--pairs N] [--out DIR] [--quick]"
    );
    std::process::exit(if err.is_empty() { 0 } else { 2 });
}

/// Build the full evaluation (datasets, detector training, device images),
/// logging progress to stderr.
pub fn build(opts: &HarnessOpts) -> Evaluation {
    eprintln!(
        "[patchecko-bench] building evaluation: libs={} epochs={} scale={}",
        opts.libs, opts.epochs, opts.scale
    );
    let started = std::time::Instant::now();
    let ev = {
        let _span = scope::SpanGuard::enter("bench_build");
        build_evaluation(&opts.evaluation_config())
    };
    eprintln!(
        "[patchecko-bench] detector test accuracy {:.2}% (AUC {:.4}, {} pairs) in {:.1}s",
        ev.metrics.accuracy * 100.0,
        ev.metrics.auc,
        ev.metrics.pairs,
        started.elapsed().as_secs_f64()
    );
    ev
}

/// Print the stage timings and counters accumulated in the process-global
/// [`scope`] registry — the same `span.static_scan` / `span.dynamic_stage`
/// histograms the service and CLI report, populated here by the library
/// instrumentation as the harness exercises each stage.
pub fn print_telemetry(what: &str) {
    let snap = scope::snapshot();
    if snap.is_empty() {
        return;
    }
    eprintln!("[patchecko-bench] telemetry ({what}):");
    eprintln!("{}", snap.to_table());
}

/// Write a JSON artifact under the output directory.
pub fn write_json<T: Serialize>(out_dir: &Path, name: &str, value: &T) {
    if let Err(e) = std::fs::create_dir_all(out_dir) {
        eprintln!("[patchecko-bench] cannot create {}: {e}", out_dir.display());
        return;
    }
    let path = out_dir.join(name);
    match serde_json::to_string_pretty(value) {
        Ok(json) => {
            if let Err(e) = std::fs::write(&path, json) {
                eprintln!("[patchecko-bench] cannot write {}: {e}", path.display());
            } else {
                eprintln!("[patchecko-bench] wrote {}", path.display());
            }
        }
        Err(e) => eprintln!("[patchecko-bench] serialize {name}: {e}"),
    }
}

/// Fixed-width table printer.
pub struct Table {
    widths: Vec<usize>,
}

impl Table {
    /// Start a table and print its header row.
    pub fn new(headers: &[(&str, usize)]) -> Table {
        let widths: Vec<usize> = headers.iter().map(|(_, w)| *w).collect();
        let line: Vec<String> =
            headers.iter().map(|(h, w)| format!("{h:>width$}", width = w)).collect();
        println!("{}", line.join("  "));
        println!("{}", "-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
        Table { widths }
    }

    /// Print one row.
    pub fn row(&self, cells: &[String]) {
        let line: Vec<String> = cells
            .iter()
            .zip(&self.widths)
            .map(|(c, w)| format!("{c:>width$}", width = w))
            .collect();
        println!("{}", line.join("  "));
    }
}
