//! The 25-CVE catalog (Dataset II's featured entries).
//!
//! Each entry models one of the 25 Android Security Bulletin CVEs the paper
//! evaluates (Tables VI–VIII), keeping the paper's CVE identifiers and the
//! *shape* of each fix:
//!
//! * **CVE-2018-9412** — the §IV case study: the
//!   `ID3::removeUnsynchronization` analog, a quadratic-`memmove` DoS whose
//!   patch rewrites the loop into a single read/write-offset pass
//!   (Figure 6 of the paper, reproduced in AST form here);
//! * **CVE-2018-9470** — a patch that changes a *single integer constant*,
//!   which the differential engine genuinely cannot distinguish (the one
//!   Table VIII miss);
//! * **CVE-2017-13209 / CVE-2018-9345** — heavy restructuring patches that
//!   make the pre-/post-patch functions dissimilar even to the deep
//!   learning model (the Table VI vulnerable-basis miss);
//! * the rest — bounds guards, value-check guards, and call-replacement
//!   patches, the common fix shapes.

use fwlang::ast::{BinOp, CmpOp, Expr, Function, Library, Param, Stmt, Ty};
use fwlang::patch::Patch;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Severity classes from the Android Security Bulletins.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Severity {
    /// High-severity issue.
    High,
    /// Critical-severity issue.
    Critical,
}

/// How big the source-level patch is — determines whether static features
/// can distinguish vulnerable from patched builds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PatchMagnitude {
    /// One constant changed; feature-invisible.
    Tiny,
    /// A few statements added/removed (the common case).
    Standard,
    /// Function restructured; pre/post versions dissimilar.
    Heavy,
}

/// One catalog entry: a known CVE with its vulnerable and patched source.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CveEntry {
    /// The CVE identifier, e.g. `CVE-2018-9412`.
    pub cve: String,
    /// Host library name, e.g. `libstagefright`.
    pub library: String,
    /// Vulnerable function name (ground truth; stripped in firmware).
    pub function: String,
    /// Severity class.
    pub severity: Severity,
    /// Patch size class.
    pub magnitude: PatchMagnitude,
    /// One-line description.
    pub description: String,
    /// The vulnerable function.
    pub vulnerable: Function,
    /// The patched function.
    pub patched: Function,
    /// The source-level patch that maps vulnerable → patched.
    pub patch: Patch,
    /// Number of functions in the host library (scaled 10× down from the
    /// paper's Table VI "Total" column).
    pub library_functions: usize,
    /// Proof-of-concept trigger input, when an exploit is public. §V-D of
    /// the paper proposes "add\[ing\] more fine-grained features from known
    /// vulnerability exploits" to close the CVE-2018-9470-style gap — the
    /// optional exploit channel of the differential engine replays this
    /// input and compares behaviour.
    pub poc: Option<Vec<u8>>,
}

/// The flagship CVE-2018-9412 analog: `removeUnsynchronization`.
///
/// Vulnerable version (paper Figure 6, left): scans for `ff 00` byte pairs
/// and `memmove`s the tail left for each match — quadratic work and the
/// DoS. Patched version (Figure 6, right): single pass with separate
/// read/write offsets, no `memmove`, plus one extra `if` for value
/// checking.
pub fn remove_unsynchronization() -> (Function, Function, Patch) {
    // --- vulnerable ---
    let mut v = Function {
        name: "removeUnsynchronization".into(),
        params: vec![
            Param { name: "data".into(), ty: Ty::Buf },
            Param { name: "len".into(), ty: Ty::Int },
        ],
        locals: vec![],
        ret: Some(Ty::Int),
        body: vec![],
        exported: false,
    };
    let i = v.add_local("i", Ty::Int);
    let size = v.add_local("size", Ty::Int);
    let match_cond = Expr::bin(
        BinOp::And,
        Expr::cmp(CmpOp::Eq, Expr::load(Expr::Param(0), Expr::Local(i)), Expr::ConstInt(0xff)),
        Expr::cmp(
            CmpOp::Eq,
            Expr::load(Expr::Param(0), Expr::bin(BinOp::Add, Expr::Local(i), Expr::ConstInt(1))),
            Expr::ConstInt(0x00),
        ),
    );
    v.body = vec![
        Stmt::Let { local: size, value: Expr::Param(1) },
        Stmt::Let { local: i, value: Expr::ConstInt(0) },
        Stmt::While {
            cond: Expr::cmp(
                CmpOp::Lt,
                Expr::bin(BinOp::Add, Expr::Local(i), Expr::ConstInt(1)),
                Expr::Local(size),
            ),
            body: vec![
                Stmt::If {
                    cond: match_cond,
                    then_body: vec![
                        // memmove(&data[i+1], &data[i+2], size - i - 2);
                        Stmt::Expr(Expr::Call {
                            callee: "memmove".into(),
                            args: vec![
                                Expr::bin(
                                    BinOp::Add,
                                    Expr::Param(0),
                                    Expr::bin(BinOp::Add, Expr::Local(i), Expr::ConstInt(1)),
                                ),
                                Expr::bin(
                                    BinOp::Add,
                                    Expr::Param(0),
                                    Expr::bin(BinOp::Add, Expr::Local(i), Expr::ConstInt(2)),
                                ),
                                Expr::bin(
                                    BinOp::Sub,
                                    Expr::bin(BinOp::Sub, Expr::Local(size), Expr::Local(i)),
                                    Expr::ConstInt(2),
                                ),
                            ],
                        }),
                        // --size;
                        Stmt::Let {
                            local: size,
                            value: Expr::bin(BinOp::Sub, Expr::Local(size), Expr::ConstInt(1)),
                        },
                    ],
                    else_body: vec![],
                },
                Stmt::Let {
                    local: i,
                    value: Expr::bin(BinOp::Add, Expr::Local(i), Expr::ConstInt(1)),
                },
            ],
        },
        Stmt::Return(Some(Expr::Local(size))),
    ];

    // --- patched ---
    let mut p = Function {
        name: "removeUnsynchronization".into(),
        params: v.params.clone(),
        locals: vec![],
        ret: Some(Ty::Int),
        body: vec![],
        exported: false,
    };
    let size = p.add_local("size", Ty::Int);
    let wo = p.add_local("writeOffset", Ty::Int);
    let ro = p.add_local("readOffset", Ty::Int);
    let match_cond = Expr::bin(
        BinOp::And,
        Expr::cmp(
            CmpOp::Eq,
            Expr::load(Expr::Param(0), Expr::bin(BinOp::Sub, Expr::Local(ro), Expr::ConstInt(1))),
            Expr::ConstInt(0xff),
        ),
        Expr::cmp(CmpOp::Eq, Expr::load(Expr::Param(0), Expr::Local(ro)), Expr::ConstInt(0x00)),
    );
    p.body = vec![
        Stmt::Let { local: size, value: Expr::Param(1) },
        Stmt::Let { local: wo, value: Expr::ConstInt(1) },
        Stmt::Let { local: ro, value: Expr::ConstInt(1) },
        Stmt::While {
            cond: Expr::cmp(CmpOp::Lt, Expr::Local(ro), Expr::Local(size)),
            body: vec![
                Stmt::If {
                    cond: match_cond,
                    then_body: vec![
                        Stmt::Let {
                            local: ro,
                            value: Expr::bin(BinOp::Add, Expr::Local(ro), Expr::ConstInt(1)),
                        },
                        Stmt::Continue,
                    ],
                    else_body: vec![],
                },
                // data[writeOffset++] = data[readOffset];
                Stmt::StoreByte {
                    base: Expr::Param(0),
                    index: Expr::Local(wo),
                    value: Expr::load(Expr::Param(0), Expr::Local(ro)),
                },
                Stmt::Let {
                    local: wo,
                    value: Expr::bin(BinOp::Add, Expr::Local(wo), Expr::ConstInt(1)),
                },
                Stmt::Let {
                    local: ro,
                    value: Expr::bin(BinOp::Add, Expr::Local(ro), Expr::ConstInt(1)),
                },
            ],
        },
        // The extra value-check `if` the patch adds.
        Stmt::If {
            cond: Expr::cmp(CmpOp::Lt, Expr::Local(wo), Expr::Local(size)),
            then_body: vec![Stmt::Let { local: size, value: Expr::Local(wo) }],
            else_body: vec![],
        },
        Stmt::Return(Some(Expr::Local(size))),
    ];

    // The abstract patch description (for reports): remove the memmove,
    // rewrite the loop.
    let patch = Patch::Seq(vec![Patch::ReplaceCall {
        callee: "memmove".into(),
        replacement: vec![],
    }]);
    (v, p, patch)
}

/// Builder: loop that copies/shifts with an unchecked `memmove` tail; the
/// patch drops the `memmove` and adds a value guard.
fn vuln_overflow_copy(seed: u64, name: &str) -> (Function, Patch, Option<Vec<u8>>) {
    let mut rng = SmallRng::seed_from_u64(seed);
    let sentinel = rng.gen_range(1..255i64);
    let mut f = Function {
        name: name.into(),
        params: vec![
            Param { name: "data".into(), ty: Ty::Buf },
            Param { name: "len".into(), ty: Ty::Int },
        ],
        locals: vec![],
        ret: Some(Ty::Int),
        body: vec![],
        exported: false,
    };
    let i = f.add_local("i", Ty::Int);
    let hits = f.add_local("hits", Ty::Int);
    f.body = vec![
        Stmt::Let { local: hits, value: Expr::ConstInt(0) },
        Stmt::For {
            var: i,
            start: Expr::ConstInt(0),
            end: Expr::bin(BinOp::Sub, Expr::Param(1), Expr::ConstInt(1)),
            step: Expr::ConstInt(1),
            body: vec![Stmt::If {
                cond: Expr::cmp(
                    CmpOp::Eq,
                    Expr::load(Expr::Param(0), Expr::Local(i)),
                    Expr::ConstInt(sentinel),
                ),
                then_body: vec![
                    Stmt::Expr(Expr::Call {
                        callee: "memmove".into(),
                        args: vec![
                            Expr::bin(BinOp::Add, Expr::Param(0), Expr::Local(i)),
                            Expr::bin(
                                BinOp::Add,
                                Expr::Param(0),
                                Expr::bin(BinOp::Add, Expr::Local(i), Expr::ConstInt(1)),
                            ),
                            Expr::bin(
                                BinOp::Sub,
                                Expr::bin(BinOp::Sub, Expr::Param(1), Expr::Local(i)),
                                Expr::ConstInt(1),
                            ),
                        ],
                    }),
                    Stmt::Let {
                        local: hits,
                        value: Expr::bin(BinOp::Add, Expr::Local(hits), Expr::ConstInt(1)),
                    },
                ],
                else_body: vec![],
            }],
        },
        Stmt::Return(Some(Expr::Local(hits))),
    ];
    let patch = Patch::Seq(vec![
        Patch::ReplaceCall {
            callee: "memmove".into(),
            replacement: vec![Stmt::StoreByte {
                base: Expr::Param(0),
                index: Expr::Local(i),
                value: Expr::ConstInt(0),
            }],
        },
        Patch::BoundsGuard { len_param: 1, min_len: 2, reject: Some(0) },
    ]);
    // PoC: a run of sentinel bytes makes the vulnerable build memmove once
    // per hit while the patched build never calls it.
    let poc = vec![sentinel as u8; 10];
    (f, patch, Some(poc))
}

/// Builder: header parser with unchecked fixed-offset reads; the patch is
/// the classic bounds guard.
fn vuln_unchecked_parse(seed: u64, name: &str) -> (Function, Patch, Option<Vec<u8>>) {
    let mut rng = SmallRng::seed_from_u64(seed);
    let magic = rng.gen_range(0..256i64);
    let hdr = rng.gen_range(3..9i64);
    let mut f = Function {
        name: name.into(),
        params: vec![
            Param { name: "data".into(), ty: Ty::Buf },
            Param { name: "len".into(), ty: Ty::Int },
        ],
        locals: vec![],
        ret: Some(Ty::Int),
        body: vec![],
        exported: false,
    };
    let v0 = f.add_local("magic", Ty::Int);
    let v1 = f.add_local("field", Ty::Int);
    f.body = vec![
        // Unchecked header reads: fault on short input (the vulnerability).
        Stmt::Let { local: v0, value: Expr::load(Expr::Param(0), Expr::ConstInt(0)) },
        Stmt::Let { local: v1, value: Expr::load(Expr::Param(0), Expr::ConstInt(hdr - 1)) },
        Stmt::If {
            cond: Expr::cmp(CmpOp::Ne, Expr::Local(v0), Expr::ConstInt(magic)),
            then_body: vec![Stmt::Return(Some(Expr::ConstInt(-1)))],
            else_body: vec![],
        },
        Stmt::Return(Some(Expr::bin(
            BinOp::Or,
            Expr::bin(BinOp::Shl, Expr::Local(v0), Expr::ConstInt(8)),
            Expr::Local(v1),
        ))),
    ];
    let patch = Patch::BoundsGuard { len_param: 1, min_len: hdr, reject: Some(-1) };
    // PoC: a one-byte header crashes the vulnerable build (unchecked read
    // at offset hdr-1) and is rejected gracefully by the patched one.
    let poc = vec![magic as u8];
    (f, patch, Some(poc))
}

/// Builder: scan loop missing an output limit; the patch guards the
/// accumulation statement.
fn vuln_missing_limit(seed: u64, name: &str) -> (Function, Patch, Option<Vec<u8>>) {
    let mut rng = SmallRng::seed_from_u64(seed);
    let trig = rng.gen_range(0..256i64);
    let limit = rng.gen_range(8..32i64);
    let mut f = Function {
        name: name.into(),
        params: vec![
            Param { name: "data".into(), ty: Ty::Buf },
            Param { name: "len".into(), ty: Ty::Int },
        ],
        locals: vec![],
        ret: Some(Ty::Int),
        body: vec![],
        exported: false,
    };
    let i = f.add_local("i", Ty::Int);
    let acc = f.add_local("acc", Ty::Int);
    f.body = vec![
        Stmt::Let { local: acc, value: Expr::ConstInt(0) },
        Stmt::For {
            var: i,
            start: Expr::ConstInt(0),
            end: Expr::Param(1),
            step: Expr::ConstInt(1),
            body: vec![Stmt::If {
                cond: Expr::cmp(
                    CmpOp::Eq,
                    Expr::load(Expr::Param(0), Expr::Local(i)),
                    Expr::ConstInt(trig),
                ),
                then_body: vec![Stmt::Let {
                    local: acc,
                    value: Expr::bin(
                        BinOp::Add,
                        Expr::Local(acc),
                        Expr::bin(BinOp::Mul, Expr::Local(i), Expr::ConstInt(3)),
                    ),
                }],
                else_body: vec![],
            }],
        },
        Stmt::Return(Some(Expr::Local(acc))),
    ];
    // Guard the loop (statement #1) behind a validity check.
    let patch = Patch::GuardStmt {
        occurrence: 1,
        cond: Expr::cmp(CmpOp::Le, Expr::Param(1), Expr::ConstInt(limit * 16)),
    };
    // PoC: an over-limit input makes the vulnerable build accumulate while
    // the patched build skips the loop entirely (different return values).
    let n = (limit * 16 + 8) as usize;
    let poc = vec![trig as u8; n];
    (f, patch, Some(poc))
}

/// Builder: arithmetic validation using a wrong constant; the patch changes
/// only that constant (the CVE-2018-9470 shape — feature-invisible).
fn vuln_wrong_constant(seed: u64, name: &str) -> (Function, Patch, Option<Vec<u8>>) {
    let mut rng = SmallRng::seed_from_u64(seed);
    let threshold = rng.gen_range(32..96i64);
    let mut f = Function {
        name: name.into(),
        params: vec![
            Param { name: "data".into(), ty: Ty::Buf },
            Param { name: "len".into(), ty: Ty::Int },
        ],
        locals: vec![],
        ret: Some(Ty::Int),
        body: vec![],
        exported: false,
    };
    let i = f.add_local("i", Ty::Int);
    let acc = f.add_local("acc", Ty::Int);
    f.body = vec![
        Stmt::Let { local: acc, value: Expr::ConstInt(0) },
        Stmt::For {
            var: i,
            start: Expr::ConstInt(0),
            end: Expr::Param(1),
            step: Expr::ConstInt(1),
            body: vec![Stmt::If {
                // The wrong threshold: off by one (<= instead of <,
                // expressed as threshold vs threshold-1).
                cond: Expr::cmp(
                    CmpOp::Lt,
                    Expr::load(Expr::Param(0), Expr::Local(i)),
                    Expr::ConstInt(threshold),
                ),
                then_body: vec![Stmt::Let {
                    local: acc,
                    value: Expr::bin(
                        BinOp::Xor,
                        Expr::Local(acc),
                        Expr::load(Expr::Param(0), Expr::Local(i)),
                    ),
                }],
                else_body: vec![],
            }],
        },
        Stmt::Return(Some(Expr::Local(acc))),
    ];
    // Pre-order constants: 0 (acc init), 0 (for start), 1 (step),
    // threshold. Fix the threshold by -1.
    let patch = Patch::ChangeConstant { occurrence: 3, delta: -1 };
    // PoC: bytes equal to threshold-1 sit exactly on the off-by-one — the
    // vulnerable build XORs them into the accumulator, the patched build
    // excludes them, so the return values differ. This is the exploit
    // knowledge the paper's §V-D "limitations" discussion says would close
    // the CVE-2018-9470 gap.
    let poc = vec![(threshold - 1) as u8; 5];
    (f, patch, Some(poc))
}

/// Pad a CVE core function with deterministic filler logic, mirroring the
/// reality that a security patch touches a small fraction of a real
/// function (the paper's functions average hundreds of instructions; a
/// bounds guard barely moves the 48 features). The same `seed` produces the
/// same padding, so vulnerable and patched versions share their filler
/// exactly and differ only in the patched core.
///
/// Padding reads only parameters and its own fresh locals (never the core's
/// locals), performs fault-free arithmetic, and guards every buffer access
/// behind a length check, so it cannot change the core's behaviour or crash
/// profile.
pub fn pad_function(f: &Function, seed: u64, n_stmts: usize) -> Function {
    let mut out = f.clone();
    let mut rng = SmallRng::seed_from_u64(seed);
    let int_params: Vec<u32> = f
        .params
        .iter()
        .enumerate()
        .filter(|(_, p)| p.ty == Ty::Int)
        .map(|(i, _)| i as u32)
        .collect();
    let buf = f.buffer_param();

    // Per-seed "style": each CVE function gets its own mix of filler
    // statement kinds, so padded functions are distinguishable from one
    // another (real functions differ in texture, not just size).
    let mut style = [0u32; 8];
    for w in style.iter_mut() {
        *w = rng.gen_range(1..12);
    }
    let style_total: u32 = style.iter().sum();
    let n_pads = rng.gen_range(3..7usize);
    let mut pads: Vec<u32> = Vec::new();
    for k in 0..n_pads {
        pads.push(out.add_local(format!("pad{k}"), Ty::Int));
    }
    let mut stmts: Vec<Stmt> = Vec::new();
    for (k, &p) in pads.iter().enumerate() {
        let init = if int_params.is_empty() {
            Expr::ConstInt(rng.gen_range(1..64))
        } else {
            Expr::bin(
                BinOp::Add,
                Expr::Param(int_params[k % int_params.len()]),
                Expr::ConstInt(rng.gen_range(1..64)),
            )
        };
        stmts.push(Stmt::Let { local: p, value: init });
    }
    while stmts.len() < n_stmts {
        let dst = pads[rng.gen_range(0..pads.len())];
        let src = pads[rng.gen_range(0..pads.len())];
        let mut pick = rng.gen_range(0..style_total);
        let mut kind = 0usize;
        for (k, w) in style.iter().enumerate() {
            if pick < *w {
                kind = k;
                break;
            }
            pick -= w;
        }
        match kind {
            0 | 1 => {
                let op = [BinOp::Add, BinOp::Xor, BinOp::Mul, BinOp::Sub][rng.gen_range(0..4usize)];
                stmts.push(Stmt::Let {
                    local: dst,
                    value: Expr::bin(
                        op,
                        Expr::Local(src),
                        Expr::ConstInt(rng.gen_range(1..256)),
                    ),
                });
            }
            2 => {
                stmts.push(Stmt::Let {
                    local: dst,
                    value: Expr::bin(
                        [BinOp::And, BinOp::Or, BinOp::Shr][rng.gen_range(0..3usize)],
                        Expr::Local(src),
                        Expr::ConstInt(rng.gen_range(1..8)),
                    ),
                });
            }
            3 => {
                // Small constant-trip accumulation loop.
                let i = out.add_local(format!("pad_i{}", stmts.len()), Ty::Int);
                stmts.push(Stmt::For {
                    var: i,
                    start: Expr::ConstInt(0),
                    end: Expr::ConstInt(rng.gen_range(2..6)),
                    step: Expr::ConstInt(1),
                    body: vec![Stmt::Let {
                        local: dst,
                        value: Expr::bin(BinOp::Add, Expr::Local(dst), Expr::Local(i)),
                    }],
                });
            }
            4 => {
                stmts.push(Stmt::If {
                    cond: Expr::cmp(
                        [CmpOp::Gt, CmpOp::Lt, CmpOp::Ne][rng.gen_range(0..3usize)],
                        Expr::Local(src),
                        Expr::ConstInt(rng.gen_range(0..128)),
                    ),
                    then_body: vec![Stmt::Let {
                        local: dst,
                        value: Expr::bin(BinOp::Xor, Expr::Local(dst), Expr::Local(src)),
                    }],
                    else_body: vec![],
                });
            }
            5 | 6 => {
                // Library-routine calls: real functions call many imports,
                // so a patch that removes one call changes the call profile
                // only marginally.
                let call = match rng.gen_range(0..3) {
                    0 => Expr::Call { callee: "abs".into(), args: vec![Expr::Local(src)] },
                    1 => Expr::Call {
                        callee: "min".into(),
                        args: vec![Expr::Local(src), Expr::ConstInt(rng.gen_range(16..512))],
                    },
                    _ => Expr::Call {
                        callee: "max".into(),
                        args: vec![Expr::Local(src), Expr::ConstInt(rng.gen_range(0..16))],
                    },
                };
                stmts.push(Stmt::Let { local: dst, value: call });
            }
            _ => {
                // Guarded buffer peek (safe: index < len implies in bounds).
                if let Some((bp, lp)) = buf {
                    let off = rng.gen_range(0..16i64);
                    stmts.push(Stmt::If {
                        cond: Expr::cmp(CmpOp::Gt, Expr::Param(lp), Expr::ConstInt(off)),
                        then_body: vec![Stmt::Let {
                            local: dst,
                            value: Expr::bin(
                                BinOp::Add,
                                Expr::Local(dst),
                                Expr::load(Expr::Param(bp), Expr::ConstInt(off)),
                            ),
                        }],
                        else_body: vec![],
                    });
                }
            }
        }
    }

    // First half before the core, second half just before the trailing
    // return (core statements keep their relative order).
    let split = stmts.len() / 2;
    let tail: Vec<Stmt> = stmts.split_off(split);
    let mut body = stmts;
    body.extend(out.body.clone());
    let ret_pos = body
        .iter()
        .rposition(|s| matches!(s, Stmt::Return(_)))
        .unwrap_or(body.len());
    for (k, s) in tail.into_iter().enumerate() {
        body.insert(ret_pos + k, s);
    }
    out.body = body;
    out
}

/// Patch-shape selector per CVE.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Shape {
    Flagship,
    OverflowCopy,
    UncheckedParse,
    MissingLimit,
    WrongConstant,
}

/// The full 25-entry catalog, in Table VI row order.
pub fn full_catalog() -> Vec<CveEntry> {
    // (cve, library, total-fns (scaled /10, min 12), severity, shape, heavy)
    #[allow(clippy::type_complexity)]
    let rows: [(&str, &str, usize, Severity, Shape, bool); 25] = [
        ("CVE-2018-9451", "libmediaplayer", 118, Severity::High, Shape::UncheckedParse, false),
        ("CVE-2018-9340", "libmediaplayer", 118, Severity::High, Shape::OverflowCopy, false),
        ("CVE-2017-13232", "libaudioflinger", 99, Severity::High, Shape::MissingLimit, false),
        ("CVE-2018-9345", "libdrmserver", 36, Severity::High, Shape::UncheckedParse, true),
        ("CVE-2018-9420", "libmtp", 12, Severity::High, Shape::UncheckedParse, false),
        ("CVE-2017-13210", "libmtp", 12, Severity::High, Shape::MissingLimit, false),
        ("CVE-2018-9470", "libexif", 143, Severity::High, Shape::WrongConstant, false),
        ("CVE-2017-13209", "libnfc", 102, Severity::High, Shape::OverflowCopy, true),
        ("CVE-2018-9411", "libnfc", 102, Severity::Critical, Shape::OverflowCopy, false),
        ("CVE-2017-13252", "libmediaextractor", 62, Severity::High, Shape::MissingLimit, false),
        ("CVE-2017-13253", "libmediaextractor", 62, Severity::High, Shape::UncheckedParse, false),
        ("CVE-2018-9499", "libmediaextractor", 62, Severity::Critical, Shape::OverflowCopy, false),
        ("CVE-2018-9424", "libmediaextractor", 62, Severity::High, Shape::MissingLimit, false),
        ("CVE-2018-9491", "libsoundpool", 47, Severity::High, Shape::UncheckedParse, false),
        ("CVE-2017-13278", "libbluetooth", 254, Severity::Critical, Shape::MissingLimit, false),
        ("CVE-2018-9410", "libskia", 65, Severity::High, Shape::UncheckedParse, false),
        ("CVE-2017-13208", "libminikin", 18, Severity::High, Shape::MissingLimit, false),
        ("CVE-2018-9498", "libwebviewchromium", 1373, Severity::Critical, Shape::UncheckedParse, false),
        ("CVE-2017-13279", "libhevc", 74, Severity::High, Shape::MissingLimit, false),
        ("CVE-2018-9440", "libhevc", 74, Severity::High, Shape::UncheckedParse, false),
        ("CVE-2018-9427", "libmpeg2", 118, Severity::Critical, Shape::OverflowCopy, false),
        ("CVE-2017-13178", "libavc", 59, Severity::High, Shape::MissingLimit, false),
        ("CVE-2017-13180", "libavc", 59, Severity::High, Shape::UncheckedParse, false),
        ("CVE-2018-9412", "libstagefright", 565, Severity::High, Shape::Flagship, false),
        ("CVE-2017-13182", "libstagefright", 565, Severity::High, Shape::UncheckedParse, false),
    ];

    rows.iter()
        .enumerate()
        .map(|(idx, &(cve, library, total, severity, shape, heavy))| {
            let seed = 0xC0FFEE ^ (idx as u64).wrapping_mul(0x9e3779b97f4a7c15);
            let pad_seed = seed ^ 0xFADED;
            let pad_n = 26 + (idx % 8) * 3; // 26..47 filler statements
            let fn_name = format!("{}_{}", library.trim_start_matches("lib"), cve.replace('-', "_"));
            if shape == Shape::Flagship {
                let (v, p, patch) = remove_unsynchronization();
                return CveEntry {
                    cve: cve.to_string(),
                    library: library.to_string(),
                    function: v.name.clone(),
                    severity,
                    magnitude: PatchMagnitude::Standard,
                    description: "ID3 unsynchronization removal DoS in libstagefright".to_string(),
                    vulnerable: pad_function(&v, pad_seed, pad_n),
                    patched: pad_function(&p, pad_seed, pad_n),
                    patch,
                    library_functions: total,
                    // The public DoS trigger: unsynchronization byte
                    // stuffing, one memmove per ff 00 pair.
                    poc: Some([0xff, 0x00].repeat(16)),
                };
            }
            let (core, mut patch, poc) = match shape {
                Shape::OverflowCopy => vuln_overflow_copy(seed, &fn_name),
                Shape::UncheckedParse => vuln_unchecked_parse(seed, &fn_name),
                Shape::MissingLimit => vuln_missing_limit(seed, &fn_name),
                Shape::WrongConstant => vuln_wrong_constant(seed, &fn_name),
                Shape::Flagship => unreachable!(),
            };
            // The patch edits the small core; vulnerable and patched share
            // their (identically seeded) padding. Heavy patches additionally
            // restructure the *whole padded* function, which is what makes
            // pre- and post-patch versions dissimilar even to the deep
            // model.
            let patched_core = patch.apply(&core);
            let vulnerable = pad_function(&core, pad_seed, pad_n);
            let patched = if heavy {
                // A heavy patch is a wholesale rewrite: the patched build
                // shares only the core fix with the vulnerable one (fresh
                // filler, restructured control flow). This is what makes
                // the pre-/post-patch pair dissimilar even to the deep
                // model (the paper's CVE-2017-13209 discussion).
                let restructure = Patch::Restructure { min_len: 2 };
                let p = restructure.apply(&pad_function(&patched_core, pad_seed ^ 0x5EED, pad_n + 9));
                patch = Patch::Seq(vec![patch, restructure]);
                p
            } else {
                pad_function(&patched_core, pad_seed, pad_n)
            };
            let magnitude = if heavy {
                PatchMagnitude::Heavy
            } else if shape == Shape::WrongConstant {
                PatchMagnitude::Tiny
            } else {
                PatchMagnitude::Standard
            };
            CveEntry {
                cve: cve.to_string(),
                library: library.to_string(),
                function: vulnerable.name.clone(),
                severity,
                magnitude,
                description: format!("{} vulnerability in {library}", match shape {
                    Shape::OverflowCopy => "buffer shift overflow",
                    Shape::UncheckedParse => "unchecked header parse",
                    Shape::MissingLimit => "missing input limit",
                    Shape::WrongConstant => "off-by-one bounds constant",
                    Shape::Flagship => unreachable!(),
                }),
                vulnerable,
                patched,
                patch,
                library_functions: total,
                poc,
            }
        })
        .collect()
}

/// Wrap a CVE function (vulnerable or patched) into a standalone
/// single-function reference library for compiling the Dataset II baseline
/// binaries.
pub fn reference_library(entry: &CveEntry, patched: bool) -> Library {
    let mut lib = Library::new(format!(
        "{}_{}_ref",
        entry.library,
        if patched { "patched" } else { "vuln" }
    ));
    let mut f = if patched { entry.patched.clone() } else { entry.vulnerable.clone() };
    f.exported = true; // references are compiled with exports for direct runs
    lib.functions.push(f);
    lib
}

#[cfg(test)]
mod tests {
    use super::*;
    use fwbin::isa::{Arch, OptLevel};
    use vmtest::*;

    /// Minimal helpers to execute catalog functions in tests.
    mod vmtest {
        pub use vm::env::ExecEnv;
        pub use vm::exec::VmConfig;
        pub use vm::loader::LoadedBinary;
        pub use vm::value::Value;
        pub use vm::Outcome;
    }

    fn run_fn(
        f: &Function,
        input: Vec<u8>,
    ) -> (vmtest::Outcome, vm::DynFeatures) {
        let mut lib = Library::new("libtest");
        let mut f = f.clone();
        f.exported = true;
        lib.functions.push(f);
        let bin = fwbin::compile_library(&lib, Arch::Arm64, OptLevel::O1).unwrap();
        let lb = LoadedBinary::load(bin).unwrap();
        let env = ExecEnv::for_buffer(input, &[]);
        let r = lb.run_any(0, &env, &VmConfig::default());
        (r.outcome, r.features)
    }

    #[test]
    fn catalog_has_25_unique_cves() {
        let cat = full_catalog();
        assert_eq!(cat.len(), 25);
        let mut ids: Vec<&str> = cat.iter().map(|e| e.cve.as_str()).collect();
        ids.sort();
        ids.dedup();
        assert_eq!(ids.len(), 25);
    }

    #[test]
    fn catalog_is_deterministic() {
        let a = full_catalog();
        let b = full_catalog();
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.vulnerable, y.vulnerable);
            assert_eq!(x.patched, y.patched);
        }
    }

    #[test]
    fn vulnerable_and_patched_differ_for_all_entries() {
        for e in full_catalog() {
            assert_ne!(e.vulnerable.body, e.patched.body, "{} versions must differ", e.cve);
        }
    }

    #[test]
    fn flagship_vulnerable_and_patched_agree_on_unsync_removal() {
        // Both versions implement "remove 00 after ff": on an input with
        // unsync byte stuffing both return the same reduced size.
        let (v, p, _) = remove_unsynchronization();
        let input = vec![0x10, 0xff, 0x00, 0x22, 0xff, 0x00, 0x33];
        let (ov, _) = run_fn(&v, input.clone());
        let (op, _) = run_fn(&p, input);
        assert_eq!(ov, vmtest::Outcome::Returned(Value::Int(5)), "vulnerable removes 2 bytes");
        assert_eq!(op, vmtest::Outcome::Returned(Value::Int(5)), "patched removes 2 bytes");
    }

    #[test]
    fn flagship_vulnerable_does_quadratic_memmove_work() {
        let (v, p, _) = remove_unsynchronization();
        // Adversarial input: many ff 00 pairs.
        let mut adversarial = Vec::new();
        for _ in 0..12 {
            adversarial.extend_from_slice(&[0xff, 0x00]);
        }
        let (_, fv) = run_fn(&v, adversarial.clone());
        let (_, fp) = run_fn(&p, adversarial);
        // F20 = library calls: vulnerable memmoves once per match, patched
        // never calls memmove.
        assert!(fv.feature(20) >= 10.0, "vulnerable makes many memmove calls: {}", fv.feature(20));
        assert_eq!(fp.feature(20), 0.0, "patched makes none");
        // The paper's Table III signal: anon-region traffic explodes in the
        // vulnerable version.
        assert!(fv.feature(18) > fp.feature(18) * 2.0);
    }

    #[test]
    fn unchecked_parse_crashes_short_input_until_patched() {
        let cat = full_catalog();
        let e = cat.iter().find(|e| e.cve == "CVE-2018-9451").unwrap();
        let (ov, _) = run_fn(&e.vulnerable, vec![0x01]);
        assert!(matches!(ov, vmtest::Outcome::Fault(_)), "vulnerable parse faults on short input");
        let (op, _) = run_fn(&e.patched, vec![0x01]);
        assert!(op.is_ok(), "patched parse rejects gracefully: {op:?}");
    }

    #[test]
    fn tiny_patch_changes_exactly_one_constant() {
        let cat = full_catalog();
        let e = cat.iter().find(|e| e.cve == "CVE-2018-9470").unwrap();
        assert_eq!(e.magnitude, PatchMagnitude::Tiny);
        let cv = fwlang::visit::int_constants(&e.vulnerable);
        let cp = fwlang::visit::int_constants(&e.patched);
        assert_eq!(cv.len(), cp.len());
        let diffs = cv.iter().zip(&cp).filter(|(a, b)| a != b).count();
        assert_eq!(diffs, 1, "exactly one constant differs");
    }

    #[test]
    fn heavy_patches_change_shape_substantially() {
        let cat = full_catalog();
        for id in ["CVE-2017-13209", "CVE-2018-9345"] {
            let e = cat.iter().find(|e| e.cve == id).unwrap();
            assert_eq!(e.magnitude, PatchMagnitude::Heavy);
            let sv = fwlang::visit::stmt_count(&e.vulnerable);
            let sp = fwlang::visit::stmt_count(&e.patched);
            assert!(sp > sv + 2, "{id}: {sv} -> {sp} statements");
        }
    }

    #[test]
    fn all_entries_compile_and_run_on_benign_input() {
        // Every vulnerable and patched function must compile on every
        // platform and terminate (possibly with a fault) on a benign input.
        let cat = full_catalog();
        for e in &cat {
            for patched in [false, true] {
                let lib = reference_library(e, patched);
                for arch in [Arch::X86, Arch::Arm64] {
                    let bin = fwbin::compile_library(&lib, arch, OptLevel::O1)
                        .unwrap_or_else(|err| panic!("{} compile failed: {err}", e.cve));
                    let lb = LoadedBinary::load(bin).unwrap();
                    let env = ExecEnv::for_buffer((0..32u8).collect(), &[]);
                    let r = lb.run_any(0, &env, &VmConfig::default());
                    assert!(
                        !matches!(r.outcome, vmtest::Outcome::Timeout),
                        "{} ({patched}) timed out",
                        e.cve
                    );
                }
            }
        }
    }

    #[test]
    fn pocs_distinguish_vulnerable_from_patched() {
        // Every catalog PoC must separate the two builds behaviourally:
        // different outcome class, different return value, or a markedly
        // different dynamic profile — otherwise the exploit channel could
        // not vote.
        for e in full_catalog() {
            let Some(poc) = &e.poc else { continue };
            let run = |f: &Function| run_fn(f, poc.clone());
            let (ov, fv) = run(&e.vulnerable);
            let (op, fp) = run(&e.patched);
            let outcome_differs = ov.is_ok() != op.is_ok()
                || match (&ov, &op) {
                    (vmtest::Outcome::Returned(a), vmtest::Outcome::Returned(b)) => {
                        a.as_int() != b.as_int()
                    }
                    _ => false,
                };
            let profile_differs = fv
                .as_slice()
                .iter()
                .zip(fp.as_slice())
                .any(|(a, b)| (a - b).abs() > 3.0);
            assert!(
                outcome_differs || profile_differs,
                "{}: PoC does not separate the builds ({ov:?} vs {op:?})",
                e.cve
            );
        }
    }

    #[test]
    fn all_featured_cves_carry_pocs() {
        for e in full_catalog() {
            assert!(e.poc.is_some(), "{} missing PoC", e.cve);
        }
    }

    #[test]
    fn reference_library_marks_function_exported() {
        let cat = full_catalog();
        let lib = reference_library(&cat[0], false);
        assert!(lib.functions[0].exported);
        assert_eq!(lib.functions.len(), 1);
    }
}
