//! Dataset II: the vulnerability database.
//!
//! The paper's database holds 2,076 Android Security Bulletin
//! vulnerabilities (1,351 high + 381 critical among them, collected
//! 07/2016–11/2018), of which 25 are evaluated end-to-end. Ours holds the
//! 25 featured catalog entries plus a configurable number of bulk entries
//! generated from the same vulnerable-function builders, each with
//! pre-compiled vulnerable and patched reference binaries (the paper
//! compiles its references with Clang `-O0`).

use crate::catalog::{self, CveEntry};
use crate::cvemeta::{self, CveMeta};
use fwbin::format::Binary;
use fwbin::isa::{Arch, OptLevel};
use fwlang::gen::Generator;
use fwlang::patch::Patch;
use fwlang::Library;

/// A database entry with compiled references.
pub struct DbEntry {
    /// Catalog metadata and vulnerable/patched source.
    pub entry: CveEntry,
    /// NVD-style metadata envelope (id / CWE / CVSS / affected configs);
    /// always passes [`CveMeta::validate`] by construction.
    pub meta: CveMeta,
    /// Compiled vulnerable reference (one-function library).
    pub vulnerable_bin: Binary,
    /// Compiled patched reference.
    pub patched_bin: Binary,
}

/// The vulnerability database.
pub struct VulnDb {
    /// All entries; the first 25 are the featured catalog.
    pub entries: Vec<DbEntry>,
}

/// Reference compilation architecture. The paper compiles its case-study
/// references at `-O0` "to simplify the case study"; the database default
/// here is `O2`, the common production level, which keeps reference
/// features closest to shipped firmware builds.
pub const REFERENCE_ARCH: Arch = Arch::Arm64;
/// Reference optimization level.
pub const REFERENCE_OPT: OptLevel = OptLevel::O2;

impl DbEntry {
    /// Compile the entry's reference for a specific target architecture.
    ///
    /// The paper's dynamic stage runs the CVE reference function and the
    /// target function "within the corresponding mobile/IoT embedded
    /// system platform" — i.e. both execute on the device, so the dynamic
    /// reference must be the device-architecture build (otherwise raw
    /// Minkowski distances are dominated by cross-ISA instruction-count
    /// inflation). The pre-compiled `vulnerable_bin`/`patched_bin`
    /// (always [`REFERENCE_ARCH`]) serve the *static* stage, which is
    /// cross-platform by construction.
    pub fn reference_for(&self, arch: Arch, patched: bool) -> Binary {
        let lib = catalog::reference_library(&self.entry, patched);
        fwbin::compile_library(&lib, arch, REFERENCE_OPT)
            .expect("reference libraries always compile")
    }

    /// The multi-platform reference set for the *static* stage. §II-A of
    /// the paper: "we can generate one vulnerable function binary for
    /// different hardware architectures (e.g., x86 and ARM) and software
    /// platforms" — the database carries one compiled reference per
    /// representative (architecture, optimization) pair and the scan
    /// scores each target against all of them.
    pub fn reference_variants(&self, patched: bool) -> Vec<Binary> {
        let lib = catalog::reference_library(&self.entry, patched);
        [
            (Arch::Arm64, OptLevel::O2),
            (Arch::Arm32, OptLevel::Oz),
            (Arch::Amd64, OptLevel::O3),
            (Arch::X86, OptLevel::O0),
        ]
        .into_iter()
        .map(|(arch, opt)| {
            fwbin::compile_library(&lib, arch, opt).expect("reference libraries always compile")
        })
        .collect()
    }
}

fn compile_entry(entry: CveEntry) -> DbEntry {
    let vlib = catalog::reference_library(&entry, false);
    let plib = catalog::reference_library(&entry, true);
    let vulnerable_bin = fwbin::compile_library(&vlib, REFERENCE_ARCH, REFERENCE_OPT)
        .expect("reference libraries always compile");
    let patched_bin = fwbin::compile_library(&plib, REFERENCE_ARCH, REFERENCE_OPT)
        .expect("reference libraries always compile");
    let meta = cvemeta::annotate(&entry);
    DbEntry { entry, meta, vulnerable_bin, patched_bin }
}

/// Build the database: the 25 featured CVEs plus `bulk` generated entries.
pub fn build(bulk: usize, seed: u64) -> VulnDb {
    let mut entries: Vec<DbEntry> = catalog::full_catalog().into_iter().map(compile_entry).collect();
    // Bulk entries: generated functions patched with a bounds guard, named
    // after synthetic bulletin ids.
    let mut g = Generator::new(seed);
    let mut scratch = Library::new("libbulk");
    let mut made = 0usize;
    let mut attempt = 0usize;
    while made < bulk {
        attempt += 1;
        let name = format!("bulk_fn_{attempt}");
        let f = g.any_function(&mut scratch, name);
        // Only (buf, len)-shaped functions are useful database entries.
        if f.buffer_param() != Some((0, 1)) {
            continue;
        }
        let patch = Patch::BoundsGuard { len_param: 1, min_len: 4, reject: Some(-1) };
        let patched = patch.apply(&f);
        let entry = CveEntry {
            cve: format!("CVE-BULK-{made:04}"),
            library: "libbulk".into(),
            function: f.name.clone(),
            severity: catalog::Severity::High,
            magnitude: catalog::PatchMagnitude::Standard,
            description: "bulk database entry".into(),
            vulnerable: f,
            patched,
            patch,
            library_functions: 0,
            poc: None,
        };
        entries.push(compile_entry(entry));
        made += 1;
    }
    VulnDb { entries }
}

impl VulnDb {
    /// Look up an entry by CVE id.
    pub fn get(&self, cve: &str) -> Option<&DbEntry> {
        self.entries.iter().find(|e| e.entry.cve == cve)
    }

    /// The 25 featured entries (Table VI order).
    pub fn featured(&self) -> &[DbEntry] {
        &self.entries[..25.min(self.entries.len())]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn database_contains_featured_and_bulk() {
        let db = build(10, 42);
        assert_eq!(db.entries.len(), 35);
        assert_eq!(db.featured().len(), 25);
        assert!(db.get("CVE-2018-9412").is_some());
        assert!(db.get("CVE-BULK-0003").is_some());
        assert!(db.get("CVE-1999-0001").is_none());
    }

    #[test]
    fn references_are_compiled_at_reference_settings() {
        let db = build(0, 1);
        for e in &db.entries {
            assert_eq!(e.vulnerable_bin.arch, REFERENCE_ARCH);
            assert_eq!(e.vulnerable_bin.opt, REFERENCE_OPT);
            assert_eq!(e.vulnerable_bin.function_count(), 1);
            assert_eq!(e.patched_bin.function_count(), 1);
            assert_ne!(
                e.vulnerable_bin.functions[0].code, e.patched_bin.functions[0].code,
                "{}: compiled references must differ",
                e.entry.cve
            );
        }
    }

    #[test]
    fn every_entry_carries_a_valid_metadata_envelope() {
        let db = build(3, 42);
        for e in &db.entries {
            e.meta.validate().unwrap_or_else(|err| panic!("{}: {err}", e.entry.cve));
        }
        // Featured envelopes keep the bulletin id; bulk envelopes get a
        // valid synthetic NVD id while the db key stays CVE-BULK-NNNN.
        for e in db.featured() {
            assert_eq!(e.meta.id, e.entry.cve);
        }
        let bulk = db.get("CVE-BULK-0000").unwrap();
        assert_eq!(bulk.meta.id, "CVE-2019-20000");
    }

    #[test]
    fn bulk_entries_take_buffer_args() {
        let db = build(8, 7);
        for e in &db.entries[25..] {
            assert_eq!(e.entry.vulnerable.buffer_param(), Some((0, 1)));
        }
    }
}
