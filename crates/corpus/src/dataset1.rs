//! Dataset I: the cross-platform training corpus.
//!
//! The paper compiles 100 Android libraries with Clang for 4 ISAs × 6
//! optimization levels, obtaining 2,108 binaries (not 2,400 — "some
//! compiler optimization levels didn't work for certain instances") with
//! 2,037,772 function samples, kept *unstripped* so symbol names provide
//! ground truth. This module generates the analogous corpus at a
//! configurable scale, including the deterministic unsupported-combination
//! rule that lands the default configuration at the same ≈12 % attrition.

use fwbin::format::Binary;
use fwbin::isa::{Arch, OptLevel};
use fwlang::ast::Library;
use fwlang::gen::{self, GenConfig};
use serde::{Deserialize, Serialize};

/// Dataset I build configuration.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Dataset1Config {
    /// Number of source libraries (paper: 100).
    pub num_libraries: usize,
    /// Functions per library (min).
    pub min_functions: usize,
    /// Functions per library (max).
    pub max_functions: usize,
    /// Master seed.
    pub seed: u64,
    /// Distribute the CVE catalog's vulnerable functions among the
    /// generated libraries. Faithful to the paper: its Dataset I is 100
    /// real Android libraries compiled from the android-8.1.0_r36 source
    /// tree — the same libraries (libstagefright & co.) whose CVE
    /// functions are evaluated.
    pub include_catalog: bool,
}

impl Default for Dataset1Config {
    fn default() -> Dataset1Config {
        Dataset1Config {
            num_libraries: 100,
            min_functions: 12,
            max_functions: 20,
            seed: 1,
            include_catalog: true,
        }
    }
}

/// A compiled variant of a source library.
#[derive(Debug, Clone)]
pub struct Variant {
    /// Index into [`Dataset1::libraries`].
    pub library: usize,
    /// Target architecture.
    pub arch: Arch,
    /// Optimization level.
    pub opt: OptLevel,
    /// The unstripped binary (symbol names = ground truth).
    pub binary: Binary,
}

/// The generated training corpus.
pub struct Dataset1 {
    /// Source libraries.
    pub libraries: Vec<Library>,
    /// Compiled variants (≤ libraries × 24; unsupported combos skipped).
    pub variants: Vec<Variant>,
}

/// Deterministic "this optimization level didn't work for this library"
/// rule (paper footnote 1). Roughly 12 % of (library, arch, opt) combos.
pub fn combo_unsupported(lib_name: &str, arch: Arch, opt: OptLevel) -> bool {
    let mut h = 0xcbf29ce484222325u64;
    for b in lib_name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h ^= (arch as u64) << 8 | opt as u64;
    h = h.wrapping_mul(0x100000001b3);
    // O0 always works (the paper's failures are optimizer failures).
    opt != OptLevel::O0 && h % 100 < 12
}

/// Build Dataset I.
pub fn build(cfg: &Dataset1Config) -> Dataset1 {
    let gen_cfg = GenConfig {
        min_functions: cfg.min_functions,
        max_functions: cfg.max_functions,
        export_ratio: 0.6,
    };
    let mut libraries = gen::libraries(cfg.seed, "lib_ds1_", cfg.num_libraries, &gen_cfg);
    if cfg.include_catalog {
        for (i, entry) in crate::catalog::full_catalog().into_iter().enumerate() {
            let li = (i * 7 + 3) % libraries.len();
            let mut f = entry.vulnerable;
            f.name = format!("cve_fn_{}", entry.cve.replace('-', "_"));
            f.exported = true;
            libraries[li].functions.push(f);
        }
    }
    let mut variants = Vec::new();
    for (li, lib) in libraries.iter().enumerate() {
        for arch in Arch::ALL {
            for opt in OptLevel::ALL {
                if combo_unsupported(&lib.name, arch, opt) {
                    continue;
                }
                let binary = fwbin::compile_library(lib, arch, opt)
                    .expect("generated libraries always compile");
                variants.push(Variant { library: li, arch, opt, binary });
            }
        }
    }
    Dataset1 { libraries, variants }
}

impl Dataset1 {
    /// Total function samples across all variants (paper: 2,037,772 at
    /// full scale).
    pub fn total_function_samples(&self) -> usize {
        self.variants.iter().map(|v| v.binary.function_count()).sum()
    }

    /// All variants of one source library.
    pub fn variants_of(&self, library: usize) -> impl Iterator<Item = &Variant> {
        self.variants.iter().filter(move |v| v.library == library)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_cfg() -> Dataset1Config {
        Dataset1Config {
            num_libraries: 6,
            min_functions: 4,
            max_functions: 6,
            seed: 3,
            include_catalog: false,
        }
    }

    #[test]
    fn attrition_rate_matches_paper() {
        // At the paper's scale: 100 libraries × 24 combos with the 12 %
        // rule on non-O0 should land near 2,108.
        let mut kept = 0;
        for i in 0..100 {
            let name = format!("lib_ds1_{i}");
            for arch in Arch::ALL {
                for opt in OptLevel::ALL {
                    if !combo_unsupported(&name, arch, opt) {
                        kept += 1;
                    }
                }
            }
        }
        assert!((2050..=2250).contains(&kept), "kept {kept} of 2400 combos");
    }

    #[test]
    fn o0_always_supported() {
        for i in 0..50 {
            let name = format!("lib{i}");
            for arch in Arch::ALL {
                assert!(!combo_unsupported(&name, arch, OptLevel::O0));
            }
        }
    }

    #[test]
    fn build_produces_unstripped_variants() {
        let ds = build(&small_cfg());
        assert_eq!(ds.libraries.len(), 6);
        assert!(ds.variants.len() > 6 * 20, "most combos kept: {}", ds.variants.len());
        for v in &ds.variants {
            assert!(!v.binary.is_stripped() || v.binary.functions.iter().all(|f| f.exported));
            assert!(v.binary.functions.iter().all(|f| f.name.is_some()), "ground truth names");
        }
        assert!(ds.total_function_samples() > 0);
    }

    #[test]
    fn variants_of_filters_by_library() {
        let ds = build(&small_cfg());
        let v0: Vec<_> = ds.variants_of(0).collect();
        assert!(!v0.is_empty());
        assert!(v0.iter().all(|v| v.library == 0));
        assert!(v0.len() <= 24);
    }

    #[test]
    fn build_is_deterministic() {
        let a = build(&small_cfg());
        let b = build(&small_cfg());
        assert_eq!(a.variants.len(), b.variants.len());
        for (x, y) in a.variants.iter().zip(&b.variants) {
            assert_eq!(x.binary, y.binary);
        }
    }
}
