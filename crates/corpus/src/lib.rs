//! # corpus — evaluation datasets
//!
//! Builders for the three datasets of §V-A:
//!
//! * [`dataset1`] — **Dataset I**, the cross-platform training corpus:
//!   generated libraries compiled for 4 ISAs × 6 optimization levels with
//!   the paper's ≈12 % unsupported-combination attrition, unstripped so
//!   symbol names give pair ground truth;
//! * [`vulndb`] — **Dataset II**, the vulnerability database: the
//!   25 featured CVEs of [`catalog`] plus bulk entries, each with compiled
//!   vulnerable/patched reference binaries;
//! * [`device`] — **Dataset III**, the Android Things 1.0 and Pixel 2 XL
//!   firmware analogs with Table VIII's per-CVE patch ground truth.
//!
//! Two production-scale layers sit on top: [`cvemeta`] attaches NVD-style
//! CVE metadata envelopes (id / CWE / CVSS / affected configs) to every
//! database entry so audits report in CVE terms, and [`stream`] generates
//! corpora of 10⁵+ functions across 4 ISAs × 6 opt levels as a lazy,
//! per-index-deterministic stream that never materializes in memory.
//!
//! ## Example
//!
//! ```
//! use corpus::catalog::full_catalog;
//! use corpus::device::{android_things_spec, build_device};
//!
//! let catalog = full_catalog();
//! assert_eq!(catalog.len(), 25);
//! // A 5%-scale Android Things image for quick experiments.
//! let build = build_device(&android_things_spec(), &catalog, 0.05);
//! assert_eq!(build.truth.len(), 25);
//! assert!(!build.truth_for("CVE-2018-9412").unwrap().patched);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod catalog;
pub mod cvemeta;
pub mod dataset1;
pub mod device;
pub mod stream;
pub mod vulndb;

pub use catalog::{full_catalog, CveEntry, PatchMagnitude, Severity};
pub use cvemeta::{annotate, cvss_for, cwe_for, valid_cve_id, CveMeta, CveMetaError};
pub use dataset1::{build as build_dataset1, Dataset1, Dataset1Config};
pub use device::{android_things_spec, build_device, pixel2xl_spec, DeviceBuild, DeviceSpec};
pub use stream::{build_unit, build_units_parallel, manifest, CorpusStream, PlantedCve, StreamConfig, StreamUnit};
pub use vulndb::{build as build_vulndb, DbEntry, VulnDb};
