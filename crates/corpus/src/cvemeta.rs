//! NVD-style CVE metadata envelopes (the Dataset II annotation layer).
//!
//! The paper reports audits as anonymous function pairs; production
//! scanners report in CVE/CWE terms. This module attaches a National
//! Vulnerability Database-shaped record to every database entry — id,
//! CWE weakness classification, CVSS v3.1 scoring, and CPE-style
//! affected-configuration rows — mirroring the NVD CVE API v2.0 nesting
//! (`metrics → cvssData → baseScore`) flattened one level for the
//! wire format this workspace serializes.
//!
//! Every envelope is a **pure function of the catalog entry**: the CWE is
//! derived from the fix shape the entry models and the CVSS score from its
//! bulletin severity class, so the same database always carries the same
//! metadata and reports are reproducible bit for bit.

use crate::catalog::{CveEntry, Severity};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Typed validation failures for CVE metadata.
#[derive(Debug, Clone, PartialEq)]
pub enum CveMetaError {
    /// The id does not match the `CVE-YYYY-NNNN+` shape (4-digit year,
    /// at least 4 digits of sequence number).
    MalformedId(String),
    /// The CVSS base score is outside the defined 0.0–10.0 range (or not
    /// a finite number).
    CvssOutOfRange(f64),
    /// A weakness row does not name a `CWE-N+` identifier.
    MalformedCwe(String),
    /// The envelope carries no weakness classification at all.
    EmptyWeaknesses,
}

impl fmt::Display for CveMetaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CveMetaError::MalformedId(id) => {
                write!(f, "malformed CVE id {id:?}: expected CVE-YYYY-NNNN+")
            }
            CveMetaError::CvssOutOfRange(s) => {
                write!(f, "CVSS base score {s} outside the defined 0.0-10.0 range")
            }
            CveMetaError::MalformedCwe(c) => {
                write!(f, "malformed CWE id {c:?}: expected CWE-N+")
            }
            CveMetaError::EmptyWeaknesses => write!(f, "envelope carries no weakness rows"),
        }
    }
}

impl std::error::Error for CveMetaError {}

/// One CWE weakness classification row.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Weakness {
    /// Assigning source, e.g. `security@android.com`.
    pub source: String,
    /// CWE identifier, e.g. `CWE-787`.
    pub cwe_id: String,
}

/// CVSS v3.1 scoring data (the NVD `cvssData` object).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CvssData {
    /// CVSS specification version.
    pub version: String,
    /// The full vector string.
    pub vector_string: String,
    /// Base score, 0.0–10.0.
    pub base_score: f64,
    /// Qualitative severity band, e.g. `HIGH` or `CRITICAL`.
    pub base_severity: String,
}

/// One CPE-style affected-configuration row.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AffectedConfig {
    /// CPE 2.3 identifier of the affected product.
    pub cpe: String,
    /// Whether this configuration is vulnerable (NVD carries both).
    pub vulnerable: bool,
    /// First fixed version boundary (security patch level).
    pub version_end_excluding: String,
}

/// The NVD-shaped metadata envelope attached to a database entry.
///
/// Field order is the serialization order; the vendored JSON writer is
/// deterministic, so `serialize → deserialize → serialize` is bitwise
/// stable (gated by a property test). Unknown fields in incoming JSON are
/// skipped, which is the forward-compatibility contract: a newer producer
/// may add fields without breaking this reader.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CveMeta {
    /// CVE identifier, `CVE-YYYY-NNNN+`.
    pub id: String,
    /// Assigning CNA, e.g. `security@android.com`.
    pub source_identifier: String,
    /// Publication timestamp (ISO-8601, derived from the CVE year).
    pub published: String,
    /// NVD analysis status.
    pub vuln_status: String,
    /// One-line English description.
    pub description: String,
    /// CWE weakness classifications (at least one).
    pub weaknesses: Vec<Weakness>,
    /// CVSS v3.1 metrics.
    pub metrics: CvssData,
    /// Affected-configuration rows.
    pub configurations: Vec<AffectedConfig>,
}

/// `true` if `id` matches `CVE-YYYY-NNNN+` (4-digit year, ≥4-digit
/// sequence number, nothing else).
pub fn valid_cve_id(id: &str) -> bool {
    let Some(rest) = id.strip_prefix("CVE-") else { return false };
    let Some((year, seq)) = rest.split_once('-') else { return false };
    year.len() == 4
        && year.bytes().all(|b| b.is_ascii_digit())
        && seq.len() >= 4
        && seq.bytes().all(|b| b.is_ascii_digit())
}

impl CveMeta {
    /// Validate the envelope, returning the first typed failure.
    ///
    /// # Errors
    /// [`CveMetaError::MalformedId`] for an id that is not `CVE-YYYY-NNNN+`;
    /// [`CveMetaError::CvssOutOfRange`] for a base score outside 0.0–10.0
    /// (NaN and infinities included); [`CveMetaError::EmptyWeaknesses`] /
    /// [`CveMetaError::MalformedCwe`] for missing or malformed CWE rows.
    pub fn validate(&self) -> Result<(), CveMetaError> {
        if !valid_cve_id(&self.id) {
            return Err(CveMetaError::MalformedId(self.id.clone()));
        }
        let s = self.metrics.base_score;
        if !s.is_finite() || !(0.0..=10.0).contains(&s) {
            return Err(CveMetaError::CvssOutOfRange(s));
        }
        if self.weaknesses.is_empty() {
            return Err(CveMetaError::EmptyWeaknesses);
        }
        for w in &self.weaknesses {
            let ok = w
                .cwe_id
                .strip_prefix("CWE-")
                .is_some_and(|n| !n.is_empty() && n.bytes().all(|b| b.is_ascii_digit()));
            if !ok {
                return Err(CveMetaError::MalformedCwe(w.cwe_id.clone()));
            }
        }
        Ok(())
    }

    /// Parse an envelope from JSON and validate it.
    ///
    /// # Errors
    /// `Err(None)` when the JSON itself does not parse into the envelope
    /// shape; `Err(Some(e))` with the typed validation failure otherwise.
    pub fn from_json(json: &str) -> Result<CveMeta, Option<CveMetaError>> {
        let meta: CveMeta = serde_json::from_str(json).map_err(|_| None)?;
        meta.validate().map_err(Some)?;
        Ok(meta)
    }

    /// The primary CWE identifier (first weakness row).
    pub fn cwe(&self) -> &str {
        self.weaknesses.first().map(|w| w.cwe_id.as_str()).unwrap_or("")
    }
}

/// The primary CWE class for a catalog entry, derived from the fix shape
/// the entry models (the shape names its description prefix, which is the
/// stable contract between the catalog and this mapping):
///
/// * buffer shift overflow → CWE-787 (out-of-bounds write);
/// * unchecked header parse → CWE-125 (out-of-bounds read);
/// * missing input limit → CWE-400 (uncontrolled resource consumption);
/// * off-by-one bounds constant → CWE-193 (off-by-one error);
/// * the flagship ID3 unsynchronization DoS → CWE-400;
/// * bulk entries (bounds-guard patches) → CWE-787.
pub fn cwe_for(entry: &CveEntry) -> &'static str {
    let d = entry.description.as_str();
    if d.starts_with("buffer shift overflow") {
        "CWE-787"
    } else if d.starts_with("unchecked header parse") {
        "CWE-125"
    } else if d.starts_with("missing input limit") {
        "CWE-400"
    } else if d.starts_with("off-by-one bounds constant") {
        "CWE-193"
    } else if d.starts_with("ID3 unsynchronization") {
        "CWE-400"
    } else {
        // Bulk entries and anything unclassified: memory-safety bounds
        // guard, the generic out-of-bounds write class.
        "CWE-787"
    }
}

/// CVSS v3.1 (base score, severity band, vector) for a bulletin severity
/// class. High maps to the canonical local-media-parsing vector (7.8);
/// Critical to the network-reachable variant (9.8).
pub fn cvss_for(severity: Severity) -> (f64, &'static str, &'static str) {
    match severity {
        Severity::High => (7.8, "HIGH", "CVSS:3.1/AV:L/AC:L/PR:N/UI:R/S:U/C:H/I:H/A:H"),
        Severity::Critical => (9.8, "CRITICAL", "CVSS:3.1/AV:N/AC:L/PR:N/UI:N/S:U/C:H/I:H/A:H"),
    }
}

/// The NVD id for a catalog entry. Featured entries already carry real
/// bulletin ids; synthetic bulk entries (`CVE-BULK-NNNN`) get a
/// deterministic id in a reserved 2019 range so every envelope passes the
/// `CVE-YYYY-NNNN+` validation.
fn nvd_id(entry: &CveEntry) -> String {
    if valid_cve_id(&entry.cve) {
        return entry.cve.clone();
    }
    let seq: u64 = entry
        .cve
        .rsplit('-')
        .next()
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| {
            // Last resort: FNV-1a of the raw id keeps it deterministic.
            entry.cve.bytes().fold(0xcbf2_9ce4_8422_2325u64, |h, b| {
                (h ^ b as u64).wrapping_mul(0x1000_0000_01b3)
            }) % 10_000
        });
    format!("CVE-2019-{}", 20_000 + seq)
}

/// Build the metadata envelope for a catalog entry. Pure and
/// deterministic: the same entry always yields the same envelope, and the
/// result always passes [`CveMeta::validate`].
pub fn annotate(entry: &CveEntry) -> CveMeta {
    let id = nvd_id(entry);
    let year = id[4..8].to_string();
    let (base_score, base_severity, vector) = cvss_for(entry.severity);
    CveMeta {
        id,
        source_identifier: "security@android.com".to_string(),
        published: format!("{year}-01-01T00:00:00.000"),
        vuln_status: "Analyzed".to_string(),
        description: entry.description.clone(),
        weaknesses: vec![Weakness {
            source: "security@android.com".to_string(),
            cwe_id: cwe_for(entry).to_string(),
        }],
        metrics: CvssData {
            version: "3.1".to_string(),
            vector_string: vector.to_string(),
            base_score,
            base_severity: base_severity.to_string(),
        },
        configurations: vec![AffectedConfig {
            cpe: format!("cpe:2.3:a:android:{}:*:*:*:*:*:*:*:*", entry.library),
            vulnerable: true,
            version_end_excluding: format!("{year}-12-01"),
        }],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::full_catalog;

    #[test]
    fn featured_envelopes_validate_and_keep_their_ids() {
        for e in full_catalog() {
            let m = annotate(&e);
            m.validate().unwrap_or_else(|err| panic!("{}: {err}", e.cve));
            assert_eq!(m.id, e.cve, "featured ids pass through unchanged");
            assert!(m.cwe().starts_with("CWE-"));
        }
    }

    #[test]
    fn cwe_mapping_follows_fix_shape() {
        let cat = full_catalog();
        let by = |id: &str| cat.iter().find(|e| e.cve == id).unwrap();
        assert_eq!(cwe_for(by("CVE-2018-9340")), "CWE-787"); // overflow copy
        assert_eq!(cwe_for(by("CVE-2018-9451")), "CWE-125"); // unchecked parse
        assert_eq!(cwe_for(by("CVE-2017-13232")), "CWE-400"); // missing limit
        assert_eq!(cwe_for(by("CVE-2018-9470")), "CWE-193"); // wrong constant
        assert_eq!(cwe_for(by("CVE-2018-9412")), "CWE-400"); // flagship DoS
    }

    #[test]
    fn severity_maps_to_cvss_bands() {
        let cat = full_catalog();
        for e in &cat {
            let m = annotate(e);
            match e.severity {
                Severity::High => {
                    assert_eq!(m.metrics.base_score, 7.8);
                    assert_eq!(m.metrics.base_severity, "HIGH");
                }
                Severity::Critical => {
                    assert_eq!(m.metrics.base_score, 9.8);
                    assert_eq!(m.metrics.base_severity, "CRITICAL");
                }
            }
        }
    }

    #[test]
    fn malformed_ids_are_rejected_with_typed_errors() {
        let mut m = annotate(&full_catalog()[0]);
        for bad in ["CVE-18-9412", "CVE-2018-123", "cve-2018-9412", "CVE-2018-", "CVE-20189412", "GHSA-xxxx-yyyy"] {
            m.id = bad.to_string();
            assert_eq!(
                m.validate(),
                Err(CveMetaError::MalformedId(bad.to_string())),
                "{bad} must be rejected"
            );
        }
    }

    #[test]
    fn out_of_range_cvss_is_rejected_with_typed_errors() {
        let mut m = annotate(&full_catalog()[0]);
        for bad in [10.1, -0.5, f64::NAN, f64::INFINITY] {
            m.metrics.base_score = bad;
            match m.validate() {
                Err(CveMetaError::CvssOutOfRange(s)) => {
                    assert!(s.is_nan() == bad.is_nan() && (s.is_nan() || s == bad));
                }
                other => panic!("score {bad} must be rejected, got {other:?}"),
            }
        }
    }

    #[test]
    fn missing_or_malformed_weaknesses_are_rejected() {
        let mut m = annotate(&full_catalog()[0]);
        m.weaknesses.clear();
        assert_eq!(m.validate(), Err(CveMetaError::EmptyWeaknesses));
        m.weaknesses = vec![Weakness { source: "x".into(), cwe_id: "CWE-".into() }];
        assert_eq!(m.validate(), Err(CveMetaError::MalformedCwe("CWE-".into())));
    }

    #[test]
    fn bulk_style_ids_get_valid_synthetic_nvd_ids() {
        let mut e = full_catalog().swap_remove(0);
        e.cve = "CVE-BULK-0042".to_string();
        let m = annotate(&e);
        assert_eq!(m.id, "CVE-2019-20042");
        m.validate().unwrap();
    }

    #[test]
    fn round_trip_is_bitwise_stable() {
        for e in full_catalog().iter().take(5) {
            let m = annotate(e);
            let once = serde_json::to_string(&m).unwrap();
            let back: CveMeta = serde_json::from_str(&once).unwrap();
            assert_eq!(back, m);
            let twice = serde_json::to_string(&back).unwrap();
            assert_eq!(once, twice, "serialize→deserialize→serialize must be bitwise stable");
        }
    }

    #[test]
    fn unknown_fields_are_skipped_for_forward_compat() {
        let m = annotate(&full_catalog()[0]);
        let json = serde_json::to_string(&m).unwrap();
        // A newer producer adds fields this reader does not know about.
        let extended = json.replacen('{', "{\"last_modified\":\"2026-01-01\",\"references\":[{\"url\":\"https://nvd.nist.gov\"}],", 1);
        let back: CveMeta = serde_json::from_str(&extended).expect("unknown fields must be skipped");
        assert_eq!(back, m);
    }
}
