//! Streaming corpus generation at production scale.
//!
//! [`dataset1`](crate::dataset1) builds its whole corpus in memory, which
//! caps evaluation around 10⁴ functions. This module generates corpora of
//! 10⁵+ functions across all 4 ISAs × 6 optimization levels as a
//! **stream**: each [`StreamUnit`] (one compiled library variant) is a
//! pure function of `(config, index)`, produced on demand by an iterator
//! and dropped by the consumer when scanned — the whole corpus never
//! exists in memory at once.
//!
//! Per-index purity is also what makes generation embarrassingly parallel
//! *and* bitwise deterministic: any partition of the index space across
//! any number of threads reassembles into the identical corpus (gated by
//! a test at thread counts 1/2/8).
//!
//! Known-vulnerable functions from the 25-CVE catalog are planted at
//! deterministic unit intervals; [`manifest`] reproduces the ground truth
//! (which unit/function carries which CVE) without generating or
//! compiling anything, so recall gates can score a streaming scan exactly.

use crate::catalog::{self, CveEntry};
use fwbin::format::Binary;
use fwbin::isa::{Arch, OptLevel};
use fwlang::gen::{GenConfig, Generator};

/// Configuration for a streamed corpus. The corpus a config describes is
/// fully determined by its field values.
#[derive(Debug, Clone)]
pub struct StreamConfig {
    /// Master seed; disjoint seeds produce disjoint corpora.
    pub seed: u64,
    /// Minimum number of generated (distractor) functions the stream
    /// emits; the unit count is rounded up to cover it.
    pub target_functions: usize,
    /// Generated functions per library unit.
    pub functions_per_library: usize,
    /// Architectures cycled across units.
    pub archs: Vec<Arch>,
    /// Optimization levels cycled across units.
    pub opts: Vec<OptLevel>,
    /// Plant one catalog CVE function every `plant_every` units
    /// (unit indices 0, k, 2k, …); `0` disables planting.
    pub plant_every: usize,
}

impl Default for StreamConfig {
    fn default() -> Self {
        StreamConfig {
            seed: 0xC0_0C05,
            target_functions: 1_000,
            functions_per_library: 16,
            archs: Arch::ALL.to_vec(),
            opts: OptLevel::ALL.to_vec(),
            plant_every: 8,
        }
    }
}

impl StreamConfig {
    /// A config sized to emit at least `target_functions` generated
    /// functions from `seed`, with the default ISA/opt coverage.
    pub fn sized(target_functions: usize, seed: u64) -> StreamConfig {
        StreamConfig { seed, target_functions, ..StreamConfig::default() }
    }

    /// Number of library units the stream emits.
    pub fn units(&self) -> usize {
        self.target_functions.div_ceil(self.functions_per_library.max(1))
    }

    /// Exact number of functions the stream emits (generated + planted).
    pub fn total_functions(&self) -> usize {
        self.units() * self.functions_per_library + self.planted_units()
    }

    /// Number of units that carry a planted CVE function.
    pub fn planted_units(&self) -> usize {
        if self.plant_every == 0 {
            0
        } else {
            self.units().div_ceil(self.plant_every)
        }
    }

    fn unit_seed(&self, index: usize) -> u64 {
        // The same per-index derivation as `fwlang::gen::libraries`: each
        // unit's generator is seeded independently, so units can be built
        // in any order (or concurrently) with identical results.
        self.seed.wrapping_mul(0x9e37_79b9_7f4a_7c15).wrapping_add(index as u64)
    }

    /// The (architecture, optimization) pair of unit `index`: the ISA
    /// cycles fastest, the opt level per full ISA round, so any window of
    /// `archs × opts` consecutive units covers the full matrix.
    pub fn combo(&self, index: usize) -> (Arch, OptLevel) {
        let arch = self.archs[index % self.archs.len()];
        let opt = self.opts[(index / self.archs.len()) % self.opts.len()];
        (arch, opt)
    }

    /// The catalog row planted in unit `index`, if any.
    fn plant_slot(&self, index: usize, catalog_len: usize) -> Option<usize> {
        if self.plant_every == 0 || catalog_len == 0 || !index.is_multiple_of(self.plant_every) {
            return None;
        }
        Some((index / self.plant_every) % catalog_len)
    }
}

/// Ground truth for one planted CVE function.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PlantedCve {
    /// Unit (library variant) index in the stream.
    pub unit: usize,
    /// Library name of that unit.
    pub library: String,
    /// Function index of the planted function inside the unit.
    pub function_index: usize,
    /// The CVE identifier planted there.
    pub cve: String,
}

/// One streamed corpus element: a compiled library variant.
#[derive(Debug, Clone)]
pub struct StreamUnit {
    /// Index in the stream (the unit's identity).
    pub index: usize,
    /// Compiled binary (`functions_per_library` generated functions plus
    /// an optional planted CVE function at the end).
    pub binary: Binary,
    /// Ground truth when this unit carries a planted CVE function.
    pub planted: Option<PlantedCve>,
}

/// Build unit `index` of the corpus `cfg` describes. Pure: depends only
/// on `(cfg, catalog, index)`, never on which units were built before —
/// the property the determinism and parallelism gates rest on. Pass the
/// prepared catalog (or `&[]` to disable planting) so per-unit cost stays
/// generation + compilation only.
pub fn build_unit(cfg: &StreamConfig, catalog: &[CveEntry], index: usize) -> StreamUnit {
    let (arch, opt) = cfg.combo(index);
    let gen_cfg = GenConfig {
        min_functions: cfg.functions_per_library,
        max_functions: cfg.functions_per_library,
        ..GenConfig::default()
    };
    let mut g = Generator::with_config(cfg.unit_seed(index), gen_cfg);
    let name = format!("libstream{index}");
    let mut lib = g.library_sized(&name, cfg.functions_per_library);
    let planted = cfg.plant_slot(index, catalog.len()).map(|slot| {
        let entry = &catalog[slot];
        let mut f = entry.vulnerable.clone();
        f.name = format!("cve_fn_{}", entry.cve.replace('-', "_"));
        f.exported = true;
        let function_index = lib.functions.len();
        lib.functions.push(f);
        PlantedCve {
            unit: index,
            library: name.clone(),
            function_index,
            cve: entry.cve.clone(),
        }
    });
    let binary = fwbin::compile_library(&lib, arch, opt)
        .unwrap_or_else(|e| panic!("stream unit {index} ({arch:?} {opt:?}) failed to compile: {e}"));
    StreamUnit { index, binary, planted }
}

/// The planted-CVE ground truth of the corpus `cfg` describes, computed
/// without generating or compiling anything.
pub fn manifest(cfg: &StreamConfig) -> Vec<PlantedCve> {
    if cfg.plant_every == 0 {
        return Vec::new();
    }
    let ids: Vec<String> = catalog::full_catalog().into_iter().map(|e| e.cve).collect();
    (0..cfg.units())
        .filter_map(|i| {
            cfg.plant_slot(i, ids.len()).map(|slot| PlantedCve {
                unit: i,
                library: format!("libstream{i}"),
                function_index: cfg.functions_per_library,
                cve: ids[slot].clone(),
            })
        })
        .collect()
}

/// Lazy iterator over the corpus `cfg` describes. Holds the prepared
/// catalog and a cursor — never more than the unit being produced.
pub struct CorpusStream {
    cfg: StreamConfig,
    catalog: Vec<CveEntry>,
    next: usize,
    units: usize,
}

impl CorpusStream {
    /// Open a stream over the corpus `cfg` describes.
    pub fn new(cfg: StreamConfig) -> CorpusStream {
        let catalog = if cfg.plant_every == 0 { Vec::new() } else { catalog::full_catalog() };
        let units = cfg.units();
        CorpusStream { cfg, catalog, next: 0, units }
    }

    /// The stream's configuration.
    pub fn config(&self) -> &StreamConfig {
        &self.cfg
    }

    /// Units remaining to be produced.
    pub fn remaining(&self) -> usize {
        self.units - self.next
    }
}

impl Iterator for CorpusStream {
    type Item = StreamUnit;

    fn next(&mut self) -> Option<StreamUnit> {
        if self.next >= self.units {
            return None;
        }
        let unit = build_unit(&self.cfg, &self.catalog, self.next);
        self.next += 1;
        Some(unit)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let n = self.remaining();
        (n, Some(n))
    }
}

impl ExactSizeIterator for CorpusStream {}

/// Build units `[start, end)` across `threads` worker threads, preserving
/// index order in the result. Because [`build_unit`] is pure per index,
/// the output is bitwise identical for any thread count — the parallel
/// path exists for throughput only.
pub fn build_units_parallel(
    cfg: &StreamConfig,
    start: usize,
    end: usize,
    threads: usize,
) -> Vec<StreamUnit> {
    let end = end.min(cfg.units());
    if start >= end {
        return Vec::new();
    }
    let catalog = if cfg.plant_every == 0 { Vec::new() } else { catalog::full_catalog() };
    let threads = threads.max(1).min(end - start);
    if threads == 1 {
        return (start..end).map(|i| build_unit(cfg, &catalog, i)).collect();
    }
    let mut results: Vec<Option<StreamUnit>> = (start..end).map(|_| None).collect();
    std::thread::scope(|scope| {
        let catalog = &catalog;
        let mut rest = results.as_mut_slice();
        let mut offset = start;
        let chunk = (end - start).div_ceil(threads);
        while !rest.is_empty() {
            let take = chunk.min(rest.len());
            let (head, tail) = rest.split_at_mut(take);
            let base = offset;
            scope.spawn(move || {
                for (k, slot) in head.iter_mut().enumerate() {
                    *slot = Some(build_unit(cfg, catalog, base + k));
                }
            });
            rest = tail;
            offset += take;
        }
    });
    results.into_iter().map(|u| u.expect("every unit built")).collect()
}

/// FNV-1a fingerprint of one compiled function's code bytes.
pub fn function_fingerprint(code: &[u8]) -> u64 {
    fnv(0xcbf2_9ce4_8422_2325, code)
}

fn fnv(init: u64, bytes: &[u8]) -> u64 {
    bytes.iter().fold(init, |h, &b| (h ^ b as u64).wrapping_mul(0x1000_0000_01b3))
}

/// Per-sample fingerprints of every function in a binary. A corpus sample
/// is identified the way Dataset I identifies ground truth — by its
/// (unstripped) symbol *and* its compiled content — so the hash covers
/// the name, the code bytes, and the unit's architecture/opt level.
/// Trivially small generated functions can share code bytes by chance;
/// they are still distinct samples.
pub fn unit_fingerprints(bin: &Binary) -> Vec<u64> {
    bin.functions
        .iter()
        .map(|f| {
            let named = fnv(
                function_fingerprint(&f.code),
                f.name.as_deref().unwrap_or("").as_bytes(),
            );
            named ^ ((bin.arch as u64) << 56) ^ ((bin.opt as u64) << 48)
        })
        .collect()
}

/// Content-only fingerprint of a whole unit (every function's code bytes
/// plus globals, no names). Two units colliding here means the generator
/// reused an RNG stream — the failure mode the disjoint-seed gate exists
/// to catch.
pub fn unit_content_fingerprint(bin: &Binary) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for f in &bin.functions {
        h = fnv(h, &f.code);
        h = h.wrapping_mul(0x9e37_79b9_7f4a_7c15);
    }
    for g in &bin.globals {
        h = fnv(h, &g.to_le_bytes());
    }
    h ^ ((bin.arch as u64) << 56) ^ ((bin.opt as u64) << 48)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny(plant_every: usize) -> StreamConfig {
        StreamConfig {
            seed: 7,
            target_functions: 96,
            functions_per_library: 8,
            plant_every,
            ..StreamConfig::default()
        }
    }

    #[test]
    fn stream_emits_exactly_the_declared_units_and_functions() {
        let cfg = tiny(4);
        let units: Vec<StreamUnit> = CorpusStream::new(cfg.clone()).collect();
        assert_eq!(units.len(), cfg.units());
        let functions: usize = units.iter().map(|u| u.binary.function_count()).sum();
        assert_eq!(functions, cfg.total_functions());
        assert!(functions >= cfg.target_functions);
    }

    #[test]
    fn combos_cover_all_archs_and_opts() {
        let cfg = StreamConfig::sized(4 * 6 * 16, 3);
        let mut seen = std::collections::BTreeSet::new();
        for i in 0..cfg.units() {
            let (arch, opt) = cfg.combo(i);
            seen.insert((arch as u8, opt as u8));
        }
        assert_eq!(seen.len(), 24, "4 ISAs × 6 opt levels all appear");
    }

    #[test]
    fn manifest_matches_streamed_ground_truth() {
        let cfg = tiny(3);
        let planted: Vec<PlantedCve> =
            CorpusStream::new(cfg.clone()).filter_map(|u| u.planted).collect();
        assert_eq!(planted, manifest(&cfg));
        assert_eq!(planted.len(), cfg.planted_units());
        // The planted function really is in the compiled unit, by name.
        let unit = build_unit(&cfg, &catalog::full_catalog(), 0);
        let p = unit.planted.as_ref().unwrap();
        assert_eq!(unit.binary.find_symbol(&format!("cve_fn_{}", p.cve.replace('-', "_"))), Some(p.function_index));
    }

    #[test]
    fn parallel_build_is_bitwise_identical_to_serial() {
        let cfg = tiny(4);
        let serial = build_units_parallel(&cfg, 0, cfg.units(), 1);
        for threads in [2, 8] {
            let par = build_units_parallel(&cfg, 0, cfg.units(), threads);
            assert_eq!(par.len(), serial.len());
            for (a, b) in serial.iter().zip(&par) {
                assert_eq!(a.index, b.index);
                assert_eq!(a.binary, b.binary, "unit {} differs at {threads} threads", a.index);
                assert_eq!(a.planted, b.planted);
            }
        }
    }

    #[test]
    fn disjoint_seeds_produce_disjoint_fingerprints() {
        // Planting disabled: planted needles are intentional duplicates.
        let mut samples = std::collections::HashSet::new();
        let mut contents = std::collections::HashSet::new();
        let mut total_fns = 0usize;
        let mut total_units = 0usize;
        for seed in [11, 12] {
            let cfg = StreamConfig { seed, ..tiny(0) };
            for unit in CorpusStream::new(cfg) {
                for fp in unit_fingerprints(&unit.binary) {
                    samples.insert(fp);
                    total_fns += 1;
                }
                contents.insert(unit_content_fingerprint(&unit.binary));
                total_units += 1;
            }
        }
        assert_eq!(samples.len(), total_fns, "no duplicate function fingerprints across seeds");
        assert_eq!(contents.len(), total_units, "no unit-content collision (RNG stream reuse)");
    }
}
