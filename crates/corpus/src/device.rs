//! Dataset III: device firmware images with ground truth.
//!
//! Builds the two evaluation targets of §V — an Android Things 1.0 analog
//! (05/2018 security patch level) and a Google Pixel 2 XL analog (Android
//! 8.0, 07/2017 patch level) — by embedding each catalog CVE function, in
//! the vulnerable or patched version dictated by the device's patch state,
//! inside its host library among generated filler functions, compiling for
//! the device platform, and stripping. Table VIII's ground-truth column is
//! encoded in [`android_things_spec`].

use crate::catalog::CveEntry;
use fwbin::format::FirmwareImage;
use fwbin::isa::{Arch, OptLevel};
use fwlang::gen::{GenConfig, Generator};
use fwlang::Library;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// A device build specification.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DeviceSpec {
    /// Device name.
    pub name: String,
    /// Security patch level string.
    pub patch_level: String,
    /// Device CPU architecture.
    pub arch: Arch,
    /// Firmware build optimization level.
    pub opt: OptLevel,
    /// CVEs whose patch has been applied on this device.
    pub patched_cves: Vec<String>,
    /// Build seed (filler functions, placement shuffle).
    pub seed: u64,
}

/// Ground truth for one CVE on one device (never visible to PATCHECKO; used
/// only to score the evaluation).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CveGroundTruth {
    /// CVE id.
    pub cve: String,
    /// Host library name.
    pub library: String,
    /// Function-table index of the CVE function inside the host binary.
    pub function_index: usize,
    /// Whether this device carries the patched version.
    pub patched: bool,
}

/// A built device image plus its (held-out) ground truth.
pub struct DeviceBuild {
    /// The stripped firmware image PATCHECKO scans.
    pub image: FirmwareImage,
    /// Evaluation ground truth.
    pub truth: Vec<CveGroundTruth>,
    /// Pre-strip function names per library (held-out debug info used only
    /// to label report rows, like the "Ground truth" column of the paper's
    /// Tables IV and V).
    pub names: BTreeMap<String, Vec<String>>,
}

/// The Android Things 1.0 analog. The `patched_cves` list is exactly the
/// ✓-rows of the paper's Table VIII ground-truth column.
pub fn android_things_spec() -> DeviceSpec {
    DeviceSpec {
        name: "android_things_1.0".into(),
        patch_level: "2018-05".into(),
        arch: Arch::Arm32,
        // Vendors build embedded firmware for size.
        opt: OptLevel::Oz,
        patched_cves: [
            "CVE-2017-13232",
            "CVE-2017-13210",
            "CVE-2017-13209",
            "CVE-2017-13252",
            "CVE-2017-13253",
            "CVE-2017-13278",
            "CVE-2017-13208",
            "CVE-2017-13279",
            "CVE-2017-13180",
            "CVE-2017-13182",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect(),
        seed: 0xA11D201805,
    }
}

/// The Google Pixel 2 XL analog (Android 8.0, 07/2017 patch level): only
/// the mid-2017 bulletin fixes are present.
pub fn pixel2xl_spec() -> DeviceSpec {
    DeviceSpec {
        name: "pixel2xl_8.0".into(),
        patch_level: "2017-07".into(),
        arch: Arch::Arm64,
        // Flagship phone builds favour speed.
        opt: OptLevel::O3,
        patched_cves: [
            "CVE-2017-13178",
            "CVE-2017-13180",
            "CVE-2017-13182",
            "CVE-2017-13208",
            "CVE-2017-13209",
            "CVE-2017-13210",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect(),
        seed: 0x509AE12017,
    }
}

/// Build a device image. `scale` multiplies the catalog's library function
/// counts (1.0 = the paper-derived sizes; tests use smaller values). Each
/// host library gets at least `cves + 4` functions.
pub fn build_device(spec: &DeviceSpec, catalog: &[CveEntry], scale: f64) -> DeviceBuild {
    // Group catalog entries by host library, preserving catalog order.
    let mut by_lib: BTreeMap<&str, Vec<&CveEntry>> = BTreeMap::new();
    for e in catalog {
        by_lib.entry(e.library.as_str()).or_default().push(e);
    }

    let mut image = FirmwareImage::new(spec.name.clone(), spec.patch_level.clone());
    let mut truth = Vec::new();
    let mut names: BTreeMap<String, Vec<String>> = BTreeMap::new();

    for (lib_name, entries) in by_lib {
        let total = entries[0].library_functions;
        let scaled = ((total as f64 * scale) as usize).max(entries.len() + 4);
        let filler = scaled - entries.len();

        // Generate the filler corpus for this library.
        let lib_seed = spec
            .seed
            .wrapping_mul(0x9e3779b97f4a7c15)
            .wrapping_add(lib_name.bytes().map(|b| b as u64).sum());
        let gen_cfg = GenConfig { min_functions: 1, max_functions: 1, export_ratio: 0.5 };
        let mut g = Generator::with_config(lib_seed, gen_cfg);
        let mut lib = Library::new(lib_name);
        for k in 0..filler {
            let f = g.any_function(&mut lib, format!("{lib_name}_fn_{k}"));
            lib.functions.push(f);
        }

        // Insert CVE functions at deterministic spread positions.
        let mut cve_indices = Vec::new();
        for (j, e) in entries.iter().enumerate() {
            let patched = spec.patched_cves.iter().any(|c| c == &e.cve);
            let f = if patched { e.patched.clone() } else { e.vulnerable.clone() };
            let pos = ((j + 1) * lib.functions.len() / (entries.len() + 1)).min(lib.functions.len());
            lib.functions.insert(pos, f);
            cve_indices.push((e.cve.clone(), pos, patched));
            // Adjust earlier recorded positions shifted by this insert.
            for (_, p, _) in cve_indices.iter_mut().rev().skip(1) {
                if *p >= pos {
                    *p += 1;
                }
            }
        }

        names.insert(
            lib_name.to_string(),
            lib.functions.iter().map(|f| f.name.clone()).collect(),
        );
        let mut bin = fwbin::compile_library(&lib, spec.arch, spec.opt)
            .expect("device libraries always compile");
        bin.strip();
        for (cve, pos, patched) in cve_indices {
            truth.push(CveGroundTruth {
                cve,
                library: lib_name.to_string(),
                function_index: pos,
                patched,
            });
        }
        image.binaries.push(bin);
    }

    DeviceBuild { image, truth, names }
}

impl DeviceBuild {
    /// Ground truth for one CVE.
    pub fn truth_for(&self, cve: &str) -> Option<&CveGroundTruth> {
        self.truth.iter().find(|t| t.cve == cve)
    }

    /// Held-out ground-truth name of a function (report labeling only).
    pub fn ground_truth_name(&self, library: &str, function_index: usize) -> Option<&str> {
        self.names.get(library)?.get(function_index).map(String::as_str)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::full_catalog;

    #[test]
    fn android_things_truth_matches_table8() {
        let spec = android_things_spec();
        assert_eq!(spec.patched_cves.len(), 10);
        // Spot-check the paper's rows: 9412 not patched, 13182 patched.
        assert!(!spec.patched_cves.contains(&"CVE-2018-9412".to_string()));
        assert!(spec.patched_cves.contains(&"CVE-2017-13182".to_string()));
        assert!(!spec.patched_cves.contains(&"CVE-2018-9470".to_string()));
    }

    #[test]
    fn device_build_embeds_all_cves_with_correct_versions() {
        let cat = full_catalog();
        let build = build_device(&android_things_spec(), &cat, 0.1);
        assert_eq!(build.truth.len(), 25);
        for t in &build.truth {
            let bin = build.image.binary(&t.library).expect("library present");
            // Ground-truth index is in range and the function exists.
            assert!(t.function_index < bin.function_count());
            // Stripped: the CVE function has no name (it was not exported).
            assert_eq!(bin.functions[t.function_index].name, None);
            // Verify the embedded code equals the right version compiled in
            // the same library context: decode must succeed at minimum.
            assert!(bin.decode_function(t.function_index).is_ok());
        }
        // Table VIII spot checks.
        assert!(!build.truth_for("CVE-2018-9412").unwrap().patched);
        assert!(build.truth_for("CVE-2017-13209").unwrap().patched);
    }

    #[test]
    fn image_is_stripped() {
        let cat = full_catalog();
        let build = build_device(&pixel2xl_spec(), &cat, 0.08);
        for bin in &build.image.binaries {
            assert!(bin.is_stripped());
        }
    }

    #[test]
    fn devices_differ_in_arch_and_patch_state() {
        let at = android_things_spec();
        let px = pixel2xl_spec();
        assert_ne!(at.arch, px.arch);
        // 13252 patched on AT but not on Pixel (patched later than 07/2017).
        assert!(at.patched_cves.contains(&"CVE-2017-13252".to_string()));
        assert!(!px.patched_cves.contains(&"CVE-2017-13252".to_string()));
    }

    #[test]
    fn scaled_build_respects_library_sizes() {
        let cat = full_catalog();
        let build = build_device(&android_things_spec(), &cat, 0.1);
        let stagefright = build.image.binary("libstagefright").unwrap();
        // 565 * 0.1 = 56 functions.
        assert!((50..=60).contains(&stagefright.function_count()));
        let mtp = build.image.binary("libmtp").unwrap();
        assert!(mtp.function_count() >= 6, "minimum floor applies");
    }

    #[test]
    fn build_is_deterministic() {
        let cat = full_catalog();
        let a = build_device(&android_things_spec(), &cat, 0.05);
        let b = build_device(&android_things_spec(), &cat, 0.05);
        assert_eq!(a.image, b.image);
    }
}
