//! Property gates for the NVD-style CVE metadata envelope
//! ([`corpus::cvemeta`]):
//!
//! * **bitwise round-trip** — `serialize → deserialize → serialize` is
//!   byte-identical for any valid envelope (the vendored JSON writer is
//!   deterministic and field order is declaration order);
//! * **typed rejection** — malformed CVE ids (anything off the
//!   `CVE-YYYY-NNNN+` shape) and out-of-range CVSS base scores fail
//!   validation with the matching [`CveMetaError`] variant, both on a
//!   constructed envelope and through [`CveMeta::from_json`];
//! * **forward compatibility** — unknown fields injected anywhere in the
//!   JSON are skipped, leaving the decoded envelope unchanged.

use corpus::cvemeta::{annotate, valid_cve_id, CveMeta, CveMetaError};
use corpus::full_catalog;
use proptest::prelude::*;

/// A structurally valid envelope: a catalog-derived base with the
/// validation-relevant fields (id, score) and free-text fields perturbed.
fn arb_envelope() -> impl Strategy<Value = CveMeta> {
    (
        (0usize..25, 1999u32..=2035, 0u32..=999_999),
        (0u32..=100, 0usize..=3),
    )
        .prop_map(|((slot, year, seq), (tenths, extra_cfgs))| {
            let cat = full_catalog();
            let mut m = annotate(&cat[slot % cat.len()]);
            m.id = format!("CVE-{year}-{seq:04}");
            m.published = format!("{year}-01-01T00:00:00.000");
            m.metrics.base_score = f64::from(tenths) / 10.0;
            for i in 0..extra_cfgs {
                let mut cfg = m.configurations[0].clone();
                cfg.cpe = format!("cpe:2.3:a:android:extra{i}:*:*:*:*:*:*:*:*");
                m.configurations.push(cfg);
            }
            m
        })
}

/// Ids that are close to — but off — the `CVE-YYYY-NNNN+` shape.
fn arb_malformed_id() -> impl Strategy<Value = String> {
    prop_oneof![
        // Year not 4 digits.
        (0u32..=999, 1000u32..=9999).prop_map(|(y, s)| format!("CVE-{y}-{s}")),
        (10_000u32..=99_999, 1000u32..=9999).prop_map(|(y, s)| format!("CVE-{y}-{s}")),
        // Sequence shorter than 4 digits.
        (1999u32..=2035, 0u32..=999).prop_map(|(y, s)| format!("CVE-{y}-{s}")),
        // Wrong prefix / casing / separator.
        (1999u32..=2035, 1000u32..=9999).prop_map(|(y, s)| format!("cve-{y}-{s}")),
        (1999u32..=2035, 1000u32..=9999).prop_map(|(y, s)| format!("CVE-{y}{s}")),
        (1999u32..=2035, 1000u32..=9999).prop_map(|(y, s)| format!("GHSA-{y}-{s}")),
        // Non-digit contamination.
        (1999u32..=2035,).prop_map(|(y,)| format!("CVE-{y}-12x4")),
        Just("CVE--".to_string()),
        Just(String::new()),
    ]
}

/// Finite base scores strictly outside the defined 0.0–10.0 range.
fn arb_out_of_range_score() -> impl Strategy<Value = f64> {
    prop_oneof![10.001f64..1e9, -1e9f64..-0.001]
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    #[test]
    fn valid_envelopes_round_trip_json_bitwise(m in arb_envelope()) {
        prop_assert!(m.validate().is_ok());
        let once = serde_json::to_string(&m).unwrap();
        let back: CveMeta = serde_json::from_str(&once).unwrap();
        prop_assert_eq!(&back, &m, "decoded envelope must equal the original");
        let twice = serde_json::to_string(&back).unwrap();
        prop_assert_eq!(once, twice, "serialize→deserialize→serialize must be bitwise stable");
    }

    #[test]
    fn malformed_ids_are_rejected_with_typed_errors(m in arb_envelope(), bad in arb_malformed_id()) {
        prop_assert!(!valid_cve_id(&bad), "strategy must only emit malformed ids: {bad:?}");
        let mut m = m;
        m.id = bad.clone();
        prop_assert_eq!(m.validate(), Err(CveMetaError::MalformedId(bad.clone())));
        // The same typed error surfaces through the parse-and-validate path.
        let json = serde_json::to_string(&m).unwrap();
        prop_assert_eq!(
            CveMeta::from_json(&json),
            Err(Some(CveMetaError::MalformedId(bad)))
        );
    }

    #[test]
    fn out_of_range_cvss_is_rejected_with_typed_errors(m in arb_envelope(), bad in arb_out_of_range_score()) {
        let mut m = m;
        m.metrics.base_score = bad;
        prop_assert_eq!(m.validate(), Err(CveMetaError::CvssOutOfRange(bad)));
        let json = serde_json::to_string(&m).unwrap();
        match CveMeta::from_json(&json) {
            Err(Some(CveMetaError::CvssOutOfRange(s))) => {
                // The score may pick up float-text round-trip formatting but
                // must decode back to the identical f64.
                prop_assert_eq!(s.to_bits(), bad.to_bits());
            }
            other => panic!("score {bad} must be rejected through from_json, got {other:?}"),
        }
    }

    #[test]
    fn unknown_fields_are_skipped_everywhere(m in arb_envelope(), which in 0usize..5) {
        let keys = ["lastModified", "references", "cisaExploitAdd", "evaluatorComment", "x"];
        let vals = ["\"2026-01-01\"", "[{\"url\":\"https://nvd.nist.gov\"}]", "null", "7.5", "true"];
        let json = serde_json::to_string(&m).unwrap();
        // A newer producer may add fields at the top level and inside every
        // nested object; this reader must skip them all.
        let extended = json
            .replacen('{', &format!("{{\"{}\":{},", keys[which], vals[which]), 1)
            .replace("\"source\":", &format!("\"{}\":{},\"source\":", keys[(which + 1) % 5], vals[(which + 1) % 5]))
            .replace("\"version\":", &format!("\"{}\":{},\"version\":", keys[(which + 2) % 5], vals[(which + 2) % 5]));
        let back: CveMeta = serde_json::from_str(&extended).expect("unknown fields must be skipped");
        prop_assert_eq!(back, m);
    }
}

#[test]
fn from_json_distinguishes_parse_failures_from_validation_failures() {
    assert_eq!(CveMeta::from_json("not json").err(), Some(None), "shape errors carry no typed error");
    assert_eq!(CveMeta::from_json("{}").err(), Some(None), "missing fields are a shape error");
    let mut m = annotate(&full_catalog()[0]);
    m.weaknesses.clear();
    let json = serde_json::to_string(&m).unwrap();
    assert_eq!(CveMeta::from_json(&json).err(), Some(Some(CveMetaError::EmptyWeaknesses)));
}
