//! End-to-end deadline propagation for pipeline work.
//!
//! A [`CancelToken`] carries a request's wall-clock deadline from the
//! service edge down through the analysis pipeline. The pipeline checks
//! the token *between* stages (per library, before the dynamic stage,
//! per CVE in an audit) — cheap enough to be free, frequent enough that
//! an expired request never pins an executor for a whole image. A check
//! that observes expiry returns the typed
//! [`ScanError::DeadlineExceeded`], which the service layer maps to a
//! per-tenant `expired` counter and a typed wire rejection.
//!
//! Tokens are plain `Copy` values: an unbounded token costs nothing and
//! every legacy entry point threads one through unchanged.

use std::time::{Duration, Instant};

use crate::error::ScanError;

/// A deadline-based cancellation token threaded through pipeline stages.
#[derive(Debug, Clone, Copy)]
pub struct CancelToken {
    deadline: Option<Instant>,
    budget_ms: u64,
}

impl CancelToken {
    /// A token that never expires — used by every caller that predates
    /// deadlines (CLI batch audits, benches, the scheduler's own jobs).
    pub fn unbounded() -> CancelToken {
        CancelToken { deadline: None, budget_ms: 0 }
    }

    /// A token expiring `budget` from now. The millisecond budget is
    /// retained so the typed error names the envelope the caller set.
    pub fn with_budget(budget: Duration) -> CancelToken {
        CancelToken {
            deadline: Instant::now().checked_add(budget),
            budget_ms: budget.as_millis() as u64,
        }
    }

    /// A token expiring at an absolute instant (the service edge computes
    /// `arrival + deadline_ms` once so queueing time counts against the
    /// budget).
    pub fn with_deadline(deadline: Instant, budget_ms: u64) -> CancelToken {
        CancelToken { deadline: Some(deadline), budget_ms }
    }

    /// The absolute expiry instant, if bounded.
    pub fn deadline(&self) -> Option<Instant> {
        self.deadline
    }

    /// The original end-to-end budget in milliseconds (0 for unbounded).
    pub fn budget_ms(&self) -> u64 {
        self.budget_ms
    }

    /// Whether the deadline has passed.
    pub fn expired(&self) -> bool {
        matches!(self.deadline, Some(d) if Instant::now() >= d)
    }

    /// Time left before expiry; `None` when unbounded, zero when expired.
    pub fn remaining(&self) -> Option<Duration> {
        self.deadline.map(|d| d.saturating_duration_since(Instant::now()))
    }

    /// The between-stages check: `Err(DeadlineExceeded)` once expired.
    pub fn check(&self) -> Result<(), ScanError> {
        if self.expired() {
            Err(ScanError::DeadlineExceeded { budget_ms: self.budget_ms })
        } else {
            Ok(())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unbounded_never_expires() {
        let t = CancelToken::unbounded();
        assert!(!t.expired());
        assert!(t.remaining().is_none());
        assert!(t.deadline().is_none());
        t.check().unwrap();
    }

    #[test]
    fn zero_budget_expires_immediately_with_typed_error() {
        let t = CancelToken::with_budget(Duration::from_millis(0));
        assert!(t.expired());
        assert_eq!(t.remaining(), Some(Duration::ZERO));
        match t.check() {
            Err(ScanError::DeadlineExceeded { budget_ms }) => assert_eq!(budget_ms, 0),
            other => panic!("expected DeadlineExceeded, got {other:?}"),
        }
    }

    #[test]
    fn generous_budget_checks_clean_and_reports_envelope() {
        let t = CancelToken::with_budget(Duration::from_secs(3600));
        assert!(!t.expired());
        assert_eq!(t.budget_ms(), 3_600_000);
        t.check().unwrap();
        assert!(t.remaining().unwrap() > Duration::from_secs(3500));
    }

    #[test]
    fn absolute_deadline_counts_elapsed_queue_time() {
        let arrival = Instant::now() - Duration::from_millis(50);
        let t = CancelToken::with_deadline(arrival + Duration::from_millis(10), 10);
        assert!(t.expired(), "10ms budget set 50ms ago must read expired");
        assert!(matches!(t.check(), Err(ScanError::DeadlineExceeded { budget_ms: 10 })));
    }
}
