//! Evaluation harness (§V): drives the pipeline over the 25 CVEs and the
//! device images, producing the rows of Tables VI, VII and VIII and the
//! series of Figures 7 and 8.

use crate::detector::{self, DetectorConfig, TestMetrics};
use crate::differential::{self, DifferentialConfig, PatchVerdict};
use crate::error::ScanError;
use crate::pipeline::{Basis, CveAnalysis, Patchecko, PipelineConfig};
use crate::similarity;
use corpus::device::DeviceBuild;
use corpus::vulndb::{DbEntry, VulnDb};
use corpus::dataset1::Dataset1Config;
use neural::net::TrainHistory;
use serde::{Deserialize, Serialize};

/// One row of Table VI / Table VII.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CveRow {
    /// CVE id.
    pub cve: String,
    /// Search basis (vulnerable = Table VI, patched = Table VII).
    pub basis: String,
    /// Deep-learning classification confusion counts against the
    /// single-target ground truth.
    pub tp: u32,
    /// True negatives.
    pub tn: u32,
    /// False positives.
    pub fp: u32,
    /// False negatives.
    pub fn_: u32,
    /// Functions in the host library ("Total").
    pub total: usize,
    /// FP percentage ("FP(%)").
    pub fp_percent: f64,
    /// Candidates surviving execution validation ("Execution").
    pub execution: usize,
    /// 1-based rank of the true function in the final ranking
    /// ("Ranking"; `None` = the paper's "N/A").
    pub ranking: Option<usize>,
    /// Static-stage seconds ("DP").
    pub dp_seconds: f64,
    /// Dynamic-stage seconds ("DA").
    pub da_seconds: f64,
}

/// One row of Table VIII.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PatchRow {
    /// CVE id.
    pub cve: String,
    /// PATCHECKO's verdict (`None`: target never located).
    pub detected_patched: Option<bool>,
    /// Ground truth.
    pub truth_patched: bool,
    /// Whether the differential engine fell back to the tie-break.
    pub tie_break: bool,
}

impl PatchRow {
    /// Whether the verdict matches the ground truth.
    pub fn correct(&self) -> bool {
        self.detected_patched == Some(self.truth_patched)
    }
}

/// Evaluate one CVE on one device with one basis, producing its table row
/// and the underlying analysis.
///
/// # Errors
/// Propagates pipeline [`ScanError`]s (extraction and cache failures).
pub fn evaluate_cve(
    patchecko: &Patchecko,
    entry: &DbEntry,
    device: &DeviceBuild,
    basis: Basis,
) -> Result<(CveRow, CveAnalysis), ScanError> {
    let truth = device
        .truth_for(&entry.entry.cve)
        .ok_or_else(|| ScanError::UnknownCve(entry.entry.cve.clone()))?;
    let bin = device
        .image
        .binary(&truth.library)
        .unwrap_or_else(|| panic!("{} missing from image", truth.library));
    let analysis = patchecko.analyze_library(bin, entry, basis)?;

    let mut tp = 0u32;
    let mut fp = 0u32;
    let mut tn = 0u32;
    let mut fn_ = 0u32;
    for (i, p) in analysis.scan.probs.iter().enumerate() {
        let predicted = *p >= patchecko.detector.threshold;
        let is_target = i == truth.function_index;
        match (predicted, is_target) {
            (true, true) => tp += 1,
            (true, false) => fp += 1,
            (false, false) => tn += 1,
            (false, true) => fn_ += 1,
        }
    }
    let total = analysis.scan.total;
    let row = CveRow {
        cve: entry.entry.cve.clone(),
        basis: basis.to_string(),
        tp,
        tn,
        fp,
        fn_,
        total,
        fp_percent: 100.0 * fp as f64 / total.max(1) as f64,
        execution: analysis.dynamic.validated.len(),
        ranking: similarity::rank_of(&analysis.dynamic.ranking, truth.function_index),
        dp_seconds: analysis.scan.seconds,
        da_seconds: analysis.dynamic.seconds,
    };
    Ok((row, analysis))
}

/// Candidate target functions for the differential engine: the union of
/// the top-3 of both bases' rankings (distances across bases are not
/// directly comparable — the environments differ — so the differential
/// engine itself arbitrates via [`differential::detect_patch_best`]).
pub fn locate_candidates(vuln: &CveAnalysis, patched: &CveAnalysis) -> Vec<usize> {
    let mut out = Vec::new();
    for r in vuln.dynamic.ranking.iter().take(3).chain(patched.dynamic.ranking.iter().take(3)) {
        if !out.contains(&r.function_index) {
            out.push(r.function_index);
        }
    }
    out
}

/// Run the full Table VIII flow for one CVE: both-basis analysis, target
/// location, differential verdict.
///
/// # Errors
/// Propagates pipeline [`ScanError`]s (extraction and cache failures).
pub fn evaluate_patch_detection(
    patchecko: &Patchecko,
    entry: &DbEntry,
    device: &DeviceBuild,
    diff_cfg: &DifferentialConfig,
) -> Result<(PatchRow, Option<PatchVerdict>), ScanError> {
    let (_, va) = evaluate_cve(patchecko, entry, device, Basis::Vulnerable)?;
    let (_, pa) = evaluate_cve(patchecko, entry, device, Basis::Patched)?;
    let truth = device
        .truth_for(&entry.entry.cve)
        .ok_or_else(|| ScanError::UnknownCve(entry.entry.cve.clone()))?;
    let candidates = locate_candidates(&va, &pa);
    let bin = device.image.binary(&truth.library).expect("library present");
    let Some((_, verdict)) =
        differential::detect_patch_best(patchecko, entry, bin, &candidates, diff_cfg)?
    else {
        return Ok((
            PatchRow {
                cve: entry.entry.cve.clone(),
                detected_patched: None,
                truth_patched: truth.patched,
                tie_break: false,
            },
            None,
        ));
    };
    let row = PatchRow {
        cve: entry.entry.cve.clone(),
        detected_patched: Some(verdict.patched),
        truth_patched: truth.patched,
        tie_break: verdict.tie_break,
    };
    Ok((row, Some(verdict)))
}

/// Audit a whole firmware image against the vulnerability database,
/// producing the deployment-facing [`crate::report::AuditReport`]: per CVE,
/// locate the target via both search bases, arbitrate with
/// [`differential::detect_patch_best`], and classify.
pub fn audit_image(
    patchecko: &Patchecko,
    db: &VulnDb,
    image: &fwbin::FirmwareImage,
    diff_cfg: &DifferentialConfig,
) -> Result<crate::report::AuditReport, ScanError> {
    audit_image_with(
        patchecko,
        db,
        image,
        diff_cfg,
        &crate::pipeline::DirectExtraction,
        &crate::pipeline::live_profiling(),
    )
}

/// One CVE's share of [`audit_image_with`]: both-basis image analysis,
/// per-library candidate collection, differential arbitration.
fn audit_one_cve(
    patchecko: &Patchecko,
    entry: &DbEntry,
    image: &fwbin::FirmwareImage,
    diff_cfg: &DifferentialConfig,
    source: &dyn crate::pipeline::FeatureSource,
    dynsrc: &std::sync::Arc<dyn crate::dynsource::DynProfileSource>,
    cancel: &crate::cancel::CancelToken,
) -> Result<(crate::report::AuditStatus, Option<String>, Option<PatchVerdict>), ScanError> {
    use crate::report::AuditStatus;
    let va = patchecko.analyze_image_ctl(image, entry, Basis::Vulnerable, source, dynsrc, cancel)?;
    let pa = patchecko.analyze_image_ctl(image, entry, Basis::Patched, source, dynsrc, cancel)?;
    // Per-library candidate sets from both bases.
    let mut by_lib: std::collections::BTreeMap<usize, Vec<usize>> = Default::default();
    for m in va.best.iter().chain(pa.best.iter()) {
        let cands = by_lib.entry(m.library_index).or_default();
        if !cands.contains(&m.function_index) {
            cands.push(m.function_index);
        }
    }
    let mut best: Option<(String, usize, PatchVerdict, f64)> = None;
    for (li, cands) in by_lib {
        cancel.check()?;
        let bin = &image.binaries[li];
        if let Some((idx, v)) =
            differential::detect_patch_best_with(
                patchecko, entry, bin, &cands, diff_cfg, source, dynsrc,
            )?
        {
            let dyn_prox = v.dyn_dist_vulnerable.min(v.dyn_dist_patched);
            let proximity = if dyn_prox.is_finite() { dyn_prox } else { 0.0 }
                + v.static_dist_vulnerable.min(v.static_dist_patched);
            let better = match &best {
                Some((_, _, _, d)) => proximity < *d,
                None => true,
            };
            if better {
                best = Some((bin.lib_name.clone(), idx, v, proximity));
            }
        }
    }
    Ok(match best {
        Some((lib, idx, v, _)) => (
            if v.patched { AuditStatus::Patched } else { AuditStatus::Vulnerable },
            Some(format!("{lib}:{idx}")),
            Some(v),
        ),
        None => (AuditStatus::NotFound, None, None),
    })
}

/// [`audit_image`] with static features served by `source` and dynamic
/// profiles served by `dynsrc`: with a warm scanhub artifact store, the
/// whole audit performs zero disassembly / feature-extraction work *and*
/// zero VM executions.
///
/// Failure policy: a *permanent* per-CVE failure (malformed input) is
/// recorded as an [`AuditStatus::Error`](crate::report::AuditStatus::Error)
/// finding and the audit continues — one poisoned entry must not sink the
/// image. A *transient* failure (quarantined artifact, injected fault,
/// worker death) propagates as `Err` so the caller — typically the scanhub
/// scheduler — can retry the whole job.
///
/// # Errors
/// The first transient [`ScanError`] encountered.
pub fn audit_image_with(
    patchecko: &Patchecko,
    db: &VulnDb,
    image: &fwbin::FirmwareImage,
    diff_cfg: &DifferentialConfig,
    source: &dyn crate::pipeline::FeatureSource,
    dynsrc: &std::sync::Arc<dyn crate::dynsource::DynProfileSource>,
) -> Result<crate::report::AuditReport, ScanError> {
    audit_image_ctl(
        patchecko,
        db,
        image,
        diff_cfg,
        source,
        dynsrc,
        &crate::cancel::CancelToken::unbounded(),
    )
}

/// [`audit_image_with`] under a cancellation token: the token is checked
/// before every CVE (and, inside each CVE, between per-library stages),
/// so an audit whose end-to-end deadline has passed surfaces the typed
/// [`ScanError::DeadlineExceeded`] at the next stage boundary instead of
/// running the database to completion.
///
/// # Errors
/// [`ScanError::DeadlineExceeded`] on expiry; otherwise the first
/// transient [`ScanError`] encountered.
pub fn audit_image_ctl(
    patchecko: &Patchecko,
    db: &VulnDb,
    image: &fwbin::FirmwareImage,
    diff_cfg: &DifferentialConfig,
    source: &dyn crate::pipeline::FeatureSource,
    dynsrc: &std::sync::Arc<dyn crate::dynsource::DynProfileSource>,
    cancel: &crate::cancel::CancelToken,
) -> Result<crate::report::AuditReport, ScanError> {
    use crate::report::{AuditFinding, AuditReport, AuditStatus};
    let _span = scope::SpanGuard::enter("audit").with_detail(image.device.clone());
    let mut findings = Vec::new();
    // The whole database, not just the featured Table VI slice: a
    // production audit answers for every CVE the reference DB knows.
    for entry in &db.entries {
        cancel.check()?;
        let (status, located, verdict, error) =
            match audit_one_cve(patchecko, entry, image, diff_cfg, source, dynsrc, cancel) {
                Ok((status, located, verdict)) => (status, located, verdict, None),
                Err(e) if e.is_transient() => return Err(e),
                Err(e) => (AuditStatus::Error, None, None, Some(e)),
            };
        let degraded = verdict.as_ref().is_some_and(|v| v.degraded);
        findings.push(AuditFinding {
            cve: entry.entry.cve.clone(),
            expected_library: entry.entry.library.clone(),
            severity: format!("{:?}", entry.entry.severity).to_lowercase(),
            cwe: Some(entry.meta.cwe().to_string()),
            cvss: Some(entry.meta.metrics.base_score),
            status,
            located,
            verdict,
            degraded,
            error,
        });
    }
    Ok(AuditReport {
        device: image.device.clone(),
        patch_level: image.patch_level.clone(),
        libraries: image.binaries.len(),
        functions: image.total_functions(),
        findings,
        telemetry: None,
    })
}

/// A full evaluation context: trained detector + datasets.
pub struct Evaluation {
    /// The analyzer.
    pub patchecko: Patchecko,
    /// The vulnerability database.
    pub db: VulnDb,
    /// Device builds under test.
    pub devices: Vec<DeviceBuild>,
    /// Figure-8 training curves.
    pub history: TrainHistory,
    /// Held-out detector metrics.
    pub metrics: TestMetrics,
}

/// Scale/effort knobs for building an evaluation.
#[derive(Debug, Clone)]
pub struct EvaluationConfig {
    /// Dataset I settings.
    pub dataset1: Dataset1Config,
    /// Detector training settings.
    pub detector: DetectorConfig,
    /// Pipeline settings.
    pub pipeline: PipelineConfig,
    /// Device library scale (1.0 = paper-derived sizes).
    pub device_scale: f64,
    /// Bulk vulnerability-database entries beyond the featured 25.
    pub bulk_db: usize,
}

impl Default for EvaluationConfig {
    fn default() -> EvaluationConfig {
        EvaluationConfig {
            dataset1: Dataset1Config::default(),
            detector: DetectorConfig::default(),
            pipeline: PipelineConfig::default(),
            device_scale: 1.0,
            bulk_db: 175,
        }
    }
}

/// Build an evaluation: generate Dataset I, train the detector, build the
/// database and both device images.
pub fn build_evaluation(cfg: &EvaluationConfig) -> Evaluation {
    let ds1 = corpus::build_dataset1(&cfg.dataset1);
    let (det, history, metrics) = detector::train(&ds1, &cfg.detector);
    drop(ds1);
    let db = corpus::build_vulndb(cfg.bulk_db, 0xDB);
    let catalog = corpus::full_catalog();
    let devices = vec![
        corpus::build_device(&corpus::android_things_spec(), &catalog, cfg.device_scale),
        corpus::build_device(&corpus::pixel2xl_spec(), &catalog, cfg.device_scale),
    ];
    Evaluation {
        patchecko: Patchecko::new(det, cfg.pipeline.clone()),
        db,
        devices,
        history,
        metrics,
    }
}

impl Evaluation {
    /// Table VI (basis = vulnerable) / Table VII (basis = patched) rows for
    /// one device. The evaluation corpus is well-formed by construction, so
    /// a scan failure here is a harness bug and panics with the typed error.
    pub fn table_rows(&self, device: usize, basis: Basis) -> Vec<CveRow> {
        self.db
            .featured()
            .iter()
            .map(|e| {
                evaluate_cve(&self.patchecko, e, &self.devices[device], basis)
                    .unwrap_or_else(|err| panic!("evaluation corpus scan failed: {err}"))
                    .0
            })
            .collect()
    }

    /// Table VIII rows for one device. Panics on scan failure, as for
    /// [`Evaluation::table_rows`].
    pub fn patch_rows(&self, device: usize) -> Vec<PatchRow> {
        let diff_cfg = DifferentialConfig::default();
        self.db
            .featured()
            .iter()
            .map(|e| {
                evaluate_patch_detection(&self.patchecko, e, &self.devices[device], &diff_cfg)
                    .unwrap_or_else(|err| panic!("evaluation corpus scan failed: {err}"))
                    .0
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::shared_detector;

    fn tiny_eval() -> Evaluation {
        // Shared detector + small device images: end-to-end behaviour with
        // test-profile runtimes.
        let catalog = corpus::full_catalog();
        Evaluation {
            patchecko: Patchecko::new(shared_detector().clone(), PipelineConfig::default()),
            db: corpus::build_vulndb(0, 0xDB),
            devices: vec![
                corpus::build_device(&corpus::android_things_spec(), &catalog, 0.05),
                corpus::build_device(&corpus::pixel2xl_spec(), &catalog, 0.05),
            ],
            history: TrainHistory::default(),
            metrics: TestMetrics { accuracy: 0.0, auc: 0.0, pairs: 0 },
        }
    }

    #[test]
    fn evaluate_cve_produces_consistent_row() {
        let ev = tiny_eval();
        let entry = ev.db.get("CVE-2018-9412").unwrap();
        let (row, analysis) =
            evaluate_cve(&ev.patchecko, entry, &ev.devices[0], Basis::Vulnerable).unwrap();
        assert_eq!(row.tp + row.tn + row.fp + row.fn_, row.total as u32);
        assert_eq!(row.tp + row.fn_, 1, "exactly one ground-truth target");
        assert!(row.execution <= analysis.scan.candidates.len());
        assert!(row.fp_percent >= 0.0 && row.fp_percent <= 100.0);
        // The flagship function is found and ranked top-3 on Android Things
        // (not patched there, searching with the vulnerable basis).
        assert_eq!(row.tp, 1, "deep model finds the vulnerable target");
        let rank = row.ranking.expect("ranked");
        assert!(rank <= 3, "rank {rank}");
    }

    #[test]
    fn patch_detection_rows_score_against_truth() {
        let ev = tiny_eval();
        // Flagship: present vulnerable on Android Things.
        let entry = ev.db.get("CVE-2018-9412").unwrap();
        let (row, verdict) = evaluate_patch_detection(
            &ev.patchecko,
            entry,
            &ev.devices[0],
            &DifferentialConfig::default(),
        )
        .unwrap();
        assert!(!row.truth_patched);
        assert_eq!(row.detected_patched, Some(false), "{verdict:?}");
        assert!(row.correct());
    }

    #[test]
    fn locate_candidates_unions_both_rankings() {
        use crate::pipeline::{DynamicAnalysis, StaticScan};
        use crate::similarity::RankedCandidate;
        let mk = |ranking: Vec<RankedCandidate>| CveAnalysis {
            cve: "CVE-TEST".into(),
            basis: Basis::Vulnerable,
            scan: StaticScan {
                library: "lib".into(),
                total: 0,
                probs: vec![],
                candidates: vec![],
                best_ref: vec![],
                seconds: 0.0,
            },
            dynamic: DynamicAnalysis {
                envs: vec![],
                reference_profile: vec![],
                validated: vec![],
                profiles: vec![],
                ranking,
                confidence: crate::pipeline::Confidence::Full,
                degradation: None,
                seconds: 0.0,
            },
        };
        let va = mk(vec![RankedCandidate { function_index: 5, distance: 10.0 }]);
        let pa = mk(vec![
            RankedCandidate { function_index: 9, distance: 2.0 },
            RankedCandidate { function_index: 5, distance: 4.0 },
        ]);
        assert_eq!(locate_candidates(&va, &pa), vec![5, 9]);
        let empty = mk(vec![]);
        assert!(locate_candidates(&empty, &empty).is_empty());
    }
}
