//! The deep-learning vulnerability detector (§III-A): pair-sampled
//! training over Dataset I and the trained pair classifier.
//!
//! Two functions are labeled *similar* when they were compiled from the
//! same source function (possibly for different architectures or
//! optimization levels), *dissimilar* otherwise. The classifier is the
//! 6-layer sequential model of Figure 4, over 96 inputs (two 48-feature
//! vectors).

use crate::features::{self, Normalizer, StaticFeatures};
use corpus::dataset1::Dataset1;
use neural::matrix::Matrix;
use neural::net::{self, Mlp, TrainConfig, TrainHistory};
use neural::metrics;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Layer widths of the paper's 6-layer model (input shape 96).
pub const MODEL_DIMS: [usize; 7] = [96, 128, 64, 32, 16, 8, 1];

/// Detector training configuration.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DetectorConfig {
    /// Positive (and negative) pairs sampled per source function.
    pub pairs_per_function: usize,
    /// Training hyperparameters.
    pub train: TrainConfig,
    /// Similarity threshold for candidate selection.
    pub threshold: f32,
    /// Pair-sampling seed.
    pub seed: u64,
}

impl Default for DetectorConfig {
    fn default() -> DetectorConfig {
        DetectorConfig {
            pairs_per_function: 8,
            train: TrainConfig { epochs: 15, batch: 256, lr: 1e-3, seed: 7, ..Default::default() },
            threshold: 0.5,
            seed: 1234,
        }
    }
}

/// Held-out test metrics (the paper reports accuracy 96 % and AUC 0.971 for
/// the baseline \[41\]; Figure 8 shows the curves).
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct TestMetrics {
    /// Accuracy at threshold 0.5 on the held-out test split.
    pub accuracy: f32,
    /// Area under the ROC curve on the test split.
    pub auc: f64,
    /// Test pair count.
    pub pairs: usize,
}

/// The trained detector: model + the normalizer its inputs require.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Detector {
    /// The pair classifier.
    pub net: Mlp,
    /// Input normalization fitted on the training corpus.
    pub norm: Normalizer,
    /// Candidate-selection threshold.
    pub threshold: f32,
}

/// A labeled feature-pair dataset (flattened inputs + labels).
pub struct PairDataset {
    /// `(pairs, 96)` input matrix.
    pub x: Matrix,
    /// Labels (1 = similar).
    pub y: Vec<f32>,
}

/// Extracted per-variant features with source identity for pair sampling.
struct Extracted {
    /// `features[v][f]` = features of function `f` in variant `v`.
    features: Vec<Vec<StaticFeatures>>,
    /// Source identity per variant function: (library, function name).
    identity: Vec<Vec<(usize, String)>>,
}

fn extract_dataset(ds: &Dataset1) -> Extracted {
    let mut features = Vec::with_capacity(ds.variants.len());
    let mut identity = Vec::with_capacity(ds.variants.len());
    for v in &ds.variants {
        let fs = features::extract_all(&v.binary).expect("dataset binaries decode");
        let ids = v
            .binary
            .functions
            .iter()
            .map(|f| (v.library, f.name.clone().expect("dataset I is unstripped")))
            .collect();
        features.push(fs);
        identity.push(ids);
    }
    Extracted { features, identity }
}

/// Sample a balanced pair dataset from Dataset I. Positive pairs are two
/// variants of the same source function; negatives pair it with a random
/// different function.
pub fn sample_pairs(ds: &Dataset1, cfg: &DetectorConfig, norm: &Normalizer) -> PairDataset {
    let ex = extract_dataset(ds);
    let mut rng = SmallRng::seed_from_u64(cfg.seed);

    // Index variants by source identity.
    use std::collections::HashMap;
    let mut groups: HashMap<(usize, &str), Vec<(usize, usize)>> = HashMap::new();
    for (vi, ids) in ex.identity.iter().enumerate() {
        for (fi, (lib, name)) in ids.iter().enumerate() {
            groups.entry((*lib, name.as_str())).or_default().push((vi, fi));
        }
    }
    let group_list: Vec<&Vec<(usize, usize)>> = {
        let mut keys: Vec<_> = groups.keys().copied().collect();
        keys.sort(); // determinism
        keys.iter().map(|k| &groups[k]).collect()
    };

    let mut rows: Vec<Vec<f32>> = Vec::new();
    let mut y: Vec<f32> = Vec::new();
    let total_variants = ex.features.len();
    for (gi, members) in group_list.iter().enumerate() {
        if members.len() < 2 {
            continue;
        }
        for _ in 0..cfg.pairs_per_function {
            // Positive pair: two distinct variants of this function.
            let a = members[rng.gen_range(0..members.len())];
            let mut b = members[rng.gen_range(0..members.len())];
            let mut guard = 0;
            while b == a && guard < 8 {
                b = members[rng.gen_range(0..members.len())];
                guard += 1;
            }
            if a == b {
                continue;
            }
            rows.push(norm.pair_input(&ex.features[a.0][a.1], &ex.features[b.0][b.1]));
            y.push(1.0);
            // Negative pair: this function against a random other one.
            let mut ov = rng.gen_range(0..total_variants);
            let mut of = rng.gen_range(0..ex.features[ov].len());
            let mut guard = 0;
            while ex.identity[ov][of] == ex.identity[a.0][a.1] && guard < 8 {
                ov = rng.gen_range(0..total_variants);
                of = rng.gen_range(0..ex.features[ov].len());
                guard += 1;
            }
            rows.push(norm.pair_input(&ex.features[a.0][a.1], &ex.features[ov][of]));
            y.push(0.0);
        }
        let _ = gi;
    }

    let cols = rows.first().map(|r| r.len()).unwrap_or(96);
    let mut x = Matrix::zeros(rows.len(), cols);
    for (r, row) in rows.iter().enumerate() {
        x.row_mut(r).copy_from_slice(row);
    }
    PairDataset { x, y }
}

/// Train the detector on Dataset I, splitting pairs 60/20/20 into
/// train/validation/test as the paper does (1,222,663 / 407,554 / 407,555).
/// Returns the detector, the Figure-8 history, and the test metrics.
pub fn train(ds: &Dataset1, cfg: &DetectorConfig) -> (Detector, TrainHistory, TestMetrics) {
    // Fit the normalizer on every function of every variant.
    let mut corpus = Vec::new();
    for v in &ds.variants {
        corpus.extend(features::extract_all(&v.binary).expect("dataset binaries decode"));
    }
    let norm = Normalizer::fit(&corpus);
    drop(corpus);

    let pairs = sample_pairs(ds, cfg, &norm);
    let n = pairs.x.rows();
    // Shuffled split.
    let mut order: Vec<usize> = (0..n).collect();
    let mut rng = SmallRng::seed_from_u64(cfg.seed ^ 0x5151);
    for i in (1..n).rev() {
        let j = rng.gen_range(0..=i);
        order.swap(i, j);
    }
    let n_train = n * 6 / 10;
    let n_val = n * 2 / 10;
    let take = |idx: &[usize]| -> (Matrix, Vec<f32>) {
        (pairs.x.gather_rows(idx), idx.iter().map(|&i| pairs.y[i]).collect())
    };
    let (tx, ty) = take(&order[..n_train]);
    let (vx, vy) = take(&order[n_train..n_train + n_val]);
    let (sx, sy) = take(&order[n_train + n_val..]);

    let mut net = Mlp::new(&MODEL_DIMS, cfg.seed ^ 0x77);
    let history = net::train(&mut net, &tx, &ty, &vx, &vy, &cfg.train);

    let test_probs = net.predict(&sx);
    let metrics = TestMetrics {
        accuracy: metrics::accuracy(&test_probs, &sy, 0.5),
        auc: metrics::auc(&test_probs, &sy),
        pairs: sy.len(),
    };
    (Detector { net, norm, threshold: cfg.threshold }, history, metrics)
}

impl Detector {
    /// Similarity probability of one pair.
    pub fn similarity(&self, a: &StaticFeatures, b: &StaticFeatures) -> f32 {
        let input = self.norm.pair_input(a, b);
        let x = Matrix::from_vec(1, input.len(), input);
        self.net.predict(&x)[0]
    }

    /// Similarity of a reference against many targets (batched forward
    /// pass — the "seconds per library" static stage).
    pub fn batch_similarity(&self, reference: &StaticFeatures, targets: &[StaticFeatures]) -> Vec<f32> {
        if targets.is_empty() {
            return Vec::new();
        }
        let ref_norm = self.norm.apply(reference);
        let mut x = Matrix::zeros(targets.len(), ref_norm.len() * 2);
        for (r, t) in targets.iter().enumerate() {
            let row = x.row_mut(r);
            row[..ref_norm.len()].copy_from_slice(&ref_norm);
            row[ref_norm.len()..].copy_from_slice(&self.norm.apply(t));
        }
        self.net.predict(&x)
    }

    /// Classify many arbitrary feature pairs in one forward pass: all 96-wide
    /// pair inputs are packed into a single `(pairs, 96)` matrix, so each
    /// layer runs one GEMM for the whole batch instead of one per pair.
    /// Probabilities match per-pair [`Detector::similarity`] exactly (the
    /// forward pass is row-independent).
    pub fn classify_batch(&self, pairs: &[(&StaticFeatures, &StaticFeatures)]) -> Vec<f32> {
        if pairs.is_empty() {
            return Vec::new();
        }
        let mut x = Matrix::zeros(pairs.len(), self.net.input_dim());
        for (r, (a, b)) in pairs.iter().enumerate() {
            x.row_mut(r).copy_from_slice(&self.norm.pair_input(a, b));
        }
        self.net.predict(&x)
    }

    /// Classify the full cross product `references × targets` in one
    /// forward pass. Row `i * targets.len() + j` holds the score of
    /// `(references[i], targets[j])` — the same layout as
    /// [`Detector::classify_batch`] over the references-outer,
    /// targets-inner pair list, equal within `1e-6`.
    ///
    /// Two structural savings over the pairwise path: each feature vector
    /// is normalized exactly once (not once per pair), and the first
    /// dense layer is factorized through the pair structure — for input
    /// `[rn_i, tn_j]`, `x·W₁ = rn_i·W₁ᵗᵒᵖ + tn_j·W₁ᵇᵒᵗ`, so the layer
    /// costs one small GEMM per *side* plus an O(pairs·width) combine
    /// instead of a GEMM over every pair. The two partial sums are added
    /// per element (instead of one long ascending chain), which is why
    /// scores match the pairwise path to tolerance rather than bitwise.
    pub fn classify_product(
        &self,
        references: &[StaticFeatures],
        targets: &[StaticFeatures],
    ) -> Vec<f32> {
        if references.is_empty() || targets.is_empty() {
            return Vec::new();
        }
        let half = self.net.input_dim() / 2;
        let (w1, b1) = self.net.layer_params(0);
        let n1 = w1.cols();
        let relu = self.net.num_layers() > 1;
        let rn = Matrix::from_vec(
            references.len(),
            half,
            references.iter().flat_map(|r| self.norm.apply(r)).collect(),
        );
        let tn = Matrix::from_vec(
            targets.len(),
            half,
            targets.iter().flat_map(|t| self.norm.apply(t)).collect(),
        );
        let w_top = Matrix::from_fn(half, n1, |r, c| w1.get(r, c));
        let w_bot = Matrix::from_fn(half, n1, |r, c| w1.get(r + half, c));
        let rpart = rn.matmul(&w_top);
        let tpart = tn.matmul(&w_bot);
        let mut h = Matrix::zeros(references.len() * targets.len(), n1);
        for i in 0..references.len() {
            let rrow = rpart.row(i);
            for j in 0..targets.len() {
                let trow = tpart.row(j);
                let out = h.row_mut(i * targets.len() + j);
                for (((o, &rv), &tv), &bv) in out.iter_mut().zip(rrow).zip(trow).zip(b1) {
                    let z = rv + tv + bv;
                    *o = if relu { z.max(0.0) } else { z };
                }
            }
        }
        self.net.predict_from(1, h)
    }

    /// Classify an explicit sparse list of (reference, target) index pairs
    /// through the same normalized-once factorization as
    /// [`Detector::classify_product`]: both sides are normalized and
    /// pushed through their half of the first dense layer once, then only
    /// the selected rows are gathered and combined. `scores[p]` is the
    /// probability of pair `pairs[p] = (reference_index, target_index)`.
    ///
    /// Scores are bitwise-identical to the corresponding rows of
    /// [`Detector::classify_product`] — the combine applies the same
    /// per-element `rv + tv + bias` and the downstream layers are
    /// row-independent — which is what makes indexed retrieval at full K
    /// exactly reproduce the all-pairs scan.
    ///
    /// # Panics
    /// Panics if a pair indexes out of `references`/`targets` range.
    pub fn classify_pairs(
        &self,
        references: &[StaticFeatures],
        targets: &[StaticFeatures],
        pairs: &[(u32, u32)],
    ) -> Vec<f32> {
        if pairs.is_empty() {
            return Vec::new();
        }
        let half = self.net.input_dim() / 2;
        let (w1, b1) = self.net.layer_params(0);
        let n1 = w1.cols();
        let relu = self.net.num_layers() > 1;
        // Project only the rows the pair list actually touches — the
        // point of sparse classification is staying sub-linear in the
        // reference DB, so the first-layer projection must not run over
        // every reference. A projected row depends only on its own
        // normalized input, so gathering keeps rows bitwise-identical.
        let (ref_rows, ref_map) = gather_used(pairs.iter().map(|&(r, _)| r), references.len());
        let (tgt_rows, tgt_map) = gather_used(pairs.iter().map(|&(_, t)| t), targets.len());
        let rn = Matrix::from_vec(
            ref_rows.len(),
            half,
            ref_rows.iter().flat_map(|&r| self.norm.apply(&references[r as usize])).collect(),
        );
        let tn = Matrix::from_vec(
            tgt_rows.len(),
            half,
            tgt_rows.iter().flat_map(|&t| self.norm.apply(&targets[t as usize])).collect(),
        );
        let w_top = Matrix::from_fn(half, n1, |r, c| w1.get(r, c));
        let w_bot = Matrix::from_fn(half, n1, |r, c| w1.get(r + half, c));
        let rpart = rn.matmul(&w_top);
        let tpart = tn.matmul(&w_bot);
        let remapped: Vec<(u32, u32)> =
            pairs.iter().map(|&(r, t)| (ref_map[r as usize], tgt_map[t as usize])).collect();
        let h = Matrix::combine_pairs(&rpart, &tpart, &remapped, b1, relu);
        self.net.predict_from(1, h)
    }
}

/// Distinct indices drawn from `it` in first-appearance order, plus the
/// dense remap table (`map[original] = packed row`, `u32::MAX` = unused).
fn gather_used(it: impl Iterator<Item = u32>, len: usize) -> (Vec<u32>, Vec<u32>) {
    let mut map = vec![u32::MAX; len];
    let mut rows = Vec::new();
    for i in it {
        let slot = &mut map[i as usize];
        if *slot == u32::MAX {
            *slot = rows.len() as u32;
            rows.push(i);
        }
    }
    (rows, map)
}

#[cfg(test)]
mod tests {
    use super::*;
    use corpus::dataset1::Dataset1Config;

    fn tiny_dataset() -> Dataset1 {
        corpus::build_dataset1(&Dataset1Config {
            num_libraries: 6,
            min_functions: 5,
            max_functions: 7,
            seed: 21,
            include_catalog: false,
        })
    }

    #[test]
    fn pair_sampling_is_balanced() {
        let ds = tiny_dataset();
        let cfg = DetectorConfig { pairs_per_function: 2, ..DetectorConfig::default() };
        let mut corpus = Vec::new();
        for v in &ds.variants {
            corpus.extend(crate::features::extract_all(&v.binary).unwrap());
        }
        let norm = Normalizer::fit(&corpus);
        let pairs = sample_pairs(&ds, &cfg, &norm);
        let pos = pairs.y.iter().filter(|y| **y == 1.0).count();
        let neg = pairs.y.len() - pos;
        assert_eq!(pos, neg, "balanced pos/neg");
        assert!(pairs.y.len() > 50);
        assert_eq!(pairs.x.cols(), 96);
    }

    #[test]
    fn training_learns_cross_platform_similarity() {
        let ds = tiny_dataset();
        let cfg = DetectorConfig {
            pairs_per_function: 6,
            train: TrainConfig { epochs: 20, batch: 64, lr: 2e-3, seed: 3, ..Default::default() },
            ..DetectorConfig::default()
        };
        let (det, history, metrics) = train(&ds, &cfg);
        assert_eq!(history.epochs.len(), cfg.train.epochs);
        assert!(
            metrics.accuracy > 0.8,
            "even a tiny corpus should separate reasonably, got {}",
            metrics.accuracy
        );
        assert!(metrics.auc > 0.85, "AUC {}", metrics.auc);

        // Spot check: variant pair of the same function scores high.
        let v0 = &ds.variants[0];
        let v1 = ds.variants_of(0).nth(3).unwrap();
        let f0 = crate::features::extract_all(&v0.binary).unwrap();
        let f1 = crate::features::extract_all(&v1.binary).unwrap();
        let same = det.similarity(&f0[0], &f1[0]);
        let diff = det.similarity(&f0[0], &f1[3]);
        assert!(same > diff, "same-source {same} vs different {diff}");
    }

    #[test]
    fn batch_similarity_matches_single() {
        let ds = tiny_dataset();
        let cfg = DetectorConfig {
            pairs_per_function: 2,
            train: TrainConfig { epochs: 20, batch: 64, lr: 2e-3, seed: 3, ..Default::default() },
            ..DetectorConfig::default()
        };
        let (det, _, _) = train(&ds, &cfg);
        let fs = crate::features::extract_all(&ds.variants[0].binary).unwrap();
        let batch = det.batch_similarity(&fs[0], &fs[1..4]);
        for (i, b) in batch.iter().enumerate() {
            let single = det.similarity(&fs[0], &fs[1 + i]);
            assert!((b - single).abs() < 1e-6);
        }
    }

    #[test]
    fn classify_batch_matches_per_pair_similarity() {
        let ds = tiny_dataset();
        let cfg = DetectorConfig {
            pairs_per_function: 2,
            train: TrainConfig { epochs: 20, batch: 64, lr: 2e-3, seed: 3, ..Default::default() },
            ..DetectorConfig::default()
        };
        let (det, _, _) = train(&ds, &cfg);
        let fs = crate::features::extract_all(&ds.variants[0].binary).unwrap();
        let gs = crate::features::extract_all(&ds.variants[1].binary).unwrap();
        // Arbitrary cross pairs, not one-reference-many-targets.
        let pairs: Vec<(&StaticFeatures, &StaticFeatures)> =
            fs.iter().flat_map(|a| gs.iter().map(move |b| (a, b))).collect();
        let batch = det.classify_batch(&pairs);
        assert_eq!(batch.len(), pairs.len());
        for (p, (a, b)) in batch.iter().zip(&pairs) {
            assert!((p - det.similarity(a, b)).abs() < 1e-6);
        }
        assert!(det.classify_batch(&[]).is_empty());
    }

    #[test]
    fn classify_product_matches_classify_batch() {
        let ds = tiny_dataset();
        let cfg = DetectorConfig {
            pairs_per_function: 2,
            train: TrainConfig { epochs: 20, batch: 64, lr: 2e-3, seed: 3, ..Default::default() },
            ..DetectorConfig::default()
        };
        let (det, _, _) = train(&ds, &cfg);
        let refs = crate::features::extract_all(&ds.variants[0].binary).unwrap();
        let targets = crate::features::extract_all(&ds.variants[1].binary).unwrap();
        let pairs: Vec<(&StaticFeatures, &StaticFeatures)> =
            refs.iter().flat_map(|a| targets.iter().map(move |b| (a, b))).collect();
        // The factorized first layer splits each pair's reduction into a
        // reference partial plus a target partial, so scores agree with
        // the pairwise path to tolerance rather than bitwise.
        let product = det.classify_product(&refs, &targets);
        let batch = det.classify_batch(&pairs);
        assert_eq!(product.len(), batch.len());
        for (p, q) in product.iter().zip(&batch) {
            assert!((p - q).abs() <= 1e-6, "{p} vs {q}");
        }
        assert!(det.classify_product(&[], &targets).is_empty());
        assert!(det.classify_product(&refs, &[]).is_empty());
    }

    #[test]
    fn classify_pairs_is_bitwise_identical_to_product_rows() {
        let ds = tiny_dataset();
        let cfg = DetectorConfig {
            pairs_per_function: 2,
            train: TrainConfig { epochs: 20, batch: 64, lr: 2e-3, seed: 3, ..Default::default() },
            ..DetectorConfig::default()
        };
        let (det, _, _) = train(&ds, &cfg);
        let refs = crate::features::extract_all(&ds.variants[0].binary).unwrap();
        let targets = crate::features::extract_all(&ds.variants[1].binary).unwrap();
        let product = det.classify_product(&refs, &targets);

        // Full cross product as an explicit pair list: every score must
        // match its product row *bitwise* (the downstream layers are
        // row-independent).
        let all: Vec<(u32, u32)> = (0..refs.len() as u32)
            .flat_map(|i| (0..targets.len() as u32).map(move |j| (i, j)))
            .collect();
        let full = det.classify_pairs(&refs, &targets, &all);
        assert_eq!(full.len(), product.len());
        for (p, (&(i, j), s)) in all.iter().zip(&full).enumerate() {
            let expect = product[i as usize * targets.len() + j as usize];
            assert_eq!(s.to_bits(), expect.to_bits(), "pair {p} = ({i},{j})");
        }

        // An arbitrary sparse subset (every third pair, reversed) too.
        let sparse: Vec<(u32, u32)> = all.iter().rev().step_by(3).copied().collect();
        let sparse_scores = det.classify_pairs(&refs, &targets, &sparse);
        for (&(i, j), s) in sparse.iter().zip(&sparse_scores) {
            let expect = product[i as usize * targets.len() + j as usize];
            assert_eq!(s.to_bits(), expect.to_bits(), "sparse pair ({i},{j})");
        }

        assert!(det.classify_pairs(&refs, &targets, &[]).is_empty());
    }

    #[test]
    fn model_has_six_layers_and_96_inputs() {
        let net = Mlp::new(&MODEL_DIMS, 0);
        assert_eq!(net.num_layers(), 6);
        assert_eq!(net.input_dim(), 96);
    }
}
