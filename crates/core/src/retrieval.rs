//! Sub-linear candidate retrieval: quantized feature signatures with
//! MinHash/LSH banding in front of the NN scan.
//!
//! The all-pairs static scan costs O(targets × references); a realistic
//! CVE database (thousands of reference functions) drowns the batched
//! GEMM. This module provides the cheap pre-filter: each function's 48
//! static features are squashed (the normalizer's signed `ln(1+|x|)`
//! transform), scaled and rounded into a compact [`FunctionSignature`],
//! and MinHash-banded so near-identical functions collide in at least one
//! LSH bucket. [`SignatureSet::candidates`] retrieves the top-K nearest
//! references per target by cosine distance over the quantized vectors,
//! unions in every LSH band collision as a rescue tier, and only those
//! pairs reach the classifier.
//!
//! Everything here is a pure function of the feature vector — the same
//! features always produce the same signature, which is what lets
//! scanhub's persistent index and on-the-fly computation interoperate.

use crate::features::{self, StaticFeatures, NUM_STATIC_FEATURES};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// MinHash functions per signature.
pub const SIG_HASHES: usize = 16;
/// LSH bands (each band hashes [`SIG_ROWS_PER_BAND`] MinHash rows).
pub const SIG_BANDS: usize = 4;
/// MinHash rows combined into one band key. Four rows per band keeps the
/// per-band collision probability at J⁴ (J = token-set Jaccard), tight
/// enough that unrelated functions — which share many zero-valued feature
/// cells, inflating their baseline Jaccard — rarely collide, while
/// near-duplicates (J → 1) still collide in some band with high
/// probability.
pub const SIG_ROWS_PER_BAND: usize = 4;
/// Default candidate count per target for `--retrieval topk`.
pub const DEFAULT_TOP_K: usize = 16;
/// Quantization scale: squashed features are multiplied by this before
/// rounding to `i16`. The squash transform keeps magnitudes small (ln of
/// 1+|x|), so a scale of 8 preserves ~3 fractional bits.
pub const QUANT_SCALE: f64 = 8.0;
/// Token grid width: quantized values are bucketed into cells of this
/// many quantization steps for MinHash tokens. Each feature emits its
/// cell and the next cell up, so values near a cell edge still share a
/// token with close neighbors across the boundary.
pub const TOKEN_GRID: i32 = 6;

/// The splitmix64 finalizer: a cheap, well-mixed 64-bit permutation used
/// for MinHash token hashing and band keys.
fn mix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// A compact retrieval signature of one function: the 48 static features
/// squashed, scaled by [`QUANT_SCALE`] and rounded to `i16`, plus
/// [`SIG_HASHES`] MinHash values over overlapping-window tokens of the
/// quantized vector.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct FunctionSignature {
    /// Quantized (squashed × scale, rounded) feature vector.
    pub q: [i16; NUM_STATIC_FEATURES],
    /// MinHash values, one per hash function.
    pub minhash: [u32; SIG_HASHES],
}

impl FunctionSignature {
    /// Compute the signature of one feature vector. Pure: the same
    /// features always produce the same signature, so signatures computed
    /// on the fly and signatures served from a persistent index agree.
    pub fn of(f: &StaticFeatures) -> FunctionSignature {
        let mut q = [0i16; NUM_STATIC_FEATURES];
        for (qi, &x) in q.iter_mut().zip(f.as_slice()) {
            let scaled = (features::squash(x) * QUANT_SCALE).round();
            *qi = scaled.clamp(f64::from(i16::MIN), f64::from(i16::MAX)) as i16;
        }
        let mut minhash = [u32::MAX; SIG_HASHES];
        for (i, &qi) in q.iter().enumerate() {
            let cell = i32::from(qi).div_euclid(TOKEN_GRID);
            // Overlapping windows: emit this cell and the next one up, so
            // neighbors on opposite sides of a cell edge still share a token.
            for c in [cell, cell + 1] {
                let token = ((i as u64) << 32) ^ u64::from(c as u32);
                // Kirsch–Mitzenmacher: two independent hashes of the token
                // generate all SIG_HASHES MinHash functions as h1 + i·h2 —
                // statistically equivalent to independent hashes for
                // min-wise selection at 2 mixes per token instead of
                // SIG_HASHES.
                let h1 = mix64(token);
                let h2 = mix64(token ^ 0xA076_1D64_78BD_642F);
                for (h, slot) in minhash.iter_mut().enumerate() {
                    let v = h1.wrapping_add((h as u64).wrapping_mul(h2)) as u32;
                    if v < *slot {
                        *slot = v;
                    }
                }
            }
        }
        FunctionSignature { q, minhash }
    }

    /// L1 distance between the quantized vectors.
    pub fn l1(&self, other: &FunctionSignature) -> u32 {
        self.q
            .iter()
            .zip(&other.q)
            .map(|(&a, &b)| (i32::from(a) - i32::from(b)).unsigned_abs())
            .sum()
    }

    /// Cosine distance between the quantized vectors, in [0, 2]. Cross-ISA
    /// and cross-optimization builds of one function inflate feature
    /// magnitudes roughly proportionally (more instructions of every
    /// kind), which cosine is invariant to and absolute distances are not
    /// — this is the retrieval ranking metric. The accumulation is exact
    /// integer arithmetic, so the distance is fully deterministic.
    pub fn cos_dist(&self, other: &FunctionSignature) -> f64 {
        1.0 - self.dot(other) as f64 / (self.norm() * other.norm()).max(1e-12)
    }

    /// Integer dot product of the quantized vectors (exact).
    fn dot(&self, other: &FunctionSignature) -> i64 {
        self.q.iter().zip(&other.q).map(|(&a, &b)| i64::from(a) * i64::from(b)).sum()
    }

    /// Euclidean norm of the quantized vector (`sqrt` of the exact
    /// integer sum of squares).
    fn norm(&self) -> f64 {
        (self.q.iter().map(|&a| i64::from(a) * i64::from(a)).sum::<i64>() as f64).sqrt()
    }
}

/// Order-sensitive 64-bit fingerprint of a feature set — the memo key
/// for reusing a built [`SignatureSet`] across scans against the same
/// reference DB. A multiply-rotate fold over the raw `f64` bits plus a
/// final mix: ~1ns per feature word, negligible next to even a single
/// NN pair classification.
pub fn feature_fingerprint(feats: &[StaticFeatures]) -> u64 {
    let mut h = 0x517c_c1b7_2722_0a95u64 ^ feats.len() as u64;
    for f in feats {
        for &x in f.as_slice() {
            h = (h ^ x.to_bits()).wrapping_mul(0x9E37_79B9_7F4A_7C15).rotate_left(23);
        }
    }
    mix64(h)
}

/// LSH bucket key of one band: the band's MinHash rows folded into a u64.
fn band_key(minhash: &[u32; SIG_HASHES], band: usize) -> u64 {
    let mut key = 0xcbf2_9ce4_8422_2325u64;
    for r in 0..SIG_ROWS_PER_BAND {
        key = mix64(key ^ u64::from(minhash[band * SIG_ROWS_PER_BAND + r]));
    }
    key
}

/// An in-memory retrieval structure over a set of signatures (the
/// reference side of a scan): [`SIG_BANDS`] hash tables of LSH buckets
/// plus the signatures themselves for cosine ranking.
pub struct SignatureSet {
    sigs: Vec<FunctionSignature>,
    /// Precomputed quantized-vector norms, one per signature — hoists the
    /// `sqrt(Σq²)` out of the per-(probe, reference) ranking loop.
    norms: Vec<f64>,
    bands: Vec<HashMap<u64, Vec<u32>>>,
}

impl SignatureSet {
    /// Index a set of signatures (position in the slice = retrieval index).
    pub fn build(sigs: &[FunctionSignature]) -> SignatureSet {
        let mut bands: Vec<HashMap<u64, Vec<u32>>> = vec![HashMap::new(); SIG_BANDS];
        for (i, sig) in sigs.iter().enumerate() {
            for (band, buckets) in bands.iter_mut().enumerate() {
                buckets.entry(band_key(&sig.minhash, band)).or_default().push(i as u32);
            }
        }
        let norms = sigs.iter().map(FunctionSignature::norm).collect();
        SignatureSet { sigs: sigs.to_vec(), norms, bands }
    }

    /// Number of indexed signatures.
    pub fn len(&self) -> usize {
        self.sigs.len()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.sigs.is_empty()
    }

    /// The candidate set for `probe`, ascending by index: the `k` nearest
    /// indexed signatures by [`FunctionSignature::cos_dist`], UNIONED with
    /// every signature sharing at least one LSH band with the probe. The
    /// two tiers fail differently — cosine ranking absorbs proportional
    /// cross-platform feature inflation, banding catches sparse
    /// token-overlap matches that quantized geometry misranks — so their
    /// union retrieves more of the classifier's true argmaxes than either
    /// alone. At least `min(k, len)` candidates are always returned, and
    /// `k >= len` short-circuits to the identity (the exact scan's pair
    /// set). Distances accumulate in exact integer arithmetic with
    /// ascending-index tie-breaks, so the result is fully deterministic.
    ///
    /// Ranking every signature costs ~48 multiply-adds per reference —
    /// three orders of magnitude below one NN pair classification — so
    /// selection stays negligible while the expensive stage shrinks from
    /// O(refs) to O(k) per target.
    pub fn candidates(&self, probe: &FunctionSignature, k: usize) -> Vec<u32> {
        if self.sigs.is_empty() || k == 0 {
            return Vec::new();
        }
        if k >= self.sigs.len() {
            return (0..self.sigs.len() as u32).collect();
        }
        // Same arithmetic as [`FunctionSignature::cos_dist`], with the
        // probe norm computed once and reference norms precomputed at
        // build time — the ranking loop is one 48-element integer dot
        // product per reference.
        let pn = probe.norm();
        let dists: Vec<f64> = self
            .sigs
            .iter()
            .zip(&self.norms)
            .map(|(s, &n)| 1.0 - probe.dot(s) as f64 / (pn * n).max(1e-12))
            .collect();
        let mut ranked: Vec<u32> = (0..self.sigs.len() as u32).collect();
        ranked.sort_unstable_by(|&a, &b| {
            dists[a as usize]
                .partial_cmp(&dists[b as usize])
                .expect("cosine distances are never NaN")
                .then(a.cmp(&b))
        });
        let mut out = ranked;
        out.truncate(k);
        for (band, buckets) in self.bands.iter().enumerate() {
            if let Some(hits) = buckets.get(&band_key(&probe.minhash, band)) {
                // Frequent-bucket cut: a band key shared by more than k
                // references carries no ranking signal (on databases
                // dense with near-duplicates it would degrade retrieval
                // back to all-pairs); the cosine tier already ranks
                // whatever such a bucket holds.
                if hits.len() <= k {
                    out.extend_from_slice(hits);
                }
            }
        }
        out.sort_unstable();
        out.dedup();
        out
    }
}

/// How the static scan selects (reference, target) pairs to classify.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum Retrieval {
    /// All-pairs: every target is scored against every reference (the
    /// exact baseline).
    #[default]
    Exact,
    /// Signature retrieval: each target is scored only against its `k`
    /// nearest references by quantized-signature distance.
    TopK {
        /// Candidate references per target.
        k: usize,
    },
}

impl std::fmt::Display for Retrieval {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Retrieval::Exact => f.write_str("exact"),
            Retrieval::TopK { k } => write!(f, "topk:{k}"),
        }
    }
}

impl std::str::FromStr for Retrieval {
    type Err = String;

    fn from_str(s: &str) -> Result<Retrieval, String> {
        match s {
            "exact" => Ok(Retrieval::Exact),
            "topk" => Ok(Retrieval::TopK { k: DEFAULT_TOP_K }),
            _ => match s.strip_prefix("topk:") {
                Some(n) => {
                    let k: usize =
                        n.parse().map_err(|_| format!("invalid top-K count {n:?}"))?;
                    if k == 0 {
                        return Err("top-K count must be >= 1".to_string());
                    }
                    Ok(Retrieval::TopK { k })
                }
                None => Err(format!("unknown retrieval mode {s:?} (expected exact | topk | topk:K)")),
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn feat(seed: u64) -> StaticFeatures {
        let mut v = [0.0f64; NUM_STATIC_FEATURES];
        let mut x = seed;
        for (i, slot) in v.iter_mut().enumerate() {
            x = mix64(x ^ i as u64);
            // Mixed magnitudes, signs and zeros, like real features.
            *slot = match x % 5 {
                0 => 0.0,
                1 => (x % 1000) as f64,
                2 => -((x % 50) as f64),
                3 => (x % 7) as f64 / 3.0,
                _ => (x % 100_000) as f64,
            };
        }
        StaticFeatures(v)
    }

    #[test]
    fn signature_is_deterministic_and_serializable() {
        let f = feat(42);
        let a = FunctionSignature::of(&f);
        let b = FunctionSignature::of(&f);
        assert_eq!(a, b);
        let json = serde_json::to_string(&a).unwrap();
        let back: FunctionSignature = serde_json::from_str(&json).unwrap();
        assert_eq!(a, back);
    }

    #[test]
    fn identical_functions_always_collide() {
        // An identical feature vector has an identical signature: every
        // band matches and the cosine distance is 0, so an exact match is
        // always retrieved even at k = 1.
        let sigs: Vec<FunctionSignature> = (0..50).map(|s| FunctionSignature::of(&feat(s))).collect();
        let set = SignatureSet::build(&sigs);
        for (i, sig) in sigs.iter().enumerate() {
            let got = set.candidates(sig, 1);
            assert!(
                got.iter().any(|&c| sig.l1(&sigs[c as usize]) == 0),
                "probe {i} must retrieve an exact match, got {got:?}"
            );
        }
    }

    #[test]
    fn k_at_least_len_returns_every_index() {
        let sigs: Vec<FunctionSignature> = (0..9).map(|s| FunctionSignature::of(&feat(s))).collect();
        let set = SignatureSet::build(&sigs);
        let probe = FunctionSignature::of(&feat(999));
        for k in [9, 10, 100] {
            assert_eq!(set.candidates(&probe, k), (0..9).collect::<Vec<u32>>());
        }
    }

    #[test]
    fn candidates_sorted_ascending_and_at_least_k() {
        let sigs: Vec<FunctionSignature> = (0..40).map(|s| FunctionSignature::of(&feat(s))).collect();
        let set = SignatureSet::build(&sigs);
        for probe_seed in 0..40 {
            let probe = FunctionSignature::of(&feat(probe_seed));
            let got = set.candidates(&probe, 5);
            // Top-5 by cosine plus the probe's band collisions (at minimum
            // its own identical signature).
            assert!(got.len() >= 5 && got.len() <= 40, "k <= |candidates| <= len: {got:?}");
            assert!(got.windows(2).all(|w| w[0] < w[1]), "ascending, no duplicates: {got:?}");
            assert!(got.contains(&(probe_seed as u32)), "exact match retrieved");
        }
    }

    #[test]
    fn empty_set_and_zero_k_are_well_formed() {
        let set = SignatureSet::build(&[]);
        assert!(set.is_empty());
        assert_eq!(set.len(), 0);
        let probe = FunctionSignature::of(&feat(1));
        assert!(set.candidates(&probe, 4).is_empty());
        let nonempty = SignatureSet::build(std::slice::from_ref(&probe));
        assert!(nonempty.candidates(&probe, 0).is_empty());
    }

    #[test]
    fn near_neighbors_outrank_far_ones() {
        // A lightly perturbed copy of f must rank above unrelated vectors.
        let base = feat(7);
        let mut near_v = base.0;
        near_v[3] += 0.05;
        near_v[17] += 0.1;
        let near = StaticFeatures(near_v);
        let mut sigs: Vec<FunctionSignature> =
            (100..120).map(|s| FunctionSignature::of(&feat(s))).collect();
        sigs.push(FunctionSignature::of(&near)); // index 20
        let set = SignatureSet::build(&sigs);
        let got = set.candidates(&FunctionSignature::of(&base), 1);
        assert!(got.contains(&20), "the near neighbor must be retrieved at k = 1, got {got:?}");
    }

    #[test]
    fn fingerprint_distinguishes_content_order_and_length() {
        let a = vec![feat(1), feat(2), feat(3)];
        let b = vec![feat(1), feat(2), feat(3)];
        assert_eq!(feature_fingerprint(&a), feature_fingerprint(&b), "pure function of content");
        let reordered = vec![feat(2), feat(1), feat(3)];
        assert_ne!(feature_fingerprint(&a), feature_fingerprint(&reordered), "order-sensitive");
        assert_ne!(feature_fingerprint(&a), feature_fingerprint(&a[..2]), "length-sensitive");
        assert_ne!(feature_fingerprint(&[]), feature_fingerprint(&a));
    }

    #[test]
    fn retrieval_mode_parses_and_displays() {
        assert_eq!("exact".parse::<Retrieval>().unwrap(), Retrieval::Exact);
        assert_eq!("topk".parse::<Retrieval>().unwrap(), Retrieval::TopK { k: DEFAULT_TOP_K });
        assert_eq!("topk:3".parse::<Retrieval>().unwrap(), Retrieval::TopK { k: 3 });
        assert!("topk:0".parse::<Retrieval>().is_err());
        assert!("topk:x".parse::<Retrieval>().is_err());
        assert!("fuzzy".parse::<Retrieval>().is_err());
        assert_eq!(Retrieval::Exact.to_string(), "exact");
        assert_eq!(Retrieval::TopK { k: 8 }.to_string(), "topk:8");
        assert_eq!(Retrieval::default(), Retrieval::Exact);
    }
}
