//! The differential engine (§III-D): given the vulnerable reference `f_v`,
//! the patched reference `f_p`, and the located target `f_t`, decide
//! whether the target carries the patch.
//!
//! Three evidence channels, as in the paper:
//!
//! 1. **static features** — the 48 Table I features of all three versions;
//! 2. **dynamic semantic similarity** — `sim(f_v, f_t)` vs `sim(f_p, f_t)`
//!    on shared execution environments;
//! 3. **differential signatures** — CFG topology plus semantic information
//!    (library-call sets, string references, parameters, local sizes; the
//!    paper's `j___aeabi_memmove` / "if condition" examples).
//!
//! When every channel is inconclusive (|margin| below the tie threshold)
//! the verdict defaults to *patched* — this documented tie-break is what
//! reproduces the paper's single Table VIII miss, CVE-2018-9470, whose
//! patch changes one integer constant and is invisible to all three
//! channels.

use crate::dynsource::{DynProfileSource, EnvSet};
use crate::error::ScanError;
use crate::features::StaticFeatures;
use crate::pipeline::{live_profiling, DirectExtraction, FeatureSource, Patchecko};
use crate::similarity;
use corpus::vulndb::DbEntry;
use fwbin::format::Binary;
use fwbin::isa::Inst;
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;
use std::sync::Arc;
use vm::loader::LoadedBinary;

/// Differential-engine tuning.
#[derive(Debug, Clone)]
pub struct DifferentialConfig {
    /// Margin below which the evidence is considered inconclusive.
    pub tie_epsilon: f64,
    /// Enable the exploit channel: replay the catalog entry's
    /// proof-of-concept input (when one is public) against all three
    /// functions and vote on behavioural match. Off by default — the
    /// paper's evaluation does not use exploits; its §V-D limitations
    /// discussion proposes exactly this to close the CVE-2018-9470 gap
    /// ("a solution would be to add more fine-grained features from known
    /// vulnerability exploits"). See the `ablation_exploit_channel`
    /// binary.
    pub use_exploit_channel: bool,
}

impl Default for DifferentialConfig {
    fn default() -> DifferentialConfig {
        DifferentialConfig { tie_epsilon: 0.02, use_exploit_channel: false }
    }
}

/// The signature comparison detail (for reports).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SignatureDiff {
    /// Library routines called by the vulnerable reference.
    pub vuln_imports: Vec<String>,
    /// Library routines called by the patched reference.
    pub patched_imports: Vec<String>,
    /// Library routines called by the target.
    pub target_imports: Vec<String>,
    /// Signature components that matched the vulnerable side.
    pub votes_vulnerable: u32,
    /// Signature components that matched the patched side.
    pub votes_patched: u32,
}

/// The engine's decision with its full evidence trail.
///
/// Serialization is handwritten (not derived) because degraded verdicts
/// carry `f64::INFINITY` dynamic distances and JSON has no ±infinity:
/// non-finite distances map through `null` on the wire and back, so a
/// degraded verdict survives daemon transport losslessly.
#[derive(Debug, Clone)]
pub struct PatchVerdict {
    /// CVE under test.
    pub cve: String,
    /// Final decision: `true` = the target carries the patch.
    pub patched: bool,
    /// Dynamic similarity distance to the vulnerable reference
    /// (Equation 2; the paper's case study reports 34.7 here).
    pub dyn_dist_vulnerable: f64,
    /// Dynamic distance to the patched reference (the case study's 65.6).
    pub dyn_dist_patched: f64,
    /// Static (normalized L2) distance to the vulnerable reference.
    pub static_dist_vulnerable: f64,
    /// Static distance to the patched reference.
    pub static_dist_patched: f64,
    /// Signature comparison.
    pub signature: SignatureDiff,
    /// Combined decision margin in [-1, 1]; positive favors patched.
    pub margin: f64,
    /// Whether the tie-break rule decided (inconclusive evidence).
    pub tie_break: bool,
    /// Exploit-channel vote, when the channel ran: +1 the target behaves
    /// like the patched build on the PoC, -1 like the vulnerable build,
    /// 0 inconclusive.
    pub exploit_vote: Option<i32>,
    /// Whether the dynamic channel was unavailable (a reference or the
    /// target failed to load) and the verdict rests on the static and
    /// signature channels alone. Degraded verdicts report
    /// `f64::INFINITY` dynamic distances and abstain on the dynamic vote.
    pub degraded: bool,
}

impl Serialize for PatchVerdict {
    fn to_value(&self) -> serde::value::Value {
        use serde::value::Value;
        // Non-finite (degraded) dynamic distances become JSON null.
        let dist = |v: f64| if v.is_finite() { Value::Float(v) } else { Value::Null };
        Value::Map(vec![
            ("cve".into(), self.cve.to_value()),
            ("patched".into(), Value::Bool(self.patched)),
            ("dyn_dist_vulnerable".into(), dist(self.dyn_dist_vulnerable)),
            ("dyn_dist_patched".into(), dist(self.dyn_dist_patched)),
            ("static_dist_vulnerable".into(), Value::Float(self.static_dist_vulnerable)),
            ("static_dist_patched".into(), Value::Float(self.static_dist_patched)),
            ("signature".into(), self.signature.to_value()),
            ("margin".into(), Value::Float(self.margin)),
            ("tie_break".into(), Value::Bool(self.tie_break)),
            ("exploit_vote".into(), self.exploit_vote.to_value()),
            ("degraded".into(), Value::Bool(self.degraded)),
        ])
    }
}

impl<'de> Deserialize<'de> for PatchVerdict {
    fn from_value(v: serde::value::Value) -> Result<PatchVerdict, serde::de::DeError> {
        use serde::value::Value;
        let mut map = serde::de::into_map(v)?;
        // A dynamic distance is a number, or null for the degraded
        // (non-finite) case; a missing field also reads as degraded.
        let mut dist = |name: &str| -> Result<f64, serde::de::DeError> {
            match serde::de::opt_field::<Value>(&mut map, name)? {
                None | Some(Value::Null) => Ok(f64::INFINITY),
                Some(v) => v.as_f64().ok_or_else(|| {
                    serde::de::DeError(format!("field `{name}`: expected number or null"))
                }),
            }
        };
        let dyn_dist_vulnerable = dist("dyn_dist_vulnerable")?;
        let dyn_dist_patched = dist("dyn_dist_patched")?;
        Ok(PatchVerdict {
            dyn_dist_vulnerable,
            dyn_dist_patched,
            cve: serde::de::field(&mut map, "cve")?,
            patched: serde::de::field(&mut map, "patched")?,
            static_dist_vulnerable: serde::de::field(&mut map, "static_dist_vulnerable")?,
            static_dist_patched: serde::de::field(&mut map, "static_dist_patched")?,
            signature: serde::de::field(&mut map, "signature")?,
            margin: serde::de::field(&mut map, "margin")?,
            tie_break: serde::de::field(&mut map, "tie_break")?,
            exploit_vote: serde::de::opt_field(&mut map, "exploit_vote")?.flatten(),
            degraded: serde::de::opt_field(&mut map, "degraded")?.unwrap_or(false),
        })
    }
}

/// Names of imported routines called by function `idx` of `bin`.
pub fn import_call_names(bin: &Binary, idx: usize) -> BTreeSet<String> {
    let Ok(code) = bin.decode_function(idx) else {
        return BTreeSet::new();
    };
    code.iter()
        .filter_map(|i| match i {
            Inst::Call { sym } if sym.is_import() => {
                bin.imports.get(sym.index() as usize).cloned()
            }
            _ => None,
        })
        .collect()
}

fn static_distance(norm: &crate::features::Normalizer, a: &StaticFeatures, b: &StaticFeatures) -> f64 {
    norm.apply(a)
        .iter()
        .zip(norm.apply(b))
        .map(|(x, y)| ((x - y) as f64).powi(2))
        .sum::<f64>()
        .sqrt()
}

/// Ratio in [0, 1]: 0 when all weight sits on `a`, 1 when on `b`, 0.5 when
/// equal or both zero.
fn share(a: f64, b: f64) -> f64 {
    if a + b < 1e-12 {
        0.5
    } else {
        a / (a + b)
    }
}

/// Run the differential engine for one located target function.
///
/// `target_idx` is the function (from the pipeline's ranking) inside
/// `target_bin`. Environments are generated from both references and
/// filtered to those all three functions survive, so the three dynamic
/// profiles are comparable.
pub fn detect_patch(
    patchecko: &Patchecko,
    entry: &DbEntry,
    target_bin: &Binary,
    target_idx: usize,
    cfg: &DifferentialConfig,
) -> Result<PatchVerdict, ScanError> {
    detect_patch_with(
        patchecko,
        entry,
        target_bin,
        target_idx,
        cfg,
        &DirectExtraction,
        &live_profiling(),
    )
}

/// [`detect_patch`] with static features served by `source` and dynamic
/// profiles served by `dynsrc`: cached sources let a warm re-audit skip
/// all three static extractions *and* every VM execution here.
///
/// # Errors
/// Propagates static extraction failures from the source. Loader failures
/// on the dynamic side do **not** error: the verdict degrades to the
/// static and signature channels with [`PatchVerdict::degraded`] set.
pub fn detect_patch_with(
    patchecko: &Patchecko,
    entry: &DbEntry,
    target_bin: &Binary,
    target_idx: usize,
    cfg: &DifferentialConfig,
    source: &dyn FeatureSource,
    dynsrc: &Arc<dyn DynProfileSource>,
) -> Result<PatchVerdict, ScanError> {
    let _span = scope::SpanGuard::enter("differential").with_detail(entry.entry.cve.clone());
    let vm_cfg = &patchecko.config.vm;

    // --- static channel ---
    let fv = Patchecko::reference_features_with(entry, crate::pipeline::Basis::Vulnerable, source)?;
    let fp = Patchecko::reference_features_with(entry, crate::pipeline::Basis::Patched, source)?;
    let ft = source.features_one(target_bin, target_idx)?;
    let norm = &patchecko.detector.norm;
    let sv = static_distance(norm, &fv, &ft);
    let sp = static_distance(norm, &fp, &ft);

    // --- dynamic channel (references compiled for the target's platform,
    // as both run on-device in the paper's setup) --- A loader failure on
    // any of the three binaries degrades the verdict to the remaining
    // channels instead of panicking.
    let loaded: Result<(LoadedBinary, LoadedBinary, LoadedBinary), ScanError> = (|| {
        let vref = LoadedBinary::load(entry.reference_for(target_bin.arch, false))
            .map_err(|e| ScanError::load(&entry.entry.library, &e))?;
        let pref = LoadedBinary::load(entry.reference_for(target_bin.arch, true))
            .map_err(|e| ScanError::load(&entry.entry.library, &e))?;
        let target = LoadedBinary::load(target_bin.clone())
            .map_err(|e| ScanError::load(&target_bin.lib_name, &e))?;
        Ok((vref, pref, target))
    })();
    let mut degraded = loaded.is_err();
    let (dv, dp, loaded) = match loaded {
        Ok((vref, pref, target)) => {
            // Env union of both references, then the old in-place `retain`
            // (keep environments all three functions survive) expressed as
            // an ok-bit intersection over full per-env profiles — runs are
            // independent per environment, so subsetting a full profile is
            // bitwise-identical to re-running the subset, and one cached
            // profile per (function, env set) serves every verdict.
            let dyn_channel = (|| -> Result<(f64, f64), ScanError> {
                let fuzz_cfg = &patchecko.config.fuzz;
                let set_v = dynsrc.environments(&vref, fuzz_cfg, vm_cfg)?;
                let set_p = dynsrc.environments(&pref, fuzz_cfg, vm_cfg)?;
                let union: EnvSet = set_v.union(&set_p, vm_cfg);
                let prof_v = dynsrc.profile(&vref, 0, &union, vm_cfg)?;
                let prof_p = dynsrc.profile(&pref, 0, &union, vm_cfg)?;
                let prof_t = dynsrc.profile(&target, target_idx, &union, vm_cfg)?;
                let keep: Vec<usize> = (0..union.len())
                    .filter(|&i| prof_v.ok[i] && prof_p.ok[i] && prof_t.ok[i])
                    .collect();
                let sub = |prof: &crate::dynsource::DynProfile| -> Vec<vm::DynFeatures> {
                    keep.iter().map(|&i| prof.features[i].clone()).collect()
                };
                let p = patchecko.config.minkowski_p;
                let dv = similarity::sim_over_envs(&sub(&prof_v), &sub(&prof_t), p);
                let dp = similarity::sim_over_envs(&sub(&prof_p), &sub(&prof_t), p);
                Ok((dv, dp))
            })();
            match dyn_channel {
                Ok((dv, dp)) => (dv, dp, Some((vref, pref, target))),
                Err(_) => {
                    degraded = true;
                    (f64::INFINITY, f64::INFINITY, Some((vref, pref, target)))
                }
            }
        }
        Err(_) => (f64::INFINITY, f64::INFINITY, None),
    };

    // --- signature channel ---
    let vuln_imports = import_call_names(&entry.vulnerable_bin, 0);
    let patched_imports = import_call_names(&entry.patched_bin, 0);
    let target_imports = import_call_names(target_bin, target_idx);
    let mut votes_v = 0u32;
    let mut votes_p = 0u32;
    let mut vote = |d_v: f64, d_p: f64| {
        if d_v < d_p {
            votes_v += 1;
        } else if d_p < d_v {
            votes_p += 1;
        }
    };
    // Library-call set (the paper's memmove example) — counted only when
    // the references actually disagree.
    if vuln_imports != patched_imports {
        let jac = |a: &BTreeSet<String>, b: &BTreeSet<String>| -> f64 {
            let inter = a.intersection(b).count() as f64;
            let uni = a.union(b).count() as f64;
            if uni == 0.0 {
                0.0
            } else {
                1.0 - inter / uni
            }
        };
        vote(jac(&vuln_imports, &target_imports), jac(&patched_imports, &target_imports));
    }
    // CFG topology: block and edge counts.
    for name in ["num_bb", "num_edge", "cyclomatic_complexity"] {
        let v = fv.by_name(name).unwrap();
        let pch = fp.by_name(name).unwrap();
        let t = ft.by_name(name).unwrap();
        if v != pch {
            vote((v - t).abs(), (pch - t).abs());
        }
    }
    // Semantic info: string refs, constants, locals, calls.
    for name in ["num_string", "num_constant", "size_local", "num_cx"] {
        let v = fv.by_name(name).unwrap();
        let pch = fp.by_name(name).unwrap();
        let t = ft.by_name(name).unwrap();
        if v != pch {
            vote((v - t).abs(), (pch - t).abs());
        }
    }

    // --- optional exploit channel (§V-D future work) ---
    let exploit_vote = match (&loaded, cfg.use_exploit_channel) {
        (Some((vref, pref, target)), true) => entry.entry.poc.as_ref().map(|poc| {
            let env = vm::ExecEnv::for_buffer(poc.clone(), &[]);
            let run = |lb: &LoadedBinary, f: usize| lb.run_any(f, &env, vm_cfg);
            let rv = run(vref, 0);
            let rp = run(pref, 0);
            let rt = run(target, target_idx);
            exploit_behaviour_vote(&rv, &rp, &rt)
        }),
        _ => None,
    };

    // --- combine: channel-majority vote ---
    // Each channel casts +1 (patched), -1 (vulnerable) or abstains when
    // its ratio sits inside the tie band. All three ratios share one
    // orientation: > 0.5 means the target sits far from the vulnerable
    // reference (looks patched). Channel votes rather than a blended mean
    // keep a decisive signature (the paper's `j___aeabi_memmove` example)
    // from being drowned out by noisy dynamic instruction counts.
    // A degraded verdict abstains on the dynamic channel (its infinite
    // distances carry no information).
    let r_dyn = if degraded { 0.5 } else { share(dv, dp) };
    let r_static = share(sv, sp);
    let r_sig = share(votes_p as f64, votes_v as f64);
    let channel = |r: f64| -> i32 {
        if (r - 0.5).abs() <= cfg.tie_epsilon {
            0
        } else if r > 0.5 {
            1
        } else {
            -1
        }
    };
    let mut votes = channel(r_dyn) + channel(r_static) + channel(r_sig);
    let mut n_channels = 3;
    if let Some(ev) = exploit_vote {
        // Exploit behaviour is the most direct evidence: it observes the
        // vulnerability itself, so it carries double weight.
        votes += 2 * ev;
        n_channels += 2;
    }
    let margin = votes as f64 / n_channels as f64;
    let tie_break = votes == 0;
    let patched = if tie_break { true } else { votes > 0 };

    Ok(PatchVerdict {
        cve: entry.entry.cve.clone(),
        patched,
        dyn_dist_vulnerable: dv,
        dyn_dist_patched: dp,
        static_dist_vulnerable: sv,
        static_dist_patched: sp,
        signature: SignatureDiff {
            vuln_imports: vuln_imports.into_iter().collect(),
            patched_imports: patched_imports.into_iter().collect(),
            target_imports: target_imports.into_iter().collect(),
            votes_vulnerable: votes_v,
            votes_patched: votes_p,
        },
        margin,
        tie_break,
        exploit_vote,
        degraded,
    })
}

/// Compare the target's behaviour on the PoC input against both reference
/// builds: -1 when it behaves like the vulnerable build, +1 like the
/// patched build, 0 when indistinguishable.
///
/// Behaviour is compared hierarchically, most to least decisive: outcome
/// class (return vs crash), returned value, then the Minkowski distance of
/// the dynamic feature vectors of the PoC run.
fn exploit_behaviour_vote(
    vuln: &vm::RunResult,
    patched: &vm::RunResult,
    target: &vm::RunResult,
) -> i32 {
    use vm::Outcome;
    let class = |o: &Outcome| matches!(o, Outcome::Returned(_));
    let (cv, cp, ct) = (class(&vuln.outcome), class(&patched.outcome), class(&target.outcome));
    if cv != cp {
        // The PoC separates the builds by outcome class (e.g. the
        // vulnerable build crashes): the target's class decides.
        return if ct == cp { 1 } else { -1 };
    }
    if let (Outcome::Returned(v), Outcome::Returned(p), Outcome::Returned(t)) =
        (&vuln.outcome, &patched.outcome, &target.outcome)
    {
        if v.as_int() != p.as_int() {
            if t.as_int() == p.as_int() {
                return 1;
            }
            if t.as_int() == v.as_int() {
                return -1;
            }
        }
    }
    // Fall back to dynamic-profile proximity on the PoC run (the
    // flagship's quadratic-memmove signature shows up here).
    let dv = crate::similarity::minkowski(
        vuln.features.as_slice(),
        target.features.as_slice(),
        crate::similarity::PAPER_P,
    );
    let dp = crate::similarity::minkowski(
        patched.features.as_slice(),
        target.features.as_slice(),
        crate::similarity::PAPER_P,
    );
    if (dv - dp).abs() < 1e-9 {
        0
    } else if dp < dv {
        1
    } else {
        -1
    }
}

/// Run the differential engine on several candidate target functions and
/// keep the verdict of the candidate most likely to *be* the target: the
/// one closest to either reference version (`min(dv, dp)`). A false
/// positive sits far from both the vulnerable and the patched build of the
/// CVE function; the true target is near one of them. Ties (including the
/// all-zero distances of feature-invisible patches) break toward the more
/// decisive margin.
///
/// Returns `None` if `candidates` is empty.
pub fn detect_patch_best(
    patchecko: &Patchecko,
    entry: &DbEntry,
    target_bin: &Binary,
    candidates: &[usize],
    cfg: &DifferentialConfig,
) -> Result<Option<(usize, PatchVerdict)>, ScanError> {
    detect_patch_best_with(
        patchecko,
        entry,
        target_bin,
        candidates,
        cfg,
        &DirectExtraction,
        &live_profiling(),
    )
}

/// [`detect_patch_best`] with static features served by `source` and
/// dynamic profiles served by `dynsrc`.
///
/// # Errors
/// The first per-candidate [`ScanError`], if any.
pub fn detect_patch_best_with(
    patchecko: &Patchecko,
    entry: &DbEntry,
    target_bin: &Binary,
    candidates: &[usize],
    cfg: &DifferentialConfig,
    source: &dyn FeatureSource,
    dynsrc: &Arc<dyn DynProfileSource>,
) -> Result<Option<(usize, PatchVerdict)>, ScanError> {
    let mut best: Option<(usize, PatchVerdict, f64)> = None;
    for &c in candidates {
        let v = detect_patch_with(patchecko, entry, target_bin, c, cfg, source, dynsrc)?;
        // Degraded verdicts have infinite dynamic distances; fall back to
        // static proximity alone so candidate selection stays meaningful.
        let dyn_proximity = v.dyn_dist_vulnerable.min(v.dyn_dist_patched);
        let proximity = if dyn_proximity.is_finite() { dyn_proximity } else { 0.0 }
            + v.static_dist_vulnerable.min(v.static_dist_patched);
        let better = match &best {
            Some((_, b, d)) => {
                proximity < *d - 1e-9
                    || ((proximity - *d).abs() <= 1e-9 && v.margin.abs() > b.margin.abs())
            }
            None => true,
        };
        if better {
            best = Some((c, v, proximity));
        }
    }
    Ok(best.map(|(c, v, _)| (c, v)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::PipelineConfig;
    use crate::testutil::shared_detector;

    fn quick_patchecko() -> Patchecko {
        Patchecko::new(shared_detector().clone(), PipelineConfig::default())
    }

    /// Compile a target carrying the requested version of a CVE entry's
    /// function at index 0 (standalone; enough for engine tests).
    fn target_with(entry: &corpus::vulndb::DbEntry, patched: bool) -> Binary {
        let lib = corpus::catalog::reference_library(&entry.entry, patched);
        // Device-style compilation: different arch/opt from the reference.
        let mut bin =
            fwbin::compile_library(&lib, fwbin::Arch::Arm32, fwbin::OptLevel::O2).unwrap();
        bin.strip();
        bin
    }

    #[test]
    fn degraded_verdicts_round_trip_through_json() {
        // Degraded verdicts carry infinite dynamic distances; JSON has no
        // ±inf, so the wire shim maps them through `null` and back.
        let v = PatchVerdict {
            cve: "CVE-0000-0000".into(),
            patched: true,
            dyn_dist_vulnerable: f64::INFINITY,
            dyn_dist_patched: f64::INFINITY,
            static_dist_vulnerable: 0.25,
            static_dist_patched: 0.125,
            signature: SignatureDiff {
                vuln_imports: vec!["memmove".into()],
                patched_imports: Vec::new(),
                target_imports: Vec::new(),
                votes_vulnerable: 1,
                votes_patched: 2,
            },
            margin: 0.5,
            tie_break: false,
            exploit_vote: None,
            degraded: true,
        };
        let json = serde_json::to_string(&v).unwrap();
        let back: PatchVerdict = serde_json::from_str(&json).unwrap();
        assert!(back.dyn_dist_vulnerable.is_infinite() && back.dyn_dist_patched.is_infinite());
        assert_eq!(back.static_dist_patched, 0.125, "finite distances pass through exactly");
        assert!(back.degraded);
    }

    #[test]
    fn flagship_vulnerable_target_detected_vulnerable() {
        let patchecko = quick_patchecko();
        let db = corpus::build_vulndb(0, 1);
        let entry = db.get("CVE-2018-9412").unwrap();
        let target = target_with(entry, false);
        let v = detect_patch(&patchecko, entry, &target, 0, &DifferentialConfig::default()).unwrap();
        assert!(!v.patched, "margin {}, dv {} dp {}", v.margin, v.dyn_dist_vulnerable, v.dyn_dist_patched);
        // The paper's case-study signal: memmove in the vulnerable import
        // set, absent from the patched one, present in the target.
        assert!(v.signature.vuln_imports.contains(&"memmove".to_string()));
        assert!(!v.signature.patched_imports.contains(&"memmove".to_string()));
        assert!(v.signature.target_imports.contains(&"memmove".to_string()));
    }

    #[test]
    fn flagship_patched_target_detected_patched() {
        let patchecko = quick_patchecko();
        let db = corpus::build_vulndb(0, 1);
        let entry = db.get("CVE-2018-9412").unwrap();
        let target = target_with(entry, true);
        let v = detect_patch(&patchecko, entry, &target, 0, &DifferentialConfig::default()).unwrap();
        assert!(v.patched, "margin {}", v.margin);
    }

    #[test]
    fn exploit_channel_resolves_tiny_patch() {
        // §V-D: with the PoC available, the one-integer patch becomes
        // behaviourally observable and the tie-break never fires.
        let patchecko = quick_patchecko();
        let db = corpus::build_vulndb(0, 1);
        let entry = db.get("CVE-2018-9470").unwrap();
        assert!(entry.entry.poc.is_some(), "9470 carries a PoC");
        let cfg = DifferentialConfig { use_exploit_channel: true, ..Default::default() };
        let v = detect_patch(&patchecko, entry, &target_with(entry, false), 0, &cfg).unwrap();
        assert_eq!(v.exploit_vote, Some(-1), "target behaves like the vulnerable build");
        assert!(!v.patched, "exploit evidence overrides the tie");
        let v = detect_patch(&patchecko, entry, &target_with(entry, true), 0, &cfg).unwrap();
        assert_eq!(v.exploit_vote, Some(1));
        assert!(v.patched);
    }

    #[test]
    fn exploit_channel_flagship_profile_match() {
        // The flagship PoC (ff 00 stuffing) separates the builds by
        // dynamic profile (quadratic memmove), not by return value.
        let patchecko = quick_patchecko();
        let db = corpus::build_vulndb(0, 1);
        let entry = db.get("CVE-2018-9412").unwrap();
        let cfg = DifferentialConfig { use_exploit_channel: true, ..Default::default() };
        let v = detect_patch(&patchecko, entry, &target_with(entry, false), 0, &cfg).unwrap();
        assert_eq!(v.exploit_vote, Some(-1));
        assert!(!v.patched);
    }

    use proptest::prelude::*;

    /// [`quick_patchecko`] with a narrow fuzz budget: the properties below
    /// run the engine several times per case, and the invariants under
    /// test do not depend on the environment count.
    fn small_patchecko() -> Patchecko {
        let cfg = PipelineConfig {
            fuzz: vm::FuzzConfig { rounds: 40, num_envs: 3, ..vm::FuzzConfig::default() },
            ..PipelineConfig::default()
        };
        Patchecko::new(shared_detector().clone(), cfg)
    }

    /// The vulnerable/patched roles of `entry`, swapped — both the source
    /// functions the references are compiled from and the precompiled
    /// signature-channel binaries.
    fn role_flipped(entry: &DbEntry) -> DbEntry {
        DbEntry {
            entry: corpus::catalog::CveEntry {
                vulnerable: entry.entry.patched.clone(),
                patched: entry.entry.vulnerable.clone(),
                ..entry.entry.clone()
            },
            meta: entry.meta.clone(),
            vulnerable_bin: entry.patched_bin.clone(),
            patched_bin: entry.vulnerable_bin.clone(),
        }
    }

    const PROP_CVES: [&str; 3] = ["CVE-2018-9412", "CVE-2018-9451", "CVE-2018-9470"];

    proptest! {
        #![proptest_config(ProptestConfig { cases: 3, ..ProptestConfig::default() })]

        /// Satellite invariant 1: [`detect_patch_best`] must not depend on
        /// the order the candidate list is supplied in — same chosen
        /// function, same decision, bit-identical margin. The candidates
        /// are distinct functions of a generated library, so proximity
        /// ties (the only order-sensitive code path) cannot occur.
        #[test]
        fn best_verdict_invariant_under_candidate_order(
            seed in 0u64..10_000,
            rot in 1usize..4,
            cve_i in 0usize..3,
        ) {
            let patchecko = small_patchecko();
            let db = corpus::build_vulndb(0, 1);
            let entry = db.get(PROP_CVES[cve_i]).unwrap();
            let lib = fwlang::gen::Generator::new(seed).library_sized("libdiff", 6);
            let target =
                fwbin::compile_library(&lib, fwbin::Arch::Arm32, fwbin::OptLevel::O2).unwrap();
            let cfg = DifferentialConfig::default();
            let base: Vec<usize> = vec![0, 1, 2, 3];
            let mut permuted = base.clone();
            permuted.rotate_left(rot);
            permuted.reverse();
            let (ac, av) =
                detect_patch_best(&patchecko, entry, &target, &base, &cfg).unwrap().unwrap();
            let (bc, bv) =
                detect_patch_best(&patchecko, entry, &target, &permuted, &cfg).unwrap().unwrap();
            prop_assert_eq!(ac, bc, "chosen candidate depends on supply order");
            prop_assert_eq!(av.patched, bv.patched);
            prop_assert_eq!(av.tie_break, bv.tie_break);
            prop_assert_eq!(av.margin.to_bits(), bv.margin.to_bits());
            prop_assert_eq!(av.dyn_dist_vulnerable.to_bits(), bv.dyn_dist_vulnerable.to_bits());
            prop_assert_eq!(av.dyn_dist_patched.to_bits(), bv.dyn_dist_patched.to_bits());
        }

        /// Satellite invariant 2: swapping the vulnerable and patched
        /// references flips every non-tie verdict — the engine's evidence
        /// channels are symmetric in the two reference roles. Ties stay
        /// ties and keep the documented patched-by-default decision in
        /// both orientations.
        #[test]
        fn swapping_references_flips_the_verdict(
            cve_i in 0usize..3,
            target_patched in any::<bool>(),
        ) {
            let patchecko = small_patchecko();
            let db = corpus::build_vulndb(0, 1);
            let entry = db.get(PROP_CVES[cve_i]).unwrap();
            let target = target_with(entry, target_patched);
            let cfg = DifferentialConfig::default();
            let v = detect_patch(&patchecko, entry, &target, 0, &cfg).unwrap();
            let w = detect_patch(&patchecko, &role_flipped(entry), &target, 0, &cfg).unwrap();
            prop_assert_eq!(v.tie_break, w.tie_break, "tie is role-symmetric");
            if v.tie_break {
                prop_assert!(v.patched && w.patched, "tie-break defaults to patched");
            } else {
                prop_assert_eq!(v.patched, !w.patched, "verdict must flip with the roles");
                prop_assert!(
                    v.margin * w.margin <= 0.0,
                    "margins must change sign: {} vs {}", v.margin, w.margin
                );
            }
            // The static and signature channels swap exactly — same
            // extractions and same import sets, with the roles reversed.
            prop_assert_eq!(v.static_dist_vulnerable.to_bits(), w.static_dist_patched.to_bits());
            prop_assert_eq!(v.static_dist_patched.to_bits(), w.static_dist_vulnerable.to_bits());
            prop_assert_eq!(v.signature.votes_vulnerable, w.signature.votes_patched);
            prop_assert_eq!(v.signature.votes_patched, w.signature.votes_vulnerable);
        }
    }

    #[test]
    fn tiny_patch_falls_to_tie_break() {
        // CVE-2018-9470: one-constant patch; all channels inconclusive.
        let patchecko = quick_patchecko();
        let db = corpus::build_vulndb(0, 1);
        let entry = db.get("CVE-2018-9470").unwrap();
        let target = target_with(entry, false); // actually vulnerable
        let v = detect_patch(&patchecko, entry, &target, 0, &DifferentialConfig::default()).unwrap();
        // The engine cannot tell and defaults to "patched" — the paper's
        // one Table VIII miss.
        assert!(v.tie_break, "expected inconclusive evidence, margin {}", v.margin);
        assert!(v.patched);
    }
}
