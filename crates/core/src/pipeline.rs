//! The PATCHECKO pipeline (Figure 1): static deep-learning scan →
//! execution validation → dynamic feature profiling → similarity ranking.
//!
//! Timings are captured per stage — the "DP" (deep learning) and "DA"
//! (dynamic analysis) columns of Tables VI and VII.

use crate::cancel::CancelToken;
use crate::detector::Detector;
use crate::dynsource::{self, DynProfile, DynProfileSource, EnvSet, LiveProfiling};
use crate::error::ScanError;
use crate::features::{self, StaticFeatures};
use crate::retrieval::{self, FunctionSignature, Retrieval, SignatureSet};
use crate::similarity::{self, RankedCandidate};
use corpus::vulndb::DbEntry;
use fwbin::format::Binary;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, Mutex};
use std::time::Instant;
use vm::env::ExecEnv;
use vm::exec::VmConfig;
use vm::fuzz::FuzzConfig;
use vm::loader::LoadedBinary;
use vm::DynFeatures;

/// Which version of the CVE function drives the search — Tables VI
/// (vulnerable) vs VII (patched).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Basis {
    /// Search with the vulnerable reference.
    Vulnerable,
    /// Search with the patched reference.
    Patched,
}

impl std::fmt::Display for Basis {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            Basis::Vulnerable => "vulnerable",
            Basis::Patched => "patched",
        })
    }
}

/// Pipeline configuration.
#[derive(Debug, Clone)]
pub struct PipelineConfig {
    /// VM limits and engine choice (`vm.engine`): the fast engine is the
    /// default; `Engine::Interp` selects the reference interpreter for
    /// differential testing. Both produce bitwise-identical profiles, so
    /// the choice never perturbs cache keys or rankings.
    pub vm: VmConfig,
    /// Fuzzer settings (execution-environment generation).
    pub fuzz: FuzzConfig,
    /// Minkowski order (paper: 3).
    pub minkowski_p: f64,
    /// Run candidate executions across threads (the paper parallelizes
    /// execution-environment testing).
    pub parallel: bool,
    /// Worker-thread count for parallel stages (candidate profiling,
    /// GEMM kernels, feature extraction, and the scanhub job scheduler).
    /// `None` derives the count from the `PATCHECKO_THREADS` environment
    /// variable or the machine's available parallelism; `Some(1)` forces
    /// serial execution end to end even when `parallel` is set.
    pub threads: Option<usize>,
    /// How the static scan selects (reference, target) pairs:
    /// [`Retrieval::Exact`] scores every pair, [`Retrieval::TopK`] runs
    /// the signature/LSH pre-filter and classifies only each target's
    /// nearest references.
    pub retrieval: Retrieval,
}

impl Default for PipelineConfig {
    fn default() -> PipelineConfig {
        PipelineConfig {
            vm: VmConfig::default(),
            fuzz: FuzzConfig::default(),
            minkowski_p: similarity::PAPER_P,
            parallel: true,
            threads: None,
            retrieval: Retrieval::Exact,
        }
    }
}

impl PipelineConfig {
    /// The effective worker count, resolved through the shared
    /// [`neural::pool::resolve_threads`] helper: the explicit
    /// [`PipelineConfig::threads`] override when set, then the
    /// `PATCHECKO_THREADS` environment variable, then the machine's
    /// available parallelism.
    pub fn effective_threads(&self) -> usize {
        neural::pool::resolve_threads(self.threads)
    }
}

/// Where the static stage gets per-function artifacts from. The default
/// [`DirectExtraction`] disassembles and extracts on every call; scanhub's
/// content-addressed artifact store implements this trait to serve cached
/// features instead, which is how a warm re-audit skips disassembly and
/// feature extraction entirely.
///
/// Both methods are fallible: a corrupt binary (undecodable function
/// code), a quarantined cache entry, or an injected chaos fault comes
/// back as a typed [`ScanError`] instead of a panic, so one poisoned
/// input cannot sink a batch.
pub trait FeatureSource: Sync {
    /// Static features of every function of `bin`, in function-table order.
    ///
    /// # Errors
    /// [`ScanError::Extraction`] (with function context) when any
    /// function's code bytes fail to decode; implementations may also
    /// surface transient cache/injection failures.
    fn features_all(&self, bin: &Binary) -> Result<Vec<StaticFeatures>, ScanError>;

    /// Static features of one function of `bin`.
    ///
    /// # Errors
    /// As for [`FeatureSource::features_all`].
    fn features_one(&self, bin: &Binary, idx: usize) -> Result<StaticFeatures, ScanError>;

    /// Retrieval signatures for every function of `bin`, in function-table
    /// order. `feats` is the output of [`FeatureSource::features_all`] for
    /// the same binary, so the default computes signatures directly (the
    /// signature is a pure function of the features); scanhub's artifact
    /// store overrides this to serve and incrementally populate its
    /// persistent signature lane instead. Infallible: a cache problem at
    /// worst degrades to recomputation.
    fn signatures_all(&self, bin: &Binary, feats: &[StaticFeatures]) -> Vec<FunctionSignature> {
        let _ = bin;
        feats.iter().map(FunctionSignature::of).collect()
    }
}

/// The uncached [`FeatureSource`]: disassemble + extract on every request.
pub struct DirectExtraction;

/// Locate which function a whole-binary extraction failure came from: the
/// parallel extractor reports only the first [`DecodeError`]
/// (fwbin::encode::DecodeError); re-probe serially to pin the index for
/// the error context. Only runs on the (rare) failure path.
fn locate_extraction_failure(bin: &Binary, e: &fwbin::encode::DecodeError) -> ScanError {
    for idx in 0..bin.function_count() {
        if let Err(probe) = disasm::disassemble(bin, idx) {
            return ScanError::extraction(&bin.lib_name, idx, &probe);
        }
    }
    ScanError::extraction(&bin.lib_name, 0, e)
}

impl FeatureSource for DirectExtraction {
    fn features_all(&self, bin: &Binary) -> Result<Vec<StaticFeatures>, ScanError> {
        features::extract_all_parallel(bin).map_err(|e| locate_extraction_failure(bin, &e))
    }

    fn features_one(&self, bin: &Binary, idx: usize) -> Result<StaticFeatures, ScanError> {
        let dis = disasm::disassemble(bin, idx)
            .map_err(|e| ScanError::extraction(&bin.lib_name, idx, &e))?;
        Ok(features::extract(&dis, &bin.functions[idx]))
    }
}

/// A fresh [`LiveProfiling`] handle as a shareable trait object — the
/// default `dynsrc` of every non-`_with` entry point. Construction is
/// free (the type is a unit struct); scanhub passes its dynamic artifact
/// lane here instead.
pub fn live_profiling() -> Arc<dyn DynProfileSource> {
    Arc::new(LiveProfiling)
}

/// Result of the static (deep learning) stage on one library.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct StaticScan {
    /// Scanned library name.
    pub library: String,
    /// Total functions scanned.
    pub total: usize,
    /// Per-function similarity probability.
    pub probs: Vec<f32>,
    /// Indices with probability ≥ threshold (the candidate set).
    pub candidates: Vec<usize>,
    /// Per-function index (into the scan's reference set) of the
    /// reference variant that produced [`StaticScan::probs`] — the
    /// groundwork for patch localization. Empty when the reference set
    /// is empty; otherwise one entry per scanned function.
    #[serde(default)]
    pub best_ref: Vec<usize>,
    /// Wall-clock seconds (the "DP" column).
    pub seconds: f64,
}

/// Confidence of a dynamic-stage result.
///
/// `Full` means the paper's pipeline ran end to end: environments were
/// generated, the reference profiled, every candidate execution-validated.
/// `Degraded` means the dynamic stage could not run (the reference failed
/// to load, no execution environment survived, or candidate profiling
/// died) and the ranking fell back to static-only evidence — better than
/// dropping the candidates or panicking, but to be read with the static
/// stage's false-positive rate in mind.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Confidence {
    /// Dynamic validation and profiling ran for every ranked candidate.
    Full,
    /// Static-only fallback: dynamic evidence was unavailable for at
    /// least part of the ranking.
    Degraded,
}

/// Result of the dynamic stage.
#[derive(Debug, Clone)]
pub struct DynamicAnalysis {
    /// The fixed execution environments used.
    pub envs: Vec<ExecEnv>,
    /// Reference function's dynamic features per environment.
    pub reference_profile: Vec<DynFeatures>,
    /// Candidates that survived execution validation (the "Execution"
    /// column).
    pub validated: Vec<usize>,
    /// Dynamic profiles of the validated candidates.
    pub profiles: Vec<(usize, Vec<DynFeatures>)>,
    /// Final similarity ranking (ascending distance). Under
    /// [`Confidence::Degraded`], distances are static pseudo-distances
    /// (`1 - probability`), not comparable with dynamic distances.
    pub ranking: Vec<RankedCandidate>,
    /// Whether the ranking carries full dynamic evidence or fell back to
    /// static-only ordering.
    pub confidence: Confidence,
    /// Why the stage degraded, when it did.
    pub degradation: Option<String>,
    /// Wall-clock seconds (the "DA" column).
    pub seconds: f64,
}

impl DynamicAnalysis {
    /// Whether this analysis fell back to static-only evidence.
    pub fn is_degraded(&self) -> bool {
        self.confidence == Confidence::Degraded
    }
}

/// A full per-CVE hybrid analysis.
#[derive(Debug, Clone)]
pub struct CveAnalysis {
    /// CVE identifier.
    pub cve: String,
    /// Search basis.
    pub basis: Basis,
    /// Static stage result.
    pub scan: StaticScan,
    /// Dynamic stage result.
    pub dynamic: DynamicAnalysis,
}

impl CveAnalysis {
    /// The best-ranked candidate function index, if any survived.
    pub fn top_candidate(&self) -> Option<usize> {
        self.dynamic.ranking.first().map(|r| r.function_index)
    }

    /// Whether the dynamic stage fell back to static-only evidence.
    pub fn is_degraded(&self) -> bool {
        self.dynamic.is_degraded()
    }
}

/// The PATCHECKO analyzer: a trained detector plus pipeline settings.
pub struct Patchecko {
    /// Trained deep-learning detector.
    pub detector: Detector,
    /// Pipeline settings.
    pub config: PipelineConfig,
    /// Built signature indexes memoized by reference-set fingerprint:
    /// reference DBs are stable across scans while targets change per
    /// image, so rebuilding MinHash × |refs| per scan would dwarf the
    /// classification work the index saves.
    ref_index: Mutex<HashMap<u64, Arc<SignatureSet>>>,
}

impl Patchecko {
    /// Create an analyzer. Sizes the shared worker pool from the config,
    /// so `--threads 1` forces serial kernels end to end and a larger
    /// override widens every parallel stage.
    pub fn new(detector: Detector, config: PipelineConfig) -> Patchecko {
        neural::pool::set_global_threads(config.effective_threads());
        Patchecko { detector, config, ref_index: Mutex::new(HashMap::new()) }
    }

    /// Static features of a database entry's primary reference function.
    ///
    /// # Errors
    /// Propagates extraction failures from the source.
    pub fn reference_features(entry: &DbEntry, basis: Basis) -> Result<StaticFeatures, ScanError> {
        Self::reference_features_with(entry, basis, &DirectExtraction)
    }

    /// [`Patchecko::reference_features`] through an explicit
    /// [`FeatureSource`] (reference binaries are content-addressable too).
    ///
    /// # Errors
    /// Propagates extraction failures from the source.
    pub fn reference_features_with(
        entry: &DbEntry,
        basis: Basis,
        source: &dyn FeatureSource,
    ) -> Result<StaticFeatures, ScanError> {
        let bin = match basis {
            Basis::Vulnerable => &entry.vulnerable_bin,
            Basis::Patched => &entry.patched_bin,
        };
        source.features_one(bin, 0)
    }

    /// Static features of every multi-platform reference variant (§II-A:
    /// the database compiles the reference "for different hardware
    /// architectures and software platforms").
    ///
    /// # Errors
    /// Propagates the first extraction failure from the source.
    pub fn reference_feature_set(
        entry: &DbEntry,
        basis: Basis,
    ) -> Result<Vec<StaticFeatures>, ScanError> {
        Self::reference_feature_set_with(entry, basis, &DirectExtraction)
    }

    /// [`Patchecko::reference_feature_set`] through an explicit
    /// [`FeatureSource`].
    ///
    /// # Errors
    /// Propagates the first extraction failure from the source.
    pub fn reference_feature_set_with(
        entry: &DbEntry,
        basis: Basis,
        source: &dyn FeatureSource,
    ) -> Result<Vec<StaticFeatures>, ScanError> {
        entry
            .reference_variants(basis == Basis::Patched)
            .iter()
            .map(|bin| source.features_one(bin, 0))
            .collect()
    }

    /// Stage 1: scan every function of `bin` against the reference feature
    /// vectors with the deep-learning classifier. A function's score is
    /// its best match across the reference variants.
    ///
    /// # Errors
    /// Propagates extraction failures from the source.
    pub fn scan_library(
        &self,
        bin: &Binary,
        references: &[StaticFeatures],
    ) -> Result<StaticScan, ScanError> {
        self.scan_library_with(bin, references, &DirectExtraction)
    }

    /// [`Patchecko::scan_library`] with features served by `source`.
    ///
    /// Under [`Retrieval::Exact`] (the default) all (reference × function)
    /// pairs are packed into one
    /// [`crate::detector::Detector::classify_product`] call, so the whole
    /// library scan is a single forward pass per layer regardless of how
    /// many reference variants the database carries — and every feature
    /// vector is normalized once instead of once per pair. Under
    /// [`Retrieval::TopK`], the signature/LSH index retrieves each
    /// target's `k` nearest references and only those pairs reach the
    /// classifier (via the sparse
    /// [`crate::detector::Detector::classify_pairs`] path), which keeps
    /// scan cost near-flat as the reference database grows. At
    /// `k >= references.len()` the indexed scan is bitwise-identical to
    /// the exact one. Both modes produce the same [`StaticScan`] shape.
    ///
    /// # Errors
    /// Propagates extraction failures from the source.
    pub fn scan_library_with(
        &self,
        bin: &Binary,
        references: &[StaticFeatures],
        source: &dyn FeatureSource,
    ) -> Result<StaticScan, ScanError> {
        let _span = scope::SpanGuard::enter("static_scan").with_detail(bin.lib_name.clone());
        let started = Instant::now();
        let feats = source.features_all(bin)?;
        // Degenerate scans (nothing to compare) return a well-formed empty
        // result: zero probabilities, no candidates, no best references —
        // never NaNs or spurious threshold hits.
        let (probs, best_ref, candidates) = if references.is_empty() || feats.is_empty() {
            (vec![0.0f32; feats.len()], Vec::new(), Vec::new())
        } else {
            let (probs, best_ref) = match self.config.retrieval {
                Retrieval::Exact => self.exact_scores(references, &feats),
                Retrieval::TopK { k } => self.indexed_scores(bin, references, &feats, k, source),
            };
            let candidates = probs
                .iter()
                .enumerate()
                .filter(|(_, p)| **p >= self.detector.threshold)
                .map(|(i, _)| i)
                .collect();
            (probs, best_ref, candidates)
        };
        Ok(StaticScan {
            library: bin.lib_name.clone(),
            total: feats.len(),
            probs,
            candidates,
            best_ref,
            seconds: started.elapsed().as_secs_f64(),
        })
    }

    /// All-pairs scoring: one `classify_product` GEMM, then a per-target
    /// max-reduction over the references. The score layout is
    /// reference-major (`chunks(feats.len())` walks one reference's row),
    /// hoisting the old per-element `i % feats.len()` out of the loop.
    /// Returns per-target best probability and best reference index; ties
    /// keep the lowest reference (strict `>` fold, references ascending).
    fn exact_scores(
        &self,
        references: &[StaticFeatures],
        feats: &[StaticFeatures],
    ) -> (Vec<f32>, Vec<usize>) {
        let scores = self.detector.classify_product(references, feats);
        let mut probs = vec![0.0f32; feats.len()];
        let mut best_ref = vec![0usize; feats.len()];
        for (r, chunk) in scores.chunks(feats.len()).enumerate() {
            for (f, &s) in chunk.iter().enumerate() {
                if s > probs[f] {
                    probs[f] = s;
                    best_ref[f] = r;
                }
            }
        }
        (probs, best_ref)
    }

    /// Indexed scoring: retrieve each target's `k` nearest references by
    /// quantized signature, classify only those pairs. Target signatures
    /// come from the source (scanhub serves its persistent lane);
    /// reference signatures are computed directly — the signature is a
    /// pure function of the features, so both routes agree. The per-pair
    /// fold visits references in ascending order with a strict `>`, the
    /// same comparison sequence as [`Patchecko::exact_scores`], which is
    /// what makes `k >= references.len()` bitwise-identical to exact.
    fn indexed_scores(
        &self,
        bin: &Binary,
        references: &[StaticFeatures],
        feats: &[StaticFeatures],
        k: usize,
        source: &dyn FeatureSource,
    ) -> (Vec<f32>, Vec<usize>) {
        let index = self.reference_index(references);
        let target_sigs = source.signatures_all(bin, feats);
        let mut pairs: Vec<(u32, u32)> = Vec::new();
        for (j, sig) in target_sigs.iter().enumerate() {
            for r in index.candidates(sig, k) {
                pairs.push((r, j as u32));
            }
        }
        scope::add("index.candidates", pairs.len() as u64);
        scope::add(
            "index.pairs_pruned",
            (references.len() * feats.len()).saturating_sub(pairs.len()) as u64,
        );
        let scores = self.detector.classify_pairs(references, feats, &pairs);
        let mut probs = vec![0.0f32; feats.len()];
        let mut best_ref = vec![0usize; feats.len()];
        for (&(r, j), &s) in pairs.iter().zip(&scores) {
            let j = j as usize;
            if s > probs[j] {
                probs[j] = s;
                best_ref[j] = r as usize;
            }
        }
        (probs, best_ref)
    }

    /// The signature index over `references`, memoized by content
    /// fingerprint. A hit costs one fingerprint pass (~1ns per feature
    /// word); a miss computes every reference signature and builds the
    /// LSH tables once, after which scans of any number of target images
    /// against the same reference DB reuse it. The memo is bounded: at
    /// 256 distinct reference sets it resets (reference sets are vuln-DB
    /// entries — a handful in practice, not unbounded user input).
    fn reference_index(&self, references: &[StaticFeatures]) -> Arc<SignatureSet> {
        let fp = retrieval::feature_fingerprint(references);
        let mut memo = self.ref_index.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        if let Some(index) = memo.get(&fp) {
            scope::add("index.memo_hits", 1);
            return Arc::clone(index);
        }
        let sigs: Vec<FunctionSignature> = references.iter().map(FunctionSignature::of).collect();
        let index = Arc::new(SignatureSet::build(&sigs));
        if memo.len() >= 256 {
            memo.clear();
        }
        memo.insert(fp, Arc::clone(&index));
        index
    }

    /// Generate execution environments by fuzzing the reference function,
    /// keeping only environments the reference itself survives ("We tested
    /// that these inputs worked with both the vulnerable and patched
    /// functions").
    pub fn make_environments(&self, reference: &LoadedBinary) -> Vec<ExecEnv> {
        dynsource::live_environments(reference, &self.config.fuzz, &self.config.vm).envs
    }

    /// Static-only fallback ranking for candidates without dynamic
    /// evidence: descending probability, i.e. ascending pseudo-distance
    /// `1 - probability`, ties broken by function index so the order is
    /// deterministic.
    fn static_fallback_ranking(scan: &StaticScan, candidates: &[usize]) -> Vec<RankedCandidate> {
        let mut ranked: Vec<RankedCandidate> = candidates
            .iter()
            .map(|&c| RankedCandidate {
                function_index: c,
                distance: 1.0 - f64::from(scan.probs[c]),
            })
            .collect();
        ranked.sort_by(|a, b| {
            similarity::distance_order(a.distance, b.distance)
                .then(a.function_index.cmp(&b.function_index))
        });
        ranked
    }

    /// A fully degraded analysis: no dynamic evidence at all, ranking by
    /// static probability. Used when the loader or the environment
    /// generator fails — the scan's candidates still reach the report
    /// instead of sinking the job.
    pub(crate) fn degraded_analysis(scan: &StaticScan, why: String, seconds: f64) -> DynamicAnalysis {
        scope::inc("pipeline.degraded");
        DynamicAnalysis {
            envs: Vec::new(),
            reference_profile: Vec::new(),
            validated: Vec::new(),
            profiles: Vec::new(),
            ranking: Self::static_fallback_ranking(scan, &scan.candidates),
            confidence: Confidence::Degraded,
            degradation: Some(why),
            seconds,
        }
    }

    /// Stage 2+3: execution-validate the candidates, profile the survivors,
    /// and rank them against the reference profile.
    ///
    /// Environments and profiles come from `dynsrc` — [`LiveProfiling`]
    /// executes everything, scanhub's dynamic lane serves cached profiles
    /// so a warm re-audit performs zero VM executions. Cache-miss
    /// profiling is dispatched onto the shared [`neural::pool`] (one
    /// order-preserving task per candidate), replacing the old per-call
    /// `crossbeam::thread::scope`.
    ///
    /// Infallible by design: every failure inside the stage degrades
    /// instead of propagating. A candidate whose profiling *panics* (as
    /// opposed to the paper's execution-validation failures — fault,
    /// timeout — which still prune the candidate) falls back to its
    /// static score and is appended after the dynamically ranked set; if
    /// the whole stage cannot run (no surviving environment, reference
    /// profile dies), the ranking is static-only and the result is marked
    /// [`Confidence::Degraded`].
    pub fn dynamic_stage(
        &self,
        target: &Arc<LoadedBinary>,
        scan: &StaticScan,
        reference: &Arc<LoadedBinary>,
        dynsrc: &Arc<dyn DynProfileSource>,
    ) -> DynamicAnalysis {
        let _span = scope::SpanGuard::enter("dynamic_stage").with_detail(scan.library.clone());
        let started = Instant::now();
        let candidates: &[usize] = &scan.candidates;
        let envset = match catch_unwind(AssertUnwindSafe(|| {
            dynsrc.environments(reference, &self.config.fuzz, &self.config.vm)
        })) {
            Ok(Ok(set)) => Arc::new(set),
            Ok(Err(_)) | Err(_) => Arc::new(EnvSet::new(Vec::new(), &self.config.vm)),
        };
        if envset.is_empty() && !candidates.is_empty() {
            return Self::degraded_analysis(
                scan,
                "no execution environment survived the reference".to_string(),
                started.elapsed().as_secs_f64(),
            );
        }
        let reference_profile = match catch_unwind(AssertUnwindSafe(|| {
            dynsrc.profile(reference, 0, &envset, &self.config.vm)
        })) {
            Ok(Ok(p)) if p.validated() => p.features,
            _ if candidates.is_empty() => Vec::new(),
            _ => {
                return Self::degraded_analysis(
                    scan,
                    "reference dynamic profile unavailable".to_string(),
                    started.elapsed().as_secs_f64(),
                );
            }
        };

        // Validate + profile candidates. Each candidate is one task on the
        // shared worker pool (results come back in submission order); the
        // serial path is kept for narrow configs so `--threads 1` never
        // touches the pool. `Ok(validated)` = profiled, `Ok(!validated)` =
        // execution-validation failure (pruned, as the paper prescribes),
        // `Err` = the profiler itself panicked or the source failed (the
        // candidate degrades to static evidence).
        type ProfileResult = Result<DynProfile, ScanError>;
        let results: Vec<ProfileResult> = if self.config.parallel
            && candidates.len() > 3
            && self.config.effective_threads() > 1
        {
            let tasks: Vec<_> = candidates
                .iter()
                .map(|&c| {
                    let target = Arc::clone(target);
                    let envset = Arc::clone(&envset);
                    let dynsrc = Arc::clone(dynsrc);
                    let vm_cfg = self.config.vm.clone();
                    move || -> ProfileResult {
                        catch_unwind(AssertUnwindSafe(|| {
                            dynsrc.profile(&target, c, &envset, &vm_cfg)
                        }))
                        .unwrap_or_else(|p| Err(ScanError::from_panic(p.as_ref())))
                    }
                })
                .collect();
            neural::pool::global().run(tasks)
        } else {
            candidates
                .iter()
                .map(|&c| {
                    catch_unwind(AssertUnwindSafe(|| {
                        dynsrc.profile(target, c, &envset, &self.config.vm)
                    }))
                    .unwrap_or_else(|p| Err(ScanError::from_panic(p.as_ref())))
                })
                .collect()
        };

        let mut validated = Vec::new();
        let mut profiles = Vec::new();
        let mut fallback = Vec::new();
        let mut degradation: Option<String> = None;
        for (&c, r) in candidates.iter().zip(results) {
            match r {
                Ok(p) if p.validated() => {
                    validated.push(c);
                    profiles.push((c, p.features));
                }
                Ok(_) => {} // execution-validation failure: pruned.
                Err(e) => {
                    fallback.push(c);
                    degradation
                        .get_or_insert_with(|| format!("candidate {c} profiling panicked: {e}"));
                }
            }
        }
        let mut ranking = similarity::rank(&reference_profile, &profiles, self.config.minkowski_p);
        let confidence = if fallback.is_empty() { Confidence::Full } else { Confidence::Degraded };
        // Degraded candidates rank after every dynamically ranked one:
        // static evidence never outranks dynamic evidence.
        ranking.extend(Self::static_fallback_ranking(scan, &fallback));
        DynamicAnalysis {
            envs: envset.envs.clone(),
            reference_profile,
            validated,
            profiles,
            ranking,
            confidence,
            degradation,
            seconds: started.elapsed().as_secs_f64(),
        }
    }

    /// Run the full hybrid analysis of one CVE against one target library
    /// binary.
    ///
    /// # Errors
    /// [`ScanError::Extraction`] (or a source-specific transient error)
    /// when static features cannot be produced. Loader failures on the
    /// dynamic side do **not** error: the analysis degrades to
    /// static-only ranking instead.
    pub fn analyze_library(
        &self,
        target_bin: &Binary,
        entry: &DbEntry,
        basis: Basis,
    ) -> Result<CveAnalysis, ScanError> {
        self.analyze_library_with(target_bin, entry, basis, &DirectExtraction, &live_profiling())
    }

    /// [`Patchecko::analyze_library`] with static features served by
    /// `source` (target and reference sides alike) and dynamic profiles
    /// served by `dynsrc`.
    ///
    /// # Errors
    /// As for [`Patchecko::analyze_library`].
    pub fn analyze_library_with(
        &self,
        target_bin: &Binary,
        entry: &DbEntry,
        basis: Basis,
        source: &dyn FeatureSource,
        dynsrc: &Arc<dyn DynProfileSource>,
    ) -> Result<CveAnalysis, ScanError> {
        self.analyze_library_ctl(target_bin, entry, basis, source, dynsrc, &CancelToken::unbounded())
    }

    /// [`Patchecko::analyze_library_with`] under a cancellation token.
    ///
    /// The token is checked between stages — before static extraction and
    /// again before the (much more expensive) dynamic stage — so a
    /// request whose end-to-end deadline has passed stops within one
    /// stage boundary instead of running the library to completion.
    ///
    /// # Errors
    /// [`ScanError::DeadlineExceeded`] when `cancel` expires between
    /// stages; otherwise as for [`Patchecko::analyze_library`].
    pub fn analyze_library_ctl(
        &self,
        target_bin: &Binary,
        entry: &DbEntry,
        basis: Basis,
        source: &dyn FeatureSource,
        dynsrc: &Arc<dyn DynProfileSource>,
        cancel: &CancelToken,
    ) -> Result<CveAnalysis, ScanError> {
        cancel.check()?;
        let references = Self::reference_feature_set_with(entry, basis, source)?;
        let scan = self.scan_library_with(target_bin, &references, source)?;
        cancel.check()?;
        // Dynamic stage: reference compiled for the *target's* platform —
        // the paper executes both functions on the device itself. A binary
        // that scanned statically but fails to *load* degrades the dynamic
        // stage rather than sinking the job.
        let ref_bin = entry.reference_for(target_bin.arch, basis == Basis::Patched);
        let dynamic = match (LoadedBinary::load(ref_bin), LoadedBinary::load(target_bin.clone())) {
            (Ok(ref_loaded), Ok(target_loaded)) => {
                self.dynamic_stage(&Arc::new(target_loaded), &scan, &Arc::new(ref_loaded), dynsrc)
            }
            (Err(e), _) => Self::degraded_analysis(
                &scan,
                format!("reference failed to load: {}", ScanError::load(&entry.entry.library, &e)),
                0.0,
            ),
            (_, Err(e)) => Self::degraded_analysis(
                &scan,
                format!("target failed to load: {}", ScanError::load(&target_bin.lib_name, &e)),
                0.0,
            ),
        };
        Ok(CveAnalysis { cve: entry.entry.cve.clone(), basis, scan, dynamic })
    }

    /// Scan a whole firmware image for one CVE: every library is analyzed
    /// and the per-library results are returned alongside the image-wide
    /// best match. This is PATCHECKO's deployment interface — "PATCHECKO
    /// outputs the vulnerable points (functions) within the target firmware
    /// image and the corresponding CVE numbers".
    pub fn analyze_image(
        &self,
        image: &fwbin::FirmwareImage,
        entry: &DbEntry,
        basis: Basis,
    ) -> Result<ImageAnalysis, ScanError> {
        self.analyze_image_with(image, entry, basis, &DirectExtraction, &live_profiling())
    }

    /// [`Patchecko::analyze_image`] with static features served by `source`
    /// and dynamic profiles served by `dynsrc`.
    ///
    /// # Errors
    /// The first per-library [`ScanError`] encountered, if any.
    pub fn analyze_image_with(
        &self,
        image: &fwbin::FirmwareImage,
        entry: &DbEntry,
        basis: Basis,
        source: &dyn FeatureSource,
        dynsrc: &Arc<dyn DynProfileSource>,
    ) -> Result<ImageAnalysis, ScanError> {
        self.analyze_image_ctl(image, entry, basis, source, dynsrc, &CancelToken::unbounded())
    }

    /// [`Patchecko::analyze_image_with`] under a cancellation token: the
    /// token is checked before every library so an expired request stops
    /// at the next library boundary.
    ///
    /// # Errors
    /// [`ScanError::DeadlineExceeded`] when `cancel` expires; otherwise
    /// the first per-library [`ScanError`] encountered.
    pub fn analyze_image_ctl(
        &self,
        image: &fwbin::FirmwareImage,
        entry: &DbEntry,
        basis: Basis,
        source: &dyn FeatureSource,
        dynsrc: &Arc<dyn DynProfileSource>,
        cancel: &CancelToken,
    ) -> Result<ImageAnalysis, ScanError> {
        let analyses: Vec<CveAnalysis> = image
            .binaries
            .iter()
            .map(|bin| {
                cancel.check()?;
                self.analyze_library_ctl(bin, entry, basis, source, dynsrc, cancel)
            })
            .collect::<Result<_, _>>()?;
        // Best match: the lowest-distance top candidate across libraries.
        // Full-confidence matches always beat degraded (static-only) ones,
        // whose pseudo-distances are not comparable with dynamic distances.
        let mut best: Option<(usize, usize, f64, bool)> = None;
        for (li, a) in analyses.iter().enumerate() {
            if let Some(r) = a.dynamic.ranking.first() {
                let cand = (a.is_degraded(), r.distance);
                let replace = match best {
                    Some((_, _, d, deg)) => cand < (deg, d),
                    None => true,
                };
                if replace {
                    best = Some((li, r.function_index, r.distance, a.is_degraded()));
                }
            }
        }
        Ok(ImageAnalysis {
            cve: entry.entry.cve.clone(),
            basis,
            best: best.map(|(li, fi, distance, degraded)| ImageMatch {
                library: image.binaries[li].lib_name.clone(),
                library_index: li,
                function_index: fi,
                distance,
                degraded,
            }),
            analyses,
        })
    }
}

/// The image-wide best match for a CVE.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ImageMatch {
    /// Library name of the match.
    pub library: String,
    /// Index of the library within the image.
    pub library_index: usize,
    /// Function-table index within that library.
    pub function_index: usize,
    /// Averaged dynamic similarity distance of the match.
    pub distance: f64,
    /// Whether this match comes from a degraded (static-only) analysis.
    #[serde(default)]
    pub degraded: bool,
}

/// A whole-image analysis for one CVE.
#[derive(Debug, Clone)]
pub struct ImageAnalysis {
    /// CVE identifier.
    pub cve: String,
    /// Search basis.
    pub basis: Basis,
    /// The image-wide best match, if any candidate survived anywhere.
    pub best: Option<ImageMatch>,
    /// Per-library analyses, in image order.
    pub analyses: Vec<CveAnalysis>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::shared_detector;

    fn quick_detector() -> Detector {
        shared_detector().clone()
    }

    #[test]
    fn end_to_end_finds_embedded_cve_function() {
        let detector = quick_detector();
        let patchecko = Patchecko::new(detector, PipelineConfig::default());
        let db = corpus::build_vulndb(0, 1);
        let entry = db.get("CVE-2018-9412").unwrap();

        // Small device image so the test stays fast.
        let cat = corpus::full_catalog();
        let device = corpus::build_device(&corpus::android_things_spec(), &cat, 0.05);
        let truth = device.truth_for("CVE-2018-9412").unwrap();
        let target_bin = device.image.binary(&truth.library).unwrap();

        let analysis = patchecko.analyze_library(target_bin, entry, Basis::Vulnerable).unwrap();
        assert_eq!(analysis.dynamic.confidence, Confidence::Full);
        assert!(analysis.dynamic.degradation.is_none());
        assert!(analysis.scan.total > 10);
        assert!(
            analysis.scan.candidates.contains(&truth.function_index),
            "deep learning stage must keep the true function (prob = {:.3})",
            analysis.scan.probs[truth.function_index]
        );
        assert!(
            analysis.dynamic.validated.contains(&truth.function_index),
            "true function survives execution validation"
        );
        let rank = similarity::rank_of(&analysis.dynamic.ranking, truth.function_index)
            .expect("true function is ranked");
        assert!(rank <= 3, "paper: top-3 100% of the time; got rank {rank}");
        // Dynamic stage prunes at least some static false positives or
        // keeps the set (never grows).
        assert!(analysis.dynamic.validated.len() <= analysis.scan.candidates.len());
        assert!(analysis.scan.seconds >= 0.0 && analysis.dynamic.seconds >= 0.0);
    }

    #[test]
    fn analysis_is_deterministic() {
        // The whole hybrid path (fuzzing included) is seeded: two runs on
        // the same inputs produce identical candidate sets, rankings and
        // distances — the property that makes every table reproducible.
        let detector = quick_detector();
        let patchecko = Patchecko::new(detector, PipelineConfig::default());
        let db = corpus::build_vulndb(0, 1);
        let entry = db.get("CVE-2018-9451").unwrap();
        let cat = corpus::full_catalog();
        let device = corpus::build_device(&corpus::android_things_spec(), &cat, 0.05);
        let truth = device.truth_for("CVE-2018-9451").unwrap();
        let bin = device.image.binary(&truth.library).unwrap();
        let a = patchecko.analyze_library(bin, entry, Basis::Vulnerable).unwrap();
        let b = patchecko.analyze_library(bin, entry, Basis::Vulnerable).unwrap();
        assert_eq!(a.scan.probs, b.scan.probs);
        assert_eq!(a.scan.candidates, b.scan.candidates);
        assert_eq!(a.dynamic.validated, b.dynamic.validated);
        assert_eq!(a.dynamic.ranking, b.dynamic.ranking);
    }

    #[test]
    fn degraded_analysis_ranks_by_static_probability() {
        let scan = StaticScan {
            library: "libx".into(),
            total: 6,
            probs: vec![0.1, 0.9, 0.2, 0.95, 0.9, 0.0],
            candidates: vec![1, 3, 4],
            best_ref: vec![0; 6],
            seconds: 0.0,
        };
        let d = Patchecko::degraded_analysis(&scan, "loader failure".into(), 0.0);
        assert!(d.is_degraded());
        assert_eq!(d.confidence, Confidence::Degraded);
        assert_eq!(d.degradation.as_deref(), Some("loader failure"));
        assert!(d.envs.is_empty() && d.validated.is_empty() && d.profiles.is_empty());
        let order: Vec<usize> = d.ranking.iter().map(|r| r.function_index).collect();
        // Descending probability; the 0.9 tie (1 vs 4) breaks by index.
        assert_eq!(order, vec![3, 1, 4]);
        for r in &d.ranking {
            let expect = 1.0 - f64::from(scan.probs[r.function_index]);
            assert!((r.distance - expect).abs() < 1e-12);
        }
    }

    /// Bitwise equality for dynamic-stage results: validated sets, profile
    /// features, ranking order *and* the exact distance bit patterns must
    /// match. `f64` equality would already fail on any drift, but comparing
    /// bit patterns also catches `-0.0` vs `0.0` and keeps NaN comparable.
    fn assert_dynamic_bitwise_eq(a: &DynamicAnalysis, b: &DynamicAnalysis, what: &str) {
        assert_eq!(a.envs, b.envs, "{what}: environments differ");
        assert_eq!(a.validated, b.validated, "{what}: validated sets differ");
        assert_eq!(a.confidence, b.confidence, "{what}: confidence differs");
        assert_eq!(a.degradation, b.degradation, "{what}: degradation differs");
        let bits = |fs: &[DynFeatures]| -> Vec<Vec<u64>> {
            fs.iter().map(|f| f.0.iter().map(|x| x.to_bits()).collect()).collect()
        };
        assert_eq!(bits(&a.reference_profile), bits(&b.reference_profile), "{what}: reference profile differs");
        let prof_bits = |ps: &[(usize, Vec<DynFeatures>)]| -> Vec<(usize, Vec<Vec<u64>>)> {
            ps.iter().map(|(c, fs)| (*c, bits(fs))).collect()
        };
        assert_eq!(prof_bits(&a.profiles), prof_bits(&b.profiles), "{what}: profiles differ");
        let rank_bits = |rs: &[similarity::RankedCandidate]| -> Vec<(usize, u64)> {
            rs.iter().map(|r| (r.function_index, r.distance.to_bits())).collect()
        };
        assert_eq!(rank_bits(&a.ranking), rank_bits(&b.ranking), "{what}: rankings differ");
    }

    /// Satellite: the pool-dispatched parallel arm of `dynamic_stage` must
    /// be bitwise-identical to the serial arm at every worker count. The
    /// candidate set is fabricated to cover every function so the parallel
    /// gate (`candidates.len() > 3`) engages at threads 2 and 8, while
    /// `threads = Some(1)` pins the serial path.
    #[test]
    fn dynamic_stage_identical_across_thread_counts() {
        let db = corpus::build_vulndb(0, 1);
        let entry = db.get("CVE-2018-9412").unwrap();
        let cat = corpus::full_catalog();
        let device = corpus::build_device(&corpus::android_things_spec(), &cat, 0.05);
        let truth = device.truth_for("CVE-2018-9412").unwrap();
        let bin = device.image.binary(&truth.library).unwrap();
        let target = Arc::new(LoadedBinary::load(bin.clone()).unwrap());
        let reference = Arc::new(LoadedBinary::load(entry.vulnerable_bin.clone()).unwrap());
        let n = target.function_count();
        assert!(n > 3, "need > 3 candidates to engage the parallel arm (got {n})");
        let scan = StaticScan {
            library: truth.library.clone(),
            total: n,
            probs: vec![0.5; n],
            candidates: (0..n).collect(),
            best_ref: vec![0; n],
            seconds: 0.0,
        };
        let runs: Vec<(usize, DynamicAnalysis)> = [1usize, 2, 8]
            .into_iter()
            .map(|t| {
                let cfg = PipelineConfig { threads: Some(t), ..PipelineConfig::default() };
                let patchecko = Patchecko::new(quick_detector(), cfg);
                (t, patchecko.dynamic_stage(&target, &scan, &reference, &live_profiling()))
            })
            .collect();
        let (_, serial) = &runs[0];
        assert_eq!(serial.confidence, Confidence::Full);
        assert!(!serial.validated.is_empty(), "fixture must validate at least one candidate");
        for (t, run) in &runs[1..] {
            assert_dynamic_bitwise_eq(serial, run, &format!("threads 1 vs {t}"));
        }
    }

    /// The engine knob must be invisible in results: a full `dynamic_stage`
    /// under the fast engine (env generation, survival filtering, candidate
    /// profiling, ranking) is bitwise-identical to the same stage under the
    /// reference interpreter.
    #[test]
    fn dynamic_stage_identical_across_engines() {
        let db = corpus::build_vulndb(0, 1);
        let entry = db.get("CVE-2018-9412").unwrap();
        let cat = corpus::full_catalog();
        let device = corpus::build_device(&corpus::android_things_spec(), &cat, 0.05);
        let truth = device.truth_for("CVE-2018-9412").unwrap();
        let bin = device.image.binary(&truth.library).unwrap();
        let target = Arc::new(LoadedBinary::load(bin.clone()).unwrap());
        let reference = Arc::new(LoadedBinary::load(entry.vulnerable_bin.clone()).unwrap());
        let n = target.function_count();
        let scan = StaticScan {
            library: truth.library.clone(),
            total: n,
            probs: vec![0.5; n],
            candidates: (0..n).collect(),
            best_ref: vec![0; n],
            seconds: 0.0,
        };
        let runs: Vec<(vm::Engine, DynamicAnalysis)> = [vm::Engine::Fast, vm::Engine::Interp]
            .into_iter()
            .map(|engine| {
                let cfg = PipelineConfig {
                    vm: VmConfig { engine, ..VmConfig::default() },
                    ..PipelineConfig::default()
                };
                let patchecko = Patchecko::new(quick_detector(), cfg);
                (engine, patchecko.dynamic_stage(&target, &scan, &reference, &live_profiling()))
            })
            .collect();
        let (_, fast) = &runs[0];
        assert_eq!(fast.confidence, Confidence::Full);
        assert!(!fast.validated.is_empty(), "fixture must validate at least one candidate");
        assert_dynamic_bitwise_eq(fast, &runs[1].1, "engine fast vs interp");
    }

    /// Same invariance on the degraded/fallback branch: an out-of-range
    /// candidate makes its profiling task panic, so every thread count must
    /// produce the same fallback set, the same degradation message, and
    /// static pseudo-distances appended after the dynamic ranking.
    #[test]
    fn dynamic_stage_degraded_branch_identical_across_thread_counts() {
        let db = corpus::build_vulndb(0, 1);
        let entry = db.get("CVE-2018-9412").unwrap();
        let cat = corpus::full_catalog();
        let device = corpus::build_device(&corpus::android_things_spec(), &cat, 0.05);
        let truth = device.truth_for("CVE-2018-9412").unwrap();
        let bin = device.image.binary(&truth.library).unwrap();
        let target = Arc::new(LoadedBinary::load(bin.clone()).unwrap());
        let reference = Arc::new(LoadedBinary::load(entry.vulnerable_bin.clone()).unwrap());
        let n = target.function_count();
        let rogue = n + 2; // out of range: profiling panics, candidate degrades.
        let scan = StaticScan {
            library: truth.library.clone(),
            total: n,
            probs: vec![0.5; rogue + 1],
            candidates: vec![0, 1, 2, rogue],
            best_ref: vec![0; rogue + 1],
            seconds: 0.0,
        };
        let runs: Vec<(usize, DynamicAnalysis)> = [1usize, 2, 8]
            .into_iter()
            .map(|t| {
                let cfg = PipelineConfig { threads: Some(t), ..PipelineConfig::default() };
                let patchecko = Patchecko::new(quick_detector(), cfg);
                (t, patchecko.dynamic_stage(&target, &scan, &reference, &live_profiling()))
            })
            .collect();
        let (_, serial) = &runs[0];
        assert_eq!(serial.confidence, Confidence::Degraded);
        let msg = serial.degradation.as_deref().expect("degradation message recorded");
        assert!(
            msg.starts_with(&format!("candidate {rogue} profiling panicked:")),
            "unexpected degradation message: {msg}"
        );
        // The rogue candidate ranks last, after every dynamic distance.
        assert_eq!(serial.ranking.last().map(|r| r.function_index), Some(rogue));
        for (t, run) in &runs[1..] {
            assert_dynamic_bitwise_eq(serial, run, &format!("degraded threads 1 vs {t}"));
        }
    }

    /// Satellite: an empty reference set must produce a well-formed empty
    /// scan through the exact *and* the indexed path — zero probs, no NaNs,
    /// no best references, and no spurious candidates even at threshold 0
    /// (where the old code's `0.0 >= threshold` filter would have selected
    /// every function).
    #[test]
    fn empty_reference_set_yields_well_formed_scan_both_paths() {
        let db = corpus::build_vulndb(0, 1);
        let bin = &db.get("CVE-2018-9412").unwrap().vulnerable_bin;
        for retrieval in [Retrieval::Exact, Retrieval::TopK { k: 4 }] {
            let cfg = PipelineConfig { retrieval, ..PipelineConfig::default() };
            let mut patchecko = Patchecko::new(quick_detector(), cfg);
            patchecko.detector.threshold = 0.0;
            let scan = patchecko.scan_library(bin, &[]).unwrap();
            assert_eq!(scan.total, bin.function_count(), "{retrieval}");
            assert_eq!(scan.probs.len(), scan.total, "{retrieval}");
            assert!(scan.probs.iter().all(|p| *p == 0.0), "{retrieval}: probs {:?}", scan.probs);
            assert!(scan.candidates.is_empty(), "{retrieval}: spurious candidates");
            assert!(scan.best_ref.is_empty(), "{retrieval}: best_ref must be empty");
        }
    }

    /// Satellite: a binary with no functions must scan to a well-formed
    /// empty result through both paths (the old reference-major reduction
    /// would divide by a zero `feats.len()`).
    #[test]
    fn empty_binary_yields_well_formed_scan_both_paths() {
        let db = corpus::build_vulndb(0, 1);
        let entry = db.get("CVE-2018-9412").unwrap();
        let references = Patchecko::reference_feature_set(entry, Basis::Vulnerable).unwrap();
        let empty = Binary {
            lib_name: "libempty".to_string(),
            arch: fwbin::isa::Arch::Amd64,
            opt: fwbin::isa::OptLevel::O2,
            functions: Vec::new(),
            strings: Vec::new(),
            globals: Vec::new(),
            imports: Vec::new(),
        };
        for retrieval in [Retrieval::Exact, Retrieval::TopK { k: 4 }] {
            let cfg = PipelineConfig { retrieval, ..PipelineConfig::default() };
            let patchecko = Patchecko::new(quick_detector(), cfg);
            let scan = patchecko.scan_library(&empty, &references).unwrap();
            assert_eq!(scan.total, 0, "{retrieval}");
            assert!(scan.probs.is_empty(), "{retrieval}");
            assert!(scan.candidates.is_empty(), "{retrieval}");
            assert!(scan.best_ref.is_empty(), "{retrieval}");
        }
    }

    /// Tentpole invariant: indexed retrieval at `k = |references|` selects
    /// every pair, so the scan must be bitwise-identical to the exact
    /// all-pairs path; and `best_ref` must be the first-strict argmax of
    /// the product score matrix.
    #[test]
    fn topk_at_full_k_is_bitwise_identical_to_exact() {
        let db = corpus::build_vulndb(0, 1);
        let entry = db.get("CVE-2018-9412").unwrap();
        let references = Patchecko::reference_feature_set(entry, Basis::Vulnerable).unwrap();
        let cat = corpus::full_catalog();
        let device = corpus::build_device(&corpus::android_things_spec(), &cat, 0.05);
        let truth = device.truth_for("CVE-2018-9412").unwrap();
        let bin = device.image.binary(&truth.library).unwrap();

        let exact_p = Patchecko::new(quick_detector(), PipelineConfig::default());
        let exact = exact_p.scan_library(bin, &references).unwrap();
        let topk_p = Patchecko::new(
            quick_detector(),
            PipelineConfig {
                retrieval: Retrieval::TopK { k: references.len() },
                ..PipelineConfig::default()
            },
        );
        let indexed = topk_p.scan_library(bin, &references).unwrap();

        let bits = |v: &[f32]| -> Vec<u32> { v.iter().map(|x| x.to_bits()).collect() };
        assert_eq!(exact.total, indexed.total);
        assert_eq!(bits(&exact.probs), bits(&indexed.probs), "probs must be bitwise identical");
        assert_eq!(exact.candidates, indexed.candidates);
        assert_eq!(exact.best_ref, indexed.best_ref);

        // best_ref = first-strict argmax over the reference-major scores.
        let feats = features::extract_all(bin).unwrap();
        let scores = exact_p.detector.classify_product(&references, &feats);
        assert_eq!(exact.best_ref.len(), exact.total);
        for f in 0..feats.len() {
            let (mut arg, mut best) = (0usize, 0.0f32);
            for r in 0..references.len() {
                let s = scores[r * feats.len() + f];
                if s > best {
                    best = s;
                    arg = r;
                }
            }
            assert_eq!(exact.best_ref[f], arg, "function {f}");
            assert_eq!(exact.probs[f].to_bits(), best.to_bits(), "function {f}");
        }
    }

    #[test]
    fn environments_are_reference_survivable() {
        let detector = quick_detector();
        let patchecko = Patchecko::new(detector, PipelineConfig::default());
        let db = corpus::build_vulndb(0, 1);
        for cve in ["CVE-2018-9412", "CVE-2018-9451", "CVE-2018-9470"] {
            let entry = db.get(cve).unwrap();
            let ref_loaded = LoadedBinary::load(entry.vulnerable_bin.clone()).unwrap();
            let envs = patchecko.make_environments(&ref_loaded);
            assert!(!envs.is_empty(), "{cve}: no surviving environments");
            for env in &envs {
                assert!(ref_loaded.run_any(0, env, &patchecko.config.vm).outcome.is_ok());
            }
        }
    }
}
