//! The PATCHECKO pipeline (Figure 1): static deep-learning scan →
//! execution validation → dynamic feature profiling → similarity ranking.
//!
//! Timings are captured per stage — the "DP" (deep learning) and "DA"
//! (dynamic analysis) columns of Tables VI and VII.

use crate::detector::Detector;
use crate::features::{self, StaticFeatures};
use crate::similarity::{self, RankedCandidate};
use corpus::vulndb::DbEntry;
use fwbin::format::Binary;
use serde::{Deserialize, Serialize};
use std::time::Instant;
use vm::env::ExecEnv;
use vm::exec::VmConfig;
use vm::fuzz::{self, FuzzConfig};
use vm::loader::LoadedBinary;
use vm::DynFeatures;

/// Which version of the CVE function drives the search — Tables VI
/// (vulnerable) vs VII (patched).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Basis {
    /// Search with the vulnerable reference.
    Vulnerable,
    /// Search with the patched reference.
    Patched,
}

impl std::fmt::Display for Basis {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            Basis::Vulnerable => "vulnerable",
            Basis::Patched => "patched",
        })
    }
}

/// Pipeline configuration.
#[derive(Debug, Clone)]
pub struct PipelineConfig {
    /// Interpreter limits.
    pub vm: VmConfig,
    /// Fuzzer settings (execution-environment generation).
    pub fuzz: FuzzConfig,
    /// Minkowski order (paper: 3).
    pub minkowski_p: f64,
    /// Run candidate executions across threads (the paper parallelizes
    /// execution-environment testing).
    pub parallel: bool,
    /// Worker-thread count for parallel stages (candidate profiling,
    /// GEMM kernels, feature extraction, and the scanhub job scheduler).
    /// `None` derives the count from the `PATCHECKO_THREADS` environment
    /// variable or the machine's available parallelism; `Some(1)` forces
    /// serial execution end to end even when `parallel` is set.
    pub threads: Option<usize>,
}

impl Default for PipelineConfig {
    fn default() -> PipelineConfig {
        PipelineConfig {
            vm: VmConfig::default(),
            fuzz: FuzzConfig::default(),
            minkowski_p: similarity::PAPER_P,
            parallel: true,
            threads: None,
        }
    }
}

impl PipelineConfig {
    /// The effective worker count, resolved through the shared
    /// [`neural::pool::resolve_threads`] helper: the explicit
    /// [`PipelineConfig::threads`] override when set, then the
    /// `PATCHECKO_THREADS` environment variable, then the machine's
    /// available parallelism.
    pub fn effective_threads(&self) -> usize {
        neural::pool::resolve_threads(self.threads)
    }
}

/// Where the static stage gets per-function artifacts from. The default
/// [`DirectExtraction`] disassembles and extracts on every call; scanhub's
/// content-addressed artifact store implements this trait to serve cached
/// features instead, which is how a warm re-audit skips disassembly and
/// feature extraction entirely.
pub trait FeatureSource: Sync {
    /// Static features of every function of `bin`, in function-table order.
    fn features_all(&self, bin: &Binary) -> Vec<StaticFeatures>;

    /// Static features of one function of `bin`.
    fn features_one(&self, bin: &Binary, idx: usize) -> StaticFeatures;
}

/// The uncached [`FeatureSource`]: disassemble + extract on every request.
pub struct DirectExtraction;

impl FeatureSource for DirectExtraction {
    fn features_all(&self, bin: &Binary) -> Vec<StaticFeatures> {
        features::extract_all_parallel(bin).expect("target binaries decode")
    }

    fn features_one(&self, bin: &Binary, idx: usize) -> StaticFeatures {
        let dis = disasm::disassemble(bin, idx).expect("target binaries decode");
        features::extract(&dis, &bin.functions[idx])
    }
}

/// Result of the static (deep learning) stage on one library.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct StaticScan {
    /// Scanned library name.
    pub library: String,
    /// Total functions scanned.
    pub total: usize,
    /// Per-function similarity probability.
    pub probs: Vec<f32>,
    /// Indices with probability ≥ threshold (the candidate set).
    pub candidates: Vec<usize>,
    /// Wall-clock seconds (the "DP" column).
    pub seconds: f64,
}

/// Result of the dynamic stage.
#[derive(Debug, Clone)]
pub struct DynamicAnalysis {
    /// The fixed execution environments used.
    pub envs: Vec<ExecEnv>,
    /// Reference function's dynamic features per environment.
    pub reference_profile: Vec<DynFeatures>,
    /// Candidates that survived execution validation (the "Execution"
    /// column).
    pub validated: Vec<usize>,
    /// Dynamic profiles of the validated candidates.
    pub profiles: Vec<(usize, Vec<DynFeatures>)>,
    /// Final similarity ranking (ascending distance).
    pub ranking: Vec<RankedCandidate>,
    /// Wall-clock seconds (the "DA" column).
    pub seconds: f64,
}

/// A full per-CVE hybrid analysis.
#[derive(Debug, Clone)]
pub struct CveAnalysis {
    /// CVE identifier.
    pub cve: String,
    /// Search basis.
    pub basis: Basis,
    /// Static stage result.
    pub scan: StaticScan,
    /// Dynamic stage result.
    pub dynamic: DynamicAnalysis,
}

impl CveAnalysis {
    /// The best-ranked candidate function index, if any survived.
    pub fn top_candidate(&self) -> Option<usize> {
        self.dynamic.ranking.first().map(|r| r.function_index)
    }
}

/// The PATCHECKO analyzer: a trained detector plus pipeline settings.
pub struct Patchecko {
    /// Trained deep-learning detector.
    pub detector: Detector,
    /// Pipeline settings.
    pub config: PipelineConfig,
}

impl Patchecko {
    /// Create an analyzer. Sizes the shared worker pool from the config,
    /// so `--threads 1` forces serial kernels end to end and a larger
    /// override widens every parallel stage.
    pub fn new(detector: Detector, config: PipelineConfig) -> Patchecko {
        neural::pool::set_global_threads(config.effective_threads());
        Patchecko { detector, config }
    }

    /// Static features of a database entry's primary reference function.
    pub fn reference_features(entry: &DbEntry, basis: Basis) -> StaticFeatures {
        Self::reference_features_with(entry, basis, &DirectExtraction)
    }

    /// [`Patchecko::reference_features`] through an explicit
    /// [`FeatureSource`] (reference binaries are content-addressable too).
    pub fn reference_features_with(
        entry: &DbEntry,
        basis: Basis,
        source: &dyn FeatureSource,
    ) -> StaticFeatures {
        let bin = match basis {
            Basis::Vulnerable => &entry.vulnerable_bin,
            Basis::Patched => &entry.patched_bin,
        };
        source.features_one(bin, 0)
    }

    /// Static features of every multi-platform reference variant (§II-A:
    /// the database compiles the reference "for different hardware
    /// architectures and software platforms").
    pub fn reference_feature_set(entry: &DbEntry, basis: Basis) -> Vec<StaticFeatures> {
        Self::reference_feature_set_with(entry, basis, &DirectExtraction)
    }

    /// [`Patchecko::reference_feature_set`] through an explicit
    /// [`FeatureSource`].
    pub fn reference_feature_set_with(
        entry: &DbEntry,
        basis: Basis,
        source: &dyn FeatureSource,
    ) -> Vec<StaticFeatures> {
        entry
            .reference_variants(basis == Basis::Patched)
            .iter()
            .map(|bin| source.features_one(bin, 0))
            .collect()
    }

    /// Stage 1: scan every function of `bin` against the reference feature
    /// vectors with the deep-learning classifier. A function's score is
    /// its best match across the reference variants.
    pub fn scan_library(&self, bin: &Binary, references: &[StaticFeatures]) -> StaticScan {
        self.scan_library_with(bin, references, &DirectExtraction)
    }

    /// [`Patchecko::scan_library`] with features served by `source`. All
    /// (reference × function) pairs are packed into one
    /// [`crate::detector::Detector::classify_product`] call, so the whole
    /// library scan is a single forward pass per layer regardless of how
    /// many reference variants the database carries — and every feature
    /// vector is normalized once instead of once per pair.
    pub fn scan_library_with(
        &self,
        bin: &Binary,
        references: &[StaticFeatures],
        source: &dyn FeatureSource,
    ) -> StaticScan {
        let started = Instant::now();
        let feats = source.features_all(bin);
        let scores = self.detector.classify_product(references, &feats);
        let mut probs = vec![0.0f32; feats.len()];
        for (i, s) in scores.iter().enumerate() {
            let f = i % feats.len();
            probs[f] = probs[f].max(*s);
        }
        let candidates = probs
            .iter()
            .enumerate()
            .filter(|(_, p)| **p >= self.detector.threshold)
            .map(|(i, _)| i)
            .collect();
        StaticScan {
            library: bin.lib_name.clone(),
            total: feats.len(),
            probs,
            candidates,
            seconds: started.elapsed().as_secs_f64(),
        }
    }

    /// Generate execution environments by fuzzing the reference function,
    /// keeping only environments the reference itself survives ("We tested
    /// that these inputs worked with both the vulnerable and patched
    /// functions").
    pub fn make_environments(&self, reference: &LoadedBinary) -> Vec<ExecEnv> {
        let envs = fuzz::fuzz_function(reference, 0, &self.config.fuzz, &self.config.vm);
        envs.into_iter()
            .filter(|e| reference.run_any(0, e, &self.config.vm).outcome.is_ok())
            .collect()
    }

    /// Profile one function under every environment. Returns `None` if any
    /// run faults or times out (execution-validation failure).
    fn profile(
        target: &LoadedBinary,
        func: usize,
        envs: &[ExecEnv],
        vm_cfg: &VmConfig,
    ) -> Option<Vec<DynFeatures>> {
        let mut out = Vec::with_capacity(envs.len());
        for env in envs {
            let r = target.run_any(func, env, vm_cfg);
            if !r.outcome.is_ok() {
                return None;
            }
            out.push(r.features);
        }
        Some(out)
    }

    /// Stage 2+3: execution-validate the candidates, profile the survivors,
    /// and rank them against the reference profile.
    pub fn dynamic_stage(
        &self,
        target: &LoadedBinary,
        candidates: &[usize],
        reference: &LoadedBinary,
    ) -> DynamicAnalysis {
        let started = Instant::now();
        let envs = self.make_environments(reference);
        let reference_profile = Self::profile(reference, 0, &envs, &self.config.vm)
            .unwrap_or_default();

        // Validate + profile candidates (in parallel when configured; each
        // candidate's environments replay independently).
        let results: Vec<Option<Vec<DynFeatures>>> = if self.config.parallel
            && candidates.len() > 3
            && self.config.effective_threads() > 1
        {
            let n_threads = self.config.effective_threads();
            let chunk = candidates.len().div_ceil(n_threads).max(1);
            let mut results = vec![None; candidates.len()];
            crossbeam::thread::scope(|s| {
                for (slot, cand) in results.chunks_mut(chunk).zip(candidates.chunks(chunk)) {
                    let envs = &envs;
                    let vm_cfg = &self.config.vm;
                    s.spawn(move |_| {
                        for (o, &c) in slot.iter_mut().zip(cand) {
                            *o = Self::profile(target, c, envs, vm_cfg);
                        }
                    });
                }
            })
            .expect("candidate profiling worker panicked");
            results
        } else {
            candidates
                .iter()
                .map(|&c| Self::profile(target, c, &envs, &self.config.vm))
                .collect()
        };

        let mut validated = Vec::new();
        let mut profiles = Vec::new();
        for (&c, r) in candidates.iter().zip(results) {
            if let Some(p) = r {
                validated.push(c);
                profiles.push((c, p));
            }
        }
        let ranking = similarity::rank(&reference_profile, &profiles, self.config.minkowski_p);
        DynamicAnalysis {
            envs,
            reference_profile,
            validated,
            profiles,
            ranking,
            seconds: started.elapsed().as_secs_f64(),
        }
    }

    /// Run the full hybrid analysis of one CVE against one target library
    /// binary.
    pub fn analyze_library(
        &self,
        target_bin: &Binary,
        entry: &DbEntry,
        basis: Basis,
    ) -> CveAnalysis {
        self.analyze_library_with(target_bin, entry, basis, &DirectExtraction)
    }

    /// [`Patchecko::analyze_library`] with static features served by
    /// `source` (target and reference sides alike).
    pub fn analyze_library_with(
        &self,
        target_bin: &Binary,
        entry: &DbEntry,
        basis: Basis,
        source: &dyn FeatureSource,
    ) -> CveAnalysis {
        let references = Self::reference_feature_set_with(entry, basis, source);
        let scan = self.scan_library_with(target_bin, &references, source);
        // Dynamic stage: reference compiled for the *target's* platform —
        // the paper executes both functions on the device itself.
        let ref_bin = entry.reference_for(target_bin.arch, basis == Basis::Patched);
        let ref_loaded = LoadedBinary::load(ref_bin).expect("reference binaries load");
        let target_loaded = LoadedBinary::load(target_bin.clone()).expect("target binaries load");
        let dynamic = self.dynamic_stage(&target_loaded, &scan.candidates, &ref_loaded);
        CveAnalysis { cve: entry.entry.cve.clone(), basis, scan, dynamic }
    }

    /// Scan a whole firmware image for one CVE: every library is analyzed
    /// and the per-library results are returned alongside the image-wide
    /// best match. This is PATCHECKO's deployment interface — "PATCHECKO
    /// outputs the vulnerable points (functions) within the target firmware
    /// image and the corresponding CVE numbers".
    pub fn analyze_image(
        &self,
        image: &fwbin::FirmwareImage,
        entry: &DbEntry,
        basis: Basis,
    ) -> ImageAnalysis {
        self.analyze_image_with(image, entry, basis, &DirectExtraction)
    }

    /// [`Patchecko::analyze_image`] with static features served by `source`.
    pub fn analyze_image_with(
        &self,
        image: &fwbin::FirmwareImage,
        entry: &DbEntry,
        basis: Basis,
        source: &dyn FeatureSource,
    ) -> ImageAnalysis {
        let analyses: Vec<CveAnalysis> = image
            .binaries
            .iter()
            .map(|bin| self.analyze_library_with(bin, entry, basis, source))
            .collect();
        // Best match: the lowest-distance top candidate across libraries.
        let mut best: Option<(usize, usize, f64)> = None;
        for (li, a) in analyses.iter().enumerate() {
            if let Some(r) = a.dynamic.ranking.first() {
                match best {
                    Some((_, _, d)) if d <= r.distance => {}
                    _ => best = Some((li, r.function_index, r.distance)),
                }
            }
        }
        ImageAnalysis {
            cve: entry.entry.cve.clone(),
            basis,
            best: best.map(|(li, fi, distance)| ImageMatch {
                library: image.binaries[li].lib_name.clone(),
                library_index: li,
                function_index: fi,
                distance,
            }),
            analyses,
        }
    }
}

/// The image-wide best match for a CVE.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ImageMatch {
    /// Library name of the match.
    pub library: String,
    /// Index of the library within the image.
    pub library_index: usize,
    /// Function-table index within that library.
    pub function_index: usize,
    /// Averaged dynamic similarity distance of the match.
    pub distance: f64,
}

/// A whole-image analysis for one CVE.
#[derive(Debug, Clone)]
pub struct ImageAnalysis {
    /// CVE identifier.
    pub cve: String,
    /// Search basis.
    pub basis: Basis,
    /// The image-wide best match, if any candidate survived anywhere.
    pub best: Option<ImageMatch>,
    /// Per-library analyses, in image order.
    pub analyses: Vec<CveAnalysis>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::shared_detector;

    fn quick_detector() -> Detector {
        shared_detector().clone()
    }

    #[test]
    fn end_to_end_finds_embedded_cve_function() {
        let detector = quick_detector();
        let patchecko = Patchecko::new(detector, PipelineConfig::default());
        let db = corpus::build_vulndb(0, 1);
        let entry = db.get("CVE-2018-9412").unwrap();

        // Small device image so the test stays fast.
        let cat = corpus::full_catalog();
        let device = corpus::build_device(&corpus::android_things_spec(), &cat, 0.05);
        let truth = device.truth_for("CVE-2018-9412").unwrap();
        let target_bin = device.image.binary(&truth.library).unwrap();

        let analysis = patchecko.analyze_library(target_bin, entry, Basis::Vulnerable);
        assert!(analysis.scan.total > 10);
        assert!(
            analysis.scan.candidates.contains(&truth.function_index),
            "deep learning stage must keep the true function (prob = {:.3})",
            analysis.scan.probs[truth.function_index]
        );
        assert!(
            analysis.dynamic.validated.contains(&truth.function_index),
            "true function survives execution validation"
        );
        let rank = similarity::rank_of(&analysis.dynamic.ranking, truth.function_index)
            .expect("true function is ranked");
        assert!(rank <= 3, "paper: top-3 100% of the time; got rank {rank}");
        // Dynamic stage prunes at least some static false positives or
        // keeps the set (never grows).
        assert!(analysis.dynamic.validated.len() <= analysis.scan.candidates.len());
        assert!(analysis.scan.seconds >= 0.0 && analysis.dynamic.seconds >= 0.0);
    }

    #[test]
    fn analysis_is_deterministic() {
        // The whole hybrid path (fuzzing included) is seeded: two runs on
        // the same inputs produce identical candidate sets, rankings and
        // distances — the property that makes every table reproducible.
        let detector = quick_detector();
        let patchecko = Patchecko::new(detector, PipelineConfig::default());
        let db = corpus::build_vulndb(0, 1);
        let entry = db.get("CVE-2018-9451").unwrap();
        let cat = corpus::full_catalog();
        let device = corpus::build_device(&corpus::android_things_spec(), &cat, 0.05);
        let truth = device.truth_for("CVE-2018-9451").unwrap();
        let bin = device.image.binary(&truth.library).unwrap();
        let a = patchecko.analyze_library(bin, entry, Basis::Vulnerable);
        let b = patchecko.analyze_library(bin, entry, Basis::Vulnerable);
        assert_eq!(a.scan.probs, b.scan.probs);
        assert_eq!(a.scan.candidates, b.scan.candidates);
        assert_eq!(a.dynamic.validated, b.dynamic.validated);
        assert_eq!(a.dynamic.ranking, b.dynamic.ranking);
    }

    #[test]
    fn environments_are_reference_survivable() {
        let detector = quick_detector();
        let patchecko = Patchecko::new(detector, PipelineConfig::default());
        let db = corpus::build_vulndb(0, 1);
        for cve in ["CVE-2018-9412", "CVE-2018-9451", "CVE-2018-9470"] {
            let entry = db.get(cve).unwrap();
            let ref_loaded = LoadedBinary::load(entry.vulnerable_bin.clone()).unwrap();
            let envs = patchecko.make_environments(&ref_loaded);
            assert!(!envs.is_empty(), "{cve}: no surviving environments");
            for env in &envs {
                assert!(ref_loaded.run_any(0, env, &patchecko.config.vm).outcome.is_ok());
            }
        }
    }
}
