//! # patchecko-core — the PATCHECKO analysis framework
//!
//! Reproduction of the hybrid vulnerability and patch-presence detection
//! pipeline of *"Hybrid Firmware Analysis for Known Mobile and IoT Security
//! Vulnerabilities"* (DSN 2020):
//!
//! * [`features`] — the 48 static function features of Table I and the
//!   pair-input normalizer;
//! * [`detector`] — the 6-layer deep-learning pair classifier trained on
//!   Dataset I (Figure 4 / Figure 8);
//! * [`pipeline`] — the Figure 1 workflow: static scan → execution
//!   validation → dynamic profiling → Minkowski ranking;
//! * [`dynsource`] — where the dynamic stage gets execution environments
//!   and dynamic profiles from (live execution, or scanhub's cached
//!   dynamic lane for zero-VM warm re-audits);
//! * [`similarity`] — Equations 1–2 (Minkowski p = 3 over the 21 Table II
//!   dynamic features, averaged over execution environments);
//! * [`differential`] — the §III-D patch-presence engine;
//! * [`baseline`] — BinDiff-style bipartite matching and the Gemini-style
//!   structure2vec static baseline;
//! * [`eval`] — the §V harness producing the rows of Tables VI–VIII and
//!   the series of Figures 7–8.
//!
//! ## Quick start
//!
//! ```no_run
//! use patchecko_core::eval::{build_evaluation, EvaluationConfig};
//! use patchecko_core::pipeline::Basis;
//!
//! // Build datasets, train the detector, construct both device images.
//! let ev = build_evaluation(&EvaluationConfig::default());
//! println!("detector accuracy: {:.1}%", ev.metrics.accuracy * 100.0);
//!
//! // Table VI: hybrid accuracy per CVE on Android Things, vulnerable basis.
//! for row in ev.table_rows(0, Basis::Vulnerable) {
//!     println!("{}: FP {:.2}% rank {:?}", row.cve, row.fp_percent, row.ranking);
//! }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod baseline;
pub mod cancel;
pub mod detector;
pub mod differential;
pub mod dynsource;
pub mod error;
pub mod eval;
pub mod features;
pub mod pipeline;
pub mod report;
pub mod retrieval;
pub mod similarity;
pub mod stream;
#[cfg(test)]
mod testutil;

pub use cancel::CancelToken;
pub use detector::{Detector, DetectorConfig, TestMetrics};
pub use differential::{detect_patch, DifferentialConfig, PatchVerdict};
pub use dynsource::{DynProfile, DynProfileSource, EnvSet, LiveProfiling};
pub use error::{ErrorClass, ScanError};
pub use eval::{build_evaluation, Evaluation, EvaluationConfig};
pub use features::{Normalizer, StaticFeatures, NUM_STATIC_FEATURES, STATIC_FEATURE_NAMES};
pub use pipeline::{
    Basis, Confidence, CveAnalysis, DirectExtraction, FeatureSource, ImageAnalysis, ImageMatch,
    Patchecko, PipelineConfig,
};
pub use report::{AuditFinding, AuditReport, AuditStatus};
pub use retrieval::{FunctionSignature, Retrieval, SignatureSet, DEFAULT_TOP_K};
pub use stream::{StreamMatch, StreamScanReport, WorkingSet, WorkingSetPermit};
pub use similarity::{minkowski, rank, rank_of, sim_over_envs, RankedCandidate, PAPER_P};
