//! Function semantic similarity (§III-C): Minkowski distance over dynamic
//! feature vectors, averaged across execution environments (Equations 1
//! and 2 of the paper, with p = 3).

use serde::{Deserialize, Serialize};
use vm::DynFeatures;

/// The paper's Minkowski exponent ("In our case, we set p=3").
pub const PAPER_P: f64 = 3.0;

/// Minkowski distance of order `p` between two equal-length vectors
/// (Equation 1). `p = 1` is Manhattan, `p = 2` Euclidean.
///
/// # Panics
/// Panics if lengths differ or `p <= 0`.
pub fn minkowski(x: &[f64], y: &[f64], p: f64) -> f64 {
    assert_eq!(x.len(), y.len(), "feature vectors must have equal length");
    assert!(p > 0.0, "Minkowski order must be positive");
    let sum: f64 = x.iter().zip(y).map(|(a, b)| (a - b).abs().powf(p)).sum();
    sum.powf(1.0 / p)
}

/// Equation 2: mean Minkowski distance over K execution environments.
/// Lower is more similar. Environments where either side is missing are
/// skipped; returns `f64::INFINITY` when no environment is comparable.
pub fn sim_over_envs(f: &[DynFeatures], g: &[DynFeatures], p: f64) -> f64 {
    let k = f.len().min(g.len());
    if k == 0 {
        return f64::INFINITY;
    }
    let mut total = 0.0;
    for i in 0..k {
        total += minkowski(f[i].as_slice(), g[i].as_slice(), p);
    }
    total / k as f64
}

/// One ranked candidate.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RankedCandidate {
    /// Candidate's function-table index in the target binary.
    pub function_index: usize,
    /// Averaged similarity distance (Equation 2; lower = more similar).
    pub distance: f64,
}

/// Rank candidates by averaged distance to the reference (ascending —
/// "if this distance is small, there will be a high degree of similarity").
pub fn rank(
    reference: &[DynFeatures],
    candidates: &[(usize, Vec<DynFeatures>)],
    p: f64,
) -> Vec<RankedCandidate> {
    let mut out: Vec<RankedCandidate> = candidates
        .iter()
        .map(|(idx, envs)| RankedCandidate {
            function_index: *idx,
            distance: sim_over_envs(reference, envs, p),
        })
        .collect();
    out.sort_by(|a, b| a.distance.partial_cmp(&b.distance).unwrap_or(std::cmp::Ordering::Equal));
    out
}

/// Position (1-based) of `function_index` in a ranking, if present.
pub fn rank_of(ranking: &[RankedCandidate], function_index: usize) -> Option<usize> {
    ranking.iter().position(|r| r.function_index == function_index).map(|i| i + 1)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dyn_feats(v: f64) -> DynFeatures {
        DynFeatures([v; vm::NUM_DYN_FEATURES])
    }

    #[test]
    fn minkowski_reduces_to_known_metrics() {
        let x = [0.0, 0.0];
        let y = [3.0, 4.0];
        assert_eq!(minkowski(&x, &y, 1.0), 7.0);
        assert_eq!(minkowski(&x, &y, 2.0), 5.0);
        // p = 3: (27 + 64)^(1/3)
        assert!((minkowski(&x, &y, 3.0) - 91.0f64.powf(1.0 / 3.0)).abs() < 1e-12);
    }

    #[test]
    fn minkowski_metric_axioms() {
        let a = [1.0, 2.0, 3.0];
        let b = [4.0, 0.0, 1.0];
        let c = [2.0, 2.0, 2.0];
        for p in [1.0, 2.0, 3.0] {
            assert_eq!(minkowski(&a, &a, p), 0.0);
            assert_eq!(minkowski(&a, &b, p), minkowski(&b, &a, p));
            assert!(minkowski(&a, &b, p) <= minkowski(&a, &c, p) + minkowski(&c, &b, p) + 1e-12);
        }
    }

    #[test]
    fn sim_over_envs_averages() {
        let f = vec![dyn_feats(0.0), dyn_feats(0.0)];
        let g = vec![dyn_feats(1.0), dyn_feats(3.0)];
        // Per-env distance with p=1: 21*1 = 21 and 21*3 = 63; mean = 42.
        assert_eq!(sim_over_envs(&f, &g, 1.0), 42.0);
    }

    #[test]
    fn empty_envs_are_infinitely_far() {
        assert_eq!(sim_over_envs(&[], &[dyn_feats(0.0)], 3.0), f64::INFINITY);
    }

    #[test]
    fn ranking_sorts_ascending_and_finds_target() {
        let reference = vec![dyn_feats(5.0)];
        let candidates = vec![
            (10, vec![dyn_feats(9.0)]),
            (29, vec![dyn_feats(5.1)]),
            (42, vec![dyn_feats(7.0)]),
        ];
        let ranking = rank(&reference, &candidates, PAPER_P);
        assert_eq!(ranking[0].function_index, 29);
        assert_eq!(rank_of(&ranking, 29), Some(1));
        assert_eq!(rank_of(&ranking, 42), Some(2));
        assert_eq!(rank_of(&ranking, 999), None);
        assert!(ranking[0].distance <= ranking[1].distance);
    }
}
