//! Function semantic similarity (§III-C): Minkowski distance over dynamic
//! feature vectors, averaged across execution environments (Equations 1
//! and 2 of the paper, with p = 3).

use serde::{Deserialize, Serialize};
use vm::DynFeatures;

/// The paper's Minkowski exponent ("In our case, we set p=3").
pub const PAPER_P: f64 = 3.0;

/// Minkowski distance of order `p` between two equal-length vectors
/// (Equation 1). `p = 1` is Manhattan, `p = 2` Euclidean.
///
/// # Panics
/// Panics if lengths differ or `p <= 0`.
pub fn minkowski(x: &[f64], y: &[f64], p: f64) -> f64 {
    assert_eq!(x.len(), y.len(), "feature vectors must have equal length");
    assert!(p > 0.0, "Minkowski order must be positive");
    let sum: f64 = x.iter().zip(y).map(|(a, b)| (a - b).abs().powf(p)).sum();
    sum.powf(1.0 / p)
}

/// Equation 2: mean Minkowski distance over K execution environments.
/// Lower is more similar.
///
/// When the two sides profiled a different number of environments, only
/// the common prefix (`min(f.len(), g.len())` environments) is compared;
/// the surplus environments on the longer side are skipped and counted
/// in the global `similarity.skipped_envs` telemetry counter. Returns
/// `f64::INFINITY` when no environment is comparable.
pub fn sim_over_envs(f: &[DynFeatures], g: &[DynFeatures], p: f64) -> f64 {
    let k = f.len().min(g.len());
    let skipped = f.len().max(g.len()) - k;
    if skipped > 0 {
        scope::add("similarity.skipped_envs", skipped as u64);
    }
    if k == 0 {
        return f64::INFINITY;
    }
    let mut total = 0.0;
    for i in 0..k {
        total += minkowski(f[i].as_slice(), g[i].as_slice(), p);
    }
    total / k as f64
}

/// Total order over distances for ranking: ordinary `total_cmp` for
/// comparable values, with every NaN (either sign) forced *after* all
/// numbers, including `+INFINITY`. A NaN distance means the comparison
/// itself was meaningless (e.g. a feature vector contaminated by an
/// overflow), so such candidates must sink to the bottom of a ranking
/// rather than landing wherever the sort happened to leave them.
pub fn distance_order(a: f64, b: f64) -> std::cmp::Ordering {
    use std::cmp::Ordering;
    match (a.is_nan(), b.is_nan()) {
        (true, true) => Ordering::Equal,
        (true, false) => Ordering::Greater,
        (false, true) => Ordering::Less,
        (false, false) => a.total_cmp(&b),
    }
}

/// One ranked candidate.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RankedCandidate {
    /// Candidate's function-table index in the target binary.
    pub function_index: usize,
    /// Averaged similarity distance (Equation 2; lower = more similar).
    pub distance: f64,
}

/// Rank candidates by averaged distance to the reference (ascending —
/// "if this distance is small, there will be a high degree of similarity").
pub fn rank(
    reference: &[DynFeatures],
    candidates: &[(usize, Vec<DynFeatures>)],
    p: f64,
) -> Vec<RankedCandidate> {
    let mut out: Vec<RankedCandidate> = candidates
        .iter()
        .map(|(idx, envs)| RankedCandidate {
            function_index: *idx,
            distance: sim_over_envs(reference, envs, p),
        })
        .collect();
    // A NaN distance used to hit `partial_cmp(..).unwrap_or(Equal)` here,
    // which breaks sort transitivity and could leave a poisoned candidate
    // ranked first. NaN now sorts strictly last (see `distance_order`),
    // with the function index as a stable tiebreak.
    out.sort_by(|a, b| {
        distance_order(a.distance, b.distance).then(a.function_index.cmp(&b.function_index))
    });
    out
}

/// Position (1-based) of `function_index` in a ranking, if present.
pub fn rank_of(ranking: &[RankedCandidate], function_index: usize) -> Option<usize> {
    ranking.iter().position(|r| r.function_index == function_index).map(|i| i + 1)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dyn_feats(v: f64) -> DynFeatures {
        DynFeatures([v; vm::NUM_DYN_FEATURES])
    }

    #[test]
    fn minkowski_reduces_to_known_metrics() {
        let x = [0.0, 0.0];
        let y = [3.0, 4.0];
        assert_eq!(minkowski(&x, &y, 1.0), 7.0);
        assert_eq!(minkowski(&x, &y, 2.0), 5.0);
        // p = 3: (27 + 64)^(1/3)
        assert!((minkowski(&x, &y, 3.0) - 91.0f64.powf(1.0 / 3.0)).abs() < 1e-12);
    }

    #[test]
    fn minkowski_metric_axioms() {
        let a = [1.0, 2.0, 3.0];
        let b = [4.0, 0.0, 1.0];
        let c = [2.0, 2.0, 2.0];
        for p in [1.0, 2.0, 3.0] {
            assert_eq!(minkowski(&a, &a, p), 0.0);
            assert_eq!(minkowski(&a, &b, p), minkowski(&b, &a, p));
            assert!(minkowski(&a, &b, p) <= minkowski(&a, &c, p) + minkowski(&c, &b, p) + 1e-12);
        }
    }

    #[test]
    fn sim_over_envs_averages() {
        let f = vec![dyn_feats(0.0), dyn_feats(0.0)];
        let g = vec![dyn_feats(1.0), dyn_feats(3.0)];
        // Per-env distance with p=1: 21*1 = 21 and 21*3 = 63; mean = 42.
        assert_eq!(sim_over_envs(&f, &g, 1.0), 42.0);
    }

    #[test]
    fn empty_envs_are_infinitely_far() {
        assert_eq!(sim_over_envs(&[], &[dyn_feats(0.0)], 3.0), f64::INFINITY);
    }

    #[test]
    fn ranking_sorts_ascending_and_finds_target() {
        let reference = vec![dyn_feats(5.0)];
        let candidates = vec![
            (10, vec![dyn_feats(9.0)]),
            (29, vec![dyn_feats(5.1)]),
            (42, vec![dyn_feats(7.0)]),
        ];
        let ranking = rank(&reference, &candidates, PAPER_P);
        assert_eq!(ranking[0].function_index, 29);
        assert_eq!(rank_of(&ranking, 29), Some(1));
        assert_eq!(rank_of(&ranking, 42), Some(2));
        assert_eq!(rank_of(&ranking, 999), None);
        assert!(ranking[0].distance <= ranking[1].distance);
    }

    #[test]
    fn nan_distances_rank_last_not_first() {
        // A candidate whose profile is contaminated with NaN must never
        // outrank a real match. Before the `distance_order` fix, the
        // NaN candidate compared Equal to everything and its final rank
        // depended on the incoming order.
        let reference = vec![dyn_feats(5.0)];
        let poisoned = DynFeatures([f64::NAN; vm::NUM_DYN_FEATURES]);
        let candidates = vec![
            (7, vec![poisoned.clone()]),
            (29, vec![dyn_feats(5.1)]),
            (3, vec![poisoned]),
            (42, vec![dyn_feats(7.0)]),
        ];
        let ranking = rank(&reference, &candidates, PAPER_P);
        assert_eq!(ranking[0].function_index, 29);
        assert_eq!(ranking[1].function_index, 42);
        // Both NaN candidates sink to the bottom, in stable index order.
        assert_eq!(ranking[2].function_index, 3);
        assert_eq!(ranking[3].function_index, 7);
        assert!(ranking[2].distance.is_nan() && ranking[3].distance.is_nan());
    }

    #[test]
    fn distance_order_is_total_with_nan_last() {
        use std::cmp::Ordering::*;
        assert_eq!(distance_order(1.0, 2.0), Less);
        assert_eq!(distance_order(2.0, 1.0), Greater);
        assert_eq!(distance_order(1.0, 1.0), Equal);
        assert_eq!(distance_order(f64::INFINITY, f64::NAN), Less);
        assert_eq!(distance_order(f64::NAN, f64::NEG_INFINITY), Greater);
        // -NaN must not slip below real numbers via raw total_cmp.
        assert_eq!(distance_order(-f64::NAN, -1.0), Greater);
        assert_eq!(distance_order(f64::NAN, -f64::NAN), Equal);
    }

    #[test]
    fn mismatched_env_counts_compare_prefix_and_record_skips() {
        let before = scope::snapshot().counter("similarity.skipped_envs");
        let f = vec![dyn_feats(0.0), dyn_feats(0.0), dyn_feats(99.0)];
        let g = vec![dyn_feats(1.0), dyn_feats(3.0)];
        // Only the two common environments are averaged (21 and 63).
        assert_eq!(sim_over_envs(&f, &g, 1.0), 42.0);
        let after = scope::snapshot().counter("similarity.skipped_envs");
        assert_eq!(after - before, 1, "one surplus environment was skipped");
    }
}
