//! Shared test fixtures: a medium-scale detector trained once per test
//! process (training is deterministic, so every test sees the same model).

#![cfg(test)]

use crate::detector::{self, Detector, DetectorConfig};
use corpus::dataset1::Dataset1Config;
use neural::net::TrainConfig;
use std::sync::OnceLock;

/// A detector trained on a 20-library Dataset I — large enough for
/// realistic end-to-end behaviour (≈93 % held-out accuracy), small enough
/// to train once in the test profile.
pub fn shared_detector() -> &'static Detector {
    static DET: OnceLock<Detector> = OnceLock::new();
    DET.get_or_init(|| {
        let ds = corpus::build_dataset1(&Dataset1Config {
            num_libraries: 20,
            min_functions: 8,
            max_functions: 14,
            seed: 1,
            include_catalog: true,
        });
        let cfg = DetectorConfig {
            pairs_per_function: 8,
            train: TrainConfig { epochs: 25, batch: 256, lr: 1e-3, seed: 7, ..Default::default() },
            ..DetectorConfig::default()
        };
        detector::train(&ds, &cfg).0
    })
}
