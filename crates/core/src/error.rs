//! The typed scan-error taxonomy.
//!
//! §III-B of the paper defines the dynamic stage by its failure modes —
//! candidates that "terminate, trigger a system exception, or go into an
//! infinite loop" — and a long-running scan service inherits the same
//! concern everywhere else: corrupt cached artifacts, malformed firmware
//! images, worker deaths. [`ScanError`] names every failure the pipeline
//! can produce and classifies each as *transient* (retrying can succeed:
//! a worker died, an injected fault fired, a cached artifact was
//! quarantined and will be re-extracted) or *permanent* (retrying cannot
//! help: the input itself is malformed or the request names something
//! that does not exist). The scanhub scheduler retries transient
//! failures with bounded backoff and records permanent ones without
//! taking down the batch.

use serde::{Deserialize, Serialize};

/// Retry classification of a [`ScanError`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ErrorClass {
    /// A retry may succeed (worker death, injected fault, quarantined
    /// cache entry, filesystem hiccup).
    Transient,
    /// A retry cannot succeed (malformed input, unknown identifier).
    Permanent,
}

impl std::fmt::Display for ErrorClass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            ErrorClass::Transient => "transient",
            ErrorClass::Permanent => "permanent",
        })
    }
}

/// Every failure the scan/audit path can surface. All payloads are plain
/// strings so the error serializes into job records and CLI `--json`
/// output.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum ScanError {
    /// A binary failed to load: malformed FWB container or undecodable
    /// function code (the loader's [`vm::LoadError`] with its
    /// section/offset context, plus which library it came from).
    Load {
        /// Library name of the failing binary.
        library: String,
        /// Loader detail (function index, section, byte offset).
        detail: String,
    },
    /// Static feature extraction failed on one function (corrupt code
    /// bytes reached the disassembler).
    Extraction {
        /// Library name of the binary under extraction.
        library: String,
        /// Function-table index that failed.
        function: usize,
        /// Decoder detail (opcode/offset).
        detail: String,
    },
    /// A cached artifact failed checksum/schema validation and was
    /// quarantined. Transient by construction: the quarantined entry is
    /// evicted, so a retry re-extracts from the binary.
    CorruptArtifact {
        /// Hex artifact key, when one was recoverable.
        key: String,
        /// What failed to validate.
        detail: String,
    },
    /// A worker panicked mid-job (the scheduler's `catch_unwind` caught
    /// it). Transient: the job re-runs on a healthy worker.
    WorkerPanic {
        /// Stringified panic payload.
        detail: String,
    },
    /// A fault injected by the `faultline` chaos layer. Always transient
    /// — injected faults fire once per schedule point and must be retried
    /// away without a trace in the final results.
    Injected {
        /// Injection site (e.g. `features_all`).
        site: String,
        /// Schedule detail (seed, call index).
        detail: String,
    },
    /// The job names a CVE absent from the vulnerability database.
    UnknownCve(String),
    /// The job names an image index outside the batch.
    ImageOutOfRange {
        /// Requested image index.
        index: usize,
        /// Number of images in the batch.
        images: usize,
    },
    /// Filesystem failure in the artifact store's disk layer.
    Io {
        /// Path involved.
        path: String,
        /// OS error detail.
        detail: String,
    },
    /// The scan service's admission queue is full. Transient by
    /// definition — the caller should back off for `retry_after_ms` and
    /// resubmit; the daemon sheds load instead of queueing unboundedly.
    Overloaded {
        /// Requests queued when admission was refused.
        queue_depth: usize,
        /// The admission limit that was hit.
        queue_limit: usize,
        /// Suggested client backoff before resubmitting, milliseconds.
        retry_after_ms: u64,
    },
    /// A job exceeded its wall-clock budget and was abandoned by the
    /// scheduler. Transient: a retry may land on a less loaded worker or
    /// a warmer cache.
    Timeout {
        /// The budget that was exceeded, milliseconds.
        budget_ms: u64,
    },
    /// The request's end-to-end deadline passed before a result could be
    /// produced: either the job was discarded at the queue head without
    /// burning an executor slot, an executor observed expiry between
    /// pipeline stages, or a deduped follower timed out while the leader
    /// was still executing. Transient: a retry with a fresh (or larger)
    /// budget may succeed.
    DeadlineExceeded {
        /// The end-to-end budget the request carried, milliseconds.
        budget_ms: u64,
    },
    /// A per-tenant quota (token-bucket rate or max-in-flight cap) was
    /// exceeded. Transient by definition — the tenant should back off for
    /// `retry_after_ms`; other tenants are unaffected.
    QuotaExceeded {
        /// The tenant whose quota was hit.
        tenant: String,
        /// Suggested backoff before resubmitting, milliseconds.
        retry_after_ms: u64,
    },
    /// The scan service is draining: in-flight work finishes, new work is
    /// refused. Transient from the fleet's perspective (another instance,
    /// or this one after restart, can serve the request).
    Draining,
    /// A malformed wire-protocol frame or request (bad length prefix,
    /// truncated payload, unparseable JSON). Permanent: resending the
    /// same bytes cannot help.
    Protocol {
        /// What failed to parse or frame.
        detail: String,
    },
}

impl ScanError {
    /// Retry classification.
    pub fn class(&self) -> ErrorClass {
        match self {
            ScanError::Load { .. }
            | ScanError::Extraction { .. }
            | ScanError::UnknownCve(_)
            | ScanError::ImageOutOfRange { .. }
            | ScanError::Protocol { .. } => ErrorClass::Permanent,
            ScanError::CorruptArtifact { .. }
            | ScanError::WorkerPanic { .. }
            | ScanError::Injected { .. }
            | ScanError::Io { .. }
            | ScanError::Overloaded { .. }
            | ScanError::Timeout { .. }
            | ScanError::DeadlineExceeded { .. }
            | ScanError::QuotaExceeded { .. }
            | ScanError::Draining => ErrorClass::Transient,
        }
    }

    /// Whether a bounded retry may clear this failure.
    pub fn is_transient(&self) -> bool {
        self.class() == ErrorClass::Transient
    }

    /// Build a [`ScanError::Load`] from a loader failure, attaching the
    /// library name.
    pub fn load(library: &str, e: &vm::LoadError) -> ScanError {
        ScanError::Load { library: library.to_string(), detail: e.to_string() }
    }

    /// Build a [`ScanError::Extraction`] from a decode failure, attaching
    /// library and function context.
    pub fn extraction(library: &str, function: usize, e: &fwbin::encode::DecodeError) -> ScanError {
        ScanError::Extraction {
            library: library.to_string(),
            function,
            detail: e.to_string(),
        }
    }

    /// Build a [`ScanError::WorkerPanic`] from a `catch_unwind` payload.
    pub fn from_panic(payload: &(dyn std::any::Any + Send)) -> ScanError {
        let detail = payload
            .downcast_ref::<&str>()
            .map(|s| s.to_string())
            .or_else(|| payload.downcast_ref::<String>().cloned())
            .unwrap_or_else(|| "worker panicked".to_string());
        ScanError::WorkerPanic { detail }
    }
}

impl std::fmt::Display for ScanError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ScanError::Load { library, detail } => write!(f, "load `{library}`: {detail}"),
            ScanError::Extraction { library, function, detail } => {
                write!(f, "extract `{library}` function {function}: {detail}")
            }
            ScanError::CorruptArtifact { key, detail } => {
                write!(f, "corrupt cached artifact {key}: {detail} (quarantined)")
            }
            ScanError::WorkerPanic { detail } => write!(f, "worker panicked: {detail}"),
            ScanError::Injected { site, detail } => {
                write!(f, "injected fault at {site}: {detail}")
            }
            ScanError::UnknownCve(cve) => write!(f, "unknown CVE {cve}"),
            ScanError::ImageOutOfRange { index, images } => {
                write!(f, "image index {index} out of range (batch holds {images})")
            }
            ScanError::Io { path, detail } => write!(f, "io `{path}`: {detail}"),
            ScanError::Overloaded { queue_depth, queue_limit, retry_after_ms } => write!(
                f,
                "overloaded: {queue_depth} queued (limit {queue_limit}), retry after {retry_after_ms}ms"
            ),
            ScanError::Timeout { budget_ms } => {
                write!(f, "job exceeded its {budget_ms}ms wall-clock budget")
            }
            ScanError::DeadlineExceeded { budget_ms } => {
                write!(f, "deadline exceeded: {budget_ms}ms end-to-end budget elapsed")
            }
            ScanError::QuotaExceeded { tenant, retry_after_ms } => write!(
                f,
                "tenant `{tenant}` quota exceeded, retry after {retry_after_ms}ms"
            ),
            ScanError::Draining => f.write_str("service is draining; no new work accepted"),
            ScanError::Protocol { detail } => write!(f, "protocol error: {detail}"),
        }
    }
}

impl std::error::Error for ScanError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classification_splits_transient_from_permanent() {
        let transient = [
            ScanError::CorruptArtifact { key: "ab".into(), detail: "checksum".into() },
            ScanError::WorkerPanic { detail: "boom".into() },
            ScanError::Injected { site: "features_all".into(), detail: "seed 1".into() },
            ScanError::Io { path: "/tmp/x".into(), detail: "interrupted".into() },
            ScanError::Overloaded { queue_depth: 65, queue_limit: 64, retry_after_ms: 100 },
            ScanError::Timeout { budget_ms: 500 },
            ScanError::DeadlineExceeded { budget_ms: 40 },
            ScanError::QuotaExceeded { tenant: "acme".into(), retry_after_ms: 15 },
            ScanError::Draining,
        ];
        let permanent = [
            ScanError::Load { library: "libx".into(), detail: "bad magic".into() },
            ScanError::Extraction { library: "libx".into(), function: 3, detail: "opcode".into() },
            ScanError::UnknownCve("CVE-0000-0000".into()),
            ScanError::ImageOutOfRange { index: 9, images: 2 },
            ScanError::Protocol { detail: "frame length 0xffffffff".into() },
        ];
        for e in &transient {
            assert!(e.is_transient(), "{e}");
            assert_eq!(e.class(), ErrorClass::Transient);
        }
        for e in &permanent {
            assert!(!e.is_transient(), "{e}");
            assert_eq!(e.class(), ErrorClass::Permanent);
        }
    }

    #[test]
    fn errors_serialize_for_job_records() {
        let e = ScanError::Extraction { library: "libfoo".into(), function: 7, detail: "bad opcode 0xEE at offset 3".into() };
        let json = serde_json::to_string(&e).unwrap();
        let back: ScanError = serde_json::from_str(&json).unwrap();
        assert_eq!(e, back);
        assert!(e.to_string().contains("libfoo"));
        assert!(e.to_string().contains("function 7"));
    }

    #[test]
    fn service_errors_serialize_and_describe_themselves() {
        let e = ScanError::Overloaded { queue_depth: 70, queue_limit: 64, retry_after_ms: 250 };
        let back: ScanError = serde_json::from_str(&serde_json::to_string(&e).unwrap()).unwrap();
        assert_eq!(e, back);
        assert!(e.to_string().contains("retry after 250ms"), "{e}");
        assert!(ScanError::Timeout { budget_ms: 500 }.to_string().contains("500ms"));
        assert!(ScanError::DeadlineExceeded { budget_ms: 40 }.to_string().contains("40ms"));
        let q = ScanError::QuotaExceeded { tenant: "acme".into(), retry_after_ms: 15 };
        let back: ScanError = serde_json::from_str(&serde_json::to_string(&q).unwrap()).unwrap();
        assert_eq!(q, back);
        assert!(q.to_string().contains("acme") && q.to_string().contains("15ms"), "{q}");
        assert!(ScanError::Draining.to_string().contains("draining"));
        assert!(ScanError::Protocol { detail: "short frame".into() }
            .to_string()
            .contains("short frame"));
    }

    #[test]
    fn panic_payloads_convert() {
        let s: Box<dyn std::any::Any + Send> = Box::new("static str panic");
        assert_eq!(
            ScanError::from_panic(s.as_ref()),
            ScanError::WorkerPanic { detail: "static str panic".into() }
        );
        let s: Box<dyn std::any::Any + Send> = Box::new(String::from("owned panic"));
        assert!(matches!(ScanError::from_panic(s.as_ref()), ScanError::WorkerPanic { detail } if detail == "owned panic"));
    }
}
