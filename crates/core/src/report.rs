//! Structured audit reports: the deployment-facing output of PATCHECKO
//! ("PATCHECKO outputs the vulnerable points (functions) within the target
//! firmware image and the corresponding CVE numbers"). One [`AuditReport`]
//! summarizes a whole-image scan against the vulnerability database, is
//! serializable for machine consumption, and renders to Markdown for
//! humans.

use crate::differential::PatchVerdict;
use serde::{Deserialize, Serialize};

/// The verdict class for one CVE on one image.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum AuditStatus {
    /// The vulnerable version is present.
    Vulnerable,
    /// The patched version is present.
    Patched,
    /// No function in the image matched either version.
    NotFound,
}

/// One CVE's audit outcome.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AuditFinding {
    /// CVE identifier.
    pub cve: String,
    /// Host library the CVE is known to live in.
    pub expected_library: String,
    /// Severity string.
    pub severity: String,
    /// Verdict.
    pub status: AuditStatus,
    /// Where the target was located (`library:function_index`).
    pub located: Option<String>,
    /// The differential engine's full evidence, when the target was found.
    pub verdict: Option<PatchVerdict>,
}

/// A whole-image audit.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AuditReport {
    /// Device/image name.
    pub device: String,
    /// Image patch-level string.
    pub patch_level: String,
    /// Libraries in the image.
    pub libraries: usize,
    /// Total function count.
    pub functions: usize,
    /// Per-CVE findings, database order.
    pub findings: Vec<AuditFinding>,
}

impl AuditReport {
    /// CVEs the image is exposed to.
    pub fn exposed(&self) -> impl Iterator<Item = &AuditFinding> {
        self.findings.iter().filter(|f| f.status == AuditStatus::Vulnerable)
    }

    /// Count by status.
    pub fn count(&self, status: AuditStatus) -> usize {
        self.findings.iter().filter(|f| f.status == status).count()
    }

    /// Render as a Markdown document.
    pub fn to_markdown(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("# PATCHECKO audit — {}\n\n", self.device));
        out.push_str(&format!(
            "{} libraries, {} functions, patch level {}\n\n",
            self.libraries, self.functions, self.patch_level
        ));
        out.push_str("| CVE | severity | located | verdict |\n|---|---|---|---|\n");
        for f in &self.findings {
            let verdict = match f.status {
                AuditStatus::Vulnerable => "**VULNERABLE**",
                AuditStatus::Patched => "patched",
                AuditStatus::NotFound => "not found",
            };
            out.push_str(&format!(
                "| {} | {} | {} | {} |\n",
                f.cve,
                f.severity,
                f.located.as_deref().unwrap_or("—"),
                verdict
            ));
        }
        let exposed = self.count(AuditStatus::Vulnerable);
        out.push_str(&format!(
            "\n**Exposed to {exposed} of {} known CVEs** ({} patched, {} not found).\n",
            self.findings.len(),
            self.count(AuditStatus::Patched),
            self.count(AuditStatus::NotFound)
        ));
        if exposed > 0 {
            out.push_str("\n## Action items\n\n");
            for f in self.exposed() {
                out.push_str(&format!(
                    "- `{}` in `{}`: apply the upstream fix ({})\n",
                    f.cve,
                    f.expected_library,
                    f.verdict
                        .as_ref()
                        .map(|v| format!(
                            "dynamic distance {:.1} to vulnerable vs {:.1} to patched build",
                            v.dyn_dist_vulnerable, v.dyn_dist_patched
                        ))
                        .unwrap_or_default()
                ));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> AuditReport {
        AuditReport {
            device: "android_things_1.0".into(),
            patch_level: "2018-05".into(),
            libraries: 16,
            functions: 300,
            findings: vec![
                AuditFinding {
                    cve: "CVE-2018-9412".into(),
                    expected_library: "libstagefright".into(),
                    severity: "high".into(),
                    status: AuditStatus::Vulnerable,
                    located: Some("libstagefright:46".into()),
                    verdict: None,
                },
                AuditFinding {
                    cve: "CVE-2017-13232".into(),
                    expected_library: "libaudioflinger".into(),
                    severity: "high".into(),
                    status: AuditStatus::Patched,
                    located: Some("libaudioflinger:11".into()),
                    verdict: None,
                },
                AuditFinding {
                    cve: "CVE-0000-0000".into(),
                    expected_library: "libmissing".into(),
                    severity: "high".into(),
                    status: AuditStatus::NotFound,
                    located: None,
                    verdict: None,
                },
            ],
        }
    }

    #[test]
    fn counts_by_status() {
        let r = sample();
        assert_eq!(r.count(AuditStatus::Vulnerable), 1);
        assert_eq!(r.count(AuditStatus::Patched), 1);
        assert_eq!(r.count(AuditStatus::NotFound), 1);
        assert_eq!(r.exposed().count(), 1);
    }

    #[test]
    fn markdown_contains_all_findings() {
        let md = sample().to_markdown();
        assert!(md.contains("# PATCHECKO audit — android_things_1.0"));
        assert!(md.contains("| CVE-2018-9412 |"));
        assert!(md.contains("**VULNERABLE**"));
        assert!(md.contains("| CVE-2017-13232 |"));
        assert!(md.contains("not found"));
        assert!(md.contains("Exposed to 1 of 3"));
        assert!(md.contains("## Action items"));
        assert!(md.contains("apply the upstream fix"));
    }

    #[test]
    fn report_serde_roundtrips() {
        let r = sample();
        let json = serde_json::to_string(&r).unwrap();
        let back: AuditReport = serde_json::from_str(&json).unwrap();
        assert_eq!(back.findings.len(), 3);
        assert_eq!(back.device, r.device);
        assert_eq!(back.count(AuditStatus::Vulnerable), 1);
    }
}
