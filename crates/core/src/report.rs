//! Structured audit reports: the deployment-facing output of PATCHECKO
//! ("PATCHECKO outputs the vulnerable points (functions) within the target
//! firmware image and the corresponding CVE numbers"). One [`AuditReport`]
//! summarizes a whole-image scan against the vulnerability database, is
//! serializable for machine consumption, and renders to Markdown for
//! humans.

use crate::differential::PatchVerdict;
use crate::error::ScanError;
use scope::TelemetrySnapshot;
use serde::{Deserialize, Serialize};

/// The verdict class for one CVE on one image.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum AuditStatus {
    /// The vulnerable version is present.
    Vulnerable,
    /// The patched version is present.
    Patched,
    /// No function in the image matched either version.
    NotFound,
    /// The scan for this CVE failed with a [`ScanError`]; the rest of the
    /// audit proceeded. See [`AuditFinding::error`].
    Error,
}

/// One CVE's audit outcome.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AuditFinding {
    /// CVE identifier.
    pub cve: String,
    /// Host library the CVE is known to live in.
    pub expected_library: String,
    /// Severity string.
    pub severity: String,
    /// CWE weakness class of the matched reference (e.g. `CWE-787`),
    /// from the database entry's NVD-style metadata envelope; `None` on
    /// reports persisted before the corpus-metadata pass.
    #[serde(default)]
    pub cwe: Option<String>,
    /// CVSS v3.1 base score from the metadata envelope.
    #[serde(default)]
    pub cvss: Option<f64>,
    /// Verdict.
    pub status: AuditStatus,
    /// Where the target was located (`library:function_index`).
    pub located: Option<String>,
    /// The differential engine's full evidence, when the target was found.
    pub verdict: Option<PatchVerdict>,
    /// Whether the verdict rests on degraded (static/signature-only)
    /// evidence — the dynamic channel was unavailable for this CVE.
    #[serde(default)]
    pub degraded: bool,
    /// The failure, when [`AuditStatus::Error`].
    #[serde(default)]
    pub error: Option<ScanError>,
}

/// A whole-image audit.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AuditReport {
    /// Device/image name.
    pub device: String,
    /// Image patch-level string.
    pub patch_level: String,
    /// Libraries in the image.
    pub libraries: usize,
    /// Total function count.
    pub functions: usize,
    /// Per-CVE findings, database order.
    pub findings: Vec<AuditFinding>,
    /// Counter and stage-timing telemetry covering this audit, when the
    /// caller attached it (see `ScanHub::audit_with_telemetry`); `None`
    /// for bare pipeline runs and legacy persisted reports.
    #[serde(default)]
    pub telemetry: Option<TelemetrySnapshot>,
}

impl AuditReport {
    /// CVEs the image is exposed to.
    pub fn exposed(&self) -> impl Iterator<Item = &AuditFinding> {
        self.findings.iter().filter(|f| f.status == AuditStatus::Vulnerable)
    }

    /// Count by status.
    pub fn count(&self, status: AuditStatus) -> usize {
        self.findings.iter().filter(|f| f.status == status).count()
    }

    /// Findings whose scan failed outright.
    pub fn errors(&self) -> impl Iterator<Item = &AuditFinding> {
        self.findings.iter().filter(|f| f.status == AuditStatus::Error)
    }

    /// Findings decided on degraded (static/signature-only) evidence.
    pub fn degraded(&self) -> impl Iterator<Item = &AuditFinding> {
        self.findings.iter().filter(|f| f.degraded)
    }

    /// Render as a Markdown document.
    pub fn to_markdown(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("# PATCHECKO audit — {}\n\n", self.device));
        out.push_str(&format!(
            "{} libraries, {} functions, patch level {}\n\n",
            self.libraries, self.functions, self.patch_level
        ));
        out.push_str("| CVE | CWE | severity | located | verdict |\n|---|---|---|---|---|\n");
        for f in &self.findings {
            let verdict = match f.status {
                AuditStatus::Vulnerable => "**VULNERABLE**",
                AuditStatus::Patched => "patched",
                AuditStatus::NotFound => "not found",
                AuditStatus::Error => "error",
            };
            let qualifier = if f.degraded { " (degraded)" } else { "" };
            out.push_str(&format!(
                "| {} | {} | {} | {} | {}{} |\n",
                f.cve,
                f.cwe.as_deref().unwrap_or("—"),
                f.severity,
                f.located.as_deref().unwrap_or("—"),
                verdict,
                qualifier
            ));
        }
        let exposed = self.count(AuditStatus::Vulnerable);
        out.push_str(&format!(
            "\n**Exposed to {exposed} of {} known CVEs** ({} patched, {} not found).\n",
            self.findings.len(),
            self.count(AuditStatus::Patched),
            self.count(AuditStatus::NotFound)
        ));
        let n_degraded = self.degraded().count();
        if n_degraded > 0 {
            out.push_str(&format!(
                "\n{n_degraded} verdict(s) rest on degraded static-only evidence \
                 (dynamic analysis was unavailable).\n"
            ));
        }
        if self.errors().next().is_some() {
            out.push_str("\n## Scan failures\n\n");
            for f in self.errors() {
                out.push_str(&format!(
                    "- `{}`: {}\n",
                    f.cve,
                    f.error.as_ref().map(ScanError::to_string).unwrap_or_default()
                ));
            }
        }
        if exposed > 0 {
            out.push_str("\n## Action items\n\n");
            for f in self.exposed() {
                out.push_str(&format!(
                    "- `{}` in `{}`: apply the upstream fix ({})\n",
                    f.cve,
                    f.expected_library,
                    f.verdict
                        .as_ref()
                        .map(|v| format!(
                            "dynamic distance {:.1} to vulnerable vs {:.1} to patched build",
                            v.dyn_dist_vulnerable, v.dyn_dist_patched
                        ))
                        .unwrap_or_default()
                ));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> AuditReport {
        AuditReport {
            device: "android_things_1.0".into(),
            patch_level: "2018-05".into(),
            libraries: 16,
            functions: 300,
            findings: vec![
                AuditFinding {
                    cve: "CVE-2018-9412".into(),
                    expected_library: "libstagefright".into(),
                    severity: "high".into(),
                    cwe: Some("CWE-400".into()),
                    cvss: Some(7.8),
                    status: AuditStatus::Vulnerable,
                    located: Some("libstagefright:46".into()),
                    verdict: None,
                    degraded: false,
                    error: None,
                },
                AuditFinding {
                    cve: "CVE-2017-13232".into(),
                    expected_library: "libaudioflinger".into(),
                    severity: "high".into(),
                    cwe: Some("CWE-400".into()),
                    cvss: Some(7.8),
                    status: AuditStatus::Patched,
                    located: Some("libaudioflinger:11".into()),
                    verdict: None,
                    degraded: true,
                    error: None,
                },
                AuditFinding {
                    cve: "CVE-0000-0000".into(),
                    expected_library: "libmissing".into(),
                    severity: "high".into(),
                    cwe: None,
                    cvss: None,
                    status: AuditStatus::NotFound,
                    located: None,
                    verdict: None,
                    degraded: false,
                    error: None,
                },
                AuditFinding {
                    cve: "CVE-2018-9999".into(),
                    expected_library: "libbroken".into(),
                    severity: "high".into(),
                    cwe: None,
                    cvss: None,
                    status: AuditStatus::Error,
                    located: None,
                    verdict: None,
                    degraded: false,
                    error: Some(ScanError::Extraction {
                        library: "libbroken".into(),
                        function: 4,
                        detail: "bad opcode".into(),
                    }),
                },
            ],
            telemetry: None,
        }
    }

    #[test]
    fn counts_by_status() {
        let r = sample();
        assert_eq!(r.count(AuditStatus::Vulnerable), 1);
        assert_eq!(r.count(AuditStatus::Patched), 1);
        assert_eq!(r.count(AuditStatus::NotFound), 1);
        assert_eq!(r.count(AuditStatus::Error), 1);
        assert_eq!(r.exposed().count(), 1);
        assert_eq!(r.errors().count(), 1);
        assert_eq!(r.degraded().count(), 1);
    }

    #[test]
    fn markdown_contains_all_findings() {
        let md = sample().to_markdown();
        assert!(md.contains("# PATCHECKO audit — android_things_1.0"));
        assert!(md.contains("| CVE-2018-9412 |"));
        assert!(md.contains("| CVE-2018-9412 | CWE-400 |"), "findings name their CWE class");
        assert!(md.contains("**VULNERABLE**"));
        assert!(md.contains("| CVE-2017-13232 |"));
        assert!(md.contains("not found"));
        assert!(md.contains("Exposed to 1 of 4"));
        assert!(md.contains("## Action items"));
        assert!(md.contains("apply the upstream fix"));
    }

    #[test]
    fn markdown_surfaces_degradation_and_failures() {
        let md = sample().to_markdown();
        assert!(md.contains("patched (degraded)"));
        assert!(md.contains("1 verdict(s) rest on degraded static-only evidence"));
        assert!(md.contains("## Scan failures"));
        assert!(md.contains("`CVE-2018-9999`: extract `libbroken` function 4: bad opcode"));
    }

    #[test]
    fn report_serde_roundtrips() {
        let r = sample();
        let json = serde_json::to_string(&r).unwrap();
        let back: AuditReport = serde_json::from_str(&json).unwrap();
        assert_eq!(back.findings.len(), 4);
        assert_eq!(back.device, r.device);
        assert_eq!(back.count(AuditStatus::Vulnerable), 1);
        assert_eq!(back.count(AuditStatus::Error), 1);
        assert!(back.findings[1].degraded);
    }

    #[test]
    fn legacy_findings_deserialize_without_new_fields() {
        // Reports persisted before the resilience pass lack `degraded` and
        // `error`; they must still deserialize (serde defaults).
        let json = r#"{
            "cve": "CVE-2018-9412",
            "expected_library": "libstagefright",
            "severity": "high",
            "status": "Vulnerable",
            "located": null,
            "verdict": null
        }"#;
        let f: AuditFinding = serde_json::from_str(json).unwrap();
        assert!(!f.degraded);
        assert!(f.error.is_none());
        // Likewise `cwe`/`cvss`, added by the corpus-metadata pass.
        assert!(f.cwe.is_none());
        assert!(f.cvss.is_none());
    }

    #[test]
    fn legacy_reports_deserialize_without_telemetry() {
        // Reports persisted before the observability pass lack the
        // `telemetry` field; they must still deserialize.
        let json = r#"{
            "device": "d",
            "patch_level": "2018-05",
            "libraries": 1,
            "functions": 2,
            "findings": []
        }"#;
        let r: AuditReport = serde_json::from_str(json).unwrap();
        assert!(r.telemetry.is_none());
    }

    #[test]
    fn telemetry_roundtrips_inside_a_report() {
        let reg = scope::MetricsRegistry::new();
        reg.add("cache.hits", 7);
        reg.record("span.audit", std::time::Duration::from_micros(250));
        let mut r = sample();
        r.telemetry = Some(reg.snapshot());
        let json = serde_json::to_string(&r).unwrap();
        let back: AuditReport = serde_json::from_str(&json).unwrap();
        let t = back.telemetry.expect("telemetry survives the round-trip");
        assert_eq!(t.counter("cache.hits"), 7);
        assert_eq!(t.duration("span.audit").unwrap().count, 1);
    }
}
