//! The 48 static function features of Table I, extracted from a
//! disassembled function exactly as the paper's IDA Pro plugin does —
//! function-level counts, basic-block statistics, IDA `fcb_*` block-type
//! counts, per-block call/arith/FP-arith statistics, and betweenness
//! centrality statistics.

use disasm::{graph, BlockKind, FunctionDisasm};
use fwbin::format::FuncRecord;
use fwbin::isa::Inst;
use serde::{Deserialize, Serialize};
use std::collections::HashSet;

/// Number of static features (Table I).
pub const NUM_STATIC_FEATURES: usize = 48;

/// Table I feature names, in extraction order.
pub const STATIC_FEATURE_NAMES: [&str; NUM_STATIC_FEATURES] = [
    "num_constant",
    "num_string",
    "num_inst",
    "size_local",
    "fun_flag",
    "num_import",
    "num_ox",
    "num_cx",
    "size_fun",
    "min_i_b",
    "max_i_b",
    "avg_i_b",
    "std_i_b",
    "min_s_b",
    "max_s_b",
    "avg_s_b",
    "std_s_b",
    "num_bb",
    "num_edge",
    "cyclomatic_complexity",
    "fcb_normal",
    "fcb_indjump",
    "fcb_ret",
    "fcb_cndret",
    "fcb_noret",
    "fcb_enoret",
    "fcb_extern",
    "fcb_error",
    "min_call_b",
    "max_call_b",
    "avg_call_b",
    "std_call_b",
    "sum_call_b",
    "min_arith_b",
    "max_arith_b",
    "avg_arith_b",
    "std_arith_b",
    "sum_arith_b",
    "min_arith_fp_b",
    "max_arith_fp_b",
    "avg_arith_fp_b",
    "std_arith_fp_b",
    "sum_arith_fp_b",
    "min_betweeness_cent",
    "max_betweeness_cent",
    "avg_betweeness_cent",
    "std_betweeness_cent",
    "betweeness_cent_zero",
];

/// Function flag bits packed into the `fun_flag` feature.
pub mod fun_flags {
    /// Function appears in the export table.
    pub const EXPORTED: u32 = 1 << 0;
    /// No reachable return block (`FUNC_NORET` analog).
    pub const NORET: u32 = 1 << 1;
    /// Leaf function (no calls).
    pub const LEAF: u32 = 1 << 2;
    /// Uses floating point.
    pub const USES_FP: u32 = 1 << 3;
}

/// One function's static feature vector.
#[derive(Debug, Clone, PartialEq)]
pub struct StaticFeatures(pub [f64; NUM_STATIC_FEATURES]);

impl Serialize for StaticFeatures {
    fn serialize<S: serde::Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        self.0.as_slice().serialize(serializer)
    }
}

impl<'de> Deserialize<'de> for StaticFeatures {
    fn deserialize<D: serde::Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        let v = Vec::<f64>::deserialize(deserializer)?;
        let arr: [f64; NUM_STATIC_FEATURES] = v
            .try_into()
            .map_err(|v: Vec<f64>| serde::de::Error::invalid_length(v.len(), &"48 features"))?;
        Ok(StaticFeatures(arr))
    }
}

impl StaticFeatures {
    /// Feature by name (test/report convenience).
    pub fn by_name(&self, name: &str) -> Option<f64> {
        STATIC_FEATURE_NAMES.iter().position(|n| *n == name).map(|i| self.0[i])
    }

    /// The underlying slice.
    pub fn as_slice(&self) -> &[f64] {
        &self.0
    }
}

/// Extract the Table I features for one disassembled function.
pub fn extract(dis: &FunctionDisasm, rec: &FuncRecord) -> StaticFeatures {
    let mut constants: HashSet<i64> = HashSet::new();
    let mut strings: HashSet<u32> = HashSet::new();
    let mut imports: HashSet<u32> = HashSet::new();
    let mut code_refs: HashSet<u64> = HashSet::new();
    let mut num_cx = 0u32;
    let mut uses_fp = false;

    for (inst, _) in &dis.insts {
        match inst {
            Inst::MovImm { imm, .. } | Inst::BinImm { imm, .. } => {
                constants.insert(*imm);
            }
            Inst::FMovImm { imm, .. } => {
                constants.insert(imm.to_bits() as i64);
                uses_fp = true;
            }
            Inst::LoadStr { sid, .. } => {
                strings.insert(*sid);
            }
            Inst::Call { sym } => {
                num_cx += 1;
                if sym.is_import() {
                    imports.insert(sym.index());
                }
                code_refs.insert(0x1_0000_0000 | sym.0 as u64);
            }
            _ => {}
        }
        if inst.is_arith_fp() {
            uses_fp = true;
        }
        if let Some(t) = inst.target() {
            code_refs.insert(t as u64);
        }
    }

    let cfg = &dis.cfg;
    let has_ret = cfg.count_kind(BlockKind::Ret) + cfg.count_kind(BlockKind::CndRet) > 0;
    let mut flag = 0u32;
    if rec.exported {
        flag |= fun_flags::EXPORTED;
    }
    if !has_ret {
        flag |= fun_flags::NORET;
    }
    if num_cx == 0 {
        flag |= fun_flags::LEAF;
    }
    if uses_fp {
        flag |= fun_flags::USES_FP;
    }

    // Per-block statistics.
    let n_blocks = cfg.blocks.len();
    let mut insts_b = Vec::with_capacity(n_blocks);
    let mut size_b = Vec::with_capacity(n_blocks);
    let mut call_b = Vec::with_capacity(n_blocks);
    let mut arith_b = Vec::with_capacity(n_blocks);
    let mut arith_fp_b = Vec::with_capacity(n_blocks);
    for b in 0..n_blocks {
        let blk = &cfg.blocks[b];
        let insts = dis.block_insts(b);
        insts_b.push(blk.len() as f64);
        size_b.push(blk.byte_size as f64);
        call_b.push(insts.iter().filter(|(i, _)| matches!(i, Inst::Call { .. })).count() as f64);
        arith_b.push(insts.iter().filter(|(i, _)| i.is_arith()).count() as f64);
        arith_fp_b.push(insts.iter().filter(|(i, _)| i.is_arith_fp()).count() as f64);
    }
    let (min_i, max_i, avg_i, std_i) = graph::stats(&insts_b);
    let (min_s, max_s, avg_s, std_s) = graph::stats(&size_b);
    let (min_c, max_c, avg_c, std_c) = graph::stats(&call_b);
    let sum_c: f64 = call_b.iter().sum();
    let (min_a, max_a, avg_a, std_a) = graph::stats(&arith_b);
    let sum_a: f64 = arith_b.iter().sum();
    let (min_f, max_f, avg_f, std_f) = graph::stats(&arith_fp_b);
    let sum_f: f64 = arith_fp_b.iter().sum();

    let cb = graph::betweenness_centrality(cfg);
    let (min_b, max_b, avg_b, std_b) = graph::stats(&cb);
    let zero_b = cb.iter().filter(|v| **v == 0.0).count() as f64;

    StaticFeatures([
        constants.len() as f64,
        strings.len() as f64,
        dis.inst_count() as f64,
        rec.frame_slots as f64 * 8.0,
        flag as f64,
        imports.len() as f64,
        code_refs.len() as f64,
        num_cx as f64,
        dis.byte_size() as f64,
        min_i,
        max_i,
        avg_i,
        std_i,
        min_s,
        max_s,
        avg_s,
        std_s,
        n_blocks as f64,
        cfg.num_edges as f64,
        cfg.cyclomatic_complexity() as f64,
        cfg.count_kind(BlockKind::Normal) as f64,
        cfg.count_kind(BlockKind::IndJump) as f64,
        cfg.count_kind(BlockKind::Ret) as f64,
        cfg.count_kind(BlockKind::CndRet) as f64,
        cfg.count_kind(BlockKind::NoRet) as f64,
        cfg.count_kind(BlockKind::ExternNoRet) as f64,
        cfg.count_kind(BlockKind::Extern) as f64,
        cfg.count_kind(BlockKind::Error) as f64,
        min_c,
        max_c,
        avg_c,
        std_c,
        sum_c,
        min_a,
        max_a,
        avg_a,
        std_a,
        sum_a,
        min_f,
        max_f,
        avg_f,
        std_f,
        sum_f,
        min_b,
        max_b,
        avg_b,
        std_b,
        zero_b,
    ])
}

/// Extract features for every function of a binary.
///
/// # Errors
/// Returns the first decode error encountered.
pub fn extract_all(bin: &fwbin::Binary) -> Result<Vec<StaticFeatures>, fwbin::encode::DecodeError> {
    (0..bin.function_count())
        .map(|i| Ok(extract(&disasm::disassemble(bin, i)?, &bin.functions[i])))
        .collect()
}

/// Minimum function count before [`extract_all_parallel`] fans out —
/// below this, per-function disassembly is cheaper than the dispatch.
const PAR_EXTRACT_MIN_FUNCS: usize = 16;

/// [`extract_all`] fanned out across the shared worker pool, preserving
/// function-table order. Functions are split into contiguous index
/// chunks, each disassembled and extracted on a pool worker; results are
/// reassembled in order. Falls back to the serial path for small
/// binaries or width 1.
///
/// # Errors
/// Returns the first decode error encountered (by function index).
pub fn extract_all_parallel(
    bin: &fwbin::Binary,
) -> Result<Vec<StaticFeatures>, fwbin::encode::DecodeError> {
    type ChunkResult = Result<Vec<StaticFeatures>, fwbin::encode::DecodeError>;
    type ChunkTask = Box<dyn FnOnce() -> ChunkResult + Send>;
    let n = bin.function_count();
    let width = neural::pool::current_width();
    if width <= 1 || n < PAR_EXTRACT_MIN_FUNCS {
        return extract_all(bin);
    }
    let chunk = n.div_ceil(width).max(1);
    let shared = std::sync::Arc::new(bin.clone());
    let tasks: Vec<ChunkTask> = (0..n)
        .step_by(chunk)
        .map(|start| {
            let bin = shared.clone();
            let end = (start + chunk).min(n);
            Box::new(move || {
                (start..end)
                    .map(|i| Ok(extract(&disasm::disassemble(&bin, i)?, &bin.functions[i])))
                    .collect()
            }) as ChunkTask
        })
        .collect();
    let mut out = Vec::with_capacity(n);
    for part in neural::pool::global().run(tasks) {
        out.extend(part?);
    }
    Ok(out)
}

/// Number of extended features appended by [`extract_extended`].
pub const NUM_EXTENDED_FEATURES: usize = 4;

/// Names of the extended (beyond-Table-I) features.
pub const EXTENDED_FEATURE_NAMES: [&str; NUM_EXTENDED_FEATURES] =
    ["num_loops", "max_loop_depth", "num_back_edges", "reachable_blocks"];

/// The paper notes its feature list "is not comprehensive and can easily
/// be extended". This extractor appends four loop-aware features computed
/// from the dominator analysis: natural-loop count, maximum loop-nesting
/// depth, back-edge count, and the number of entry-reachable blocks. Used
/// by the `ablation_feature_set` experiment.
pub fn extract_extended(dis: &disasm::FunctionDisasm, rec: &fwbin::FuncRecord) -> Vec<f64> {
    let base = extract(dis, rec);
    let loops = disasm::natural_loops(&dis.cfg);
    let dom = disasm::Dominators::compute(&dis.cfg);
    let reachable =
        (0..dis.cfg.blocks.len()).filter(|&b| dom.reachable(b as u32)).count() as f64;
    let mut headers: Vec<u32> = loops.iter().map(|l| l.header).collect();
    headers.sort_unstable();
    headers.dedup();
    let mut out = base.as_slice().to_vec();
    out.push(headers.len() as f64);
    out.push(disasm::max_loop_depth(&dis.cfg) as f64);
    out.push(loops.len() as f64);
    out.push(reachable);
    out
}

/// Feature normalizer: signed `ln(1+|x|)` transform followed by z-scoring
/// with statistics fit on a training corpus. Stored inside trained models
/// so inference uses the same scaling.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Normalizer {
    mean: Vec<f64>,
    std: Vec<f64>,
}

pub(crate) fn squash(x: f64) -> f64 {
    x.signum() * (1.0 + x.abs()).ln()
}

impl Normalizer {
    /// Fit on a corpus of feature vectors.
    ///
    /// # Panics
    /// Panics if `corpus` is empty.
    pub fn fit(corpus: &[StaticFeatures]) -> Normalizer {
        assert!(!corpus.is_empty(), "cannot fit a normalizer on an empty corpus");
        let n = corpus.len() as f64;
        let mut mean = vec![0.0; NUM_STATIC_FEATURES];
        for f in corpus {
            for (m, v) in mean.iter_mut().zip(f.as_slice()) {
                *m += squash(*v);
            }
        }
        for m in mean.iter_mut() {
            *m /= n;
        }
        let mut var = vec![0.0; NUM_STATIC_FEATURES];
        for f in corpus {
            for ((s, v), m) in var.iter_mut().zip(f.as_slice()).zip(&mean) {
                let d = squash(*v) - m;
                *s += d * d;
            }
        }
        let std = var.into_iter().map(|v| (v / n).sqrt().max(1e-6)).collect();
        Normalizer { mean, std }
    }

    /// Normalize one feature vector into `f32` model inputs.
    pub fn apply(&self, f: &StaticFeatures) -> Vec<f32> {
        f.as_slice()
            .iter()
            .zip(&self.mean)
            .zip(&self.std)
            .map(|((v, m), s)| ((squash(*v) - m) / s) as f32)
            .collect()
    }

    /// Build the 96-wide pair input for the classifier.
    pub fn pair_input(&self, a: &StaticFeatures, b: &StaticFeatures) -> Vec<f32> {
        let mut out = self.apply(a);
        out.extend(self.apply(b));
        out
    }
}

/// A length-generic variant of [`Normalizer`] for extended feature
/// vectors (used by the feature-set ablation).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct VecNormalizer {
    mean: Vec<f64>,
    std: Vec<f64>,
}

impl VecNormalizer {
    /// Fit on a corpus of equal-length vectors.
    ///
    /// # Panics
    /// Panics if `corpus` is empty or lengths differ.
    pub fn fit(corpus: &[Vec<f64>]) -> VecNormalizer {
        assert!(!corpus.is_empty());
        let dim = corpus[0].len();
        let n = corpus.len() as f64;
        let mut mean = vec![0.0; dim];
        for v in corpus {
            assert_eq!(v.len(), dim, "inconsistent vector length");
            for (m, x) in mean.iter_mut().zip(v) {
                *m += squash(*x);
            }
        }
        for m in mean.iter_mut() {
            *m /= n;
        }
        let mut var = vec![0.0; dim];
        for v in corpus {
            for ((s, x), m) in var.iter_mut().zip(v).zip(&mean) {
                let d = squash(*x) - m;
                *s += d * d;
            }
        }
        let std = var.into_iter().map(|v| (v / n).sqrt().max(1e-6)).collect();
        VecNormalizer { mean, std }
    }

    /// Normalized Euclidean distance between two raw vectors.
    pub fn distance(&self, a: &[f64], b: &[f64]) -> f64 {
        a.iter()
            .zip(b)
            .zip(self.mean.iter().zip(&self.std))
            .map(|((x, y), (m, s))| {
                let dx = (squash(*x) - m) / s;
                let dy = (squash(*y) - m) / s;
                (dx - dy) * (dx - dy)
            })
            .sum::<f64>()
            .sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fwbin::isa::{Arch, OptLevel};
    use fwlang::gen::Generator;

    fn features_of(seed: u64, arch: Arch, opt: OptLevel) -> Vec<StaticFeatures> {
        let lib = Generator::new(seed).library_sized("libf", 10);
        let bin = fwbin::compile_library(&lib, arch, opt).unwrap();
        extract_all(&bin).unwrap()
    }

    #[test]
    fn feature_vector_has_48_entries() {
        assert_eq!(STATIC_FEATURE_NAMES.len(), 48);
        let fs = features_of(1, Arch::Arm64, OptLevel::O2);
        for f in &fs {
            assert_eq!(f.as_slice().len(), 48);
        }
    }

    #[test]
    fn block_stats_are_consistent() {
        for f in features_of(2, Arch::X86, OptLevel::O1) {
            let min_i = f.by_name("min_i_b").unwrap();
            let max_i = f.by_name("max_i_b").unwrap();
            let avg_i = f.by_name("avg_i_b").unwrap();
            assert!(min_i <= avg_i && avg_i <= max_i);
            // Block instruction counts total the function instruction count.
            let num_bb = f.by_name("num_bb").unwrap();
            assert!(num_bb * avg_i - f.by_name("num_inst").unwrap() < 1e-6);
        }
    }

    #[test]
    fn cyclomatic_matches_edges_and_nodes() {
        for f in features_of(3, Arch::Arm32, OptLevel::O2) {
            let e = f.by_name("num_edge").unwrap();
            let n = f.by_name("num_bb").unwrap();
            assert_eq!(f.by_name("cyclomatic_complexity").unwrap(), e - n + 2.0);
        }
    }

    #[test]
    fn same_source_features_are_closer_than_different_source() {
        // Core premise of the static stage: cross-platform variants of the
        // same function are closer in feature space than unrelated
        // functions (on average).
        let a = features_of(5, Arch::X86, OptLevel::O1);
        let b = features_of(5, Arch::Arm64, OptLevel::O3);
        let norm = Normalizer::fit(&[a.clone(), b.clone()].concat());
        let dist = |x: &StaticFeatures, y: &StaticFeatures| -> f64 {
            norm.apply(x)
                .iter()
                .zip(norm.apply(y))
                .map(|(p, q)| ((p - q) as f64).powi(2))
                .sum::<f64>()
                .sqrt()
        };
        let mut same = 0.0;
        let mut diff = 0.0;
        let mut diff_n = 0.0;
        for i in 0..a.len() {
            same += dist(&a[i], &b[i]);
            for (j, bj) in b.iter().enumerate() {
                if i != j {
                    diff += dist(&a[i], bj);
                    diff_n += 1.0;
                }
            }
        }
        let same_avg = same / a.len() as f64;
        let diff_avg = diff / diff_n;
        assert!(
            same_avg < diff_avg,
            "same-source avg {same_avg:.3} should beat different-source {diff_avg:.3}"
        );
    }

    #[test]
    fn fun_flags_reflect_function_properties() {
        let lib = Generator::new(9).library_sized("libf", 20);
        let bin = fwbin::compile_library(&lib, Arch::Arm64, OptLevel::O1).unwrap();
        let fs = extract_all(&bin).unwrap();
        for (i, f) in fs.iter().enumerate() {
            let flag = f.by_name("fun_flag").unwrap() as u32;
            assert_eq!(
                flag & fun_flags::EXPORTED != 0,
                bin.functions[i].exported,
                "exported flag mismatch on fn {i}"
            );
            let leaf = f.by_name("num_cx").unwrap() == 0.0;
            assert_eq!(flag & fun_flags::LEAF != 0, leaf);
        }
    }

    #[test]
    fn normalizer_standardizes_corpus() {
        let fs = features_of(11, Arch::Amd64, OptLevel::O2);
        let norm = Normalizer::fit(&fs);
        // Means of the normalized corpus are ~0.
        let mut acc = vec![0.0f64; NUM_STATIC_FEATURES];
        for f in &fs {
            for (a, v) in acc.iter_mut().zip(norm.apply(f)) {
                *a += v as f64;
            }
        }
        for a in &acc {
            assert!((a / fs.len() as f64).abs() < 1e-3);
        }
    }

    #[test]
    fn pair_input_is_96_wide() {
        let fs = features_of(12, Arch::X86, OptLevel::O0);
        let norm = Normalizer::fit(&fs);
        assert_eq!(norm.pair_input(&fs[0], &fs[1]).len(), 96);
    }

    #[test]
    fn by_name_unknown_is_none() {
        let fs = features_of(13, Arch::X86, OptLevel::O0);
        assert!(fs[0].by_name("nope").is_none());
    }
}
