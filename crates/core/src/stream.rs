//! Streaming scan with a bounded working set.
//!
//! The corpus-scale workload (ROADMAP item 4) feeds 10⁵+ functions
//! through the static scanner. Holding such a corpus in memory is exactly
//! what `corpus::stream` exists to avoid, so the scan side must be
//! streaming too: [`Patchecko::scan_stream`] pulls compiled units from an
//! iterator, scans each against the reference feature set, keeps only
//! match summaries, and drops the binary — at no point are more than
//! `working_set` units alive.
//!
//! Boundedness is **proven, not sniffed**: every unit's residency is
//! tracked by a [`WorkingSet`] live-entry counter (acquire on pull,
//! release on drop), and the report carries the observed peak. A corpus
//! 10× larger than the working set must finish with
//! `peak_live ≤ working_set` — the invariant the bounded-memory gate
//! asserts in `cargo test` and in `bench_corpus` before any timing.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Instant;

use fwbin::format::Binary;

use crate::error::ScanError;
use crate::features::StaticFeatures;
use crate::pipeline::{FeatureSource, Patchecko};

/// Live-entry counter for a streaming working set.
///
/// Tracks how many stream units are resident right now (`live`), the most
/// that were ever resident (`peak`), and the total admitted (`admitted`).
/// The streaming paths acquire one permit per unit pulled and release it
/// when the unit is dropped; the peak is the memory-boundedness evidence.
#[derive(Debug, Default)]
pub struct WorkingSet {
    live: AtomicUsize,
    peak: AtomicUsize,
    admitted: AtomicUsize,
}

/// RAII permit for one resident stream unit.
pub struct WorkingSetPermit<'a> {
    set: &'a WorkingSet,
}

impl WorkingSet {
    /// A fresh counter (nothing resident).
    pub fn new() -> WorkingSet {
        WorkingSet::default()
    }

    /// Admit one unit: bumps the live count (and the peak high-water
    /// mark) until the returned permit is dropped.
    pub fn acquire(&self) -> WorkingSetPermit<'_> {
        self.admitted.fetch_add(1, Ordering::Relaxed);
        let now = self.live.fetch_add(1, Ordering::Relaxed) + 1;
        self.peak.fetch_max(now, Ordering::Relaxed);
        WorkingSetPermit { set: self }
    }

    /// Units resident right now.
    pub fn live(&self) -> usize {
        self.live.load(Ordering::Relaxed)
    }

    /// High-water mark of simultaneously resident units.
    pub fn peak(&self) -> usize {
        self.peak.load(Ordering::Relaxed)
    }

    /// Total units ever admitted.
    pub fn admitted(&self) -> usize {
        self.admitted.load(Ordering::Relaxed)
    }
}

impl Drop for WorkingSetPermit<'_> {
    fn drop(&mut self) {
        self.set.live.fetch_sub(1, Ordering::Relaxed);
    }
}

/// One above-threshold match from a streaming scan.
#[derive(Debug, Clone)]
pub struct StreamMatch {
    /// Position of the unit in the stream (0-based pull order).
    pub unit: usize,
    /// Library name of the matched unit.
    pub library: String,
    /// Function index inside the unit.
    pub function: usize,
    /// Index of the best-matching reference feature vector.
    pub reference: usize,
    /// Classifier probability of the match.
    pub probability: f32,
}

/// Result of a streaming scan.
#[derive(Debug, Clone)]
pub struct StreamScanReport {
    /// Units pulled from the stream.
    pub units: usize,
    /// Functions scanned across all units.
    pub functions: usize,
    /// Every above-threshold match, in stream order.
    pub matches: Vec<StreamMatch>,
    /// Configured working-set bound the scan ran under.
    pub working_set: usize,
    /// Observed peak of simultaneously resident units — always
    /// `≤ working_set`, and `< units` whenever the corpus exceeds the
    /// working set (the bounded-memory invariant).
    pub peak_live: usize,
    /// Wall-clock seconds for the whole scan (generation included when
    /// the iterator generates lazily).
    pub seconds: f64,
}

impl StreamScanReport {
    /// Scan throughput in functions per second.
    pub fn functions_per_second(&self) -> f64 {
        if self.seconds > 0.0 {
            self.functions as f64 / self.seconds
        } else {
            0.0
        }
    }

    /// Stream-order unit indices that produced at least one match.
    pub fn matched_units(&self) -> Vec<usize> {
        let mut u: Vec<usize> = self.matches.iter().map(|m| m.unit).collect();
        u.dedup();
        u
    }
}

impl Patchecko {
    /// Scan a stream of compiled units against `references`, holding at
    /// most `working_set` units in memory at any point.
    ///
    /// Units are pulled in working-set-sized batches; each unit is
    /// scanned with [`Patchecko::scan_library_with`] (so `--retrieval
    /// topk` prunes pairs exactly as in image scans, and the NN forward
    /// passes parallelize on the shared pool), reduced to its
    /// above-threshold [`StreamMatch`]es, and dropped before the next
    /// batch is pulled. Residency is accounted by a [`WorkingSet`]
    /// live-entry counter whose peak is returned in the report.
    ///
    /// # Errors
    /// Propagates the first extraction failure; units already scanned are
    /// discarded with it (a streaming scan is all-or-nothing).
    pub fn scan_stream<I>(
        &self,
        units: I,
        references: &[StaticFeatures],
        working_set: usize,
    ) -> Result<StreamScanReport, ScanError>
    where
        I: IntoIterator<Item = Binary>,
    {
        self.scan_stream_with(units, references, working_set, &crate::pipeline::DirectExtraction)
    }

    /// [`Patchecko::scan_stream`] with features served by `source`.
    ///
    /// # Errors
    /// Propagates the first extraction failure from the source.
    pub fn scan_stream_with<I>(
        &self,
        units: I,
        references: &[StaticFeatures],
        working_set: usize,
        source: &dyn FeatureSource,
    ) -> Result<StreamScanReport, ScanError>
    where
        I: IntoIterator<Item = Binary>,
    {
        let _span = scope::SpanGuard::enter("stream_scan");
        let working_set = working_set.max(1);
        let tracker = WorkingSet::new();
        let started = Instant::now();
        let mut iter = units.into_iter();
        let mut matches = Vec::new();
        let mut unit_index = 0usize;
        let mut functions = 0usize;
        loop {
            // Pull one working set's worth of units; each resident unit
            // holds a permit for exactly as long as it is alive.
            let batch: Vec<(Binary, WorkingSetPermit<'_>)> = iter
                .by_ref()
                .take(working_set)
                .map(|bin| {
                    let permit = tracker.acquire();
                    (bin, permit)
                })
                .collect();
            if batch.is_empty() {
                break;
            }
            for (bin, permit) in batch {
                let scan = self.scan_library_with(&bin, references, source)?;
                functions += scan.total;
                for &f in &scan.candidates {
                    matches.push(StreamMatch {
                        unit: unit_index,
                        library: scan.library.clone(),
                        function: f,
                        reference: scan.best_ref.get(f).copied().unwrap_or(0),
                        probability: scan.probs[f],
                    });
                }
                unit_index += 1;
                drop(bin);
                drop(permit);
            }
        }
        scope::add("stream.units", unit_index as u64);
        scope::add("stream.functions", functions as u64);
        scope::add("stream.peak_live", tracker.peak() as u64);
        Ok(StreamScanReport {
            units: unit_index,
            functions,
            matches,
            working_set,
            peak_live: tracker.peak(),
            seconds: started.elapsed().as_secs_f64(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn working_set_counter_tracks_live_peak_and_admitted() {
        let ws = WorkingSet::new();
        assert_eq!((ws.live(), ws.peak(), ws.admitted()), (0, 0, 0));
        let a = ws.acquire();
        let b = ws.acquire();
        assert_eq!((ws.live(), ws.peak()), (2, 2));
        drop(a);
        assert_eq!((ws.live(), ws.peak()), (1, 2));
        let c = ws.acquire();
        assert_eq!((ws.live(), ws.peak()), (2, 2));
        drop(b);
        drop(c);
        assert_eq!((ws.live(), ws.peak(), ws.admitted()), (0, 2, 3));
    }
}
