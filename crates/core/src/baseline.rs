//! Related-work baselines the paper compares against:
//!
//! * [`bipartite_similarity`] — BinDiff-style \[44\] greedy bipartite
//!   matching of basic blocks on per-block features;
//! * [`GeminiDetector`] — the graph-embedding approach of Xu et al. \[41\]:
//!   structure2vec over per-block features with siamese cosine training,
//!   the "static-only, ~80 % accuracy, large candidate sets" baseline the
//!   hybrid pipeline improves on.

use crate::features;
use corpus::dataset1::Dataset1;
use disasm::FunctionDisasm;
use fwbin::isa::Inst;
use neural::graph::{GraphEmbedder, GraphSample};
use neural::matrix::Matrix;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Per-block feature dimension for graph baselines.
pub const BLOCK_FEATURES: usize = 8;

/// Per-block feature vector: instruction count, byte size, calls, arith,
/// FP arith, constants, out-degree, in-degree.
pub fn block_features(dis: &FunctionDisasm, b: usize) -> [f64; BLOCK_FEATURES] {
    let blk = &dis.cfg.blocks[b];
    let insts = dis.block_insts(b);
    let calls = insts.iter().filter(|(i, _)| matches!(i, Inst::Call { .. })).count() as f64;
    let arith = insts.iter().filter(|(i, _)| i.is_arith()).count() as f64;
    let fp = insts.iter().filter(|(i, _)| i.is_arith_fp()).count() as f64;
    let consts = insts
        .iter()
        .filter(|(i, _)| matches!(i, Inst::MovImm { .. } | Inst::BinImm { .. }))
        .count() as f64;
    [
        blk.len() as f64,
        blk.byte_size as f64,
        calls,
        arith,
        fp,
        consts,
        blk.succs.len() as f64,
        blk.preds.len() as f64,
    ]
}

/// BinDiff-style similarity: greedily match blocks of `a` against blocks of
/// `b` by minimal feature distance; the score is the mean matched distance
/// plus a penalty per unmatched block. Lower = more similar (a distance).
pub fn bipartite_similarity(a: &FunctionDisasm, b: &FunctionDisasm) -> f64 {
    let na = a.cfg.blocks.len();
    let nb = b.cfg.blocks.len();
    if na == 0 || nb == 0 {
        return if na == nb { 0.0 } else { f64::INFINITY };
    }
    let fa: Vec<_> = (0..na).map(|i| block_features(a, i)).collect();
    let fb: Vec<_> = (0..nb).map(|i| block_features(b, i)).collect();
    let cost = |x: &[f64; BLOCK_FEATURES], y: &[f64; BLOCK_FEATURES]| -> f64 {
        x.iter().zip(y).map(|(p, q)| (p - q).abs() / (1.0 + p.abs().max(q.abs()))).sum()
    };
    // Greedy global matching: repeatedly take the cheapest unmatched pair.
    let mut pairs: Vec<(f64, usize, usize)> = Vec::with_capacity(na * nb);
    for (i, x) in fa.iter().enumerate() {
        for (j, y) in fb.iter().enumerate() {
            pairs.push((cost(x, y), i, j));
        }
    }
    pairs.sort_by(|p, q| p.0.partial_cmp(&q.0).unwrap_or(std::cmp::Ordering::Equal));
    let mut used_a = vec![false; na];
    let mut used_b = vec![false; nb];
    let mut total = 0.0;
    let mut matched = 0usize;
    for (c, i, j) in pairs {
        if !used_a[i] && !used_b[j] {
            used_a[i] = true;
            used_b[j] = true;
            total += c;
            matched += 1;
            if matched == na.min(nb) {
                break;
            }
        }
    }
    let unmatched = (na.max(nb) - matched) as f64;
    total / matched.max(1) as f64 + unmatched * 2.0
}

/// Build the structure2vec input for a disassembled function (symmetric
/// adjacency over CFG successors ∪ predecessors).
pub fn graph_sample(dis: &FunctionDisasm) -> GraphSample {
    let n = dis.cfg.blocks.len();
    let mut adj = vec![Vec::new(); n];
    for (v, blk) in dis.cfg.blocks.iter().enumerate() {
        for &s in &blk.succs {
            if !adj[v].contains(&(s as usize)) {
                adj[v].push(s as usize);
            }
            if !adj[s as usize].contains(&v) {
                adj[s as usize].push(v);
            }
        }
    }
    let feats = Matrix::from_fn(n, BLOCK_FEATURES, |r, c| {
        let f = block_features(dis, r)[c];
        // Log-squash for scale robustness.
        (1.0 + f).ln() as f32
    });
    GraphSample { adj, feats }
}

/// The Gemini-style static baseline detector.
pub struct GeminiDetector {
    /// The trained graph embedder.
    pub embedder: GraphEmbedder,
    /// Cosine-similarity acceptance threshold.
    pub threshold: f32,
}

/// Training settings for the graph baseline.
#[derive(Debug, Clone)]
pub struct GeminiConfig {
    /// Embedding dimension.
    pub dim: usize,
    /// Aggregation rounds.
    pub rounds: usize,
    /// Training pair count.
    pub pairs: usize,
    /// SGD learning rate.
    pub lr: f32,
    /// Seed.
    pub seed: u64,
    /// Acceptance threshold.
    pub threshold: f32,
}

impl Default for GeminiConfig {
    fn default() -> GeminiConfig {
        GeminiConfig { dim: 32, rounds: 3, pairs: 2000, lr: 5e-3, seed: 17, threshold: 0.5 }
    }
}

impl GeminiDetector {
    /// Train on Dataset I with siamese cosine pairs (+1 same source,
    /// -1 different).
    pub fn train(ds: &Dataset1, cfg: &GeminiConfig) -> GeminiDetector {
        // Disassemble everything once.
        let mut samples: Vec<GraphSample> = Vec::new();
        let mut identity: Vec<(usize, String)> = Vec::new();
        for v in &ds.variants {
            for (fi, rec) in v.binary.functions.iter().enumerate() {
                let dis = disasm::disassemble(&v.binary, fi).expect("dataset decodes");
                samples.push(graph_sample(&dis));
                identity.push((v.library, rec.name.clone().expect("unstripped")));
            }
        }
        // Group indices by identity.
        use std::collections::HashMap;
        let mut groups: HashMap<&(usize, String), Vec<usize>> = HashMap::new();
        for (i, id) in identity.iter().enumerate() {
            groups.entry(id).or_default().push(i);
        }
        let mut keys: Vec<_> = groups.keys().copied().collect();
        keys.sort();
        let groups: Vec<&Vec<usize>> = keys.iter().map(|k| &groups[k]).collect();

        let mut emb = GraphEmbedder::new(BLOCK_FEATURES, cfg.dim, cfg.rounds, cfg.seed);
        let mut rng = SmallRng::seed_from_u64(cfg.seed ^ 0xBEEF);
        for _ in 0..cfg.pairs {
            let g = groups[rng.gen_range(0..groups.len())];
            if g.len() >= 2 {
                let a = g[rng.gen_range(0..g.len())];
                let b = g[rng.gen_range(0..g.len())];
                if a != b {
                    emb.train_pair(&samples[a], &samples[b], 1.0, cfg.lr);
                }
            }
            let a = g[rng.gen_range(0..g.len())];
            let c = rng.gen_range(0..samples.len());
            if identity[c] != identity[a] {
                emb.train_pair(&samples[a], &samples[c], -1.0, cfg.lr);
            }
        }
        GeminiDetector { embedder: emb, threshold: cfg.threshold }
    }

    /// Cosine similarity of two functions in [-1, 1].
    pub fn similarity(&self, a: &FunctionDisasm, b: &FunctionDisasm) -> f32 {
        self.embedder.similarity(&graph_sample(a), &graph_sample(b))
    }

    /// Scan a binary: cosine similarity of every function against a
    /// reference embedding.
    pub fn scan(&self, bin: &fwbin::Binary, reference: &FunctionDisasm) -> Vec<f32> {
        let ref_emb = self.embedder.embed(&graph_sample(reference));
        (0..bin.function_count())
            .map(|i| {
                let dis = disasm::disassemble(bin, i).expect("target decodes");
                neural::cosine(&ref_emb, &self.embedder.embed(&graph_sample(&dis)))
            })
            .collect()
    }
}

/// Static-feature nearest-neighbour distance (used by ablation benches):
/// plain normalized L2 over the 48 Table I features — the "no learning"
/// strawman.
pub fn raw_feature_distance(
    norm: &features::Normalizer,
    a: &features::StaticFeatures,
    b: &features::StaticFeatures,
) -> f64 {
    norm.apply(a)
        .iter()
        .zip(norm.apply(b))
        .map(|(x, y)| ((x - y) as f64).powi(2))
        .sum::<f64>()
        .sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;
    use corpus::dataset1::Dataset1Config;
    use fwbin::isa::{Arch, OptLevel};
    use fwlang::gen::Generator;

    fn disasms(seed: u64, arch: Arch, opt: OptLevel) -> Vec<FunctionDisasm> {
        let lib = Generator::new(seed).library_sized("libb", 8);
        let bin = fwbin::compile_library(&lib, arch, opt).unwrap();
        disasm::disassemble_all(&bin).unwrap()
    }

    #[test]
    fn bipartite_zero_for_identical() {
        let ds = disasms(1, Arch::Arm64, OptLevel::O2);
        for d in &ds {
            assert_eq!(bipartite_similarity(d, d), 0.0);
        }
    }

    #[test]
    fn bipartite_ranks_same_source_closer_on_average() {
        let a = disasms(2, Arch::X86, OptLevel::O1);
        let b = disasms(2, Arch::Arm64, OptLevel::O2);
        let mut same = 0.0;
        let mut cross = 0.0;
        let mut n_cross = 0.0;
        for i in 0..a.len() {
            same += bipartite_similarity(&a[i], &b[i]);
            for (j, bj) in b.iter().enumerate() {
                if i != j {
                    cross += bipartite_similarity(&a[i], bj);
                    n_cross += 1.0;
                }
            }
        }
        assert!((same / a.len() as f64) < cross / n_cross);
    }

    #[test]
    fn graph_sample_is_symmetric() {
        let ds = disasms(3, Arch::Arm32, OptLevel::O2);
        for d in &ds {
            let g = graph_sample(d);
            assert!(g.check());
            for (v, ns) in g.adj.iter().enumerate() {
                for &u in ns {
                    assert!(g.adj[u].contains(&v), "edge {v}->{u} not symmetric");
                }
            }
        }
    }

    #[test]
    fn gemini_trains_and_separates() {
        let ds = corpus::build_dataset1(&Dataset1Config {
            num_libraries: 3,
            min_functions: 5,
            max_functions: 6,
            seed: 5,
                include_catalog: false,
        });
        let cfg = GeminiConfig { pairs: 600, ..GeminiConfig::default() };
        let det = GeminiDetector::train(&ds, &cfg);
        // Same function across platforms embeds closer than different ones.
        let v0 = &ds.variants[0].binary;
        let v1 = &ds.variants_of(0).nth(4).unwrap().binary;
        let d00 = disasm::disassemble(v0, 0).unwrap();
        let d10 = disasm::disassemble(v1, 0).unwrap();
        let d13 = disasm::disassemble(v1, 3).unwrap();
        let same = det.similarity(&d00, &d10);
        let diff = det.similarity(&d00, &d13);
        assert!(same > diff, "same {same} vs diff {diff}");
        let probs = det.scan(v1, &d00);
        assert_eq!(probs.len(), v1.function_count());
    }
}
