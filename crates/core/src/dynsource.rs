//! Where the dynamic stage gets execution environments and dynamic
//! profiles from — the dynamic-side twin of
//! [`crate::pipeline::FeatureSource`].
//!
//! The paper's dynamic stage is the pipeline's dominant cost (Table VII:
//! hours of on-device execution against seconds of static scanning), and
//! both its products are pure functions of content:
//!
//! * an **environment set** is determined by the reference function's
//!   code, the fuzzer configuration, and the interpreter limits;
//! * a **dynamic profile** is determined by the profiled function's code,
//!   the exact environment set, and the interpreter limits.
//!
//! [`DynProfileSource`] abstracts over where those come from. The default
//! [`LiveProfiling`] fuzzes and executes on every call; scanhub's
//! artifact store implements the trait to serve both from its
//! content-addressed dynamic lane, which is how a warm re-audit performs
//! zero VM executions.

use crate::error::ScanError;
use serde::{Deserialize, Serialize};
use vm::env::{ArgSpec, ExecEnv};
use vm::envpool::EnvPool;
use vm::exec::VmConfig;
use vm::fuzz::{self, FuzzConfig};
use vm::loader::LoadedBinary;
use vm::DynFeatures;

/// Dual-lane 64-bit FNV-1a, same construction as scanhub's `ArtifactKey`
/// hasher: the `hi` lane hashes bytes as-is, the `lo` lane hashes each
/// byte rotated left by 3, giving two independent 64-bit digests.
struct Fnv2 {
    hi: u64,
    lo: u64,
}

const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

impl Fnv2 {
    fn new() -> Fnv2 {
        Fnv2 { hi: 0xcbf2_9ce4_8422_2325, lo: 0x6c62_272e_07bb_0142 }
    }

    fn update(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.hi = (self.hi ^ u64::from(b)).wrapping_mul(FNV_PRIME);
            self.lo = (self.lo ^ u64::from(b.rotate_left(3))).wrapping_mul(FNV_PRIME);
        }
    }

    fn update_u64(&mut self, v: u64) {
        self.update(&v.to_le_bytes());
    }
}

/// A set of execution environments plus a content fingerprint.
///
/// The fingerprint digests the interpreter limits and every environment's
/// full contents (input bytes, argument specs, global overrides), so two
/// sets fingerprint equal exactly when replaying them is guaranteed to
/// produce bitwise-identical profiles. It is the "env-set fingerprint"
/// lane of scanhub's dynamic-profile cache key: changing [`VmConfig`] or
/// any environment invalidates every profile derived from the set.
#[derive(Debug, Clone)]
pub struct EnvSet {
    /// The environments, in generation order.
    pub envs: Vec<ExecEnv>,
    /// 128-bit content fingerprint of `(vm config, envs)`.
    pub fingerprint: (u64, u64),
}

impl EnvSet {
    /// Wrap `envs`, computing the content fingerprint under `vm`.
    pub fn new(envs: Vec<ExecEnv>, vm: &VmConfig) -> EnvSet {
        let mut h = Fnv2::new();
        h.update_u64(vm.max_instructions);
        h.update_u64(vm.max_depth as u64);
        h.update_u64(vm.heap_limit as u64);
        h.update_u64(envs.len() as u64);
        for env in &envs {
            h.update_u64(env.input.len() as u64);
            h.update(&env.input);
            h.update_u64(env.args.len() as u64);
            for arg in &env.args {
                match arg {
                    ArgSpec::InputPtr => h.update(&[1]),
                    ArgSpec::Int(v) => {
                        h.update(&[2]);
                        h.update_u64(*v as u64);
                    }
                    ArgSpec::Float(v) => {
                        h.update(&[3]);
                        h.update_u64(v.to_bits());
                    }
                }
            }
            h.update_u64(env.global_overrides.len() as u64);
            for &(gid, v) in &env.global_overrides {
                h.update_u64(u64::from(gid));
                h.update_u64(v as u64);
            }
        }
        EnvSet { fingerprint: (h.hi, h.lo), envs }
    }

    /// Number of environments.
    pub fn len(&self) -> usize {
        self.envs.len()
    }

    /// True when the set holds no environments.
    pub fn is_empty(&self) -> bool {
        self.envs.is_empty()
    }

    /// Concatenate two sets (differential-engine env union), recomputing
    /// the fingerprint from the combined contents.
    pub fn union(&self, other: &EnvSet, vm: &VmConfig) -> EnvSet {
        let mut envs = self.envs.clone();
        envs.extend(other.envs.iter().cloned());
        EnvSet::new(envs, vm)
    }
}

/// One function's dynamic behaviour over every environment of an
/// [`EnvSet`]: per-environment Table II feature vectors plus the
/// execution-validation outcome of each run.
///
/// Keeping the per-environment `ok` bits (instead of the pipeline's old
/// early-exit `Option`) lets one cached profile serve every consumer
/// bitwise-identically: the pipeline validates a candidate iff every run
/// succeeded, and the differential engine intersects the `ok` bits of
/// three profiles to pick its surviving environments — per-environment
/// runs are independent, so subsetting a full profile equals re-running
/// the subset.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DynProfile {
    /// Per-environment execution-validation outcome (`true` = returned).
    pub ok: Vec<bool>,
    /// Per-environment dynamic features, aligned with `ok`.
    pub features: Vec<DynFeatures>,
}

impl DynProfile {
    /// Whether the function survived every environment (the paper's
    /// execution-validation criterion).
    pub fn validated(&self) -> bool {
        self.ok.iter().all(|&b| b)
    }

    /// Number of environments profiled.
    pub fn len(&self) -> usize {
        self.ok.len()
    }

    /// True when no environments were profiled.
    pub fn is_empty(&self) -> bool {
        self.ok.is_empty()
    }
}

/// Where the dynamic stage gets environment sets and profiles from.
///
/// Both methods are deterministic in their inputs; implementations may
/// cache aggressively. Errors are *advisory*: the pipeline degrades to
/// static evidence instead of failing, and the cached implementation
/// falls back to live execution internally rather than surfacing cache
/// damage.
pub trait DynProfileSource: Send + Sync {
    /// Execution environments for `reference` (fuzz the reference's
    /// function 0, keep environments the reference itself survives).
    ///
    /// # Errors
    /// Implementation-specific transient failures; [`LiveProfiling`]
    /// never errors.
    fn environments(
        &self,
        reference: &LoadedBinary,
        fuzz_cfg: &FuzzConfig,
        vm: &VmConfig,
    ) -> Result<EnvSet, ScanError>;

    /// Dynamic profile of function `func` of `target` over every
    /// environment of `envs`.
    ///
    /// # Errors
    /// Implementation-specific transient failures; [`LiveProfiling`]
    /// never errors (but may panic on out-of-range `func`, like
    /// [`LoadedBinary::run_any`]).
    fn profile(
        &self,
        target: &LoadedBinary,
        func: usize,
        envs: &EnvSet,
        vm: &VmConfig,
    ) -> Result<DynProfile, ScanError>;
}

/// The uncached [`DynProfileSource`]: fuzz and execute on every call.
pub struct LiveProfiling;

impl DynProfileSource for LiveProfiling {
    fn environments(
        &self,
        reference: &LoadedBinary,
        fuzz_cfg: &FuzzConfig,
        vm: &VmConfig,
    ) -> Result<EnvSet, ScanError> {
        Ok(live_environments(reference, fuzz_cfg, vm))
    }

    fn profile(
        &self,
        target: &LoadedBinary,
        func: usize,
        envs: &EnvSet,
        vm: &VmConfig,
    ) -> Result<DynProfile, ScanError> {
        Ok(live_profile(target, func, &envs.envs, vm))
    }
}

/// Generate execution environments by fuzzing `reference`'s function 0,
/// keeping only environments the reference itself survives ("We tested
/// that these inputs worked with both the vulnerable and patched
/// functions"). The survival replay goes through one [`EnvPool`] so the
/// reference's state is snapshotted once, not per environment.
pub fn live_environments(
    reference: &LoadedBinary,
    fuzz_cfg: &FuzzConfig,
    vm: &VmConfig,
) -> EnvSet {
    let envs = fuzz::fuzz_function(reference, 0, fuzz_cfg, vm);
    let pool = EnvPool::new(reference, &envs, vm);
    let surviving = envs
        .into_iter()
        .enumerate()
        .filter(|&(i, _)| pool.run(0, i).outcome.is_ok())
        .map(|(_, e)| e)
        .collect();
    EnvSet::new(surviving, vm)
}

/// Profile `target[func]` under every environment, through one
/// [`EnvPool`] snapshot.
///
/// # Panics
/// Panics if `func` is out of range, with the same diagnostic as
/// [`LoadedBinary::run_any`].
pub fn live_profile(
    target: &LoadedBinary,
    func: usize,
    envs: &[ExecEnv],
    vm: &VmConfig,
) -> DynProfile {
    let pool = EnvPool::new(target, envs, vm);
    let mut ok = Vec::with_capacity(envs.len());
    let mut features = Vec::with_capacity(envs.len());
    for r in pool.run_all(func) {
        ok.push(r.outcome.is_ok());
        features.push(r.features);
    }
    DynProfile { ok, features }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fwbin::isa::{Arch, OptLevel};
    use fwlang::gen::Generator;

    fn loaded(seed: u64) -> LoadedBinary {
        let lib = Generator::new(seed).library_sized("libdyn", 4);
        let bin = fwbin::compile_library(&lib, Arch::Arm64, OptLevel::O2).unwrap();
        LoadedBinary::load(bin).unwrap()
    }

    #[test]
    fn fingerprint_is_deterministic_and_content_sensitive() {
        let vm = VmConfig::default();
        let envs = vec![
            ExecEnv::for_buffer(vec![1, 2, 3], &[0]),
            ExecEnv::for_buffer(vec![9; 16], &[0]),
        ];
        let a = EnvSet::new(envs.clone(), &vm);
        let b = EnvSet::new(envs.clone(), &vm);
        assert_eq!(a.fingerprint, b.fingerprint);

        let mut mutated = envs.clone();
        mutated[1].input[3] = 0xAA;
        assert_ne!(EnvSet::new(mutated, &vm).fingerprint, a.fingerprint);

        let tighter = VmConfig { max_instructions: 1_000, ..VmConfig::default() };
        assert_ne!(EnvSet::new(envs, &tighter).fingerprint, a.fingerprint);
    }

    #[test]
    fn live_profile_matches_run_any_bitwise() {
        let lb = loaded(5);
        let vm = VmConfig::default();
        let set = live_environments(&lb, &FuzzConfig::default(), &vm);
        assert!(!set.is_empty(), "fuzzer should produce surviving envs");
        for func in 0..lb.function_count() {
            let prof = live_profile(&lb, func, &set.envs, &vm);
            assert_eq!(prof.len(), set.len());
            for (i, env) in set.envs.iter().enumerate() {
                let direct = lb.run_any(func, env, &vm);
                assert_eq!(prof.ok[i], direct.outcome.is_ok());
                assert_eq!(
                    prof.features[i].as_slice().iter().map(|f| f.to_bits()).collect::<Vec<_>>(),
                    direct.features.as_slice().iter().map(|f| f.to_bits()).collect::<Vec<_>>(),
                );
            }
        }
    }

    #[test]
    fn union_fingerprint_tracks_order_and_content() {
        let vm = VmConfig::default();
        let a = EnvSet::new(vec![ExecEnv::for_buffer(vec![1], &[0])], &vm);
        let b = EnvSet::new(vec![ExecEnv::for_buffer(vec![2], &[0])], &vm);
        let ab = a.union(&b, &vm);
        let ba = b.union(&a, &vm);
        assert_eq!(ab.len(), 2);
        assert_ne!(ab.fingerprint, ba.fingerprint, "union is order-sensitive");
        assert_ne!(ab.fingerprint, a.fingerprint);
    }
}
