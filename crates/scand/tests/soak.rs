//! Soak test for the scan daemon: many concurrent clients across several
//! tenants, mixed cold/warm phases, admission overload, and graceful
//! drain — the acceptance scenario of the service architecture.
//!
//! The warm-phase assertions read the process-global `vm.executions`
//! counter, so the audit-running tests serialize on a local mutex; as its
//! own integration-test binary this file owns the process and no other
//! suite's VM work can leak in.

mod common;

use common::{analyzer, shared_device, small_db, temp_path};
use patchecko_core::differential::DifferentialConfig;
use patchecko_core::error::ScanError;
use patchecko_core::report::AuditReport;
use patchecko_scand::{ScanClient, ScanServer, ServerConfig};
use patchecko_scanhub::{ArtifactStore, ScanHub};
use std::path::Path;
use std::sync::{Arc, Barrier, Mutex, OnceLock};

fn vm_counter_lock() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    // Poison-tolerant: one test's failure should report itself, not
    // cascade into PoisonErrors in the other two.
    match LOCK.get_or_init(|| Mutex::new(())).lock() {
        Ok(guard) => guard,
        Err(poisoned) => poisoned.into_inner(),
    }
}

const TENANTS: [&str; 2] = ["acme", "zenith"];

/// Eight concurrent clients (four per tenant), all batch-auditing the
/// same hosted image. Returns each client's (tenant, reports).
fn storm(socket: &Path) -> Vec<(String, Vec<AuditReport>)> {
    let barrier = Arc::new(Barrier::new(8));
    std::thread::scope(|s| {
        (0..8)
            .map(|i| {
                let tenant = TENANTS[i % TENANTS.len()];
                let barrier = Arc::clone(&barrier);
                s.spawn(move || {
                    let mut client = ScanClient::connect(socket, tenant).unwrap();
                    barrier.wait();
                    (tenant.to_string(), client.batch_audit(&[0]).unwrap())
                })
            })
            .collect::<Vec<_>>()
            .into_iter()
            .map(|h| h.join().unwrap())
            .collect()
    })
}

#[test]
fn soak_two_tenants_eight_clients_cold_warm_drain_and_checksum_clean_reload() {
    let _guard = vm_counter_lock();
    let cache_dir = temp_path("soak-cache");
    let _ = std::fs::remove_dir_all(&cache_dir);
    let socket = temp_path("soak.sock");

    let hub = ScanHub::with_cache_dir(analyzer(), &cache_dir).unwrap();
    let cfg = ServerConfig { workers: 4, ..ServerConfig::new(&socket) };
    let server =
        ScanServer::start(cfg, hub, vec![shared_device().image.clone()], small_db()).unwrap();

    // ---- Cold phase: every response arrives, none misrouted. ----------
    // (The client verifies the response tag echo on every call, so a
    // misrouted or dropped response fails the unwrap inside `storm`.)
    let cold = storm(&socket);
    let reference = serde_json::to_string(&cold[0].1[0].findings).unwrap();
    for (tenant, reports) in &cold {
        assert_eq!(reports.len(), 1, "{tenant}: one report per requested image");
        assert_eq!(
            serde_json::to_string(&reports[0].findings).unwrap(),
            reference,
            "{tenant}: every client sees the same verdicts"
        );
    }

    let mut probe = ScanClient::connect(&socket, "").unwrap();
    let stats_cold = probe.stats().unwrap();
    assert_eq!(stats_cold.state, "running");
    assert_eq!(stats_cold.images, 1);
    assert!(stats_cold.cache.extractions > 0, "cold phase fills the static lane");
    assert!(stats_cold.vm_executions > 0, "cold phase executes the VM");
    for tenant in TENANTS {
        let t = &stats_cold.tenants[tenant];
        assert_eq!(t.accepted + t.deduped, 4, "{tenant}: all four requests accounted for");
        assert!(t.deduped >= 1, "{tenant}: identical concurrent requests coalesce");
        assert_eq!(t.completed, t.accepted, "{tenant}: every queued job completed");
        assert_eq!((t.failed, t.rejected), (0, 0), "{tenant}");
        let latency = t.latency.as_ref().expect("latency histogram recorded");
        assert_eq!(latency.count, t.completed, "{tenant}: one latency sample per job");
    }

    // ---- Warm phase: zero VM executions, zero extractions. ------------
    let warm = storm(&socket);
    for (tenant, reports) in &warm {
        assert_eq!(
            serde_json::to_string(&reports[0].findings).unwrap(),
            reference,
            "{tenant}: warm verdicts identical to cold"
        );
    }
    let stats_warm = probe.stats().unwrap();
    assert_eq!(
        stats_warm.vm_executions, stats_cold.vm_executions,
        "warm requests perform zero VM executions"
    );
    assert_eq!(
        stats_warm.cache.extractions, stats_cold.cache.extractions,
        "warm requests perform zero feature extractions"
    );
    for tenant in TENANTS {
        let t = &stats_warm.tenants[tenant];
        assert_eq!(t.accepted + t.deduped, 8, "{tenant}: cold + warm requests all accounted for");
        assert_eq!((t.failed, t.rejected), (0, 0), "{tenant}");
    }

    // Latency histograms from scope, in the test output (acceptance).
    for tenant in TENANTS {
        let latency = stats_warm.tenants[tenant].latency.as_ref().unwrap();
        println!(
            "tenant {tenant}: {} jobs, mean {:.1} ms, max {:.1} ms, log2-ns buckets {:?}",
            latency.count,
            latency.mean_ns() as f64 / 1e6,
            latency.max_ns as f64 / 1e6,
            latency.buckets
        );
    }
    println!("{}", stats_warm.telemetry.filtered("tenant.acme").to_table());

    // ---- Drain: persist, refuse new work, exit cleanly. ---------------
    let drained = probe.drain().unwrap();
    assert!(drained.persisted, "drain persisted the caches");
    server.join();
    assert!(!socket.exists(), "the daemon removed its socket on exit");
    assert!(ScanClient::connect(&socket, "acme").is_err(), "no daemon behind the socket anymore");

    // ---- Both cache lanes reload checksum-clean. ----------------------
    let store = ArtifactStore::load(&cache_dir).unwrap();
    let reloaded = store.stats();
    assert_eq!(reloaded.quarantined, 0, "static lane is checksum-clean");
    assert_eq!(reloaded.dyn_quarantined, 0, "dynamic lane is checksum-clean");
    assert!(reloaded.entries > 0, "static lane persisted");
    assert!(reloaded.dyn_entries > 0, "dynamic lane persisted");

    // A restarted hub serves the tenant's audit fully warm: zero
    // extractions AND zero VM executions across the restart.
    let hub = ScanHub::with_cache_dir(analyzer(), &cache_dir).unwrap();
    let vm_before = scope::snapshot().counter("vm.executions");
    let report = hub
        .audit_tenant(&small_db(), &shared_device().image, &DifferentialConfig::default(), "acme")
        .unwrap();
    assert_eq!(serde_json::to_string(&report.findings).unwrap(), reference);
    assert_eq!(hub.stats().extractions, 0, "restart-warm audit extracts nothing");
    assert_eq!(
        scope::snapshot().counter("vm.executions"),
        vm_before,
        "restart-warm audit performs zero VM executions"
    );
    std::fs::remove_dir_all(&cache_dir).unwrap();
}

#[test]
fn overload_sheds_typed_rejections_and_the_retry_hint_recovers() {
    let _guard = vm_counter_lock();
    let socket = temp_path("overload.sock");
    let cfg = ServerConfig {
        workers: 1,
        queue_limit: 1,
        retry_after_ms: 10,
        ..ServerConfig::new(&socket)
    };
    let server = ScanServer::start(
        cfg,
        ScanHub::new(analyzer()),
        vec![shared_device().image.clone()],
        small_db(),
    )
    .unwrap();

    // Six tenants rush a one-worker, one-slot daemon simultaneously.
    // Distinct tenants keep dedup out of the picture: six distinct jobs
    // compete for 1 running + 1 queued, so some must be shed.
    let barrier = Arc::new(Barrier::new(6));
    let results: Vec<(String, Result<AuditReport, ScanError>)> = std::thread::scope(|s| {
        (0..6)
            .map(|i| {
                let tenant = format!("t{i}");
                let barrier = Arc::clone(&barrier);
                let socket = &socket;
                s.spawn(move || {
                    let mut client = ScanClient::connect(socket, &tenant).unwrap();
                    barrier.wait();
                    let outcome = client.audit(0);
                    (tenant, outcome)
                })
            })
            .collect::<Vec<_>>()
            .into_iter()
            .map(|h| h.join().unwrap())
            .collect()
    });

    let mut served = 0;
    let mut shed = Vec::new();
    for (tenant, outcome) in &results {
        match outcome {
            Ok(report) => {
                assert!(!report.findings.is_empty());
                served += 1;
            }
            Err(ScanError::Overloaded { queue_limit, retry_after_ms, .. }) => {
                assert_eq!(*queue_limit, 1, "the hint names the server's limit");
                // The hint scales with queue pressure: between the base
                // (idle) and its 8x saturation cap.
                assert!(
                    (10..=80).contains(retry_after_ms),
                    "hint {retry_after_ms} outside the scaled [base, 8x base] window"
                );
                shed.push(tenant.clone());
            }
            Err(other) => panic!("{tenant}: overload must be typed, got {other:?}"),
        }
    }
    assert!(served >= 1, "someone was served");
    assert!(!shed.is_empty(), "a one-slot queue under a six-way rush must shed load");

    // The retry hint recovers every shed tenant: back off and resubmit.
    for tenant in &shed {
        let mut client = ScanClient::connect(&socket, tenant).unwrap();
        let report = client.audit_with_retry(0, 500).unwrap();
        assert!(!report.findings.is_empty(), "{tenant} recovered after backoff");
    }

    let mut probe = ScanClient::connect(&socket, "").unwrap();
    let stats = probe.stats().unwrap();
    let rejected: u64 = stats.tenants.values().map(|t| t.rejected).sum();
    assert!(rejected >= shed.len() as u64, "rejections are counted per tenant");
    probe.drain().unwrap();
    server.join();
}

#[test]
fn draining_daemon_refuses_new_work_with_a_typed_error() {
    let _guard = vm_counter_lock();
    let socket = temp_path("drainrace.sock");
    let server = ScanServer::start(
        ServerConfig::new(&socket),
        ScanHub::new(analyzer()),
        vec![shared_device().image.clone()],
        small_db(),
    )
    .unwrap();

    // Warm the daemon with one audit, then drain from one client while
    // another immediately tries to submit.
    let mut first = ScanClient::connect(&socket, "acme").unwrap();
    first.audit(0).unwrap();

    let mut late = ScanClient::connect(&socket, "acme").unwrap();
    let drained = first.drain().unwrap();
    assert!(!drained.persisted, "no cache directory, nothing to persist");
    // The already-open connection outlives the listener; its next
    // submission is refused with the typed drain error.
    match late.audit(0) {
        Err(ScanError::Draining) => {}
        other => panic!("expected Draining, got {other:?}"),
    }
    server.join();
}
