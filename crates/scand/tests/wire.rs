//! Wire-fault chaos against a live daemon: sabotaged frames from the
//! faultline injector must produce typed `Protocol` errors or clean
//! connection drops — never a hang, never a panic, never collateral
//! damage to a healthy client's request.
//!
//! The daemon here hosts no images (every queued op resolves to a fast
//! typed error) and a minimally-trained model: these tests attack the
//! framing and control plane, not scan quality.

mod common;

use common::{small_db, temp_path, tiny_analyzer};
use patchecko_core::error::ScanError;
use patchecko_faultline::{FaultPlan, Sabotage, WireFaults};
use patchecko_scand::proto::{self, Op, Outcome, Request, Response};
use patchecko_scand::{ScanClient, ScanServer, ServerConfig};
use patchecko_scanhub::ScanHub;
use std::io::Write;
use std::os::unix::net::UnixStream;
use std::time::Duration;

fn encode_frame(request: &Request) -> Vec<u8> {
    let mut frame = Vec::new();
    proto::send(&mut frame, request).unwrap();
    frame
}

#[test]
fn sabotaged_frames_get_typed_replies_and_never_wedge_the_daemon() {
    let socket = temp_path("wire.sock");
    let server =
        ScanServer::start(ServerConfig::new(&socket), ScanHub::new(tiny_analyzer()), Vec::new(), small_db())
            .unwrap();

    let faults = WireFaults::aggressive(FaultPlan::new(0x51de));
    for key in 0..64u64 {
        let clean = encode_frame(&Request { tenant: "chaos".into(), tag: key, op: Op::Stats });
        let mut stream = UnixStream::connect(&socket).unwrap();
        stream.set_read_timeout(Some(Duration::from_secs(30))).unwrap();
        match faults.apply(key, &clean) {
            Sabotage::Deliver(bytes) => {
                let untouched = bytes == clean;
                stream.write_all(&bytes).unwrap();
                let response: Response = proto::recv(&mut stream)
                    .unwrap_or_else(|e| panic!("key {key}: reply must arrive, got {e:?}"))
                    .unwrap_or_else(|| panic!("key {key}: server closed without replying"));
                match (untouched, response.tag, &response.outcome) {
                    // Clean frames are served normally.
                    (true, tag, Outcome::Stats(_)) if tag == key => {}
                    // Corrupt length prefix or garbage body: the one
                    // response class tagged 0 (the real tag is
                    // unknowable), always a typed Protocol error.
                    (false, 0, Outcome::Error(ScanError::Protocol { .. })) => {}
                    // A body mangling that happened to keep the JSON
                    // valid is indistinguishable from a legal request
                    // and is served; the tag still routes correctly.
                    (false, tag, Outcome::Stats(_)) if tag == key => {}
                    (untouched, tag, outcome) => panic!(
                        "key {key} (untouched={untouched}): unexpected reply tag {tag}: {outcome:?}"
                    ),
                }
            }
            Sabotage::Hangup { after } => {
                // A client dying mid-write (or before writing anything):
                // deliver the partial frame and vanish. The daemon must
                // shrug the connection off.
                stream.write_all(&clean[..after]).unwrap();
                drop(stream);
            }
        }
    }

    // The daemon survived the storm: a healthy client is served, both on
    // the control plane and through the work queue.
    let mut client = ScanClient::connect(&socket, "healthy").unwrap();
    let stats = client.stats().unwrap();
    assert_eq!(stats.state, "running");
    assert_eq!(stats.queue_depth, 0, "no sabotaged frame left a ghost job behind");
    match client.audit(0) {
        Err(ScanError::ImageOutOfRange { index: 0, images: 0 }) => {}
        other => panic!("queued work still flows after the storm, got {other:?}"),
    }
    client.drain().unwrap();
    server.join();
}

#[test]
fn client_disconnect_mid_request_does_not_poison_the_job_or_the_daemon() {
    let socket = temp_path("wire-hangup.sock");
    let server =
        ScanServer::start(ServerConfig::new(&socket), ScanHub::new(tiny_analyzer()), Vec::new(), small_db())
            .unwrap();

    // Submit a (queueable) request and vanish before reading the reply:
    // the executor still runs the job, and broadcasting to the dead
    // waiter is a no-op.
    let mut stream = UnixStream::connect(&socket).unwrap();
    let frame = encode_frame(&Request { tenant: "ghost".into(), tag: 9, op: Op::Audit { image: 0 } });
    stream.write_all(&frame).unwrap();
    drop(stream);

    // The job completes despite its orphaned waiter.
    let mut probe = ScanClient::connect(&socket, "").unwrap();
    let deadline = std::time::Instant::now() + Duration::from_secs(30);
    loop {
        let stats = probe.stats().unwrap();
        let ghost = stats.tenants.get("ghost").cloned().unwrap_or_default();
        if ghost.accepted == 1 && ghost.failed == 1 {
            break;
        }
        assert!(std::time::Instant::now() < deadline, "ghost job never completed: {ghost:?}");
        std::thread::sleep(Duration::from_millis(20));
    }
    // And the daemon is unharmed.
    let mut client = ScanClient::connect(&socket, "alive").unwrap();
    assert!(matches!(client.audit(0), Err(ScanError::ImageOutOfRange { .. })));
    client.drain().unwrap();
    server.join();
}
