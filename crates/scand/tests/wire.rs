//! Wire-fault chaos against a live daemon: sabotaged frames from the
//! faultline injector must produce typed `Protocol` errors or clean
//! connection drops — never a hang, never a panic, never collateral
//! damage to a healthy client's request.
//!
//! The daemon here hosts no images (every queued op resolves to a fast
//! typed error) and a minimally-trained model: these tests attack the
//! framing and control plane, not scan quality.

mod common;

use common::{small_db, temp_path, tiny_analyzer};
use patchecko_core::error::ScanError;
use patchecko_faultline::{FaultPlan, Sabotage, WireFaults};
use patchecko_scand::proto::{self, Op, Outcome, Request, Response};
use patchecko_scand::{ScanClient, ScanServer, ServerConfig};
use patchecko_scanhub::ScanHub;
use std::io::Write;
use std::os::unix::net::UnixStream;
use std::time::Duration;

fn encode_frame(request: &Request) -> Vec<u8> {
    let mut frame = Vec::new();
    proto::send(&mut frame, request).unwrap();
    frame
}

#[test]
fn sabotaged_frames_get_typed_replies_and_never_wedge_the_daemon() {
    let socket = temp_path("wire.sock");
    let server =
        ScanServer::start(ServerConfig::new(&socket), ScanHub::new(tiny_analyzer()), Vec::new(), small_db())
            .unwrap();

    let faults = WireFaults::aggressive(FaultPlan::new(0x51de));
    let mut held = Vec::new();
    for key in 0..64u64 {
        let clean = encode_frame(&Request {
            tenant: "chaos".into(),
            tag: key,
            deadline_ms: None,
            op: Op::Stats,
        });
        let mut stream = UnixStream::connect(&socket).unwrap();
        stream.set_read_timeout(Some(Duration::from_secs(30))).unwrap();
        match faults.apply(key, &clean) {
            Sabotage::Deliver(bytes) => {
                let untouched = bytes == clean;
                stream.write_all(&bytes).unwrap();
                let response: Response = proto::recv(&mut stream)
                    .unwrap_or_else(|e| panic!("key {key}: reply must arrive, got {e:?}"))
                    .unwrap_or_else(|| panic!("key {key}: server closed without replying"));
                match (untouched, response.tag, &response.outcome) {
                    // Clean frames are served normally.
                    (true, tag, Outcome::Stats(_)) if tag == key => {}
                    // Corrupt length prefix or garbage body: the one
                    // response class tagged 0 (the real tag is
                    // unknowable), always a typed Protocol error.
                    (false, 0, Outcome::Error(ScanError::Protocol { .. })) => {}
                    // A body mangling that happened to keep the JSON
                    // valid is indistinguishable from a legal request
                    // and is served; the tag still routes correctly.
                    (false, tag, Outcome::Stats(_)) if tag == key => {}
                    (untouched, tag, outcome) => panic!(
                        "key {key} (untouched={untouched}): unexpected reply tag {tag}: {outcome:?}"
                    ),
                }
            }
            Sabotage::Hangup { after } => {
                // A client dying mid-write (or before writing anything):
                // deliver the partial frame and vanish. The daemon must
                // shrug the connection off.
                stream.write_all(&clean[..after]).unwrap();
                drop(stream);
            }
            Sabotage::Stall { first, pause_ms, rest } => {
                // A slow client pausing mid-frame, but inside the
                // daemon's (default, generous) socket budget: the frame
                // completes and is served like any clean one.
                stream.write_all(&first).unwrap();
                std::thread::sleep(Duration::from_millis(pause_ms));
                stream.write_all(&rest).unwrap();
                let response: Response = proto::recv(&mut stream)
                    .unwrap_or_else(|e| panic!("key {key}: stalled-but-complete frame, got {e:?}"))
                    .unwrap_or_else(|| panic!("key {key}: server closed on a stalled frame"));
                assert_eq!(response.tag, key, "a stall delays bytes, never corrupts them");
            }
            Sabotage::Hold { after } => {
                // A half-open peer: partial frame, then silence without
                // EOF. Park the connection; the daemon's read timeout
                // reaps it long after this test finished.
                stream.write_all(&clean[..after]).unwrap();
                held.push(stream);
            }
        }
    }

    // The daemon survived the storm: a healthy client is served, both on
    // the control plane and through the work queue.
    let mut client = ScanClient::connect(&socket, "healthy").unwrap();
    let stats = client.stats().unwrap();
    assert_eq!(stats.state, "running");
    assert_eq!(stats.queue_depth, 0, "no sabotaged frame left a ghost job behind");
    match client.audit(0) {
        Err(ScanError::ImageOutOfRange { index: 0, images: 0 }) => {}
        other => panic!("queued work still flows after the storm, got {other:?}"),
    }
    client.drain().unwrap();
    drop(held);
    server.join();
}

#[test]
fn socket_timeouts_reap_stalled_and_half_open_peers_without_collateral() {
    let socket = temp_path("wire-stall.sock");
    let cfg = ServerConfig { io_timeout_ms: 150, ..ServerConfig::new(&socket) };
    let server =
        ScanServer::start(cfg, ScanHub::new(tiny_analyzer()), Vec::new(), small_db()).unwrap();

    let frame = encode_frame(&Request {
        tenant: "stall".into(),
        tag: 1,
        deadline_ms: None,
        op: Op::Stats,
    });

    // A peer stalling mid-frame for longer than the 150 ms socket
    // budget: the injector picks the split point and pause; this harness
    // only finds a seed-determined frame whose pause outlives the budget.
    let mut stalls = WireFaults::none(FaultPlan::new(0xabad));
    stalls.stall_in = 1;
    stalls.max_stall_ms = 5_000;
    let key = (0..10_000u64)
        .find(|&k| {
            matches!(stalls.apply(k, &frame), Sabotage::Stall { pause_ms, .. } if pause_ms > 2_000)
        })
        .expect("a 5s-bounded stall plan yields a >2s pause quickly");
    let Sabotage::Stall { first, .. } = stalls.apply(key, &frame) else { unreachable!() };
    let mut stalled = UnixStream::connect(&socket).unwrap();
    stalled.write_all(&first).unwrap();

    // A half-open peer: partial frame, then silence without EOF — the
    // daemon never sees a hangup, only its read timeout can free the
    // handler thread.
    let mut half_open = WireFaults::none(FaultPlan::new(0xabad));
    half_open.half_open_in = 1;
    let Sabotage::Hold { after } = half_open.apply(7, &frame) else {
        panic!("half-open must fire at 1-in-1")
    };
    let mut ghost = UnixStream::connect(&socket).unwrap();
    ghost.write_all(&frame[..after]).unwrap();

    // Both are reaped on the timeout, while a healthy client polling on
    // its own connection is served throughout.
    let mut healthy = ScanClient::connect(&socket, "healthy").unwrap();
    let deadline = std::time::Instant::now() + Duration::from_secs(30);
    loop {
        let stats = healthy.stats().unwrap();
        if stats.reaped_connections >= 2 {
            assert_eq!(stats.queue_depth, 0, "a reaped partial frame never became a job");
            break;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "stalled/half-open peers were never reaped"
        );
        std::thread::sleep(Duration::from_millis(20));
    }
    drop(stalled);
    drop(ghost);
    healthy.drain().unwrap();
    server.join();
}

#[test]
fn client_disconnect_mid_request_does_not_poison_the_job_or_the_daemon() {
    let socket = temp_path("wire-hangup.sock");
    let server =
        ScanServer::start(ServerConfig::new(&socket), ScanHub::new(tiny_analyzer()), Vec::new(), small_db())
            .unwrap();

    // Submit a (queueable) request and vanish before reading the reply:
    // the executor still runs the job, and broadcasting to the dead
    // waiter is a no-op.
    let mut stream = UnixStream::connect(&socket).unwrap();
    let frame = encode_frame(&Request {
        tenant: "ghost".into(),
        tag: 9,
        deadline_ms: None,
        op: Op::Audit { image: 0 },
    });
    stream.write_all(&frame).unwrap();
    drop(stream);

    // The job completes despite its orphaned waiter.
    let mut probe = ScanClient::connect(&socket, "").unwrap();
    let deadline = std::time::Instant::now() + Duration::from_secs(30);
    loop {
        let stats = probe.stats().unwrap();
        let ghost = stats.tenants.get("ghost").cloned().unwrap_or_default();
        if ghost.accepted == 1 && ghost.failed == 1 {
            break;
        }
        assert!(std::time::Instant::now() < deadline, "ghost job never completed: {ghost:?}");
        std::thread::sleep(Duration::from_millis(20));
    }
    // And the daemon is unharmed.
    let mut client = ScanClient::connect(&socket, "alive").unwrap();
    assert!(matches!(client.audit(0), Err(ScanError::ImageOutOfRange { .. })));
    client.drain().unwrap();
    server.join();
}
