//! Corpus-scale reference-database soak for the scan daemon: the hosted
//! vulnerability database is bulk-expanded well past the 25 featured
//! CVEs, concurrent tenants audit against it, and every finding must come
//! back named in CVE/CWE terms — the daemon-facing face of the
//! corpus-metadata tentpole.
//!
//! Gates:
//! * the daemon completes a full audit against the corpus-scale DB (one
//!   finding per database entry, none dropped);
//! * every finding carries the CWE class and CVSS score of its database
//!   entry's NVD-style envelope, bulk entries included;
//! * concurrent clients see bitwise-identical verdicts (in-flight dedup
//!   and the cache lanes hold up under the wider DB);
//! * the daemon drains cleanly afterwards — no stuck executors.

mod common;

use common::{analyzer, shared_device, temp_path};
use corpus::cvemeta::valid_cve_id;
use corpus::vulndb::VulnDb;
use patchecko_core::report::AuditReport;
use patchecko_scand::{ScanClient, ScanServer, ServerConfig};
use patchecko_scanhub::ScanHub;
use std::sync::{Arc, Barrier};

/// 25 featured entries plus enough bulk entries to triple the DB — small
/// enough for a test binary, large enough that the daemon's per-entry
/// loop, dedup, and cache lanes run at corpus width.
const BULK: usize = 35;

fn corpus_db() -> VulnDb {
    corpus::build_vulndb(BULK, 1)
}

#[test]
fn corpus_scale_db_audit_names_every_finding_in_cve_cwe_terms() {
    let socket = temp_path("corpus-soak.sock");
    let db = corpus_db();
    let total = db.entries.len();
    assert_eq!(total, 25 + BULK);

    let hub = ScanHub::new(analyzer());
    let cfg = ServerConfig { workers: 4, ..ServerConfig::new(&socket) };
    let server = ScanServer::start(cfg, hub, vec![shared_device().image.clone()], db).unwrap();

    // Four concurrent clients across two tenants, all auditing image 0
    // against the corpus-scale DB.
    let barrier = Arc::new(Barrier::new(4));
    let reports: Vec<(String, Vec<AuditReport>)> = std::thread::scope(|s| {
        (0..4)
            .map(|i| {
                let tenant = ["acme", "zenith"][i % 2];
                let barrier = Arc::clone(&barrier);
                let socket = socket.clone();
                s.spawn(move || {
                    let mut client = ScanClient::connect(&socket, tenant).unwrap();
                    barrier.wait();
                    (tenant.to_string(), client.batch_audit(&[0]).unwrap())
                })
            })
            .collect::<Vec<_>>()
            .into_iter()
            .map(|h| h.join().unwrap())
            .collect()
    });

    let reference = serde_json::to_string(&reports[0].1[0].findings).unwrap();
    for (tenant, r) in &reports {
        assert_eq!(r.len(), 1, "{tenant}: one report per requested image");
        assert_eq!(
            serde_json::to_string(&r[0].findings).unwrap(),
            reference,
            "{tenant}: identical verdicts under the corpus-scale DB"
        );
    }

    let report = &reports[0].1[0];
    assert_eq!(report.findings.len(), total, "one finding per database entry, none dropped");
    let mut bulk_seen = 0usize;
    for f in &report.findings {
        let cwe = f.cwe.as_deref().unwrap_or_else(|| panic!("{}: finding must name its CWE", f.cve));
        assert!(
            cwe.strip_prefix("CWE-").is_some_and(|n| n.bytes().all(|b| b.is_ascii_digit())),
            "{}: malformed CWE {cwe:?}",
            f.cve
        );
        let cvss = f.cvss.unwrap_or_else(|| panic!("{}: finding must carry its CVSS score", f.cve));
        assert!((0.0..=10.0).contains(&cvss), "{}: CVSS {cvss} out of range", f.cve);
        if f.cve.starts_with("CVE-BULK-") {
            bulk_seen += 1;
        } else {
            assert!(valid_cve_id(&f.cve), "{}: featured findings carry real bulletin ids", f.cve);
        }
    }
    assert_eq!(bulk_seen, BULK, "every bulk entry surfaced as a finding");

    // Daemon accounting: all requests served, dedup collapsed the
    // identical concurrent audits, nothing failed or rejected.
    let mut probe = ScanClient::connect(&socket, "").unwrap();
    let stats = probe.stats().unwrap();
    for tenant in ["acme", "zenith"] {
        let t = &stats.tenants[tenant];
        assert_eq!(t.accepted + t.deduped, 2, "{tenant}: both requests accounted for");
        assert_eq!((t.failed, t.rejected), (0, 0), "{tenant}");
    }

    let drained = probe.drain().unwrap();
    assert!(drained.persisted || stats.state == "running", "drain acknowledged");
    server.join();
    assert!(!socket.exists(), "the daemon removed its socket on exit");
}
