//! Production-hardening behaviors of the daemon: end-to-end deadlines
//! (including their interaction with in-flight dedup), per-tenant
//! quotas, the dynamic-stage circuit breaker, and crash-tolerant socket
//! takeover. Every rejection in here must be *typed* — the absence of a
//! hang is as much the subject as the presence of an error.

mod common;

use common::{analyzer, shared_device, small_db, temp_path, tiny_analyzer};
use patchecko_core::error::ScanError;
use patchecko_scand::server::lockfile_path;
use patchecko_scand::{BreakerConfig, ScanClient, ScanServer, ServerConfig};
use std::os::unix::net::UnixListener;
use std::time::{Duration, Instant};

fn wait_until_idle(probe: &mut ScanClient) {
    let deadline = Instant::now() + Duration::from_secs(60);
    loop {
        let stats = probe.stats().unwrap();
        if stats.queue_depth == 0 && stats.in_flight == 0 {
            return;
        }
        assert!(Instant::now() < deadline, "daemon never went idle: {stats:?}");
        std::thread::sleep(Duration::from_millis(20));
    }
}

#[test]
fn expired_requests_are_discarded_typed_and_never_executed() {
    let socket = temp_path("deadline.sock");
    let cfg = ServerConfig { workers: 1, ..ServerConfig::new(&socket) };
    let server = ScanServer::start(
        cfg,
        ScanHubFixture::real(),
        vec![shared_device().image.clone()],
        small_db(),
    )
    .unwrap();

    // Fill the single executor with a cold audit...
    let blocker = std::thread::spawn({
        let socket = socket.clone();
        move || ScanClient::connect(&socket, "blocker").unwrap().audit(0)
    });
    std::thread::sleep(Duration::from_millis(50));

    // ...then race a 1 ms budget in behind it: the deadline elapses in
    // the queue, the connection answers with the typed error at the
    // deadline, and the queue later discards the job unexecuted.
    let mut tight = ScanClient::connect(&socket, "tight").unwrap();
    tight.set_deadline_ms(Some(1));
    match tight.audit(0) {
        Err(ScanError::DeadlineExceeded { budget_ms }) => {
            assert_eq!(budget_ms, 1, "the error names the request's own budget");
        }
        other => panic!("a 1ms budget behind a cold audit must expire, got {other:?}"),
    }

    let report = blocker.join().unwrap().unwrap();
    assert!(!report.findings.is_empty(), "the blocking tenant is unaffected");

    let mut probe = ScanClient::connect(&socket, "").unwrap();
    wait_until_idle(&mut probe);
    let stats = probe.stats().unwrap();
    let tight_stats = &stats.tenants["tight"];
    assert_eq!(tight_stats.expired, 1, "the expiry is counted once, for its tenant");
    assert_eq!(tight_stats.completed, 0, "the expired job never produced a result");
    assert_eq!(
        stats.expired_at_executor, 0,
        "no executor ever started the expired job — the queue discarded it at pop"
    );
    probe.drain().unwrap();
    server.join();
}

#[test]
fn dedup_followers_with_deadlines_get_the_result_or_the_typed_error_never_a_hang() {
    let socket = temp_path("dedup-deadline.sock");
    let cfg = ServerConfig { workers: 1, ..ServerConfig::new(&socket) };
    let server = ScanServer::start(
        cfg,
        ScanHubFixture::real(),
        vec![shared_device().image.clone()],
        small_db(),
    )
    .unwrap();

    // The leader starts a cold audit, unbounded.
    let leader = std::thread::spawn({
        let socket = socket.clone();
        move || ScanClient::connect(&socket, "dup").unwrap().audit(0)
    });
    std::thread::sleep(Duration::from_millis(50));

    // A deduped follower whose deadline expires mid-execution gets the
    // typed error at its deadline, while the leader keeps the job.
    let mut impatient = ScanClient::connect(&socket, "dup").unwrap();
    impatient.set_deadline_ms(Some(1));
    let asked = Instant::now();
    let outcome = impatient.audit(0);
    assert!(
        asked.elapsed() < Duration::from_secs(20),
        "the follower must be released at its deadline, not at job completion"
    );
    match outcome {
        Err(ScanError::DeadlineExceeded { budget_ms }) => assert_eq!(budget_ms, 1),
        other => panic!("expired follower must get the typed error, got {other:?}"),
    }

    // A deduped follower with a generous deadline simply gets the result.
    let mut patient = ScanClient::connect(&socket, "dup").unwrap();
    patient.set_deadline_ms(Some(600_000));
    let follower_report = patient.audit(0).unwrap();
    let leader_report = leader.join().unwrap().unwrap();
    assert_eq!(
        serde_json::to_string(&follower_report).unwrap(),
        serde_json::to_string(&leader_report).unwrap(),
        "both waiters of the coalesced job hear the same result"
    );

    let mut probe = ScanClient::connect(&socket, "").unwrap();
    wait_until_idle(&mut probe);
    let stats = probe.stats().unwrap();
    let dup = &stats.tenants["dup"];
    assert!(dup.deduped >= 1, "the followers joined the leader's job: {dup:?}");
    assert_eq!(dup.expired, 1, "exactly one waiter expired");
    probe.drain().unwrap();
    server.join();
}

#[test]
fn tenant_quota_meters_bursts_with_typed_live_hints() {
    let socket = temp_path("quota.sock");
    let cfg = ServerConfig {
        tenant_quota: Some("10:2".parse().unwrap()),
        ..ServerConfig::new(&socket)
    };
    // No hosted images: every admitted audit fails fast with a typed
    // ImageOutOfRange, which makes admission-vs-execution unambiguous.
    let server =
        ScanServer::start(cfg, ScanHubFixture::tiny(), Vec::new(), small_db()).unwrap();

    let mut metered = ScanClient::connect(&socket, "metered").unwrap();
    for i in 0..2 {
        match metered.audit(0) {
            Err(ScanError::ImageOutOfRange { .. }) => {}
            other => panic!("burst admission {i} must reach execution, got {other:?}"),
        }
    }
    match metered.audit(0) {
        Err(ScanError::QuotaExceeded { tenant, retry_after_ms }) => {
            assert_eq!(tenant, "metered");
            assert!(
                (1..=150).contains(&retry_after_ms),
                "at 10/s one token is ~100ms away, hint says {retry_after_ms}"
            );
        }
        other => panic!("an empty bucket must reject typed, got {other:?}"),
    }

    // audit_with_retry honours the quota hint (with jitter) the same way
    // it honours overload: it retries through to the real outcome.
    match metered.audit_with_retry(0, 20) {
        Err(ScanError::ImageOutOfRange { .. }) => {}
        other => panic!("retry must wait out the bucket and be admitted, got {other:?}"),
    }

    // Buckets are per tenant: another tenant's burst is untouched.
    let mut free = ScanClient::connect(&socket, "free").unwrap();
    for _ in 0..2 {
        assert!(matches!(free.audit(0), Err(ScanError::ImageOutOfRange { .. })));
    }

    let stats = free.stats().unwrap();
    let metered_stats = &stats.tenants["metered"];
    assert!(metered_stats.quota_rejected >= 1, "rejections are counted: {metered_stats:?}");
    assert_eq!(stats.tenants["free"].quota_rejected, 0);
    free.drain().unwrap();
    server.join();
}

#[test]
fn breaker_degrades_a_vm_crashing_tenant_to_static_only_and_probes_recovery() {
    let socket = temp_path("breaker.sock");
    let cfg = ServerConfig {
        breaker: BreakerConfig { threshold: 2, cooldown_ms: 3_000 },
        fault_vm_tenants: vec!["crashy".into()],
        ..ServerConfig::new(&socket)
    };
    let server = ScanServer::start(
        cfg,
        ScanHubFixture::real(),
        vec![shared_device().image.clone()],
        small_db(),
    )
    .unwrap();
    let mut probe = ScanClient::connect(&socket, "").unwrap();

    // Two consecutive audits whose dynamic stage "crashes the VM":
    // results still flow, degraded to static-only evidence.
    let mut crashy = ScanClient::connect(&socket, "crashy").unwrap();
    for i in 0..2 {
        let report = crashy.audit(0).unwrap();
        assert!(!report.findings.is_empty());
        assert!(
            report.findings.iter().all(|f| f.degraded),
            "audit {i}: a refused dynamic stage degrades every finding"
        );
    }
    let stats = probe.stats().unwrap();
    let breaker = stats.tenants["crashy"].breaker.clone().expect("breaker enabled");
    assert_eq!((breaker.state.as_str(), breaker.trips), ("open", 1), "threshold 2 tripped");
    assert_eq!(stats.tenants["crashy"].degraded_jobs, 2);

    // Open: jobs shed their dynamic stage outright — same degraded
    // results, zero VM time burned on a doomed tenant.
    let shed = crashy.audit(0).unwrap();
    assert!(shed.findings.iter().all(|f| f.degraded));

    // A healthy tenant on the same daemon keeps real dynamics and a
    // closed breaker.
    let mut healthy = ScanClient::connect(&socket, "healthy").unwrap();
    let clean = healthy.audit(0).unwrap();
    assert!(!clean.findings.is_empty());
    assert!(
        clean.findings.iter().all(|f| !f.degraded),
        "the breaker is per tenant: healthy dynamics run for real"
    );
    let stats = probe.stats().unwrap();
    assert_eq!(stats.tenants["healthy"].degraded_jobs, 0);
    assert_eq!(stats.tenants["healthy"].breaker.clone().unwrap().state, "closed");

    // After the cooldown the next job is a half-open probe: it attempts
    // real dynamics, fails again (the tenant is still "crashing"), and
    // re-opens the breaker for another cooldown.
    std::thread::sleep(Duration::from_millis(3_100));
    let probe_job = crashy.audit(0).unwrap();
    assert!(probe_job.findings.iter().all(|f| f.degraded));
    let stats = probe.stats().unwrap();
    let breaker = stats.tenants["crashy"].breaker.clone().unwrap();
    assert_eq!(breaker.state, "open", "a failed probe re-opens");
    assert!(breaker.trips >= 2, "the failed probe counts as a trip: {breaker:?}");

    probe.drain().unwrap();
    server.join();
}

#[test]
fn stale_sockets_are_taken_over_and_live_sockets_refused() {
    let socket = temp_path("takeover.sock");
    let _ = std::fs::remove_file(&socket);
    let _ = std::fs::remove_file(lockfile_path(&socket));

    // A killed daemon's leavings: the socket file of a listener nobody
    // is accepting on any more, plus its pid lockfile.
    drop(UnixListener::bind(&socket).unwrap());
    std::fs::write(lockfile_path(&socket), "999999\n").unwrap();
    assert!(socket.exists(), "dropping a listener leaves the socket file behind");

    // A fresh daemon connect-probes, finds no live peer, and takes over.
    let server =
        ScanServer::start(ServerConfig::new(&socket), ScanHubFixture::tiny(), Vec::new(), small_db())
            .unwrap();
    let mut client = ScanClient::connect(&socket, "").unwrap();
    assert_eq!(client.stats().unwrap().state, "running");

    // But a *live* socket is refused — never clobber a running daemon.
    match ScanServer::start(ServerConfig::new(&socket), ScanHubFixture::tiny(), Vec::new(), small_db())
    {
        Err(e) => assert_eq!(e.kind(), std::io::ErrorKind::AddrInUse),
        Ok(_) => panic!("a second daemon must refuse a live socket"),
    }
    // The refusal did not disturb the incumbent.
    assert_eq!(client.stats().unwrap().state, "running");

    client.drain().unwrap();
    server.join();
    assert!(!socket.exists(), "clean exit removes the socket");
    assert!(!lockfile_path(&socket).exists(), "clean exit removes the lockfile");
}

/// Hub construction shorthands for this suite.
struct ScanHubFixture;

impl ScanHubFixture {
    fn real() -> patchecko_scanhub::ScanHub {
        patchecko_scanhub::ScanHub::new(analyzer())
    }

    fn tiny() -> patchecko_scanhub::ScanHub {
        patchecko_scanhub::ScanHub::new(tiny_analyzer())
    }
}
