//! The 1000-connection soak: a hostile tenant mix hammering one daemon.
//!
//! Five populations share the socket simultaneously:
//!
//! * **meek** — well-behaved clients that retry politely; their verdicts
//!   must be bitwise-identical to an unloaded run and they must all be
//!   served.
//! * **flood** — one tenant opening hundreds of connections with the
//!   identical request: in-flight dedup collapses the work, the token
//!   bucket meters the rest with typed `QuotaExceeded`.
//! * **tight** — requests carrying single-digit-millisecond deadlines:
//!   each gets its result or a typed `DeadlineExceeded`, never a hang,
//!   and no executor ever starts a job whose waiters all expired.
//! * **slow** — half-open peers that write part of a frame and go
//!   silent: the socket timeout reaps them.
//! * **crash** — a tenant whose dynamic stage always fails (the chaos
//!   seam): the breaker trips it to static-only degraded results.
//!
//! Every rejection must be typed (`Overloaded` / `QuotaExceeded` /
//! `DeadlineExceeded`), and after the storm the connection gauge must
//! drain to just the probe — no leaked handler threads.
//!
//! Ignored by default (it opens `SCAND_SOAK_CONNECTIONS` = 1000
//! connections); CI's soak-smoke job runs it with `--ignored` in release
//! mode. Scale down locally with e.g. `SCAND_SOAK_CONNECTIONS=100`.

mod common;

use common::{analyzer, shared_device, small_db, temp_path};
use patchecko_core::error::ScanError;
use patchecko_scand::{BreakerConfig, ScanClient, ScanServer, ServerConfig};
use patchecko_scanhub::ScanHub;
use std::io::Write;
use std::os::unix::net::UnixStream;
use std::path::Path;
use std::sync::{Arc, Barrier};
use std::time::{Duration, Instant};

const IO_TIMEOUT_MS: u64 = 1_500;

fn soak_connections() -> usize {
    std::env::var("SCAND_SOAK_CONNECTIONS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(1000)
        .max(20)
}

/// Connect with retry: 1000 simultaneous connects overrun the listener
/// backlog, and a refused connect is the OS's problem, not the daemon's.
fn connect_retry(socket: &Path, tenant: &str) -> ScanClient {
    let deadline = Instant::now() + Duration::from_secs(120);
    loop {
        match ScanClient::connect(socket, tenant) {
            Ok(client) => return client,
            Err(e) => {
                assert!(Instant::now() < deadline, "connect retry exhausted: {e:?}");
                std::thread::sleep(Duration::from_millis(5));
            }
        }
    }
}

fn raw_connect_retry(socket: &Path) -> UnixStream {
    let deadline = Instant::now() + Duration::from_secs(120);
    loop {
        match UnixStream::connect(socket) {
            Ok(stream) => return stream,
            Err(e) => {
                assert!(Instant::now() < deadline, "raw connect retry exhausted: {e}");
                std::thread::sleep(Duration::from_millis(5));
            }
        }
    }
}

#[derive(Debug)]
enum Fate {
    Served(String),
    SheddedTyped,
    Expired,
    Reaped,
}

fn classify(tag: &str, outcome: Result<String, ScanError>) -> Fate {
    match outcome {
        Ok(json) => Fate::Served(json),
        Err(ScanError::Overloaded { .. }) | Err(ScanError::QuotaExceeded { .. }) => {
            Fate::SheddedTyped
        }
        Err(ScanError::DeadlineExceeded { .. }) => Fate::Expired,
        Err(other) => panic!("{tag}: rejection must be typed, got {other:?}"),
    }
}

#[test]
#[ignore = "opens ~1000 connections; run explicitly or via CI soak-smoke"]
fn thousand_connections_of_hostile_tenants_leave_meek_verdicts_untouched() {
    let n = soak_connections();
    // Population sizes scale with n; at the default 1000:
    // 12 meek, ~64% flood, ~15% tight, ~8% slow, the rest crash.
    let meek_n = 12usize.min(n / 10).max(2);
    let flood_n = n * 64 / 100;
    let tight_n = n * 15 / 100;
    let slow_n = n * 8 / 100;
    let crash_n = n - meek_n - flood_n - tight_n - slow_n;

    let socket = temp_path("soak1000.sock");
    let cfg = ServerConfig {
        workers: 4,
        io_timeout_ms: IO_TIMEOUT_MS,
        tenant_quota: Some("20:10:6".parse().unwrap()),
        breaker: BreakerConfig { threshold: 3, cooldown_ms: 1_000 },
        fault_vm_tenants: vec!["crash".into()],
        ..ServerConfig::new(&socket)
    };
    let server = ScanServer::start(
        cfg,
        ScanHub::new(analyzer()),
        vec![shared_device().image.clone()],
        small_db(),
    )
    .unwrap();

    // ---- Unloaded reference + cache warm-up. --------------------------
    // One quiet audit per working tenant: the meek report taken here is
    // the bitwise reference the storm must reproduce, and warm caches
    // keep the storm's wall-clock dominated by contention, not VM time.
    let reference = {
        let mut c = connect_retry(&socket, "meek");
        serde_json::to_string(&c.audit(0).unwrap()).unwrap()
    };
    for tenant in ["flood", "tight", "crash"] {
        let mut c = connect_retry(&socket, tenant);
        c.audit(0).unwrap();
    }
    // The warm-up spent quota tokens; let every bucket refill to burst.
    std::thread::sleep(Duration::from_millis(600));

    // ---- The storm. ---------------------------------------------------
    let barrier = Arc::new(Barrier::new(meek_n + flood_n + tight_n + slow_n + crash_n));
    let fates: Vec<Fate> = std::thread::scope(|s| {
        let mut handles = Vec::with_capacity(n);
        for i in 0..meek_n {
            let (socket, barrier) = (&socket, Arc::clone(&barrier));
            handles.push(s.spawn(move || {
                barrier.wait();
                let mut c = connect_retry(socket, "meek");
                c.set_backoff_seed(0x5eed + i as u64);
                let report = c.audit_with_retry(0, 200).expect("meek clients are always served");
                Fate::Served(serde_json::to_string(&report).unwrap())
            }));
        }
        for i in 0..flood_n {
            let (socket, barrier) = (&socket, Arc::clone(&barrier));
            handles.push(s.spawn(move || {
                barrier.wait();
                let mut c = connect_retry(socket, "flood");
                let fate = classify(
                    &format!("flood[{i}]"),
                    c.audit(0).map(|r| serde_json::to_string(&r).unwrap()),
                );
                assert!(
                    !matches!(fate, Fate::Expired),
                    "flood[{i}] carried no deadline, expiry is impossible"
                );
                fate
            }));
        }
        for i in 0..tight_n {
            let (socket, barrier) = (&socket, Arc::clone(&barrier));
            handles.push(s.spawn(move || {
                barrier.wait();
                let mut c = connect_retry(socket, "tight");
                c.set_deadline_ms(Some(2 + (i % 4) as u64));
                classify(
                    &format!("tight[{i}]"),
                    c.audit(0).map(|r| serde_json::to_string(&r).unwrap()),
                )
            }));
        }
        for i in 0..slow_n {
            let (socket, barrier) = (&socket, Arc::clone(&barrier));
            handles.push(s.spawn(move || {
                barrier.wait();
                // A half-open peer: a few bytes of a frame, then silence.
                // The daemon's read timeout must reap it.
                let mut stream = raw_connect_retry(socket);
                let _ = stream.write_all(&[16 + (i % 8) as u8, 0, 0]);
                std::thread::sleep(Duration::from_millis(IO_TIMEOUT_MS * 2));
                Fate::Reaped
            }));
        }
        // Varied audit shapes (plain and batch of 1..=4 copies) so the
        // crash tenant's jobs don't all coalesce: the breaker needs
        // *consecutive jobs*, and a single deduped job would never reach
        // its threshold.
        for i in 0..crash_n {
            let (socket, barrier) = (&socket, Arc::clone(&barrier));
            handles.push(s.spawn(move || {
                barrier.wait();
                let mut c = connect_retry(socket, "crash");
                let outcome = if i % 5 == 0 {
                    c.audit(0).map(|r| vec![r])
                } else {
                    c.batch_audit(&vec![0; 1 + (i % 4)])
                };
                match outcome {
                    Ok(reports) => {
                        assert!(
                            reports
                                .iter()
                                .all(|r| r.findings.iter().all(|f| f.degraded)),
                            "crash[{i}]: the chaos tenant only ever sees static-only results"
                        );
                        Fate::Served(String::new())
                    }
                    Err(e) => classify(&format!("crash[{i}]"), Err(e)),
                }
            }));
        }
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    // ---- Post-storm oracles. ------------------------------------------
    let mut probe = connect_retry(&socket, "");
    // The connection gauge drains to exactly the probe: every handler
    // thread of the storm exited (clean close or reap) — none leaked.
    let deadline = Instant::now() + Duration::from_secs(60);
    let stats = loop {
        let stats = probe.stats().unwrap();
        if stats.open_connections == 1 && stats.queue_depth == 0 && stats.in_flight == 0 {
            break stats;
        }
        assert!(
            Instant::now() < deadline,
            "storm never drained: {} connections, depth {}, in-flight {}",
            stats.open_connections,
            stats.queue_depth,
            stats.in_flight
        );
        std::thread::sleep(Duration::from_millis(50));
    };

    // Persist the stats snapshot first: if an assertion below fails, CI
    // uploads this file as the diagnostic artifact.
    let stats_path = std::path::PathBuf::from(
        std::env::var("SCAND_SOAK_STATS").unwrap_or_else(|_| "../../target/tmp/soak-stats.json".into()),
    );
    if let Some(dir) = stats_path.parent() {
        let _ = std::fs::create_dir_all(dir);
    }
    std::fs::write(&stats_path, serde_json::to_string(&stats).unwrap()).unwrap();

    let mut served = 0usize;
    let mut shed = 0usize;
    let mut expired = 0usize;
    for fate in &fates {
        match fate {
            Fate::Served(json) => {
                if !json.is_empty() {
                    assert_eq!(
                        json, &reference,
                        "a served verdict diverged from the unloaded reference"
                    );
                }
                served += 1;
            }
            Fate::SheddedTyped => shed += 1,
            Fate::Expired => expired += 1,
            Fate::Reaped => {}
        }
    }
    assert!(served >= meek_n, "every meek client was served ({served} total served)");
    assert!(shed > 0, "a {n}-connection storm against a 10-token burst must shed somebody");
    println!(
        "soak: {n} connections -> served {served}, typed-shed {shed}, expired {expired}, \
         reaped {}",
        stats.reaped_connections
    );

    assert_eq!(
        stats.expired_at_executor, 0,
        "no executor ever started a job whose waiters had all expired"
    );
    assert!(
        stats.reaped_connections >= slow_n as u64,
        "all {slow_n} half-open peers were reaped, saw {}",
        stats.reaped_connections
    );
    let flood = &stats.tenants["flood"];
    assert!(
        flood.quota_rejected > 0,
        "the flood tenant was metered: {flood:?}"
    );
    let crash = &stats.tenants["crash"];
    let crash_breaker = crash.breaker.clone().expect("breaker enabled");
    assert!(
        crash_breaker.trips >= 1,
        "the crash tenant tripped its breaker: {crash_breaker:?}"
    );
    let meek = &stats.tenants["meek"];
    assert_eq!(meek.degraded_jobs, 0, "meek results never degraded: {meek:?}");

    probe.drain().unwrap();
    server.join();
}
