//! Shared fixtures for the scand integration suites. Each test binary
//! trains one small detector and builds one small device image, reused by
//! every test in that process.
#![allow(dead_code)]

use corpus::dataset1::Dataset1Config;
use corpus::vulndb::VulnDb;
use neural::net::TrainConfig;
use patchecko_core::detector::{self, Detector, DetectorConfig};
use patchecko_core::pipeline::{Patchecko, PipelineConfig};
use std::path::PathBuf;
use std::sync::OnceLock;

pub fn shared_detector() -> &'static Detector {
    static DET: OnceLock<Detector> = OnceLock::new();
    DET.get_or_init(|| {
        let ds = corpus::build_dataset1(&Dataset1Config {
            num_libraries: 10,
            min_functions: 8,
            max_functions: 12,
            seed: 1,
            include_catalog: true,
        });
        let cfg = DetectorConfig {
            pairs_per_function: 6,
            train: TrainConfig { epochs: 10, batch: 256, lr: 1e-3, seed: 7, ..Default::default() },
            ..DetectorConfig::default()
        };
        detector::train(&ds, &cfg).0
    })
}

/// A minimally-trained analyzer for suites that exercise the daemon's
/// protocol/control plane rather than scan quality.
pub fn tiny_analyzer() -> Patchecko {
    static DET: OnceLock<Detector> = OnceLock::new();
    let det = DET.get_or_init(|| {
        let ds = corpus::build_dataset1(&Dataset1Config {
            num_libraries: 4,
            min_functions: 6,
            max_functions: 8,
            seed: 3,
            include_catalog: false,
        });
        let cfg = DetectorConfig {
            pairs_per_function: 4,
            train: TrainConfig { epochs: 2, batch: 128, lr: 1e-3, seed: 7, ..Default::default() },
            ..DetectorConfig::default()
        };
        detector::train(&ds, &cfg).0
    });
    Patchecko::new(det.clone(), PipelineConfig::default())
}

pub fn shared_device() -> &'static corpus::DeviceBuild {
    static DEV: OnceLock<corpus::DeviceBuild> = OnceLock::new();
    DEV.get_or_init(|| {
        corpus::build_device(&corpus::android_things_spec(), &corpus::full_catalog(), 0.05)
    })
}

pub fn small_db() -> VulnDb {
    let mut db = corpus::build_vulndb(0, 1);
    // Trim the featured list so daemon-served audits stay test-sized.
    db.entries.truncate(3);
    db
}

pub fn analyzer() -> Patchecko {
    Patchecko::new(shared_detector().clone(), PipelineConfig::default())
}

/// A per-process temp path (socket or cache dir) that does not collide
/// across concurrently running test binaries.
pub fn temp_path(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("scand-{tag}-{}", std::process::id()))
}
