//! Client for the scan daemon: a blocking request/response handle over
//! one Unix-socket connection.
//!
//! Every call stamps the request with a process-unique tag and verifies
//! the server echoes it back — a misrouted response (wrong client, wrong
//! request) surfaces as a typed [`ScanError::Protocol`] instead of
//! silently-wrong scan results. Transient rejections keep their types:
//! [`ScanError::Overloaded`] carries the server's retry-after hint, which
//! [`ScanClient::audit_with_retry`] honours.

use crate::proto::{self, DrainSummary, Op, Outcome, Request, Response, ScanSummary, ServiceStats};
use patchecko_core::error::ScanError;
use patchecko_core::pipeline::Basis;
use patchecko_core::report::AuditReport;
use std::os::unix::net::UnixStream;
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Tags are unique per process so that concurrent clients sharing a test
/// harness can never mistake each other's responses for their own.
static NEXT_TAG: AtomicU64 = AtomicU64::new(1);

/// A connection to a running scan daemon, bound to one tenant namespace.
pub struct ScanClient {
    stream: UnixStream,
    tenant: String,
}

impl ScanClient {
    /// Connect to the daemon at `socket`, operating as `tenant` (the
    /// empty string is the anonymous shared namespace).
    ///
    /// # Errors
    /// [`ScanError::Protocol`] when the socket does not accept.
    pub fn connect(socket: impl AsRef<Path>, tenant: &str) -> Result<ScanClient, ScanError> {
        let stream = UnixStream::connect(socket.as_ref()).map_err(|e| ScanError::Protocol {
            detail: format!("connect {}: {e}", socket.as_ref().display()),
        })?;
        Ok(ScanClient { stream, tenant: tenant.to_string() })
    }

    /// The tenant this connection operates as.
    pub fn tenant(&self) -> &str {
        &self.tenant
    }

    fn call(&mut self, op: Op) -> Result<Outcome, ScanError> {
        let tag = NEXT_TAG.fetch_add(1, Ordering::Relaxed);
        proto::send(&mut self.stream, &Request { tenant: self.tenant.clone(), tag, op })?;
        let response: Response = proto::recv(&mut self.stream)?.ok_or(ScanError::Protocol {
            detail: "server closed the connection before responding".into(),
        })?;
        if response.tag != tag {
            return Err(ScanError::Protocol {
                detail: format!("misrouted response: sent tag {tag}, received {}", response.tag),
            });
        }
        match response.outcome {
            Outcome::Error(e) => Err(e),
            outcome => Ok(outcome),
        }
    }

    /// Scan one hosted image for one CVE.
    ///
    /// # Errors
    /// Typed scan/admission errors from the daemon.
    pub fn scan(&mut self, image: usize, cve: &str, basis: Basis) -> Result<ScanSummary, ScanError> {
        match self.call(Op::Scan { image, cve: cve.to_string(), basis })? {
            Outcome::Scan(summary) => Ok(summary),
            other => Err(unexpected("scan", &other)),
        }
    }

    /// Audit one hosted image against the daemon's vulnerability database.
    ///
    /// # Errors
    /// Typed scan/admission errors from the daemon.
    pub fn audit(&mut self, image: usize) -> Result<AuditReport, ScanError> {
        match self.call(Op::Audit { image })? {
            Outcome::Audit(report) => Ok(*report),
            other => Err(unexpected("audit", &other)),
        }
    }

    /// Audit several hosted images; reports come back in request order.
    ///
    /// # Errors
    /// Typed scan/admission errors from the daemon.
    pub fn batch_audit(&mut self, images: &[usize]) -> Result<Vec<AuditReport>, ScanError> {
        match self.call(Op::BatchAudit { images: images.to_vec() })? {
            Outcome::BatchAudit(reports) => Ok(reports),
            other => Err(unexpected("batch-audit", &other)),
        }
    }

    /// [`ScanClient::audit`], backing off and retrying (up to `attempts`
    /// total) when the daemon sheds load — each retry sleeps for the
    /// server's own `retry_after_ms` hint.
    ///
    /// # Errors
    /// The final error once attempts are exhausted, or immediately for
    /// anything other than [`ScanError::Overloaded`].
    pub fn audit_with_retry(&mut self, image: usize, attempts: usize) -> Result<AuditReport, ScanError> {
        let mut remaining = attempts.max(1);
        loop {
            match self.audit(image) {
                Err(ScanError::Overloaded { retry_after_ms, .. }) if remaining > 1 => {
                    remaining -= 1;
                    std::thread::sleep(Duration::from_millis(retry_after_ms.max(1)));
                }
                other => return other,
            }
        }
    }

    /// Live service statistics (never queued — works while the daemon is
    /// saturated).
    ///
    /// # Errors
    /// Protocol errors only.
    pub fn stats(&mut self) -> Result<ServiceStats, ScanError> {
        match self.call(Op::Stats)? {
            Outcome::Stats(stats) => Ok(*stats),
            other => Err(unexpected("stats", &other)),
        }
    }

    /// Ask the daemon to drain: finish in-flight work, persist the
    /// caches, refuse new work, shut down. Blocks until the drain
    /// completes.
    ///
    /// # Errors
    /// Protocol errors only.
    pub fn drain(&mut self) -> Result<DrainSummary, ScanError> {
        match self.call(Op::Drain)? {
            Outcome::Drained(summary) => Ok(summary),
            other => Err(unexpected("drain", &other)),
        }
    }
}

fn unexpected(wanted: &str, got: &Outcome) -> ScanError {
    let kind = match got {
        Outcome::Scan(_) => "scan",
        Outcome::Audit(_) => "audit",
        Outcome::BatchAudit(_) => "batch-audit",
        Outcome::Stats(_) => "stats",
        Outcome::Drained(_) => "drained",
        Outcome::Error(_) => "error",
    };
    ScanError::Protocol { detail: format!("expected a {wanted} outcome, received {kind}") }
}
