//! Client for the scan daemon: a blocking request/response handle over
//! one Unix-socket connection.
//!
//! Every call stamps the request with a process-unique tag and verifies
//! the server echoes it back — a misrouted response (wrong client, wrong
//! request) surfaces as a typed [`ScanError::Protocol`] instead of
//! silently-wrong scan results. Transient rejections keep their types:
//! [`ScanError::Overloaded`] and [`ScanError::QuotaExceeded`] carry the
//! server's retry-after hint, which [`ScanClient::audit_with_retry`]
//! honours with seeded ±50% jitter so a herd of rejected clients
//! de-synchronizes instead of stampeding back in lockstep.

use crate::proto::{self, DrainSummary, Op, Outcome, Request, Response, ScanSummary, ServiceStats};
use patchecko_core::error::ScanError;
use patchecko_core::pipeline::Basis;
use patchecko_core::report::AuditReport;
use std::os::unix::net::UnixStream;
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Tags are unique per process so that concurrent clients sharing a test
/// harness can never mistake each other's responses for their own.
static NEXT_TAG: AtomicU64 = AtomicU64::new(1);

/// A retry sleep in `[0.5, 1.5) × hint_ms`, derived deterministically
/// from `(seed, attempt)` with an splitmix64 step — the same seed always
/// reproduces the same backoff schedule (the soak harness depends on
/// this), while distinct seeds spread a rejected herd across the window.
pub fn jittered_backoff(hint_ms: u64, seed: u64, attempt: u64) -> Duration {
    let mut z = seed ^ attempt.wrapping_mul(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^= z >> 31;
    // Uniform in [0.5, 1.5): half the hint to one-and-a-half hints.
    let unit = (z >> 11) as f64 / (1u64 << 53) as f64;
    let ms = (hint_ms.max(1) as f64 * (0.5 + unit)).max(1.0);
    Duration::from_millis(ms as u64)
}

/// A connection to a running scan daemon, bound to one tenant namespace.
pub struct ScanClient {
    stream: UnixStream,
    tenant: String,
    deadline_ms: Option<u64>,
    backoff_seed: u64,
}

impl ScanClient {
    /// Connect to the daemon at `socket`, operating as `tenant` (the
    /// empty string is the anonymous shared namespace).
    ///
    /// # Errors
    /// [`ScanError::Protocol`] when the socket does not accept.
    pub fn connect(socket: impl AsRef<Path>, tenant: &str) -> Result<ScanClient, ScanError> {
        let stream = UnixStream::connect(socket.as_ref()).map_err(|e| ScanError::Protocol {
            detail: format!("connect {}: {e}", socket.as_ref().display()),
        })?;
        Ok(ScanClient {
            stream,
            tenant: tenant.to_string(),
            deadline_ms: None,
            backoff_seed: NEXT_TAG.fetch_add(1, Ordering::Relaxed),
        })
    }

    /// The tenant this connection operates as.
    pub fn tenant(&self) -> &str {
        &self.tenant
    }

    /// Set an end-to-end deadline stamped on every subsequent queued
    /// request: the daemon counts queue time against it, discards the
    /// job if it expires unstarted, and cancels between pipeline stages.
    /// `None` (the default) restores unbounded requests.
    pub fn set_deadline_ms(&mut self, deadline_ms: Option<u64>) -> &mut ScanClient {
        self.deadline_ms = deadline_ms;
        self
    }

    /// Seed the retry-jitter stream (defaults to a process-unique value);
    /// the soak harness pins this for reproducible backoff schedules.
    pub fn set_backoff_seed(&mut self, seed: u64) -> &mut ScanClient {
        self.backoff_seed = seed;
        self
    }

    fn call(&mut self, op: Op) -> Result<Outcome, ScanError> {
        let tag = NEXT_TAG.fetch_add(1, Ordering::Relaxed);
        let request =
            Request { tenant: self.tenant.clone(), tag, deadline_ms: self.deadline_ms, op };
        proto::send(&mut self.stream, &request)?;
        let response: Response = proto::recv(&mut self.stream)?.ok_or(ScanError::Protocol {
            detail: "server closed the connection before responding".into(),
        })?;
        if response.tag != tag {
            return Err(ScanError::Protocol {
                detail: format!("misrouted response: sent tag {tag}, received {}", response.tag),
            });
        }
        match response.outcome {
            Outcome::Error(e) => Err(e),
            outcome => Ok(outcome),
        }
    }

    /// Scan one hosted image for one CVE.
    ///
    /// # Errors
    /// Typed scan/admission errors from the daemon.
    pub fn scan(&mut self, image: usize, cve: &str, basis: Basis) -> Result<ScanSummary, ScanError> {
        match self.call(Op::Scan { image, cve: cve.to_string(), basis })? {
            Outcome::Scan(summary) => Ok(summary),
            other => Err(unexpected("scan", &other)),
        }
    }

    /// Audit one hosted image against the daemon's vulnerability database.
    ///
    /// # Errors
    /// Typed scan/admission errors from the daemon.
    pub fn audit(&mut self, image: usize) -> Result<AuditReport, ScanError> {
        match self.call(Op::Audit { image })? {
            Outcome::Audit(report) => Ok(*report),
            other => Err(unexpected("audit", &other)),
        }
    }

    /// Audit several hosted images; reports come back in request order.
    ///
    /// # Errors
    /// Typed scan/admission errors from the daemon.
    pub fn batch_audit(&mut self, images: &[usize]) -> Result<Vec<AuditReport>, ScanError> {
        match self.call(Op::BatchAudit { images: images.to_vec() })? {
            Outcome::BatchAudit(reports) => Ok(reports),
            other => Err(unexpected("batch-audit", &other)),
        }
    }

    /// [`ScanClient::audit`], backing off and retrying (up to `attempts`
    /// total) when the daemon sheds load or meters this tenant's quota —
    /// each retry sleeps the server's own `retry_after_ms` hint scaled
    /// by seeded ±50% jitter ([`jittered_backoff`]), so simultaneous
    /// rejectees spread out instead of re-colliding.
    ///
    /// # Errors
    /// The final error once attempts are exhausted, or immediately for
    /// anything other than [`ScanError::Overloaded`] /
    /// [`ScanError::QuotaExceeded`].
    pub fn audit_with_retry(&mut self, image: usize, attempts: usize) -> Result<AuditReport, ScanError> {
        let mut remaining = attempts.max(1);
        let mut attempt = 0u64;
        loop {
            let hint = match self.audit(image) {
                Err(ScanError::Overloaded { retry_after_ms, .. }) if remaining > 1 => {
                    retry_after_ms
                }
                Err(ScanError::QuotaExceeded { retry_after_ms, .. }) if remaining > 1 => {
                    retry_after_ms
                }
                other => return other,
            };
            remaining -= 1;
            attempt += 1;
            std::thread::sleep(jittered_backoff(hint, self.backoff_seed, attempt));
        }
    }

    /// Live service statistics (never queued — works while the daemon is
    /// saturated).
    ///
    /// # Errors
    /// Protocol errors only.
    pub fn stats(&mut self) -> Result<ServiceStats, ScanError> {
        match self.call(Op::Stats)? {
            Outcome::Stats(stats) => Ok(*stats),
            other => Err(unexpected("stats", &other)),
        }
    }

    /// Ask the daemon to drain: finish in-flight work, persist the
    /// caches, refuse new work, shut down. Blocks until the drain
    /// completes.
    ///
    /// # Errors
    /// Protocol errors only.
    pub fn drain(&mut self) -> Result<DrainSummary, ScanError> {
        match self.call(Op::Drain)? {
            Outcome::Drained(summary) => Ok(summary),
            other => Err(unexpected("drain", &other)),
        }
    }
}

fn unexpected(wanted: &str, got: &Outcome) -> ScanError {
    let kind = match got {
        Outcome::Scan(_) => "scan",
        Outcome::Audit(_) => "audit",
        Outcome::BatchAudit(_) => "batch-audit",
        Outcome::Stats(_) => "stats",
        Outcome::Drained(_) => "drained",
        Outcome::Error(_) => "error",
    };
    ScanError::Protocol { detail: format!("expected a {wanted} outcome, received {kind}") }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn jitter_stays_in_the_half_to_one_and_a_half_window_and_is_reproducible() {
        for attempt in 0..200 {
            let d = jittered_backoff(100, 42, attempt);
            assert!(
                (50..150).contains(&(d.as_millis() as u64)),
                "attempt {attempt}: {d:?} outside [0.5, 1.5) x 100ms"
            );
            assert_eq!(d, jittered_backoff(100, 42, attempt), "same seed, same schedule");
        }
        // Distinct seeds actually de-synchronize: not every attempt maps
        // to the same sleep.
        let spread = (0..20)
            .filter(|&s| jittered_backoff(100, s, 1) != jittered_backoff(100, s + 1, 1))
            .count();
        assert!(spread > 10, "seeds barely move the jitter ({spread}/20 differ)");
    }

    #[test]
    fn jitter_never_sleeps_zero() {
        for seed in 0..50 {
            assert!(jittered_backoff(0, seed, 0) >= Duration::from_millis(1));
            assert!(jittered_backoff(1, seed, 7) >= Duration::from_millis(1));
        }
    }
}
