//! Per-tenant circuit breaker for the dynamic (VM) stage.
//!
//! A tenant whose binaries keep crashing the VM stage burns executor
//! time on doomed dynamic work and pollutes nothing but its own
//! latency — until the executors are all busy re-profiling its crashing
//! candidates and everyone else queues behind them. The breaker
//! quarantines exactly that failure mode, per tenant:
//!
//! * **Closed** (normal): dynamic profiling runs. Each job whose dynamic
//!   stage failed (every finding degraded to static-only evidence)
//!   increments a consecutive-failure count; any dynamically clean job
//!   resets it.
//! * **Open** (tripped, after `threshold` consecutive failures): jobs run
//!   *static-only* — the daemon substitutes a refusing
//!   `DynProfileSource`, which the pipeline already degrades gracefully
//!   to [`Confidence::Degraded`](patchecko_core::pipeline::Confidence)
//!   verdicts. No VM time is spent, results still flow, and the
//!   tenant's cached dynamic lane is bypassed rather than poisoned.
//! * **Half-open** (after `cooldown_ms`): the next job is a *probe* that
//!   runs real dynamics. Success closes the breaker; failure re-opens it
//!   for another cooldown. While a probe is outstanding, other jobs of
//!   the tenant keep running static-only, so a recovery test costs one
//!   job, not a thundering herd of VM work.
//!
//! The state machine never touches other tenants: their breakers are
//! independent entries in the ledger.

use std::collections::HashMap;
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Breaker tuning. `threshold == 0` disables the breaker entirely.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BreakerConfig {
    /// Consecutive dynamically-failed jobs before tripping (0 = off).
    pub threshold: u32,
    /// How long an open breaker sheds before probing, milliseconds.
    pub cooldown_ms: u64,
}

impl Default for BreakerConfig {
    fn default() -> BreakerConfig {
        BreakerConfig { threshold: 5, cooldown_ms: 2_000 }
    }
}

/// What the executor should do with a tenant's dynamic stage.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DynDecision {
    /// Breaker closed: run real dynamics.
    Attempt,
    /// Breaker half-open and this job is the recovery probe: run real
    /// dynamics and report the outcome.
    Probe,
    /// Breaker open (or a probe is already outstanding): run static-only.
    Shed,
}

#[derive(Debug, Clone, Copy)]
enum Lane {
    Closed { fails: u32 },
    Open { until: Instant },
    HalfOpen { probing: bool },
}

struct TenantBreaker {
    lane: Lane,
    trips: u64,
}

/// The per-tenant breaker ledger.
pub struct BreakerLedger {
    cfg: BreakerConfig,
    lanes: Mutex<HashMap<String, TenantBreaker>>,
}

impl BreakerLedger {
    /// A ledger enforcing `cfg` for every tenant.
    pub fn new(cfg: BreakerConfig) -> BreakerLedger {
        BreakerLedger { cfg, lanes: Mutex::new(HashMap::new()) }
    }

    /// Decide the dynamic stage for `tenant`'s next job.
    pub fn before_job(&self, tenant: &str) -> DynDecision {
        self.before_job_at(tenant, Instant::now())
    }

    /// [`BreakerLedger::before_job`] at an explicit clock reading (test seam).
    pub fn before_job_at(&self, tenant: &str, now: Instant) -> DynDecision {
        if self.cfg.threshold == 0 {
            return DynDecision::Attempt;
        }
        let mut lanes = self.lanes.lock().expect("breaker lock");
        let b = lanes
            .entry(tenant.to_string())
            .or_insert(TenantBreaker { lane: Lane::Closed { fails: 0 }, trips: 0 });
        match b.lane {
            Lane::Closed { .. } => DynDecision::Attempt,
            Lane::Open { until } if now < until => DynDecision::Shed,
            Lane::Open { .. } => {
                // Cooldown over: this job becomes the half-open probe.
                b.lane = Lane::HalfOpen { probing: true };
                DynDecision::Probe
            }
            Lane::HalfOpen { probing: false } => {
                b.lane = Lane::HalfOpen { probing: true };
                DynDecision::Probe
            }
            Lane::HalfOpen { probing: true } => DynDecision::Shed,
        }
    }

    /// Record a job outcome. `decision` is what [`BreakerLedger::before_job`]
    /// returned for it; `dyn_failed` is whether the job's dynamic stage
    /// failed (shed jobs never report — they didn't attempt dynamics).
    pub fn after_job(&self, tenant: &str, decision: DynDecision, dyn_failed: bool) {
        self.after_job_at(tenant, decision, dyn_failed, Instant::now());
    }

    /// [`BreakerLedger::after_job`] at an explicit clock reading (test seam).
    pub fn after_job_at(
        &self,
        tenant: &str,
        decision: DynDecision,
        dyn_failed: bool,
        now: Instant,
    ) {
        if self.cfg.threshold == 0 || decision == DynDecision::Shed {
            return;
        }
        let mut lanes = self.lanes.lock().expect("breaker lock");
        let Some(b) = lanes.get_mut(tenant) else { return };
        let cooldown = Duration::from_millis(self.cfg.cooldown_ms);
        match (decision, dyn_failed) {
            (DynDecision::Probe, false) => b.lane = Lane::Closed { fails: 0 },
            (DynDecision::Probe, true) => {
                b.trips += 1;
                b.lane = Lane::Open { until: now + cooldown };
            }
            (DynDecision::Attempt, false) => {
                if let Lane::Closed { fails } = &mut b.lane {
                    *fails = 0;
                }
            }
            (DynDecision::Attempt, true) => {
                if let Lane::Closed { fails } = &mut b.lane {
                    *fails += 1;
                    if *fails >= self.cfg.threshold {
                        b.trips += 1;
                        b.lane = Lane::Open { until: now + cooldown };
                    }
                }
            }
            (DynDecision::Shed, _) => unreachable!("shed jobs returned early"),
        }
    }

    /// `tenant`'s (state name, trip count) for the stats endpoint:
    /// `"closed"`, `"open"`, or `"half-open"`. Tenants the breaker has
    /// never seen read as closed with zero trips.
    pub fn state(&self, tenant: &str) -> (String, u64) {
        let lanes = self.lanes.lock().expect("breaker lock");
        match lanes.get(tenant) {
            None => ("closed".to_string(), 0),
            Some(b) => {
                let name = match b.lane {
                    Lane::Closed { .. } => "closed",
                    Lane::Open { .. } => "open",
                    Lane::HalfOpen { .. } => "half-open",
                };
                (name.to_string(), b.trips)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ledger(threshold: u32, cooldown_ms: u64) -> BreakerLedger {
        BreakerLedger::new(BreakerConfig { threshold, cooldown_ms })
    }

    #[test]
    fn trips_after_n_consecutive_failures_and_sheds() {
        let b = ledger(3, 1_000);
        let t0 = Instant::now();
        for i in 0..3 {
            assert_eq!(b.before_job_at("t", t0), DynDecision::Attempt, "attempt {i}");
            b.after_job_at("t", DynDecision::Attempt, true, t0);
        }
        assert_eq!(b.state("t"), ("open".to_string(), 1));
        assert_eq!(b.before_job_at("t", t0), DynDecision::Shed, "open breaker sheds");
        // Shed outcomes never move the state machine.
        b.after_job_at("t", DynDecision::Shed, true, t0);
        assert_eq!(b.state("t"), ("open".to_string(), 1));
    }

    #[test]
    fn a_clean_job_resets_the_consecutive_count() {
        let b = ledger(3, 1_000);
        let t0 = Instant::now();
        for _ in 0..2 {
            b.before_job_at("t", t0);
            b.after_job_at("t", DynDecision::Attempt, true, t0);
        }
        b.before_job_at("t", t0);
        b.after_job_at("t", DynDecision::Attempt, false, t0);
        for _ in 0..2 {
            b.before_job_at("t", t0);
            b.after_job_at("t", DynDecision::Attempt, true, t0);
        }
        assert_eq!(b.state("t"), ("closed".to_string(), 0), "2 + reset + 2 never reaches 3");
    }

    #[test]
    fn half_open_probe_closes_on_success_and_reopens_on_failure() {
        let b = ledger(1, 100);
        let t0 = Instant::now();
        b.before_job_at("t", t0);
        b.after_job_at("t", DynDecision::Attempt, true, t0);
        assert_eq!(b.state("t").0, "open");
        // During cooldown: shed. After: exactly one probe, others shed.
        let mid = t0 + Duration::from_millis(50);
        assert_eq!(b.before_job_at("t", mid), DynDecision::Shed);
        let after = t0 + Duration::from_millis(150);
        assert_eq!(b.before_job_at("t", after), DynDecision::Probe);
        assert_eq!(b.state("t").0, "half-open");
        assert_eq!(b.before_job_at("t", after), DynDecision::Shed, "one probe at a time");
        // Probe fails: re-open for another cooldown, trip count grows.
        b.after_job_at("t", DynDecision::Probe, true, after);
        assert_eq!(b.state("t"), ("open".to_string(), 2));
        // Next probe succeeds: closed, and dynamics resume.
        let later = after + Duration::from_millis(150);
        assert_eq!(b.before_job_at("t", later), DynDecision::Probe);
        b.after_job_at("t", DynDecision::Probe, false, later);
        assert_eq!(b.state("t"), ("closed".to_string(), 2));
        assert_eq!(b.before_job_at("t", later), DynDecision::Attempt);
    }

    #[test]
    fn breakers_are_per_tenant_and_zero_threshold_disables() {
        let b = ledger(1, 1_000);
        let t0 = Instant::now();
        b.before_job_at("bad", t0);
        b.after_job_at("bad", DynDecision::Attempt, true, t0);
        assert_eq!(b.state("bad").0, "open");
        assert_eq!(b.before_job_at("good", t0), DynDecision::Attempt, "other tenants unaffected");
        assert_eq!(b.state("good").0, "closed");

        let off = ledger(0, 1_000);
        for _ in 0..10 {
            assert_eq!(off.before_job_at("t", t0), DynDecision::Attempt);
            off.after_job_at("t", DynDecision::Attempt, true, t0);
        }
        assert_eq!(off.state("t"), ("closed".to_string(), 0));
    }
}
