//! # patchecko-scand — the long-running multi-tenant scan service
//!
//! The deployment story of the paper's pipeline: instead of paying model
//! load + cache warm-up per CLI invocation, one daemon keeps a warm
//! [`ScanHub`](patchecko_scanhub::ScanHub) (trained detector + both
//! artifact-cache lanes) resident and serves scan/audit requests from
//! many clients over a Unix socket.
//!
//! * [`proto`] — the wire protocol: 4-byte little-endian length-prefixed
//!   JSON frames; typed requests (`scan`, `audit`, `batch-audit`,
//!   `stats`, `drain`), each carrying a tenant id and an echo-verified
//!   response tag.
//! * [`queue`] — admission control (bounded queue, typed
//!   `Overloaded` rejections with a retry-after hint), round-robin
//!   fairness across tenants, in-flight request dedup, and the
//!   `Running → Draining → Stopped` lifecycle.
//! * [`server`] — [`ScanServer`]: accept loop, executor pool, per-tenant
//!   cache namespaces (tenants share warm artifacts *capacity* but never
//!   each other's entries), live telemetry under `tenant.<name>.*`, and
//!   graceful drain (finish in-flight, persist both cache lanes, refuse
//!   new work).
//! * [`client`] — [`ScanClient`]: blocking request helpers with
//!   misroute detection and overload-aware retry.
//!
//! The `patchecko serve` / `patchecko client` CLI verbs wrap this crate;
//! the soak suite in `tests/` drives ≥8 concurrent clients across
//! multiple tenants through cold and warm phases, overload, wire-fault
//! injection, and drain.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod breaker;
pub mod client;
pub mod proto;
pub mod queue;
pub mod quota;
pub mod server;

pub use breaker::{BreakerConfig, BreakerLedger, DynDecision};
pub use client::ScanClient;
pub use proto::{
    BreakerStats, DrainSummary, Op, Outcome, Request, Response, ScanSummary, ServiceStats,
    TenantStats,
};
pub use queue::{Admitted, FairQueue, State, Waiter};
pub use quota::{QuotaLedger, TenantQuota};
pub use server::{ScanServer, ServerConfig, ANONYMOUS_TENANT};
