//! The scan daemon: one warm [`ScanHub`] serving many tenants over a
//! Unix socket.
//!
//! ## Architecture
//!
//! One accept thread takes connections and hands each to a detached
//! handler thread; handlers speak the [`proto`](crate::proto) framing and
//! *submit* scan/audit work into the shared [`FairQueue`] rather than
//! executing it themselves. A fixed pool of executor threads pops jobs
//! from the queue — round-robin across tenants — and runs them against
//! the one shared hub; the heavy kernels inside each job fan out further
//! onto the process-wide `neural::pool`. `stats` and `drain` never queue:
//! statistics must stay observable *while* the queue is full, and drain
//! must be able to stop a saturated daemon.
//!
//! Tenancy is a cache-namespace property, not a data-path one: every job
//! runs through [`ScanHub::audit_tenant`]/[`ScanHub::scan_image_tenant`],
//! which relocate artifact keys into the tenant's namespace, so tenants
//! share the hub's warm memory without ever reading each other's cache
//! entries. Per-tenant counters and latency histograms record under
//! `tenant.<name>.*` in the hub's registry via scoped views.
//!
//! Failure model: everything a handler can hit — malformed frames,
//! unknown CVEs, image indices out of range, admission overload, drain
//! races, worker panics — becomes a typed [`ScanError`] on the wire.
//! A panicking job is caught, answered as [`ScanError::WorkerPanic`] to
//! every waiter of that job, and the executor thread survives.

use crate::proto::{self, DrainSummary, Op, Outcome, Request, Response, ScanSummary, ServiceStats, TenantStats};
use crate::queue::{self, FairQueue, State};
use corpus::vulndb::VulnDb;
use fwbin::FirmwareImage;
use patchecko_core::differential::DifferentialConfig;
use patchecko_core::error::ScanError;
use patchecko_scanhub::ScanHub;
use scope::MetricsRegistry;
use std::collections::BTreeMap;
use std::os::unix::net::{UnixListener, UnixStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::{Path, PathBuf};
use std::sync::mpsc::channel;
use std::sync::Arc;
use std::thread::JoinHandle;

/// Daemon tuning knobs.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Unix socket path to listen on (an existing file is replaced).
    pub socket: PathBuf,
    /// Admission limit: requests queued beyond in-flight work. The next
    /// request is refused with [`ScanError::Overloaded`].
    pub queue_limit: usize,
    /// Executor threads popping jobs from the fair queue.
    pub workers: usize,
    /// Backoff hint carried in overload rejections, milliseconds.
    pub retry_after_ms: u64,
}

impl ServerConfig {
    /// Defaults: queue limit 64, 4 executors, 25 ms retry hint.
    pub fn new(socket: impl Into<PathBuf>) -> ServerConfig {
        ServerConfig { socket: socket.into(), queue_limit: 64, workers: 4, retry_after_ms: 25 }
    }
}

/// The tenant label used in telemetry for the empty (anonymous) tenant.
pub const ANONYMOUS_TENANT: &str = "anonymous";

fn tenant_label(tenant: &str) -> &str {
    if tenant.is_empty() {
        ANONYMOUS_TENANT
    } else {
        tenant
    }
}

/// FNV-1a over the operation's canonical JSON: the in-flight dedup
/// fingerprint. Two requests coalesce only when tenant AND fingerprint
/// match, so namespaces never share a computation's *identity* even when
/// the underlying artifacts would coincide.
fn fingerprint(op: &Op) -> u64 {
    let bytes = serde_json::to_string(op).unwrap_or_default().into_bytes();
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

struct Shared {
    cfg: ServerConfig,
    hub: Arc<ScanHub>,
    images: Arc<Vec<FirmwareImage>>,
    db: Arc<VulnDb>,
    diff: DifferentialConfig,
    queue: FairQueue<Op, Outcome>,
    /// Queued-op responses accepted but not yet written to their
    /// sockets. Drain waits for zero so no accepted request's response
    /// can be cut off by process exit after [`ScanServer::join`].
    replies: std::sync::Mutex<usize>,
    replies_idle: std::sync::Condvar,
}

impl Shared {
    fn registry(&self) -> &Arc<MetricsRegistry> {
        self.hub.registry()
    }

    fn count(&self, tenant: &str, which: &str) {
        self.registry().scoped(&format!("tenant.{}", tenant_label(tenant))).add(which, 1);
        self.registry().add(&format!("serve.{which}"), 1);
    }

    fn image(&self, index: usize) -> Result<&FirmwareImage, ScanError> {
        self.images
            .get(index)
            .ok_or(ScanError::ImageOutOfRange { index, images: self.images.len() })
    }

    fn execute(&self, tenant: &str, op: &Op) -> Outcome {
        match op {
            Op::Scan { image, cve, basis } => {
                let img = match self.image(*image) {
                    Ok(img) => img,
                    Err(e) => return Outcome::Error(e),
                };
                let Some(entry) = self.db.get(cve) else {
                    return Outcome::Error(ScanError::UnknownCve(cve.clone()));
                };
                match self.hub.scan_image_tenant(img, entry, *basis, tenant) {
                    Ok(analysis) => Outcome::Scan(ScanSummary::from_analysis(&analysis)),
                    Err(e) => Outcome::Error(e),
                }
            }
            Op::Audit { image } => match self
                .image(*image)
                .and_then(|img| self.hub.audit_tenant(&self.db, img, &self.diff, tenant))
            {
                Ok(report) => Outcome::Audit(Box::new(report)),
                Err(e) => Outcome::Error(e),
            },
            Op::BatchAudit { images } => {
                let mut reports = Vec::with_capacity(images.len());
                for &index in images {
                    match self
                        .image(index)
                        .and_then(|img| self.hub.audit_tenant(&self.db, img, &self.diff, tenant))
                    {
                        Ok(report) => reports.push(report),
                        Err(e) => return Outcome::Error(e),
                    }
                }
                Outcome::BatchAudit(reports)
            }
            // Stats and drain are answered at the connection layer; a
            // queued copy reaching an executor is a protocol bug.
            Op::Stats | Op::Drain => Outcome::Error(ScanError::Protocol {
                detail: "stats/drain are control operations and are never queued".into(),
            }),
        }
    }

    fn stats(&self) -> ServiceStats {
        let (state, queue_depth, in_flight) = self.queue.status();
        let snapshot = self.hub.telemetry_snapshot();
        let mut tenants = BTreeMap::new();
        for name in snapshot.names_under("tenant") {
            let view = snapshot.filtered(&format!("tenant.{name}"));
            tenants.insert(
                name,
                TenantStats {
                    accepted: view.counter("accepted"),
                    deduped: view.counter("deduped"),
                    rejected: view.counter("rejected"),
                    completed: view.counter("completed"),
                    failed: view.counter("failed"),
                    latency: view.duration("latency").cloned(),
                },
            );
        }
        ServiceStats {
            state: match state {
                State::Running => "running".into(),
                State::Draining | State::Stopped => "draining".into(),
            },
            queue_depth,
            queue_limit: self.queue.limit(),
            in_flight,
            images: self.images.len(),
            tenants,
            cache: self.hub.stats(),
            vm_executions: snapshot.counter("vm.executions"),
            telemetry: snapshot,
        }
    }

    /// Drain: refuse new work, let queued + in-flight jobs finish AND
    /// their responses reach the wire, then persist the caches.
    /// Idempotent — a second concurrent drain waits for the same idle
    /// point and reports `persisted: false`. Stopping the executors and
    /// accept loop happens in [`Shared::shutdown`], which the connection
    /// handler calls only *after* the drain response itself is written —
    /// so neither job responses nor the drain acknowledgement can be cut
    /// off by the process exiting right after [`ScanServer::join`].
    fn drain(&self) -> DrainSummary {
        let initiator = self.queue.drain_wait();
        let mut pending = self.replies.lock().expect("replies lock");
        while *pending > 0 {
            pending = self.replies_idle.wait(pending).expect("replies lock");
        }
        drop(pending);
        let persisted = if initiator { self.hub.persist().unwrap_or(false) } else { false };
        DrainSummary { persisted }
    }

    /// Stop the executors and unblock the accept loop so it observes the
    /// stop and exits. Idempotent.
    fn shutdown(&self) {
        self.queue.stop();
        let _ = UnixStream::connect(&self.cfg.socket);
    }

    fn worker_loop(&self) {
        while let Some((key, op)) = self.queue.next() {
            let tenant = key.0.clone();
            let outcome = catch_unwind(AssertUnwindSafe(|| self.execute(&tenant, &op)))
                .unwrap_or_else(|payload| Outcome::Error(ScanError::from_panic(payload.as_ref())));
            let ok = !matches!(outcome, Outcome::Error(_));
            // Counters and latency are recorded between retiring the job
            // and waking its waiters: a client released by the broadcast
            // always sees its own job reflected in `stats`.
            let (latency, waiters) = self.queue.settle(&key);
            self.registry()
                .scoped(&format!("tenant.{}", tenant_label(&tenant)))
                .record("latency", latency);
            self.count(&tenant, if ok { "completed" } else { "failed" });
            queue::broadcast(waiters, outcome);
        }
    }

    fn handle_conn(&self, mut stream: UnixStream) {
        self.registry().add("serve.connections", 1);
        loop {
            let request: Request = match proto::recv(&mut stream) {
                Ok(Some(request)) => request,
                // Clean hangup between frames: the client is done.
                Ok(None) => return,
                // Malformed frame (truncation, bogus length, garbage
                // JSON): best-effort typed reply, then drop the one
                // connection. The request tag is unknowable, so protocol
                // errors are the one response class tagged 0.
                Err(e) => {
                    let _ = proto::send(&mut stream, &Response { tag: 0, outcome: Outcome::Error(e) });
                    return;
                }
            };
            let queued = !matches!(request.op, Op::Stats | Op::Drain);
            let shutdown_after = matches!(request.op, Op::Drain);
            if queued {
                *self.replies.lock().expect("replies lock") += 1;
            }
            let response = self.dispatch(request);
            let sent = proto::send(&mut stream, &response).is_ok();
            if queued {
                let mut pending = self.replies.lock().expect("replies lock");
                *pending -= 1;
                if *pending == 0 {
                    self.replies_idle.notify_all();
                }
            }
            if shutdown_after {
                self.shutdown();
            }
            if !sent {
                // Client vanished mid-request; its job (if any) already
                // completed into the shared cache, nothing to unwind.
                return;
            }
        }
    }

    fn dispatch(&self, request: Request) -> Response {
        let Request { tenant, tag, op } = request;
        match op {
            Op::Stats => Response { tag, outcome: Outcome::Stats(Box::new(self.stats())) },
            Op::Drain => Response { tag, outcome: Outcome::Drained(self.drain()) },
            op => {
                let (tx, rx) = channel();
                match self.queue.submit(&tenant, fingerprint(&op), &op, tag, tx) {
                    Ok(admitted) => {
                        self.count(
                            &tenant,
                            if admitted == crate::queue::Admitted::Joined { "deduped" } else { "accepted" },
                        );
                        match rx.recv() {
                            Ok((tag, outcome)) => Response { tag, outcome },
                            // The executor side of the channel can only
                            // vanish if the process is tearing down.
                            Err(_) => Response { tag, outcome: Outcome::Error(ScanError::Draining) },
                        }
                    }
                    Err(e) => {
                        self.count(&tenant, "rejected");
                        Response { tag, outcome: Outcome::Error(e) }
                    }
                }
            }
        }
    }
}

/// A running scan daemon. Construct with [`ScanServer::start`]; the
/// daemon runs on background threads until a client sends `drain`, after
/// which [`ScanServer::join`] returns.
pub struct ScanServer {
    shared: Arc<Shared>,
    accept: JoinHandle<()>,
    workers: Vec<JoinHandle<()>>,
}

impl ScanServer {
    /// Bind the socket and start the accept loop and executor pool. The
    /// hub is the daemon's single warm analyzer+store; `images` is the
    /// hosted corpus requests index into; `db` is the vulnerability
    /// database every audit runs against.
    ///
    /// # Errors
    /// Propagates socket bind failures.
    pub fn start(
        cfg: ServerConfig,
        hub: ScanHub,
        images: Vec<FirmwareImage>,
        db: VulnDb,
    ) -> std::io::Result<ScanServer> {
        if cfg.socket.exists() {
            std::fs::remove_file(&cfg.socket)?;
        }
        let listener = UnixListener::bind(&cfg.socket)?;
        let queue = FairQueue::new(cfg.queue_limit, cfg.retry_after_ms);
        let shared = Arc::new(Shared {
            cfg,
            hub: Arc::new(hub),
            images: Arc::new(images),
            db: Arc::new(db),
            diff: DifferentialConfig::default(),
            queue,
            replies: std::sync::Mutex::new(0),
            replies_idle: std::sync::Condvar::new(),
        });

        let workers = (0..shared.cfg.workers.max(1))
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("scand-exec-{i}"))
                    .spawn(move || shared.worker_loop())
                    .expect("spawn executor")
            })
            .collect();

        let accept = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("scand-accept".into())
                .spawn(move || {
                    for stream in listener.incoming() {
                        let stopped = shared.queue.status().0 == State::Stopped;
                        if let Ok(stream) = stream {
                            let conn = Arc::clone(&shared);
                            // Handlers are detached: each lives exactly as
                            // long as its connection, and drain only waits
                            // for *jobs*, not for idle keep-alive clients.
                            // A connection that raced into the backlog
                            // just before stop still gets a handler — its
                            // submissions are refused with the typed
                            // drain error rather than a slammed socket.
                            let _ = std::thread::Builder::new()
                                .name("scand-conn".into())
                                .spawn(move || conn.handle_conn(stream));
                        }
                        if stopped {
                            break;
                        }
                    }
                    let _ = std::fs::remove_file(&shared.cfg.socket);
                })
                .expect("spawn accept loop")
        };

        Ok(ScanServer { shared, accept, workers })
    }

    /// The socket path clients connect to.
    pub fn socket(&self) -> &Path {
        &self.shared.cfg.socket
    }

    /// The daemon's hub (its registry carries all service telemetry).
    pub fn hub(&self) -> &Arc<ScanHub> {
        &self.shared.hub
    }

    /// A statistics snapshot, as the `stats` request would return it.
    pub fn stats(&self) -> ServiceStats {
        self.shared.stats()
    }

    /// Block until the daemon has fully shut down (a client sent `drain`)
    /// and every executor has exited.
    pub fn join(self) {
        let _ = self.accept.join();
        for worker in self.workers {
            let _ = worker.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fingerprints_separate_distinct_ops_and_agree_on_identical_ones() {
        let a = Op::Audit { image: 0 };
        let b = Op::Audit { image: 1 };
        let c = Op::BatchAudit { images: vec![0] };
        assert_eq!(fingerprint(&a), fingerprint(&a.clone()));
        assert_ne!(fingerprint(&a), fingerprint(&b));
        assert_ne!(fingerprint(&a), fingerprint(&c), "audit(0) and batch-audit([0]) are distinct jobs");
    }

    #[test]
    fn anonymous_tenant_gets_a_printable_label() {
        assert_eq!(tenant_label(""), ANONYMOUS_TENANT);
        assert_eq!(tenant_label("acme"), "acme");
    }
}
