//! The scan daemon: one warm [`ScanHub`] serving many tenants over a
//! Unix socket.
//!
//! ## Architecture
//!
//! One accept thread takes connections and hands each to a detached
//! handler thread; handlers speak the [`proto`](crate::proto) framing and
//! *submit* scan/audit work into the shared [`FairQueue`] rather than
//! executing it themselves. A fixed pool of executor threads pops jobs
//! from the queue — round-robin across tenants — and runs them against
//! the one shared hub; the heavy kernels inside each job fan out further
//! onto the process-wide `neural::pool`. `stats` and `drain` never queue:
//! statistics must stay observable *while* the queue is full, and drain
//! must be able to stop a saturated daemon.
//!
//! Tenancy is a cache-namespace property, not a data-path one: every job
//! runs through [`ScanHub::audit_tenant_ctl`]/[`ScanHub::scan_image_tenant_ctl`],
//! which relocate artifact keys into the tenant's namespace, so tenants
//! share the hub's warm memory without ever reading each other's cache
//! entries. Per-tenant counters and latency histograms record under
//! `tenant.<name>.*` in the hub's registry via scoped views.
//!
//! ## Overload & misbehavior survival
//!
//! Beyond the global admission bound, the daemon survives hostile or
//! unlucky tenants (see DESIGN.md §14):
//!
//! * **Deadlines** — a request's `deadline_ms` is converted to an
//!   absolute instant at receipt; the queue discards fully-expired jobs
//!   at pop time, executors carry a [`CancelToken`] checked between
//!   pipeline stages, and the connection layer bounds its wait so a
//!   deduped follower can never hang behind a slower leader.
//! * **Quotas** — an optional per-tenant token bucket
//!   ([`QuotaLedger`]) meters request rates, and the queue caps each
//!   tenant's distinct jobs; both reject with typed `QuotaExceeded`.
//! * **Slow clients** — every connection socket carries read/write
//!   timeouts; a stalled or idle peer is reaped (counted in stats)
//!   instead of pinning a handler thread forever, and a stalled *reader*
//!   hits the write timeout so responses are bounded too.
//! * **Circuit breaker** — per-tenant ([`BreakerLedger`]): after N
//!   consecutive jobs whose dynamic stage failed, the tenant's jobs run
//!   static-only (`Confidence::Degraded`) until a half-open probe
//!   succeeds, so a tenant whose binaries crash the VM cannot monopolize
//!   executors with doomed dynamic work.
//! * **Crash-tolerant restart** — startup connect-probes an existing
//!   socket: a live daemon is refused (`AddrInUse`), a stale socket left
//!   by a killed process is taken over (with the stale owner's pid read
//!   from the daemon's lockfile for the log line). With
//!   `checkpoint_every`, caches persist periodically so a SIGKILL loses
//!   at most the last interval of warm artifacts.
//!
//! Failure model: everything a handler can hit — malformed frames,
//! unknown CVEs, image indices out of range, admission overload, quota
//! or deadline rejections, drain races, worker panics — becomes a typed
//! [`ScanError`] on the wire. A panicking job is caught, answered as
//! [`ScanError::WorkerPanic`] to every waiter of that job, and the
//! executor thread survives.

use crate::breaker::{BreakerConfig, BreakerLedger, DynDecision};
use crate::proto::{
    self, BreakerStats, DrainSummary, Op, Outcome, Request, Response, ScanSummary, ServiceStats,
    TenantStats,
};
use crate::queue::{self, FairQueue, State, Waiter};
use crate::quota::{QuotaLedger, TenantQuota};
use corpus::vulndb::VulnDb;
use fwbin::FirmwareImage;
use patchecko_core::cancel::CancelToken;
use patchecko_core::differential::DifferentialConfig;
use patchecko_core::dynsource::{DynProfile, DynProfileSource, EnvSet};
use patchecko_core::error::ScanError;
use patchecko_scanhub::ScanHub;
use scope::MetricsRegistry;
use std::collections::BTreeMap;
use std::os::unix::net::{UnixListener, UnixStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{channel, RecvTimeoutError};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Daemon tuning knobs.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Unix socket path to listen on. A stale socket (no listener behind
    /// it) is taken over; a live one is refused.
    pub socket: PathBuf,
    /// Admission limit: requests queued beyond in-flight work. The next
    /// request is refused with [`ScanError::Overloaded`].
    pub queue_limit: usize,
    /// Executor threads popping jobs from the fair queue.
    pub workers: usize,
    /// Base backoff hint carried in typed rejections, milliseconds
    /// (scaled with queue pressure — see [`FairQueue::retry_hint`]).
    pub retry_after_ms: u64,
    /// Socket read/write timeout per connection, milliseconds. Doubles
    /// as the idle-connection reaper: a peer that neither sends a frame
    /// nor drains its responses for this long is disconnected. 0
    /// disables (not recommended outside tests).
    pub io_timeout_ms: u64,
    /// Per-tenant token-bucket rate limit and in-flight cap; `None`
    /// leaves only the global admission bound.
    pub tenant_quota: Option<TenantQuota>,
    /// Dynamic-stage circuit breaker tuning (`threshold: 0` disables).
    pub breaker: BreakerConfig,
    /// Persist both cache lanes after every N completed jobs (`None` =
    /// only on drain). Saves are atomic, so a SIGKILL mid-checkpoint
    /// never corrupts the cache.
    pub checkpoint_every: Option<u64>,
    /// Chaos seam: tenants whose dynamic stage is forced to fail, as if
    /// every one of their binaries crashed the VM. Test-only — the wire
    /// protocol cannot induce real per-tenant VM crashes since ops only
    /// reference daemon-hosted images.
    pub fault_vm_tenants: Vec<String>,
}

impl ServerConfig {
    /// Defaults: queue limit 64, 4 executors, 25 ms retry hint, 30 s io
    /// timeout, no tenant quota, breaker at 5 failures / 2 s cooldown,
    /// persist on drain only.
    pub fn new(socket: impl Into<PathBuf>) -> ServerConfig {
        ServerConfig {
            socket: socket.into(),
            queue_limit: 64,
            workers: 4,
            retry_after_ms: 25,
            io_timeout_ms: 30_000,
            tenant_quota: None,
            breaker: BreakerConfig::default(),
            checkpoint_every: None,
            fault_vm_tenants: Vec::new(),
        }
    }

    fn io_timeout(&self) -> Option<Duration> {
        (self.io_timeout_ms > 0).then(|| Duration::from_millis(self.io_timeout_ms))
    }
}

/// The tenant label used in telemetry for the empty (anonymous) tenant.
pub const ANONYMOUS_TENANT: &str = "anonymous";

fn tenant_label(tenant: &str) -> &str {
    if tenant.is_empty() {
        ANONYMOUS_TENANT
    } else {
        tenant
    }
}

/// The daemon's pid lockfile for a socket path: `<socket>.pid`.
pub fn lockfile_path(socket: &Path) -> PathBuf {
    PathBuf::from(format!("{}.pid", socket.display()))
}

/// FNV-1a over the operation's canonical JSON: the in-flight dedup
/// fingerprint. Two requests coalesce only when tenant AND fingerprint
/// match, so namespaces never share a computation's *identity* even when
/// the underlying artifacts would coincide.
fn fingerprint(op: &Op) -> u64 {
    let bytes = serde_json::to_string(op).unwrap_or_default().into_bytes();
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// A [`DynProfileSource`] that refuses every call with a transient
/// injected-fault error. The pipeline already degrades dynsrc failures
/// to static-only [`Confidence::Degraded`](patchecko_core::pipeline::Confidence)
/// evidence, so substituting this source forces exactly the breaker's
/// "static-only" mode — and the chaos seam's "this tenant's binaries
/// crash the VM" mode — without touching the tenant's cached dynamic
/// lane.
struct RefusingDynSource {
    site: &'static str,
}

impl DynProfileSource for RefusingDynSource {
    fn environments(
        &self,
        _reference: &vm::loader::LoadedBinary,
        _fuzz_cfg: &vm::fuzz::FuzzConfig,
        _vm: &vm::exec::VmConfig,
    ) -> Result<EnvSet, ScanError> {
        Err(ScanError::Injected { site: self.site.into(), detail: "dynamic stage refused".into() })
    }

    fn profile(
        &self,
        _target: &vm::loader::LoadedBinary,
        _func: usize,
        _envs: &EnvSet,
        _vm: &vm::exec::VmConfig,
    ) -> Result<DynProfile, ScanError> {
        Err(ScanError::Injected { site: self.site.into(), detail: "dynamic stage refused".into() })
    }
}

struct Shared {
    cfg: ServerConfig,
    hub: Arc<ScanHub>,
    images: Arc<Vec<FirmwareImage>>,
    db: Arc<VulnDb>,
    diff: DifferentialConfig,
    queue: FairQueue<Op, Outcome>,
    quota: Option<QuotaLedger>,
    breaker: BreakerLedger,
    /// Substituted for a tenant's dynamic source while its breaker is
    /// open (or half-open with a probe already outstanding).
    tripped_dynsrc: Arc<dyn DynProfileSource>,
    /// Substituted for `fault_vm_tenants` — the chaos seam.
    chaos_dynsrc: Arc<dyn DynProfileSource>,
    /// Completed-job counter driving periodic checkpoints.
    completed_jobs: AtomicU64,
    /// Serializes checkpoint/drain persistence.
    persist_lock: std::sync::Mutex<()>,
    /// Queued-op responses accepted but not yet written to their
    /// sockets. Drain waits for zero so no accepted request's response
    /// can be cut off by process exit after [`ScanServer::join`].
    replies: std::sync::Mutex<usize>,
    replies_idle: std::sync::Condvar,
}

impl Shared {
    fn registry(&self) -> &Arc<MetricsRegistry> {
        self.hub.registry()
    }

    fn count(&self, tenant: &str, which: &str) {
        self.registry().scoped(&format!("tenant.{}", tenant_label(tenant))).add(which, 1);
        self.registry().add(&format!("serve.{which}"), 1);
    }

    fn image(&self, index: usize) -> Result<&FirmwareImage, ScanError> {
        self.images
            .get(index)
            .ok_or(ScanError::ImageOutOfRange { index, images: self.images.len() })
    }

    fn execute(
        &self,
        tenant: &str,
        op: &Op,
        dynsrc: Option<&Arc<dyn DynProfileSource>>,
        cancel: &CancelToken,
    ) -> Outcome {
        let over = || dynsrc.map(Arc::clone);
        match op {
            Op::Scan { image, cve, basis } => {
                let img = match self.image(*image) {
                    Ok(img) => img,
                    Err(e) => return Outcome::Error(e),
                };
                let Some(entry) = self.db.get(cve) else {
                    return Outcome::Error(ScanError::UnknownCve(cve.clone()));
                };
                match self.hub.scan_image_tenant_ctl(img, entry, *basis, tenant, over(), cancel) {
                    Ok(analysis) => Outcome::Scan(ScanSummary::from_analysis(&analysis)),
                    Err(e) => Outcome::Error(e),
                }
            }
            Op::Audit { image } => match self.image(*image).and_then(|img| {
                self.hub.audit_tenant_ctl(&self.db, img, &self.diff, tenant, over(), cancel)
            }) {
                Ok(report) => Outcome::Audit(Box::new(report)),
                Err(e) => Outcome::Error(e),
            },
            Op::BatchAudit { images } => {
                let mut reports = Vec::with_capacity(images.len());
                for &index in images {
                    match self.image(index).and_then(|img| {
                        self.hub.audit_tenant_ctl(&self.db, img, &self.diff, tenant, over(), cancel)
                    }) {
                        Ok(report) => reports.push(report),
                        Err(e) => return Outcome::Error(e),
                    }
                }
                Outcome::BatchAudit(reports)
            }
            // Stats and drain are answered at the connection layer; a
            // queued copy reaching an executor is a protocol bug.
            Op::Stats | Op::Drain => Outcome::Error(ScanError::Protocol {
                detail: "stats/drain are control operations and are never queued".into(),
            }),
        }
    }

    /// Whether an outcome's dynamic stage failed: every path through the
    /// pipeline marks static-only fallback as degraded findings/analyses.
    fn dyn_failed(outcome: &Outcome) -> bool {
        match outcome {
            Outcome::Audit(r) => r.findings.iter().any(|f| f.degraded),
            Outcome::BatchAudit(rs) => {
                rs.iter().any(|r| r.findings.iter().any(|f| f.degraded))
            }
            Outcome::Scan(s) => s.degraded > 0,
            _ => false,
        }
    }

    fn stats(&self) -> ServiceStats {
        let (state, queue_depth, in_flight) = self.queue.status();
        let snapshot = self.hub.telemetry_snapshot();
        let mut tenants = BTreeMap::new();
        for name in snapshot.names_under("tenant") {
            let view = snapshot.filtered(&format!("tenant.{name}"));
            let breaker = (self.cfg.breaker.threshold > 0).then(|| {
                let (state, trips) = self.breaker.state(&name);
                BreakerStats { state, trips }
            });
            tenants.insert(
                name,
                TenantStats {
                    accepted: view.counter("accepted"),
                    deduped: view.counter("deduped"),
                    rejected: view.counter("rejected"),
                    completed: view.counter("completed"),
                    failed: view.counter("failed"),
                    expired: view.counter("expired"),
                    quota_rejected: view.counter("quota_rejected"),
                    degraded_jobs: view.counter("degraded_jobs"),
                    breaker,
                    latency: view.duration("latency").cloned(),
                },
            );
        }
        let opened = snapshot.counter("serve.connections");
        let closed = snapshot.counter("serve.connections_closed");
        ServiceStats {
            state: match state {
                State::Running => "running".into(),
                State::Draining | State::Stopped => "draining".into(),
            },
            queue_depth,
            queue_limit: self.queue.limit(),
            in_flight,
            images: self.images.len(),
            open_connections: opened.saturating_sub(closed),
            reaped_connections: snapshot.counter("serve.reaped"),
            expired_at_executor: snapshot.counter("serve.expired_at_executor"),
            tenants,
            cache: self.hub.stats(),
            vm_executions: snapshot.counter("vm.executions"),
            telemetry: snapshot,
        }
    }

    /// Drain: refuse new work, let queued + in-flight jobs finish AND
    /// their responses reach the wire, then persist the caches.
    /// Idempotent — a second concurrent drain waits for the same idle
    /// point and reports `persisted: false`. Stopping the executors and
    /// accept loop happens in [`Shared::shutdown`], which the connection
    /// handler calls only *after* the drain response itself is written —
    /// so neither job responses nor the drain acknowledgement can be cut
    /// off by the process exiting right after [`ScanServer::join`].
    fn drain(&self) -> DrainSummary {
        let initiator = self.queue.drain_wait();
        let mut pending = self.replies.lock().expect("replies lock");
        while *pending > 0 {
            pending = self.replies_idle.wait(pending).expect("replies lock");
        }
        drop(pending);
        let persisted = if initiator {
            let _guard = self.persist_lock.lock().expect("persist lock");
            self.hub.persist().unwrap_or(false)
        } else {
            false
        };
        DrainSummary { persisted }
    }

    /// Stop the executors and unblock the accept loop so it observes the
    /// stop and exits. Idempotent.
    fn shutdown(&self) {
        self.queue.stop();
        let _ = UnixStream::connect(&self.cfg.socket);
    }

    /// Answer waiters whose deadline passed while their job sat queued:
    /// each gets the typed error naming its own budget. The per-request
    /// `expired` counter is recorded by the waiter's own connection
    /// handler (whose bounded wait expires at the same deadline), so the
    /// queue side only delivers — it never double-counts.
    fn expire_waiters(&self, waiters: queue::Waiters<Outcome>) {
        for w in waiters {
            let err = ScanError::DeadlineExceeded { budget_ms: w.budget_ms };
            let _ = w.tx.send((w.tag, Outcome::Error(err)));
        }
    }

    fn checkpoint(&self) {
        if let Some(every) = self.cfg.checkpoint_every {
            let done = self.completed_jobs.fetch_add(1, Ordering::Relaxed) + 1;
            if every > 0 && done.is_multiple_of(every) {
                let _guard = self.persist_lock.lock().expect("persist lock");
                if self.hub.persist().unwrap_or(false) {
                    self.registry().add("serve.checkpoints", 1);
                }
            }
        }
    }

    fn worker_loop(&self) {
        while let Some((key, op, envelope)) =
            self.queue.next(|_, waiters| self.expire_waiters(waiters))
        {
            let tenant = key.0.clone();
            let cancel = match envelope {
                Some((deadline, budget_ms)) => CancelToken::with_deadline(deadline, budget_ms),
                None => CancelToken::unbounded(),
            };
            if cancel.expired() {
                // The deadline passed in the instants between pop and
                // here: refuse to run the job at all. This counter is
                // the soak's "no executor ever ran expired work" oracle
                // together with the stage-boundary checks inside run.
                self.registry().add("serve.expired_at_executor", 1);
                let (_latency, waiters) = self.queue.settle(&key);
                self.expire_waiters(waiters);
                continue;
            }
            let decision = self.breaker.before_job(tenant_label(&tenant));
            let chaos = self
                .cfg
                .fault_vm_tenants
                .iter()
                .any(|t| t == tenant_label(&tenant));
            let dynsrc = match decision {
                DynDecision::Shed => Some(&self.tripped_dynsrc),
                // A chaos tenant still "attempts" dynamics — they fail,
                // feeding the breaker exactly like real VM crashes.
                DynDecision::Attempt | DynDecision::Probe if chaos => Some(&self.chaos_dynsrc),
                _ => None,
            };
            let outcome =
                catch_unwind(AssertUnwindSafe(|| self.execute(&tenant, &op, dynsrc, &cancel)))
                    .unwrap_or_else(|payload| {
                        Outcome::Error(ScanError::from_panic(payload.as_ref()))
                    });
            let dyn_failed = Self::dyn_failed(&outcome);
            if decision != DynDecision::Shed {
                self.breaker.after_job(tenant_label(&tenant), decision, dyn_failed);
            }
            if dyn_failed {
                self.count(&tenant, "degraded_jobs");
            }
            let ok = !matches!(outcome, Outcome::Error(_));
            // Counters and latency are recorded between retiring the job
            // and waking its waiters: a client released by the broadcast
            // always sees its own job reflected in `stats`.
            let (latency, waiters) = self.queue.settle(&key);
            self.registry()
                .scoped(&format!("tenant.{}", tenant_label(&tenant)))
                .record("latency", latency);
            self.count(&tenant, if ok { "completed" } else { "failed" });
            queue::broadcast(waiters, outcome);
            if ok {
                self.checkpoint();
            }
        }
    }

    fn handle_conn(&self, mut stream: UnixStream) {
        // Slow-client protection: a peer that stalls mid-frame, never
        // sends the next request, or never drains its responses hits
        // these timeouts instead of pinning this thread forever.
        let _ = stream.set_read_timeout(self.cfg.io_timeout());
        let _ = stream.set_write_timeout(self.cfg.io_timeout());
        self.registry().add("serve.connections", 1);
        // Balance the open-connections gauge on every exit path.
        struct Closed<'a>(&'a Shared);
        impl Drop for Closed<'_> {
            fn drop(&mut self) {
                self.0.registry().add("serve.connections_closed", 1);
            }
        }
        let _closed = Closed(self);
        loop {
            let request: Request = match proto::recv(&mut stream) {
                Ok(Some(request)) => request,
                // Clean hangup between frames: the client is done.
                Ok(None) => return,
                // A socket timeout is the reaper firing on a stalled or
                // idle peer: drop the connection without a reply (the
                // peer isn't reading anyway). In-flight jobs of *other*
                // connections are untouched — reaping only abandons this
                // handler's receive loop.
                Err(e) if proto::is_timeout(&e) => {
                    self.registry().add("serve.reaped", 1);
                    return;
                }
                // Malformed frame (truncation, bogus length, garbage
                // JSON): best-effort typed reply, then drop the one
                // connection. The request tag is unknowable, so protocol
                // errors are the one response class tagged 0.
                Err(e) => {
                    let _ =
                        proto::send(&mut stream, &Response { tag: 0, outcome: Outcome::Error(e) });
                    return;
                }
            };
            let queued = !matches!(request.op, Op::Stats | Op::Drain);
            let shutdown_after = matches!(request.op, Op::Drain);
            if queued {
                *self.replies.lock().expect("replies lock") += 1;
            }
            let response = self.dispatch(request);
            let sent = proto::send(&mut stream, &response).is_ok();
            if queued {
                let mut pending = self.replies.lock().expect("replies lock");
                *pending -= 1;
                if *pending == 0 {
                    self.replies_idle.notify_all();
                }
            }
            if shutdown_after {
                self.shutdown();
            }
            if !sent {
                // Client vanished (or stalled past the write timeout)
                // mid-request; its job (if any) already completed into
                // the shared cache, nothing to unwind.
                return;
            }
        }
    }

    fn dispatch(&self, request: Request) -> Response {
        let Request { tenant, tag, deadline_ms, op } = request;
        // The budget starts at receipt: queueing time counts against it.
        let arrival = Instant::now();
        let deadline = deadline_ms.map(|ms| arrival + Duration::from_millis(ms));
        match op {
            Op::Stats => Response { tag, outcome: Outcome::Stats(Box::new(self.stats())) },
            Op::Drain => Response { tag, outcome: Outcome::Drained(self.drain()) },
            op => {
                // Token-bucket rate metering happens before the queue:
                // dedup joins spend tokens too (each is a held
                // connection and a response), and a flooding tenant is
                // turned away without touching shared queue state.
                if let Some(quota) = &self.quota {
                    if let Err(e) = quota.admit(&tenant) {
                        self.count(&tenant, "rejected");
                        self.count(&tenant, "quota_rejected");
                        return Response { tag, outcome: Outcome::Error(e) };
                    }
                }
                let (tx, rx) = channel();
                let waiter =
                    Waiter { tag, deadline, budget_ms: deadline_ms.unwrap_or(0), tx };
                match self.queue.submit(&tenant, fingerprint(&op), &op, waiter) {
                    Ok(admitted) => {
                        self.count(
                            &tenant,
                            if admitted == crate::queue::Admitted::Joined {
                                "deduped"
                            } else {
                                "accepted"
                            },
                        );
                        let received = match deadline {
                            None => rx.recv().map_err(|_| None),
                            // Bounded wait: a deduped follower (or any
                            // waiter) whose deadline passes while the
                            // leader still executes gets the typed error
                            // now — never a hang. If the result arrives
                            // first, it wins.
                            Some(d) => {
                                rx.recv_timeout(d.saturating_duration_since(Instant::now()))
                                    .map_err(|e| match e {
                                        RecvTimeoutError::Timeout => {
                                            Some(deadline_ms.unwrap_or(0))
                                        }
                                        RecvTimeoutError::Disconnected => None,
                                    })
                            }
                        };
                        match received {
                            Ok((tag, outcome)) => Response { tag, outcome },
                            Err(Some(budget_ms)) => {
                                self.count(&tenant, "expired");
                                Response {
                                    tag,
                                    outcome: Outcome::Error(ScanError::DeadlineExceeded {
                                        budget_ms,
                                    }),
                                }
                            }
                            // The executor side of the channel can only
                            // vanish if the process is tearing down.
                            Err(None) => {
                                Response { tag, outcome: Outcome::Error(ScanError::Draining) }
                            }
                        }
                    }
                    Err(e) => {
                        self.count(&tenant, "rejected");
                        if matches!(e, ScanError::QuotaExceeded { .. }) {
                            self.count(&tenant, "quota_rejected");
                        }
                        Response { tag, outcome: Outcome::Error(e) }
                    }
                }
            }
        }
    }
}

/// A running scan daemon. Construct with [`ScanServer::start`]; the
/// daemon runs on background threads until a client sends `drain`, after
/// which [`ScanServer::join`] returns.
pub struct ScanServer {
    shared: Arc<Shared>,
    accept: JoinHandle<()>,
    workers: Vec<JoinHandle<()>>,
}

impl ScanServer {
    /// Bind the socket and start the accept loop and executor pool. The
    /// hub is the daemon's single warm analyzer+store; `images` is the
    /// hosted corpus requests index into; `db` is the vulnerability
    /// database every audit runs against.
    ///
    /// If the socket path already exists, it is connect-probed: a live
    /// daemon answering it is refused with `AddrInUse` (never clobber a
    /// running service), while a stale socket — left behind by a killed
    /// daemon — is taken over, logging the stale owner's pid from the
    /// `<socket>.pid` lockfile when one survives. The lockfile is
    /// rewritten with this process's pid and removed on clean exit.
    ///
    /// # Errors
    /// Propagates socket bind failures; `AddrInUse` when a live daemon
    /// already serves the socket.
    pub fn start(
        cfg: ServerConfig,
        hub: ScanHub,
        images: Vec<FirmwareImage>,
        db: VulnDb,
    ) -> std::io::Result<ScanServer> {
        let lockfile = lockfile_path(&cfg.socket);
        if cfg.socket.exists() {
            match UnixStream::connect(&cfg.socket) {
                Ok(_) => {
                    return Err(std::io::Error::new(
                        std::io::ErrorKind::AddrInUse,
                        format!(
                            "socket {} is live: another daemon is serving it",
                            cfg.socket.display()
                        ),
                    ));
                }
                Err(_) => {
                    let stale = std::fs::read_to_string(&lockfile)
                        .ok()
                        .and_then(|s| s.trim().parse::<u32>().ok());
                    match stale {
                        Some(pid) => eprintln!(
                            "scand: taking over stale socket {} (left by dead pid {pid})",
                            cfg.socket.display()
                        ),
                        None => eprintln!(
                            "scand: taking over stale socket {}",
                            cfg.socket.display()
                        ),
                    }
                    std::fs::remove_file(&cfg.socket)?;
                }
            }
        }
        let listener = UnixListener::bind(&cfg.socket)?;
        let _ = std::fs::write(&lockfile, format!("{}\n", std::process::id()));
        let queue = FairQueue::new(cfg.queue_limit, cfg.retry_after_ms)
            .with_tenant_cap(cfg.tenant_quota.and_then(|q| q.max_in_flight));
        let shared = Arc::new(Shared {
            quota: cfg.tenant_quota.map(QuotaLedger::new),
            breaker: BreakerLedger::new(cfg.breaker),
            tripped_dynsrc: Arc::new(RefusingDynSource { site: "scand.breaker_open" }),
            chaos_dynsrc: Arc::new(RefusingDynSource { site: "scand.chaos_vm" }),
            completed_jobs: AtomicU64::new(0),
            persist_lock: std::sync::Mutex::new(()),
            cfg,
            hub: Arc::new(hub),
            images: Arc::new(images),
            db: Arc::new(db),
            diff: DifferentialConfig::default(),
            queue,
            replies: std::sync::Mutex::new(0),
            replies_idle: std::sync::Condvar::new(),
        });

        let workers = (0..shared.cfg.workers.max(1))
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("scand-exec-{i}"))
                    .spawn(move || shared.worker_loop())
                    .expect("spawn executor")
            })
            .collect();

        let accept = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("scand-accept".into())
                .spawn(move || {
                    for stream in listener.incoming() {
                        let stopped = shared.queue.status().0 == State::Stopped;
                        if let Ok(stream) = stream {
                            let conn = Arc::clone(&shared);
                            // Handlers are detached: each lives exactly as
                            // long as its connection, and drain only waits
                            // for *jobs*, not for idle keep-alive clients.
                            // A connection that raced into the backlog
                            // just before stop still gets a handler — its
                            // submissions are refused with the typed
                            // drain error rather than a slammed socket.
                            let _ = std::thread::Builder::new()
                                .name("scand-conn".into())
                                .spawn(move || conn.handle_conn(stream));
                        }
                        if stopped {
                            break;
                        }
                    }
                    let _ = std::fs::remove_file(&shared.cfg.socket);
                    let _ = std::fs::remove_file(lockfile_path(&shared.cfg.socket));
                })
                .expect("spawn accept loop")
        };

        Ok(ScanServer { shared, accept, workers })
    }

    /// The socket path clients connect to.
    pub fn socket(&self) -> &Path {
        &self.shared.cfg.socket
    }

    /// The daemon's hub (its registry carries all service telemetry).
    pub fn hub(&self) -> &Arc<ScanHub> {
        &self.shared.hub
    }

    /// A statistics snapshot, as the `stats` request would return it.
    pub fn stats(&self) -> ServiceStats {
        self.shared.stats()
    }

    /// Block until the daemon has fully shut down (a client sent `drain`)
    /// and every executor has exited.
    pub fn join(self) {
        let _ = self.accept.join();
        for worker in self.workers {
            let _ = worker.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fingerprints_separate_distinct_ops_and_agree_on_identical_ones() {
        let a = Op::Audit { image: 0 };
        let b = Op::Audit { image: 1 };
        let c = Op::BatchAudit { images: vec![0] };
        assert_eq!(fingerprint(&a), fingerprint(&a.clone()));
        assert_ne!(fingerprint(&a), fingerprint(&b));
        assert_ne!(fingerprint(&a), fingerprint(&c), "audit(0) and batch-audit([0]) are distinct jobs");
    }

    #[test]
    fn anonymous_tenant_gets_a_printable_label() {
        assert_eq!(tenant_label(""), ANONYMOUS_TENANT);
        assert_eq!(tenant_label("acme"), "acme");
    }

    #[test]
    fn lockfile_rides_next_to_the_socket() {
        assert_eq!(lockfile_path(Path::new("/tmp/scand.sock")), Path::new("/tmp/scand.sock.pid"));
    }
}
