//! Per-tenant token-bucket rate limiting.
//!
//! On top of the global admission bound and the per-tenant in-flight cap
//! (enforced inside [`crate::queue::FairQueue`]), the daemon meters each
//! tenant's *request rate* with a classic token bucket: a tenant owns a
//! bucket of `burst` tokens refilled at `rate_per_sec`; every submission
//! — dedup joins included, since a join still costs a connection thread
//! and a response — spends one token. An empty bucket yields the typed
//! `QuotaExceeded { tenant, retry_after_ms }` where the hint is the
//! exact time until the bucket refills to one token, so a compliant
//! client that sleeps the hint is admitted on its next try.
//!
//! The ledger is deliberately clock-parameterized ([`QuotaLedger::admit_at`])
//! so the refill math is unit-testable without sleeping.

use patchecko_core::error::ScanError;
use std::collections::HashMap;
use std::str::FromStr;
use std::sync::Mutex;
use std::time::Instant;

/// A per-tenant quota: token-bucket rate plus a distinct-job in-flight
/// cap. Parsed from the CLI as `RATE:BURST[:INFLIGHT]` (e.g. `50:10:4` =
/// 50 requests/second sustained, bursts of 10, at most 4 distinct jobs
/// queued or executing).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TenantQuota {
    /// Sustained admissions per second per tenant.
    pub rate_per_sec: f64,
    /// Bucket capacity: how far a tenant may burst above the rate.
    pub burst: f64,
    /// Max distinct jobs (queued + executing) per tenant; `None` leaves
    /// only the global bound.
    pub max_in_flight: Option<usize>,
}

impl FromStr for TenantQuota {
    type Err = String;

    fn from_str(s: &str) -> Result<TenantQuota, String> {
        let parts: Vec<&str> = s.split(':').collect();
        if parts.len() < 2 || parts.len() > 3 {
            return Err(format!("expected RATE:BURST[:INFLIGHT], got `{s}`"));
        }
        let rate_per_sec: f64 =
            parts[0].parse().map_err(|_| format!("bad rate `{}`", parts[0]))?;
        let burst: f64 = parts[1].parse().map_err(|_| format!("bad burst `{}`", parts[1]))?;
        let sane =
            rate_per_sec.is_finite() && rate_per_sec > 0.0 && burst.is_finite() && burst >= 1.0;
        if !sane {
            return Err(format!("rate must be > 0 and burst >= 1, got `{s}`"));
        }
        let max_in_flight = match parts.get(2) {
            Some(p) => {
                let n: usize = p.parse().map_err(|_| format!("bad in-flight cap `{p}`"))?;
                if n == 0 {
                    return Err("in-flight cap must be >= 1".to_string());
                }
                Some(n)
            }
            None => None,
        };
        Ok(TenantQuota { rate_per_sec, burst, max_in_flight })
    }
}

struct Bucket {
    tokens: f64,
    refilled: Instant,
}

/// The daemon-side token-bucket ledger, one bucket per tenant (created
/// full on first sight).
pub struct QuotaLedger {
    quota: TenantQuota,
    buckets: Mutex<HashMap<String, Bucket>>,
}

impl QuotaLedger {
    /// A ledger enforcing `quota` for every tenant.
    pub fn new(quota: TenantQuota) -> QuotaLedger {
        QuotaLedger { quota, buckets: Mutex::new(HashMap::new()) }
    }

    /// The quota being enforced.
    pub fn quota(&self) -> TenantQuota {
        self.quota
    }

    /// Spend one token from `tenant`'s bucket, refilling for elapsed time
    /// first.
    ///
    /// # Errors
    /// `QuotaExceeded` with the exact refill-to-one-token wait when the
    /// bucket is empty.
    pub fn admit(&self, tenant: &str) -> Result<(), ScanError> {
        self.admit_at(tenant, Instant::now())
    }

    /// [`QuotaLedger::admit`] at an explicit clock reading (test seam).
    ///
    /// # Errors
    /// As for [`QuotaLedger::admit`].
    pub fn admit_at(&self, tenant: &str, now: Instant) -> Result<(), ScanError> {
        let mut buckets = self.buckets.lock().expect("quota lock");
        let bucket = buckets
            .entry(tenant.to_string())
            .or_insert_with(|| Bucket { tokens: self.quota.burst, refilled: now });
        let elapsed = now.saturating_duration_since(bucket.refilled).as_secs_f64();
        bucket.tokens = (bucket.tokens + elapsed * self.quota.rate_per_sec).min(self.quota.burst);
        bucket.refilled = now;
        if bucket.tokens >= 1.0 {
            bucket.tokens -= 1.0;
            return Ok(());
        }
        let deficit = 1.0 - bucket.tokens;
        let retry_after_ms = ((deficit / self.quota.rate_per_sec) * 1000.0).ceil().max(1.0) as u64;
        Err(ScanError::QuotaExceeded { tenant: tenant.to_string(), retry_after_ms })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn quota_parses_and_rejects_malformed_specs() {
        let q: TenantQuota = "50:10:4".parse().unwrap();
        assert_eq!(q, TenantQuota { rate_per_sec: 50.0, burst: 10.0, max_in_flight: Some(4) });
        let q: TenantQuota = "2.5:1".parse().unwrap();
        assert_eq!(q, TenantQuota { rate_per_sec: 2.5, burst: 1.0, max_in_flight: None });
        for bad in ["", "50", "0:5", "50:0", "a:b", "50:10:0", "1:2:3:4"] {
            assert!(bad.parse::<TenantQuota>().is_err(), "`{bad}` should not parse");
        }
    }

    #[test]
    fn bucket_bursts_then_meters_at_the_rate() {
        // 10/s, burst 3: three instant admissions, then typed rejections
        // whose hint names the refill wait.
        let ledger = QuotaLedger::new(TenantQuota {
            rate_per_sec: 10.0,
            burst: 3.0,
            max_in_flight: None,
        });
        let t0 = Instant::now();
        for _ in 0..3 {
            ledger.admit_at("t", t0).unwrap();
        }
        match ledger.admit_at("t", t0) {
            Err(ScanError::QuotaExceeded { tenant, retry_after_ms }) => {
                assert_eq!(tenant, "t");
                assert_eq!(retry_after_ms, 100, "one token at 10/s is 100ms away");
            }
            other => panic!("expected QuotaExceeded, got {other:?}"),
        }
        // Sleeping the hint admits exactly one more.
        let t1 = t0 + Duration::from_millis(100);
        ledger.admit_at("t", t1).unwrap();
        assert!(ledger.admit_at("t", t1).is_err(), "the refill bought one token, not two");
    }

    #[test]
    fn buckets_are_per_tenant_and_capped_at_burst() {
        let ledger = QuotaLedger::new(TenantQuota {
            rate_per_sec: 1.0,
            burst: 2.0,
            max_in_flight: None,
        });
        let t0 = Instant::now();
        ledger.admit_at("a", t0).unwrap();
        ledger.admit_at("a", t0).unwrap();
        assert!(ledger.admit_at("a", t0).is_err(), "a's bucket is empty");
        ledger.admit_at("b", t0).unwrap();
        // An hour idle refills to burst (2), never beyond.
        let t1 = t0 + Duration::from_secs(3600);
        ledger.admit_at("a", t1).unwrap();
        ledger.admit_at("a", t1).unwrap();
        assert!(ledger.admit_at("a", t1).is_err(), "burst caps the refill");
    }
}
