//! The scand wire protocol: length-prefixed JSON frames.
//!
//! A frame is a 4-byte little-endian body length followed by exactly that
//! many bytes of JSON. The framing layer is deliberately dumb — no
//! compression, no multiplexing — because every failure mode then has one
//! obvious typed answer: a length prefix claiming more than [`MAX_FRAME`]
//! bytes is rejected *before* any allocation, a stream that ends inside a
//! frame is a truncation, and a body that does not parse is garbage. All
//! three map to [`ScanError::Protocol`], which is permanent by
//! classification: resending the same bytes cannot help.
//!
//! Requests and responses are externally-tagged serde enums (the vendored
//! serde's native representation). Every request carries the caller's
//! `tenant` (empty = the anonymous namespace) and a client-chosen `tag`
//! the server must echo on the response; the client verifies the echo, so
//! a misrouted response is detected at the protocol layer rather than
//! surfacing as silently-wrong scan results.

use patchecko_core::error::ScanError;
use patchecko_core::pipeline::{Basis, ImageAnalysis, ImageMatch};
use patchecko_core::report::AuditReport;
use patchecko_scanhub::CacheStats;
use scope::{DurationStats, TelemetrySnapshot};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::io::{ErrorKind, Read, Write};

/// Largest accepted frame body, bytes. Large enough for a whole-corpus
/// batch-audit response, small enough that a corrupt length prefix
/// (typically claiming ≥ 1 GiB) is rejected without buffering anything.
pub const MAX_FRAME: u32 = 64 * 1024 * 1024;

fn protocol(detail: impl Into<String>) -> ScanError {
    ScanError::Protocol { detail: detail.into() }
}

/// Write one frame (length prefix + body).
///
/// # Errors
/// [`ScanError::Protocol`] when the body exceeds [`MAX_FRAME`] or the
/// peer hangs up mid-write.
pub fn write_frame(w: &mut impl Write, body: &[u8]) -> Result<(), ScanError> {
    if body.len() > MAX_FRAME as usize {
        return Err(protocol(format!("frame body {} exceeds MAX_FRAME {MAX_FRAME}", body.len())));
    }
    let write = |e: std::io::Error| protocol(format!("frame write: {e}"));
    w.write_all(&(body.len() as u32).to_le_bytes()).map_err(write)?;
    w.write_all(body).map_err(write)?;
    w.flush().map_err(write)
}

/// Read one frame body. `Ok(None)` is a clean end-of-stream *between*
/// frames (the peer finished and hung up); everything else that prevents
/// a whole frame from arriving is a typed error.
///
/// # Errors
/// [`ScanError::Protocol`] for an oversize length prefix (rejected before
/// allocation), a stream truncated inside a frame, or any I/O failure.
pub fn read_frame(r: &mut impl Read) -> Result<Option<Vec<u8>>, ScanError> {
    let mut prefix = [0u8; 4];
    let mut got = 0;
    while got < prefix.len() {
        match r.read(&mut prefix[got..]) {
            Ok(0) if got == 0 => return Ok(None),
            Ok(0) => return Err(protocol(format!("stream ended inside length prefix ({got}/4 bytes)"))),
            Ok(n) => got += n,
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            Err(e) => return Err(io_protocol("frame read", &e)),
        }
    }
    let len = u32::from_le_bytes(prefix);
    if len > MAX_FRAME {
        return Err(protocol(format!("length prefix claims {len} bytes (max {MAX_FRAME})")));
    }
    let mut body = vec![0u8; len as usize];
    r.read_exact(&mut body).map_err(|e| match e.kind() {
        ErrorKind::UnexpectedEof => protocol(format!("frame truncated: length prefix promised {len} bytes")),
        _ => io_protocol("frame read", &e),
    })?;
    Ok(Some(body))
}

/// Marker embedded in the [`ScanError::Protocol`] detail when a frame
/// read/write died on a socket timeout rather than malformed bytes — the
/// server's idle-connection reaper keys on it via [`is_timeout`].
pub const TIMEOUT_MARKER: &str = "socket timed out";

fn io_protocol(what: &str, e: &std::io::Error) -> ScanError {
    // A read/write timeout surfaces as WouldBlock or TimedOut depending
    // on the platform; both mean "the peer stalled", not "the peer sent
    // garbage", so tag them for the reaper.
    if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) {
        protocol(format!("{what}: {TIMEOUT_MARKER} (stalled or idle peer)"))
    } else {
        protocol(format!("{what}: {e}"))
    }
}

/// Whether `e` is a protocol error caused by a socket read/write timeout
/// (a stalled or idle peer), as opposed to malformed bytes.
pub fn is_timeout(e: &ScanError) -> bool {
    matches!(e, ScanError::Protocol { detail } if detail.contains(TIMEOUT_MARKER))
}

/// Serialize `msg` and write it as one frame.
///
/// # Errors
/// As for [`write_frame`].
pub fn send<T: Serialize>(w: &mut impl Write, msg: &T) -> Result<(), ScanError> {
    let body = serde_json::to_string(msg).map_err(|e| protocol(format!("encode: {e}")))?;
    write_frame(w, body.as_bytes())
}

/// Read one frame and parse it as `T`. `Ok(None)` on clean end-of-stream.
///
/// # Errors
/// As for [`read_frame`], plus [`ScanError::Protocol`] for a body that is
/// not valid JSON for `T`.
pub fn recv<T: for<'de> Deserialize<'de>>(r: &mut impl Read) -> Result<Option<T>, ScanError> {
    match read_frame(r)? {
        None => Ok(None),
        Some(body) => {
            let text = std::str::from_utf8(&body)
                .map_err(|e| protocol(format!("frame body is not UTF-8: {e}")))?;
            serde_json::from_str(text)
                .map(Some)
                .map_err(|e| protocol(format!("unparseable frame body: {e}")))
        }
    }
}

/// One client request: an operation on behalf of a tenant, tagged for
/// response-routing verification.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Request {
    /// Cache namespace the request runs in. Empty = anonymous namespace.
    #[serde(default)]
    pub tenant: String,
    /// Client-chosen token the server echoes on the response.
    #[serde(default)]
    pub tag: u64,
    /// Optional end-to-end deadline, milliseconds from server receipt.
    /// Queueing time counts against it: a request still queued (or a
    /// deduped follower still waiting) when the budget elapses is
    /// answered with a typed `DeadlineExceeded` instead of its result,
    /// and executors abandon expired work at the next pipeline-stage
    /// boundary. Absent = wait indefinitely.
    #[serde(default)]
    pub deadline_ms: Option<u64>,
    /// The operation.
    pub op: Op,
}

/// The operations the daemon serves.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Op {
    /// Hybrid scan of one hosted image for one CVE.
    Scan {
        /// Index into the daemon's hosted image list.
        image: usize,
        /// CVE identifier from the daemon's vulnerability database.
        cve: String,
        /// Reference basis to search against.
        basis: Basis,
    },
    /// Whole-image audit against the daemon's vulnerability database.
    Audit {
        /// Index into the daemon's hosted image list.
        image: usize,
    },
    /// Audit several hosted images in one request.
    BatchAudit {
        /// Indices into the daemon's hosted image list.
        images: Vec<usize>,
    },
    /// Live service statistics (served immediately, never queued).
    Stats,
    /// Graceful shutdown: finish in-flight work, persist the caches,
    /// refuse new work, then stop.
    Drain,
}

/// One server response, tagged with the request's token.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Response {
    /// Echo of [`Request::tag`] — the client verifies this.
    pub tag: u64,
    /// The result.
    pub outcome: Outcome,
}

/// The result of one operation.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum Outcome {
    /// A completed scan.
    Scan(ScanSummary),
    /// A completed audit.
    Audit(Box<AuditReport>),
    /// Per-image reports, in request order.
    BatchAudit(Vec<AuditReport>),
    /// Service statistics.
    Stats(Box<ServiceStats>),
    /// Drain finished: the daemon persisted and is shutting down.
    Drained(DrainSummary),
    /// The operation failed. Transient errors ([`ScanError::Overloaded`],
    /// [`ScanError::Draining`]) invite a retry; permanent ones do not.
    Error(ScanError),
}

/// Wire-sized summary of an image scan (the full `ImageAnalysis` carries
/// per-function probability vectors; clients asking for a scan want the
/// verdict).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScanSummary {
    /// CVE scanned for.
    pub cve: String,
    /// Reference basis searched against.
    pub basis: Basis,
    /// Candidate functions that survived the static stage, image-wide.
    pub candidates: usize,
    /// Candidates that survived dynamic validation, image-wide.
    pub validated: usize,
    /// Per-library analyses that degraded to static-only evidence (the
    /// dynamic stage failed or was circuit-broken). Zero on a fully
    /// dynamic scan.
    #[serde(default)]
    pub degraded: usize,
    /// The image-wide best match, if any.
    pub best: Option<ImageMatch>,
}

impl ScanSummary {
    /// Summarize a full image analysis for the wire.
    pub fn from_analysis(analysis: &ImageAnalysis) -> ScanSummary {
        ScanSummary {
            cve: analysis.cve.clone(),
            basis: analysis.basis,
            candidates: analysis.analyses.iter().map(|a| a.scan.candidates.len()).sum(),
            validated: analysis.analyses.iter().map(|a| a.dynamic.validated.len()).sum(),
            degraded: analysis.analyses.iter().filter(|a| a.is_degraded()).count(),
            best: analysis.best.clone(),
        }
    }
}

/// What drain accomplished.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct DrainSummary {
    /// Whether the artifact caches were written to disk (false when the
    /// daemon has no cache directory, or for the losers of a drain race).
    pub persisted: bool,
}

/// Live service statistics, assembled from the daemon's scope registry.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ServiceStats {
    /// `running` or `draining`.
    pub state: String,
    /// Requests currently queued (admitted, not yet executing).
    pub queue_depth: usize,
    /// The admission limit.
    pub queue_limit: usize,
    /// Requests currently executing.
    pub in_flight: usize,
    /// Hosted images.
    pub images: usize,
    /// Connections currently open (accepted, not yet closed).
    #[serde(default)]
    pub open_connections: u64,
    /// Connections closed by the reaper after a socket timeout (stalled
    /// or idle peers).
    #[serde(default)]
    pub reaped_connections: u64,
    /// Jobs an executor observed as already expired at start — the
    /// soak's "no executor ever runs an expired job" oracle; pop-time
    /// discard keeps this at zero short of a sub-millisecond race.
    #[serde(default)]
    pub expired_at_executor: u64,
    /// Per-tenant counters and latency, keyed by tenant name.
    pub tenants: BTreeMap<String, TenantStats>,
    /// Shared artifact-store counters (both cache lanes).
    pub cache: CacheStats,
    /// Process-wide VM executions so far — the warm-request oracle: a
    /// warm re-audit must not move this counter.
    pub vm_executions: u64,
    /// The full merged telemetry snapshot (cache/scheduler/pool counters,
    /// stage-span and per-tenant latency histograms).
    pub telemetry: TelemetrySnapshot,
}

/// One tenant's slice of the service counters.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct TenantStats {
    /// Requests admitted to the queue.
    pub accepted: u64,
    /// Requests that joined an identical in-flight request instead of
    /// queueing (in-flight dedup).
    pub deduped: u64,
    /// Requests refused by admission control.
    pub rejected: u64,
    /// Requests completed successfully.
    pub completed: u64,
    /// Requests that finished with an error.
    pub failed: u64,
    /// Requests whose end-to-end deadline passed before a result could
    /// be delivered (discarded at the queue head, abandoned between
    /// pipeline stages, or a deduped follower that timed out).
    #[serde(default)]
    pub expired: u64,
    /// Requests refused by the tenant's token-bucket rate or in-flight
    /// cap (a subset of `rejected`).
    #[serde(default)]
    pub quota_rejected: u64,
    /// Jobs whose dynamic stage degraded to static-only evidence —
    /// including jobs shed by an open circuit breaker.
    #[serde(default)]
    pub degraded_jobs: u64,
    /// Dynamic-stage circuit breaker state, when the breaker is enabled.
    #[serde(default)]
    pub breaker: Option<BreakerStats>,
    /// Queue + execution latency histogram.
    pub latency: Option<DurationStats>,
}

/// One tenant's circuit-breaker state for the stats endpoint.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct BreakerStats {
    /// `closed`, `open`, or `half-open`.
    pub state: String,
    /// How many times the breaker has tripped open.
    pub trips: u64,
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn frames_round_trip() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"{\"a\":1}").unwrap();
        write_frame(&mut buf, b"").unwrap();
        let mut r = Cursor::new(buf);
        assert_eq!(read_frame(&mut r).unwrap().unwrap(), b"{\"a\":1}");
        assert_eq!(read_frame(&mut r).unwrap().unwrap(), b"");
        assert!(read_frame(&mut r).unwrap().is_none(), "clean EOF between frames");
    }

    #[test]
    fn oversize_length_prefix_is_rejected_before_allocation() {
        // A corrupt prefix claiming ~1 GiB must fail fast and typed.
        let mut frame = ((1u32 << 30) | 17).to_le_bytes().to_vec();
        frame.extend_from_slice(b"tiny actual body");
        match read_frame(&mut Cursor::new(frame)) {
            Err(ScanError::Protocol { detail }) => {
                assert!(detail.contains("length prefix"), "{detail}")
            }
            other => panic!("expected Protocol error, got {other:?}"),
        }
    }

    #[test]
    fn truncated_frames_are_typed_errors() {
        let mut whole = Vec::new();
        write_frame(&mut whole, br#"{"kind":"stats"}"#).unwrap();
        // Every strict prefix of a frame is either a truncated length
        // prefix or a truncated body — never a hang, never a panic.
        for cut in 1..whole.len() {
            match read_frame(&mut Cursor::new(&whole[..cut])) {
                Err(ScanError::Protocol { .. }) => {}
                other => panic!("cut at {cut}: expected Protocol error, got {other:?}"),
            }
        }
    }

    #[test]
    fn unparseable_bodies_are_typed_errors() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"not json at all").unwrap();
        match recv::<Request>(&mut Cursor::new(buf)) {
            Err(ScanError::Protocol { detail }) => assert!(detail.contains("unparseable"), "{detail}"),
            other => panic!("expected Protocol error, got {other:?}"),
        }
        // High-bit garbage (what the faultline injector produces) fails
        // the UTF-8 layer instead — still typed, never a panic.
        let mut buf = Vec::new();
        write_frame(&mut buf, b"\x80\xffnot json").unwrap();
        match recv::<Request>(&mut Cursor::new(buf)) {
            Err(ScanError::Protocol { detail }) => assert!(detail.contains("UTF-8"), "{detail}"),
            other => panic!("expected Protocol error, got {other:?}"),
        }
    }

    #[test]
    fn requests_and_responses_round_trip() {
        let req = Request {
            tenant: "acme".into(),
            tag: 0xfeed,
            deadline_ms: Some(250),
            op: Op::Scan { image: 2, cve: "CVE-2018-9412".into(), basis: Basis::Vulnerable },
        };
        let mut buf = Vec::new();
        send(&mut buf, &req).unwrap();
        let back: Request = recv(&mut Cursor::new(buf)).unwrap().unwrap();
        assert_eq!(back, req);

        let resp = Response {
            tag: 0xfeed,
            outcome: Outcome::Error(ScanError::Overloaded {
                queue_depth: 8,
                queue_limit: 8,
                retry_after_ms: 25,
            }),
        };
        let mut buf = Vec::new();
        send(&mut buf, &resp).unwrap();
        let back: Response = recv(&mut Cursor::new(buf)).unwrap().unwrap();
        assert_eq!(back.tag, 0xfeed);
        match back.outcome {
            Outcome::Error(e) => {
                assert!(e.is_transient(), "Overloaded survives the wire as transient")
            }
            other => panic!("expected error outcome, got {other:?}"),
        }
    }

    #[test]
    fn deadline_free_requests_from_older_clients_still_parse() {
        // PR 6 clients never send `deadline_ms`; the field must default
        // to "wait indefinitely" rather than break the wire.
        let legacy = br#"{"tenant":"acme","tag":9,"op":{"Audit":{"image":0}}}"#;
        let mut buf = Vec::new();
        write_frame(&mut buf, legacy).unwrap();
        let req: Request = recv(&mut Cursor::new(buf)).unwrap().unwrap();
        assert_eq!(req.deadline_ms, None);
        assert_eq!(req.op, Op::Audit { image: 0 });
    }

    #[test]
    fn timeout_errors_are_distinguishable_from_garbage() {
        struct Stalled;
        impl std::io::Read for Stalled {
            fn read(&mut self, _: &mut [u8]) -> std::io::Result<usize> {
                Err(std::io::Error::new(ErrorKind::WouldBlock, "resource unavailable"))
            }
        }
        let err = read_frame(&mut Stalled).unwrap_err();
        assert!(is_timeout(&err), "{err}");
        let garbage = read_frame(&mut Cursor::new(vec![1, 2])).unwrap_err();
        assert!(!is_timeout(&garbage), "{garbage}");
    }

    #[test]
    fn oversize_bodies_are_refused_on_write() {
        struct NullSink;
        impl Write for NullSink {
            fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
                Ok(buf.len())
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }
        let body = vec![b'x'; MAX_FRAME as usize + 1];
        assert!(matches!(
            write_frame(&mut NullSink, &body),
            Err(ScanError::Protocol { .. })
        ));
    }
}
