//! Bounded, tenant-fair admission queue with in-flight request dedup.
//!
//! The daemon's contention policy lives here, generic over the job and
//! result types so it is unit-testable without a trained model:
//!
//! * **Admission control** — at most `limit` requests queue; the next one
//!   is refused with a typed [`ScanError::Overloaded`] carrying a
//!   retry-after hint. The daemon sheds load instead of queueing
//!   unboundedly.
//! * **Fairness** — tenants take turns: workers pop from a round-robin
//!   rotation of tenants with queued work, so one tenant flooding the
//!   queue cannot starve another's single request (it waits behind at
//!   most one job per other tenant, not behind the flood).
//! * **In-flight dedup** — a request identical (same tenant, same
//!   fingerprint) to one already queued or executing joins that job's
//!   waiter list instead of queueing again: two clients auditing the same
//!   image trigger one computation, and each still gets its own
//!   correctly-tagged response.
//! * **Drain** — a state machine `Running → Draining → Stopped`. Draining
//!   refuses new work ([`ScanError::Draining`]), lets queued + in-flight
//!   work finish, and wakes the drain caller when the queue is idle.
//!
//! Everything synchronizes on one `Mutex` + two `Condvar`s (`ready` for
//! workers, `idle` for drainers); the service state lives *inside* the
//! mutex so a state flip can never race a worker's decision to sleep.

use patchecko_core::error::ScanError;
use std::collections::{HashMap, VecDeque};
use std::sync::mpsc::Sender;
use std::sync::{Condvar, Mutex};
use std::time::{Duration, Instant};

/// Service lifecycle state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum State {
    /// Accepting and executing work.
    Running,
    /// Refusing new work; queued and in-flight work is finishing.
    Draining,
    /// All work finished; workers have been told to exit.
    Stopped,
}

/// How an admitted request entered the queue.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Admitted {
    /// A new job was queued.
    Queued,
    /// The request joined an identical job already queued or executing.
    Joined,
}

/// A job identity: (tenant, fingerprint of the operation).
pub type JobKey = (String, u64);

/// The clients awaiting a job's result, each under its own request tag.
pub type Waiters<R> = Vec<(u64, Sender<(u64, R)>)>;

struct Entry<J, R> {
    job: J,
    enqueued: Instant,
    waiters: Waiters<R>,
}

struct Inner<J, R> {
    state: State,
    jobs: HashMap<JobKey, Entry<J, R>>,
    per_tenant: HashMap<String, VecDeque<JobKey>>,
    rotation: VecDeque<String>,
    depth: usize,
    in_flight: usize,
}

/// The tenant-fair bounded queue. `J` is the job payload workers execute;
/// `R` is the (cloneable) result broadcast to every waiter.
pub struct FairQueue<J, R> {
    inner: Mutex<Inner<J, R>>,
    ready: Condvar,
    idle: Condvar,
    limit: usize,
    retry_after_ms: u64,
}

impl<J: Clone, R: Clone> FairQueue<J, R> {
    /// A queue admitting at most `limit` jobs, advertising
    /// `retry_after_ms` in its overload rejections.
    pub fn new(limit: usize, retry_after_ms: u64) -> FairQueue<J, R> {
        FairQueue {
            inner: Mutex::new(Inner {
                state: State::Running,
                jobs: HashMap::new(),
                per_tenant: HashMap::new(),
                rotation: VecDeque::new(),
                depth: 0,
                in_flight: 0,
            }),
            ready: Condvar::new(),
            idle: Condvar::new(),
            limit: limit.max(1),
            retry_after_ms,
        }
    }

    /// The admission limit.
    pub fn limit(&self) -> usize {
        self.limit
    }

    /// Current (state, queued, in-flight).
    pub fn status(&self) -> (State, usize, usize) {
        let inner = self.inner.lock().expect("queue lock");
        (inner.state, inner.depth, inner.in_flight)
    }

    /// Submit a request: the waiter `(tag, tx)` receives `(tag, result)`
    /// when the job completes. Identical in-flight requests coalesce.
    ///
    /// # Errors
    /// [`ScanError::Draining`] once drain has begun;
    /// [`ScanError::Overloaded`] when the queue is full.
    pub fn submit(
        &self,
        tenant: &str,
        fingerprint: u64,
        job: &J,
        tag: u64,
        tx: Sender<(u64, R)>,
    ) -> Result<Admitted, ScanError> {
        let mut inner = self.inner.lock().expect("queue lock");
        if inner.state != State::Running {
            return Err(ScanError::Draining);
        }
        let key: JobKey = (tenant.to_string(), fingerprint);
        if let Some(entry) = inner.jobs.get_mut(&key) {
            entry.waiters.push((tag, tx));
            return Ok(Admitted::Joined);
        }
        if inner.depth >= self.limit {
            return Err(ScanError::Overloaded {
                queue_depth: inner.depth,
                queue_limit: self.limit,
                retry_after_ms: self.retry_after_ms,
            });
        }
        inner.jobs.insert(
            key.clone(),
            Entry { job: job.clone(), enqueued: Instant::now(), waiters: vec![(tag, tx)] },
        );
        let queue = inner.per_tenant.entry(tenant.to_string()).or_default();
        queue.push_back(key);
        if queue.len() == 1 {
            inner.rotation.push_back(tenant.to_string());
        }
        inner.depth += 1;
        drop(inner);
        self.ready.notify_one();
        Ok(Admitted::Queued)
    }

    /// Block until a job is available (rotating fairly across tenants) or
    /// the queue shuts down. `None` tells the worker to exit: the queue
    /// is stopped, or draining with nothing left to run.
    pub fn next(&self) -> Option<(JobKey, J)> {
        let mut inner = self.inner.lock().expect("queue lock");
        loop {
            if let Some(tenant) = inner.rotation.pop_front() {
                let queue = inner.per_tenant.get_mut(&tenant).expect("rotated tenant has a queue");
                let key = queue.pop_front().expect("rotated tenant queue is non-empty");
                if queue.is_empty() {
                    inner.per_tenant.remove(&tenant);
                } else {
                    inner.rotation.push_back(tenant);
                }
                inner.depth -= 1;
                inner.in_flight += 1;
                let job = inner.jobs.get(&key).expect("queued job has an entry").job.clone();
                return Some((key, job));
            }
            if inner.state != State::Running {
                return None;
            }
            inner = self.ready.wait(inner).expect("queue lock");
        }
    }

    /// Retire a job without waking its waiters yet: remove it from the
    /// in-flight set and return its admission-to-completion latency plus
    /// the waiter list. The caller records telemetry *before* passing the
    /// waiters to [`broadcast`], so a client released by the
    /// broadcast can never observe counters that predate its own job.
    pub fn settle(&self, key: &JobKey) -> (Duration, Waiters<R>) {
        let (entry, drained) = {
            let mut inner = self.inner.lock().expect("queue lock");
            let entry = inner.jobs.remove(key).expect("settled job has an entry");
            inner.in_flight -= 1;
            (entry, inner.depth == 0 && inner.in_flight == 0)
        };
        if drained {
            self.idle.notify_all();
        }
        (entry.enqueued.elapsed(), entry.waiters)
    }

    /// [`FairQueue::settle`] + [`broadcast`] in one step.
    pub fn complete(&self, key: &JobKey, result: R) -> Duration {
        let (latency, waiters) = self.settle(key);
        broadcast(waiters, result);
        latency
    }

    /// Begin (or join) a drain: refuse new work, wait until every queued
    /// and in-flight job has completed. Returns whether this caller
    /// initiated the drain (the initiator persists and then [`FairQueue::stop`]s).
    pub fn drain_wait(&self) -> bool {
        let mut inner = self.inner.lock().expect("queue lock");
        let initiator = inner.state == State::Running;
        if initiator {
            inner.state = State::Draining;
            // Idle workers re-check state and exit once the queue empties.
            self.ready.notify_all();
        }
        while inner.depth > 0 || inner.in_flight > 0 {
            inner = self.idle.wait(inner).expect("queue lock");
        }
        initiator
    }

    /// Final transition: tell every worker to exit.
    pub fn stop(&self) {
        let mut inner = self.inner.lock().expect("queue lock");
        inner.state = State::Stopped;
        drop(inner);
        self.ready.notify_all();
    }
}

/// Deliver `result` to every waiter from [`FairQueue::settle`], each
/// under its own tag — late joiners from dedup included.
pub fn broadcast<R: Clone>(waiters: Waiters<R>, result: R) {
    for (tag, tx) in waiters {
        // A waiter whose connection died mid-request dropped its
        // receiver; the send just fails and the job's other waiters
        // (and the cache warm-up) are unaffected.
        let _ = tx.send((tag, result.clone()));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::mpsc::channel;

    fn queue(limit: usize) -> FairQueue<u32, u32> {
        FairQueue::new(limit, 25)
    }

    #[test]
    fn rotation_interleaves_tenants_fairly() {
        let q = queue(16);
        // Tenant "flood" queues four jobs before "meek" queues one.
        for i in 0..4 {
            let (tx, _rx) = channel();
            q.submit("flood", i, &(i as u32), 0, tx).unwrap();
        }
        let (tx, _rx) = channel();
        q.submit("meek", 100, &100, 0, tx).unwrap();

        let first = q.next().unwrap();
        let second = q.next().unwrap();
        assert_eq!(first.0 .0, "flood");
        assert_eq!(second.0 .0, "meek", "one queued job is enough to take the second turn");
        let rest: Vec<String> = (0..3).map(|_| q.next().unwrap().0 .0).collect();
        assert_eq!(rest, ["flood"; 3], "the flood then finishes in order");
    }

    #[test]
    fn admission_rejects_above_the_limit_with_a_typed_hint() {
        let q = queue(2);
        for i in 0..2 {
            let (tx, _rx) = channel();
            q.submit("t", i, &0, 0, tx).unwrap();
        }
        let (tx, _rx) = channel();
        match q.submit("t", 99, &0, 0, tx) {
            Err(ScanError::Overloaded { queue_depth, queue_limit, retry_after_ms }) => {
                assert_eq!((queue_depth, queue_limit, retry_after_ms), (2, 2, 25));
            }
            other => panic!("expected Overloaded, got {other:?}"),
        }
        // In-flight jobs do not occupy queue slots: popping one admits one.
        let popped = q.next().unwrap();
        let (tx, _rx) = channel();
        q.submit("t", 99, &0, 0, tx).unwrap();
        q.complete(&popped.0, 0);
    }

    #[test]
    fn identical_requests_coalesce_and_all_waiters_hear_the_result() {
        let q = queue(8);
        let (tx1, rx1) = channel();
        let (tx2, rx2) = channel();
        let (tx3, rx3) = channel();
        assert_eq!(q.submit("t", 7, &41, 101, tx1).unwrap(), Admitted::Queued);
        assert_eq!(q.submit("t", 7, &41, 102, tx2).unwrap(), Admitted::Joined);
        let (key, job) = q.next().unwrap();
        // A waiter arriving while the job executes still joins it.
        assert_eq!(q.submit("t", 7, &41, 103, tx3).unwrap(), Admitted::Joined);
        assert_eq!(q.status().1, 0, "three requests, one queue slot");
        q.complete(&key, job + 1);
        assert_eq!(rx1.recv().unwrap(), (101, 42), "each waiter gets its own tag back");
        assert_eq!(rx2.recv().unwrap(), (102, 42));
        assert_eq!(rx3.recv().unwrap(), (103, 42));
        // Different tenant, same fingerprint: never coalesced.
        let (tx, _rx) = channel();
        assert_eq!(q.submit("other", 7, &41, 104, tx).unwrap(), Admitted::Queued);
    }

    #[test]
    fn drain_refuses_new_work_and_waits_for_the_queue_to_empty() {
        let q = std::sync::Arc::new(queue(8));
        let (tx, rx) = channel();
        q.submit("t", 1, &10, 1, tx).unwrap();

        let worker = {
            let q = std::sync::Arc::clone(&q);
            std::thread::spawn(move || {
                while let Some((key, job)) = q.next() {
                    std::thread::sleep(Duration::from_millis(30));
                    q.complete(&key, job);
                }
            })
        };
        // Give the worker time to pick the job up, then drain mid-flight.
        std::thread::sleep(Duration::from_millis(10));
        assert!(q.drain_wait(), "first drainer initiates");
        let (tx2, _rx2) = channel();
        assert!(matches!(q.submit("t", 2, &20, 2, tx2), Err(ScanError::Draining)));
        assert_eq!(rx.recv().unwrap(), (1, 10), "in-flight work finished before drain returned");
        assert_eq!(q.status().0, State::Draining);
        assert!(!q.drain_wait(), "later drainers join, not initiate");
        q.stop();
        worker.join().unwrap();
        assert_eq!(q.status().0, State::Stopped);
    }
}
